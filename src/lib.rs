//! Umbrella crate for the DATE'05 soft-error reproduction
//! (*Soft-Error Tolerance Analysis and Optimization of Nanometer
//! Circuits*, Dhillon/Diril/Chatterjee).
//!
//! Re-exports the workspace crates under stable names:
//!
//! * [`netlist`] — circuit representation, `.bench` I/O, generators;
//! * [`spice`] — transistor-level transient simulation substrate;
//! * [`cells`] — characterized cell library (lookup tables);
//! * [`logicsim`] — bit-parallel logic simulation and probabilities;
//! * [`aserta`] — soft-error tolerance **analysis** (the paper's §3);
//! * [`sertopt`] — soft-error tolerance **optimization** (the paper's §4);
//! * [`serve`] — the resident analysis daemon (`ser-serve`) and its
//!   typed wire API over warm, pooled analysis sessions.
//!
//! # Example: the paper's pipeline in six lines
//!
//! ```
//! use soft_error::aserta::{analyze_fresh, AsertaConfig, CircuitCells};
//! use soft_error::cells::{CharGrids, Library};
//! use soft_error::netlist::generate;
//! use soft_error::spice::Technology;
//!
//! let circuit = generate::c17();
//! let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
//! let cells = CircuitCells::nominal(&circuit);
//! let report = analyze_fresh(&circuit, &cells, &mut library, &AsertaConfig::fast());
//! assert!(report.unreliability > 0.0);
//! ```

pub use aserta;
pub use ser_cells as cells;
pub use ser_logicsim as logicsim;
pub use ser_netlist as netlist;
pub use ser_serve as serve;
pub use ser_spice as spice;
pub use sertopt;
