//! The `soft-error` command-line tool: ASERTA analysis, SERTOPT
//! optimization, library characterization and netlist statistics from
//! the shell.
//!
//! ```text
//! soft-error stats c432
//! soft-error analyze c432 --top 10
//! soft-error analyze my_design.bench --json report.json
//! soft-error optimize c432 --algo sqp --iters 16 --profile dual
//! soft-error characterize /tmp/lib.json --coarse
//! soft-error validate c17 --vectors 25
//! ```

use std::fs;
use std::process::ExitCode;

use soft_error::aserta::{
    report, validate, AnalysisSession, AsertaConfig, CircuitCells, Deadline, EngineConfig,
};
use soft_error::cells::{CharGrids, Library, LibrarySpec};
use soft_error::netlist::{bench_format, generate, stats::CircuitStats, Circuit, GateKind};
use soft_error::sertopt::{optimize, Algorithm, AllowedParams, OptimizeRequest, OptimizerConfig};
use soft_error::spice::Technology;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command {
        "stats" => cmd_stats(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "characterize" => cmd_characterize(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
soft-error — soft-error tolerance analysis (ASERTA) and optimization (SERTOPT)

USAGE:
  soft-error stats        <circuit>
  soft-error analyze      <circuit> [--vectors N] [--seed S] [--top K] [--json FILE]
  soft-error optimize     <circuit> [--algo sqp|coord|anneal|genetic]
                                    [--iters N] [--profile dual|triple|sizing]
                                    [--budget-ms MS]
  soft-error characterize <out.json> [--coarse]
  soft-error validate     <circuit> [--vectors N] [--levels L]

<circuit> is an ISCAS'85 name (c17, c432, c499, …) or a path to a
.bench netlist file.";

/// Loads a circuit from a benchmark name or a `.bench` path.
fn load_circuit(spec: &str) -> Result<Circuit, String> {
    if spec.ends_with(".bench") {
        let text = fs::read_to_string(spec).map_err(|e| format!("reading {spec}: {e}"))?;
        bench_format::parse(&text, spec).map_err(|e| format!("parsing {spec}: {e}"))
    } else {
        generate::iscas85(spec)
            .ok_or_else(|| format!("`{spec}` is not a known benchmark or .bench path"))
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
        None => Ok(default),
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("stats needs a circuit")?;
    let circuit = load_circuit(spec)?;
    println!("{}", CircuitStats::compute_fast(&circuit));
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("analyze needs a circuit")?;
    let circuit = load_circuit(spec)?;
    let mut cfg = AsertaConfig::default();
    cfg.sensitization_vectors = flag_parse(args, "--vectors", cfg.sensitization_vectors)?;
    cfg.seed = flag_parse(args, "--seed", cfg.seed)?;
    let top: usize = flag_parse(args, "--top", 10)?;

    let library = Library::new(Technology::ptm70(), CharGrids::standard());
    let cells = CircuitCells::nominal(&circuit);
    let t0 = std::time::Instant::now();
    // The strict env overlay: malformed SER_* variables are a typed
    // error here, not a silently-ignored knob.
    let engine = EngineConfig::from_env().map_err(|e| e.to_string())?;
    let rep = AnalysisSession::builder(&circuit, cells, library, cfg)
        .engine(engine)
        .build()
        .map_err(|e| e.to_string())?
        .into_report();
    let secs = t0.elapsed().as_secs_f64();

    println!("circuit          {}", circuit.name());
    println!("gates            {}", circuit.gate_count());
    println!("unreliability U  {:.4e}", rep.unreliability);
    println!(
        "critical path    {:.1} ps",
        rep.timing.critical_path_delay(&circuit) * 1e12
    );
    println!("analysis time    {secs:.2} s");
    println!();
    print!(
        "{}",
        report::format_ranked_table(
            &circuit,
            &format!("top {top} soft spots"),
            &rep.per_gate_unreliability,
            top
        )
    );

    if let Some(path) = flag(args, "--json") {
        let per_gate: Vec<serde_json::Value> = circuit
            .gates()
            .map(|g| {
                serde_json::json!({
                    "gate": circuit.node(g).name,
                    "unreliability": rep.per_gate_unreliability[g.index()],
                    "generated_width_s": rep.generated_widths[g.index()],
                    "delay_s": rep.timing.delays[g.index()],
                })
            })
            .collect();
        let doc = serde_json::json!({
            "circuit": circuit.name(),
            "unreliability": rep.unreliability,
            "critical_path_s": rep.timing.critical_path_delay(&circuit),
            "gates": per_gate,
        });
        let text = serde_json::to_string_pretty(&doc)
            .map_err(|e| format!("serializing the JSON report: {e}"))?;
        fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nwrote {path}");
    }
    Ok(())
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("optimize needs a circuit")?;
    let circuit = load_circuit(spec)?;
    let mut cfg = OptimizerConfig::default();
    cfg.algorithm = match flag(args, "--algo") {
        Some("coord") => Algorithm::CoordinateDescent,
        Some("anneal") => Algorithm::Anneal,
        Some("genetic") => Algorithm::Genetic,
        Some("sqp") | None => Algorithm::Sqp,
        Some(other) => return Err(format!("unknown algorithm `{other}`")),
    };
    cfg.iterations = flag_parse(args, "--iters", cfg.iterations)?;
    cfg.allowed = match flag(args, "--profile") {
        Some("triple") => AllowedParams::table1_triple(),
        Some("sizing") => AllowedParams::sizing_only(),
        Some("dual") | None => AllowedParams::table1_dual(),
        Some(other) => return Err(format!("unknown profile `{other}`")),
    };

    println!(
        "optimizing {} with {:?} ({} iterations)…",
        circuit.name(),
        cfg.algorithm,
        cfg.iterations
    );
    let mut request = OptimizeRequest::new(cfg);
    if let Some(ms) = flag(args, "--budget-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("--budget-ms expects a number, got `{ms}`"))?;
        request = request.budget(Deadline::within(std::time::Duration::from_millis(ms)));
    }
    let mut library = Library::new(Technology::ptm70(), CharGrids::standard());
    let outcome = optimize(&circuit, &mut library, &request);
    println!(
        "unreliability  {:.3e} -> {:.3e}  (-{:.0}%)",
        outcome.baseline.unreliability,
        outcome.optimized.unreliability,
        100.0 * outcome.unreliability_decrease()
    );
    println!(
        "delay {:.2}x   energy {:.2}x   area {:.2}x   ({} evaluations)",
        outcome.delay_ratio(),
        outcome.energy_ratio(),
        outcome.area_ratio(),
        outcome.evaluations
    );
    Ok(())
}

fn cmd_characterize(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("characterize needs an output path")?;
    let grids = if args.iter().any(|a| a == "--coarse") {
        CharGrids::coarse()
    } else {
        CharGrids::standard()
    };
    let mut library = Library::new(Technology::ptm70(), grids);
    let spec = LibrarySpec {
        kinds_fanins: vec![
            (GateKind::Not, 1),
            (GateKind::Buf, 1),
            (GateKind::Nand, 2),
            (GateKind::Nand, 3),
            (GateKind::Nand, 4),
            (GateKind::Nor, 2),
            (GateKind::Nor, 3),
            (GateKind::And, 2),
            (GateKind::Or, 2),
            (GateKind::Xor, 2),
            (GateKind::Xnor, 2),
        ],
        sizes: vec![1.0, 2.0, 4.0, 8.0],
        lengths_nm: vec![70.0, 100.0, 150.0, 250.0, 300.0],
        vdds: vec![0.8, 1.0, 1.2],
        vths: vec![0.1, 0.2, 0.3],
    };
    let t0 = std::time::Instant::now();
    let added = library.characterize_spec(&spec, 0);
    println!(
        "characterized {added} variants in {:.1} s",
        t0.elapsed().as_secs_f64()
    );
    library
        .save(path)
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("validate needs a circuit")?;
    let circuit = load_circuit(spec)?;
    let vectors: usize = flag_parse(args, "--vectors", 25)?;
    if vectors == 0 {
        return Err("--vectors must be at least 1".into());
    }
    let levels: usize = flag_parse(args, "--levels", 5)?;
    let tech = Technology::ptm70();
    let mut library = Library::new(tech.clone(), CharGrids::standard());
    let cells = CircuitCells::nominal(&circuit);
    let cfg = AsertaConfig::default();
    println!(
        "running the transistor-level reference on {} ({} vectors)…",
        circuit.name(),
        vectors
    );
    let r = validate::correlate_with_reference(
        &tech,
        &circuit,
        &cells,
        &mut library,
        &cfg,
        vectors,
        levels,
    );
    println!(
        "ASERTA vs reference over {} nodes (≤ {levels} levels from POs): correlation {:.3}",
        r.nodes.len(),
        r.correlation
    );
    println!("(paper: 0.96 on c432, 0.9 average)");
    Ok(())
}
