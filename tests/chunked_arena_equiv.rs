//! Property-based equivalence of the chunked, lazily-built cone arena
//! against the monolithic whole-circuit closure, on random layered
//! circuits:
//!
//! * every chunking of the roots must reproduce the monolithic arena's
//!   cones and reachable-PO lists exactly (including under a byte
//!   budget that forces eviction and rebuild);
//! * the streamed `P_ij` estimator must return **bitwise identical**
//!   matrices for every `(threads, chunk_size)` combination — the
//!   determinism contract the analysis engine's caches rely on;
//! * selective row re-simulation must agree with the full estimate for
//!   every chunking of the requested subset.

use proptest::prelude::*;
use soft_error::logicsim::sensitize::{
    resimulate_rows_chunked, sensitization_probabilities_cfg, sensitization_probabilities_chunked,
    PijConfig,
};
use soft_error::netlist::csr::{ChunkedConeArena, ConeArena, CsrView};
use soft_error::netlist::generate::{layered, LayeredSpec};
use soft_error::netlist::{Circuit, NodeId};

fn arbitrary_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..9, 1usize..5, 8usize..70, 0u64..5000).prop_map(|(pi, po, gates, seed)| {
        let mut spec = LayeredSpec::new("prop", pi, po, gates.max(po));
        spec.seed = seed;
        layered(&spec)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lazy per-chunk builds reproduce the monolithic closure exactly,
    /// for every chunk size — and a starvation-level byte budget (one
    /// chunk resident at a time, constant eviction) changes nothing.
    #[test]
    fn chunked_cones_match_monolithic(
        circuit in arbitrary_circuit(),
        chunk_size in 1usize..40,
    ) {
        let csr = CsrView::build(&circuit);
        let full = ConeArena::build(&csr);
        let mut lazy = ChunkedConeArena::plan(&csr, chunk_size);
        let mut starved = ChunkedConeArena::plan(&csr, chunk_size).with_budget(1);
        for id in circuit.node_ids() {
            let i = id.index();
            prop_assert_eq!(lazy.cone_of(&csr, i), full.cone(i), "cone of {}", i);
            prop_assert_eq!(
                lazy.reachable_cols_of(&csr, i),
                full.reachable_cols(i),
                "reach of {}",
                i
            );
            prop_assert_eq!(starved.cone_of(&csr, i), full.cone(i), "starved cone of {}", i);
        }
        prop_assert!(starved.resident_bytes() <= lazy.resident_bytes());

        // `build_all` materializes the same chunks the lazy walk did.
        let mut eager = ChunkedConeArena::plan(&csr, chunk_size);
        eager.build_all(&csr);
        for k in 0..eager.chunk_count() {
            prop_assert!(eager.is_resident(k));
            let arena = eager.chunk_arena(k).expect("built by build_all");
            for (slot, &root) in eager.chunk_roots(k).iter().enumerate() {
                prop_assert_eq!(arena.cone(slot), full.cone(root as usize));
            }
        }
    }

    /// The streamed estimator is bitwise identical for every worker
    /// count and every chunk size, including the degenerate one-root
    /// chunks and the single-chunk (monolithic) extreme.
    #[test]
    fn pij_bitwise_identical_across_threads_and_chunks(
        circuit in arbitrary_circuit(),
        seed in 0u64..1 << 40,
    ) {
        let n_vectors = 192; // 3 words: exercises uneven word blocks
        let monolithic = sensitization_probabilities_chunked(
            &circuit, n_vectors, seed, 1, circuit.node_count(),
        );
        for threads in [1usize, 2, 7] {
            for chunk_size in [1usize, 3, 16, 64] {
                let m = sensitization_probabilities_chunked(
                    &circuit, n_vectors, seed, threads, chunk_size,
                );
                prop_assert_eq!(
                    &m, &monolithic,
                    "threads {} chunk {}", threads, chunk_size
                );
            }
        }
    }

    /// The wide kernels change nothing: every lane width × thread count
    /// × chunk size reproduces the one-lane reference bit for bit, both
    /// in fixed-budget mode (`PijConfig::fixed`, the CI pin) and under
    /// the default adaptive + exact configuration (whose convergence
    /// and qualification decisions are integer-counter driven, hence
    /// lane-invariant too).
    #[test]
    fn pij_bitwise_identical_across_lanes(
        circuit in arbitrary_circuit(),
        seed in 0u64..1 << 40,
    ) {
        let n_vectors = 192; // 3 words: exercises the wide-row tails
        for base in [PijConfig::fixed(), PijConfig::default()] {
            let scalar = sensitization_probabilities_cfg(
                &circuit, n_vectors, seed, 1, circuit.node_count(),
                &PijConfig { lanes: 1, ..base },
            );
            for lanes in [2usize, 4, 8] {
                for threads in [1usize, 7] {
                    for chunk_size in [3usize, 64] {
                        let m = sensitization_probabilities_cfg(
                            &circuit, n_vectors, seed, threads, chunk_size,
                            &PijConfig { lanes, ..base },
                        );
                        prop_assert_eq!(
                            &m, &scalar,
                            "lanes {} threads {} chunk {} tol {}",
                            lanes, threads, chunk_size, base.tolerance
                        );
                    }
                }
            }
        }
    }

    /// Selective re-simulation of a scattered subset matches the full
    /// estimate row for row, for every `(threads, chunk_size)`.
    #[test]
    fn resimulated_rows_chunk_invariant(
        circuit in arbitrary_circuit(),
        seed in 0u64..1 << 40,
        stride in 2usize..5,
    ) {
        let n_vectors = 192;
        let full = sensitization_probabilities_chunked(
            &circuit, n_vectors, seed, 1, circuit.node_count(),
        );
        let subset: Vec<NodeId> = circuit
            .node_ids()
            .filter(|id| id.index() % stride == 1)
            .collect();
        prop_assert!(!subset.is_empty(), "node index 1 always exists at these sizes");
        let n_pos = circuit.primary_outputs().len();
        for threads in [1usize, 3] {
            for chunk_size in [1usize, 4, 64] {
                let up = resimulate_rows_chunked(
                    &circuit, &subset, n_vectors, seed, threads, chunk_size,
                );
                for (t, &id) in subset.iter().enumerate() {
                    prop_assert_eq!(
                        up.row(t),
                        full.row(id),
                        "row {} threads {} chunk {}", id, threads, chunk_size
                    );
                    for j in 0..n_pos {
                        prop_assert_eq!(up.row(t)[j], full.p(id, j));
                    }
                }
            }
        }
    }
}
