//! Property-based tests of the paper's mathematical claims, across
//! randomly generated circuits.

use proptest::prelude::*;
use soft_error::aserta::electrical::ExpectedWidths;
use soft_error::aserta::glitch::attenuate;
use soft_error::logicsim::sensitize::sensitization_probabilities;
use soft_error::netlist::generate::{layered, LayeredSpec};
use soft_error::sertopt::nullspace::{max_path_delay_change, TensionSpace};

fn arbitrary_circuit() -> impl Strategy<Value = soft_error::netlist::Circuit> {
    (2usize..8, 1usize..4, 8usize..60, 0u64..1000).prop_map(|(pi, po, gates, seed)| {
        let mut spec = LayeredSpec::new("prop", pi, po, gates.max(po));
        spec.seed = seed;
        layered(&spec)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1, machine-checked on random DAGs: a very wide glitch at
    /// gate i arrives at PO j with expected width exactly ww·P_ij —
    /// *except* where observability exists only through joint flips of
    /// reconvergent branches (all single-successor P_sj = 0 while
    /// P_ij > 0), the π_isj approximation the paper itself concedes.
    /// There ASERTA under-approximates, so the general guarantee is
    /// one-sided: WS ≤ ww·P_ij, with equality off the anomaly cones.
    #[test]
    fn lemma1_holds_on_random_circuits(circuit in arbitrary_circuit()) {
        use soft_error::aserta::logical::successor_sensitizations;
        use soft_error::netlist::cone::fanout_cone_mask;

        let pij = sensitization_probabilities(&circuit, 512, 11);
        let probs = vec![0.5; circuit.node_count()];
        let delays = vec![17e-12; circuit.node_count()];
        let grid = vec![0.0, 20e-12, 40e-12, 80e-12, 160e-12, 320e-12, 640e-12, 2560e-12];
        let ww = *grid.last().unwrap();
        let ew = ExpectedWidths::compute(&circuit, &probs, &pij, &delays, grid);

        // Mark the paper's acknowledged π anomaly: P_ij > 0 but every
        // successor's own P_sj is zero (joint-branch observability).
        let n_pos = ew.outputs().len();
        let mut anomalous = vec![false; circuit.node_count() * n_pos];
        for n in circuit.node_ids() {
            let succ = successor_sensitizations(&circuit, &probs, n);
            for j in 0..n_pos {
                if pij.p(n, j) > 0.0 && ew.outputs()[j] != n {
                    let denom: f64 = succ.iter().map(|&(s, w)| w * pij.p(s, j)).sum();
                    if denom <= 0.0 {
                        anomalous[n.index() * n_pos + j] = true;
                    }
                }
            }
        }

        for i in circuit.gates() {
            let cone = fanout_cone_mask(&circuit, i);
            for j in 0..n_pos {
                let got = ew.expected_width(i, j, ww);
                let want = ww * pij.p(i, j);
                // One-sided bound always.
                prop_assert!(
                    got <= want + ww * 1e-9 + 1e-18,
                    "node {i} col {j}: WS {got:e} exceeds ww·P {want:e}"
                );
                // Exactness when no anomaly lies in the cone for this PO.
                let tainted = circuit
                    .node_ids()
                    .any(|n| cone[n.index()] && anomalous[n.index() * n_pos + j]);
                if !tainted {
                    prop_assert!(
                        (got - want).abs() <= ww * 1e-9 + 1e-18,
                        "node {i} col {j}: {got:e} vs {want:e} (no anomaly in cone)"
                    );
                }
            }
        }
    }

    /// Tension-space moves change no PI→PO path delay (the T·Δ = 0
    /// guarantee behind SERTOPT's zero delay overhead).
    #[test]
    fn tension_moves_preserve_path_delays(
        circuit in arbitrary_circuit(),
        scale in 1.0e-12..50.0e-12f64,
        seed in 0u64..1000,
    ) {
        let ts = TensionSpace::build(&circuit);
        use rand::{SeedableRng, RngExt};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let phi: Vec<f64> = (0..ts.dim()).map(|_| rng.random_range(-scale..scale)).collect();
        let delta = ts.delta(&circuit, &phi);
        let worst = max_path_delay_change(&circuit, &delta, 500, seed ^ 0xF00);
        prop_assert!(worst < 1e-12 * 1e-3, "worst path change {worst:e}");
    }

    /// Eq. 1 never widens a glitch beyond its input width and never
    /// outputs a negative width.
    #[test]
    fn attenuation_is_contractive(w in 0.0..1.0e-9f64, d in 0.0..0.2e-9f64) {
        let out = attenuate(w, d);
        prop_assert!(out >= 0.0);
        prop_assert!(out <= w + 1e-21);
    }

    /// Eq. 1 is monotone in input width for fixed delay.
    #[test]
    fn attenuation_is_monotone(
        w1 in 0.0..1.0e-9f64,
        dw in 0.0..0.5e-9f64,
        d in 0.0..0.2e-9f64,
    ) {
        prop_assert!(attenuate(w1 + dw, d) >= attenuate(w1, d) - 1e-21);
    }

    /// P_ij estimates are proper probabilities, 1 on the PO diagonal and
    /// 0 for structurally unreachable outputs.
    #[test]
    fn sensitization_matrix_is_well_formed(circuit in arbitrary_circuit()) {
        let pij = sensitization_probabilities(&circuit, 256, 3);
        let outputs = pij.outputs().to_vec();
        for i in circuit.node_ids() {
            let reach = soft_error::netlist::cone::reachable_outputs(&circuit, i);
            for (j, po) in outputs.iter().enumerate() {
                let p = pij.p(i, j);
                prop_assert!((0.0..=1.0).contains(&p));
                if !reach.contains(po) {
                    prop_assert_eq!(p, 0.0, "unreachable PO must have P=0");
                }
            }
        }
        for (j, po) in outputs.iter().enumerate() {
            prop_assert_eq!(pij.p(*po, j), 1.0);
        }
    }
}
