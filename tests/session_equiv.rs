//! Property-based equivalence of the incremental [`AnalysisSession`]
//! against the fresh analysis pipeline, on random layered circuits:
//!
//! any sequence of random per-gate delta moves (sizes, lengths, VDD,
//! Vth — the exact move set SERTOPT's matcher emits) followed by session
//! queries must match `analyze_fresh` on the mutated circuit — bitwise
//! for `P_ij`, within 1e-12 (relative) for expected widths and SER. The
//! engine actually guarantees bitwise identity everywhere; the looser
//! bound here is the stable public contract.

use proptest::prelude::*;
use soft_error::aserta::{analyze_fresh, AnalysisSession, AsertaConfig, CircuitCells};
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::generate::{layered, LayeredSpec};
use soft_error::netlist::Circuit;
use soft_error::spice::Technology;

fn arbitrary_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..8, 1usize..5, 8usize..60, 0u64..5000).prop_map(|(pi, po, gates, seed)| {
        let mut spec = LayeredSpec::new("prop", pi, po, gates.max(po));
        spec.seed = seed;
        layered(&spec)
    })
}

/// One random gate delta: `(gate selector, size, length, vdd, vth)`
/// choice indices into small discrete menus (mirroring a match grid).
type Move = (usize, u8, u8, u8, u8);

fn arbitrary_moves() -> impl Strategy<Value = Vec<Move>> {
    proptest::collection::vec((0usize..10_000, 0u8..4, 0u8..2, 0u8..2, 0u8..2), 1..14)
}

fn cfg() -> AsertaConfig {
    let mut cfg = AsertaConfig::fast();
    cfg.sensitization_vectors = 192;
    cfg
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn session_matches_fresh_after_random_move_sequence(
        circuit in arbitrary_circuit(),
        moves in arbitrary_moves(),
    ) {
        let cfg = cfg();
        let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut session =
            AnalysisSession::builder(&circuit, CircuitCells::nominal(&circuit), lib, cfg.clone())
                .build()
                .unwrap();

        let gates: Vec<_> = circuit.gates().collect();
        for chunk in moves.chunks(2) {
            // Apply moves in small batches, as an optimizer's matcher
            // would hand them over.
            let deltas: Vec<_> = chunk
                .iter()
                .map(|&(sel, s, l, v, t)| {
                    let g = gates[sel % gates.len()];
                    let mut p = *session.cells().get(g).unwrap();
                    p.size = [1.0, 2.0, 4.0, 8.0][s as usize];
                    p.l_nm = [70.0, 150.0][l as usize];
                    p.vdd = [1.0, 0.8][v as usize];
                    p.vth = [0.2, 0.3][t as usize];
                    (g, p)
                })
                .collect();
            session.apply(&deltas);
        }

        // Fresh oracle over the mutated assignment.
        let mut oracle_lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let fresh = analyze_fresh(&circuit, session.cells(), &mut oracle_lib, &cfg);

        // P_ij: bitwise (the session never re-estimates on cell deltas).
        let n_pos = circuit.primary_outputs().len();
        let fresh_pij = soft_error::logicsim::sensitize::sensitization_probabilities(
            &circuit,
            cfg.sensitization_vectors,
            cfg.seed,
        );
        for id in circuit.node_ids() {
            prop_assert_eq!(session.pij().row(id), fresh_pij.row(id), "P row of {}", id);
        }

        // Timing, generated widths, width tables, SER: ≤ 1e-12 relative.
        for id in circuit.node_ids() {
            let i = id.index();
            prop_assert!(close(session.timing().delays[i], fresh.timing.delays[i]));
            prop_assert!(close(session.timing().loads[i], fresh.timing.loads[i]));
            prop_assert!(close(
                session.generated_widths()[i],
                fresh.generated_widths[i]
            ));
            for j in 0..n_pos {
                for k in 0..cfg.sample_widths {
                    let got = session.expected_widths().at_sample(id, j, k);
                    let want = fresh.expected_widths.at_sample(id, j, k);
                    prop_assert!(
                        close(got, want),
                        "W table node {} col {} k {}: {:e} vs {:e}",
                        id, j, k, got, want
                    );
                }
            }
            prop_assert!(
                close(
                    session.per_gate_unreliability()[i],
                    fresh.per_gate_unreliability[i]
                ),
                "U_{}: {:e} vs {:e}",
                id,
                session.per_gate_unreliability()[i],
                fresh.per_gate_unreliability[i]
            );
        }
        prop_assert!(
            close(session.unreliability(), fresh.unreliability),
            "U: {:e} vs {:e}",
            session.unreliability(),
            fresh.unreliability
        );
        prop_assert!(close(
            session.critical_delay(),
            fresh.timing.critical_path_delay(&circuit)
        ));
    }

    /// Per-gate energy/area inputs exposed by the session also match the
    /// fresh pipeline's view (loads, ramps), so incremental cost caches
    /// downstream stay exact.
    #[test]
    fn session_timing_view_matches_fresh(
        circuit in arbitrary_circuit(),
        moves in arbitrary_moves(),
    ) {
        let cfg = cfg();
        let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut session =
            AnalysisSession::builder(&circuit, CircuitCells::nominal(&circuit), lib, cfg.clone())
                .build()
                .unwrap();
        let gates: Vec<_> = circuit.gates().collect();
        for &(sel, s, l, v, t) in &moves {
            let g = gates[sel % gates.len()];
            let mut p = *session.cells().get(g).unwrap();
            p.size = [1.0, 2.0, 4.0, 8.0][s as usize];
            p.l_nm = [70.0, 150.0][l as usize];
            p.vdd = [1.0, 0.8][v as usize];
            p.vth = [0.2, 0.3][t as usize];
            session.apply(&[(g, p)]);
        }
        let mut oracle_lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let fresh = analyze_fresh(&circuit, session.cells(), &mut oracle_lib, &cfg);
        prop_assert_eq!(&session.timing().loads, &fresh.timing.loads);
        prop_assert_eq!(&session.timing().in_ramps, &fresh.timing.in_ramps);
        prop_assert_eq!(&session.timing().out_ramps, &fresh.timing.out_ramps);
        prop_assert_eq!(&session.timing().delays, &fresh.timing.delays);
    }
}
