//! End-to-end integration: netlist → characterized library → ASERTA →
//! SERTOPT, asserting the paper's headline contract — unreliability goes
//! down while path delays stay put.

use soft_error::aserta::{analyze_fresh, timing_view, AsertaConfig, CircuitCells, LoadModel};
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::generate;
use soft_error::sertopt::matching::vdd_violations;
use soft_error::sertopt::{optimize, Algorithm, OptimizeRequest, OptimizerConfig};
use soft_error::spice::Technology;

fn fast_config(algorithm: Algorithm) -> OptimizerConfig {
    let mut cfg = OptimizerConfig::fast();
    cfg.algorithm = algorithm;
    cfg.iterations = 6;
    cfg.aserta.sensitization_vectors = 512;
    cfg
}

#[test]
fn c17_optimization_never_regresses_and_keeps_timing() {
    let circuit = generate::c17();
    let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
    let outcome = optimize(
        &circuit,
        &mut library,
        &OptimizeRequest::new(fast_config(Algorithm::Sqp)),
    );

    // The zero-vector fallback guarantees no regression.
    assert!(
        outcome.optimized.cost <= outcome.baseline.cost + 1e-9,
        "cost must not regress: {} vs {}",
        outcome.optimized.cost,
        outcome.baseline.cost
    );
    // Zero-delay-overhead contract, modulo library quantization.
    assert!(
        outcome.delay_ratio() < 1.3,
        "delay ratio {} blew past quantization slack",
        outcome.delay_ratio()
    );
    // No level shifters needed.
    assert!(vdd_violations(&circuit, &outcome.optimized_cells).is_empty());
}

#[test]
fn every_algorithm_runs_on_c17() {
    let circuit = generate::c17();
    for algo in [
        Algorithm::Sqp,
        Algorithm::CoordinateDescent,
        Algorithm::Anneal,
        Algorithm::Genetic,
    ] {
        let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
        let outcome = optimize(
            &circuit,
            &mut library,
            &OptimizeRequest::new(fast_config(algo)),
        );
        assert!(
            outcome.optimized.unreliability.is_finite(),
            "{algo:?} produced garbage"
        );
        assert!(
            outcome.optimized.cost <= outcome.baseline.cost + 1e-9,
            "{algo:?} regressed"
        );
    }
}

#[test]
fn analysis_is_deterministic_across_library_instances() {
    let circuit = generate::c17();
    let cells = CircuitCells::nominal(&circuit);
    let cfg = AsertaConfig::fast();
    let mut lib1 = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut lib2 = Library::new(Technology::ptm70(), CharGrids::coarse());
    let u1 = analyze_fresh(&circuit, &cells, &mut lib1, &cfg).unreliability;
    let u2 = analyze_fresh(&circuit, &cells, &mut lib2, &cfg).unreliability;
    assert_eq!(u1, u2);
}

#[test]
fn optimized_assignment_realizes_a_valid_timing_view() {
    let circuit = generate::c17();
    let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
    let outcome = optimize(
        &circuit,
        &mut library,
        &OptimizeRequest::new(fast_config(Algorithm::Sqp)),
    );
    let lm = LoadModel {
        wire_cap_per_pin: 0.05e-15,
        po_load: 2.0e-15,
    };
    let tv = timing_view(&circuit, &outcome.optimized_cells, &mut library, lm, 20e-12);
    for g in circuit.gates() {
        assert!(tv.delays[g.index()] > 0.0, "gate {g} has no delay");
        assert!(tv.delays[g.index()] < 1e-9, "gate {g} absurdly slow");
    }
}
