//! Bitwise equivalence of the single-engine `analyze`/`analyze_fresh`
//! (a cold-start [`AnalysisSession`] since the consolidation) against
//! the **pre-refactor fresh pipeline**, captured verbatim below:
//! timing view → static probabilities → generated widths → the hoisted
//! reverse-topological batch `ExpectedWidths` pass → per-gate `U_i`.
//!
//! Pinned on the snapshot circuits (sec32, layered1k) and on random
//! layered circuits with random off-nominal assignments. Equality is
//! exact (`==` on every f64): the session's row kernel performs the
//! batch pass's arithmetic operation for operation.

use proptest::prelude::*;
use soft_error::aserta::glitch::attenuate;
use soft_error::aserta::logical::{pi_weights, successor_sensitizations};
use soft_error::aserta::{analyze, AsertaConfig, CircuitCells};
use soft_error::cells::{CharGrids, Library};
use soft_error::logicsim::sensitize::sensitization_probabilities;
use soft_error::logicsim::SensitizationMatrix;
use soft_error::netlist::generate::{layered, sec32, LayeredSpec};
use soft_error::netlist::Circuit;
use soft_error::spice::GateParams;

/// The pre-refactor report fields the oracle reproduces.
struct ReferenceReport {
    unreliability: f64,
    per_gate_unreliability: Vec<f64>,
    generated_widths: Vec<f64>,
    /// Node-major `[k][j]` expected-width tables.
    ws: Vec<f64>,
    loads: Vec<f64>,
    delays: Vec<f64>,
}

#[derive(Clone, Copy)]
struct RefBracket {
    off_lo: usize,
    off_hi: usize,
    w_lo: f64,
    w_hi: f64,
}

/// The old `bracket_for`, verbatim.
fn ref_bracket_for(grid: &[f64], w: f64, n_pos: usize) -> RefBracket {
    let top = grid.len() - 1;
    if w <= grid[0] {
        RefBracket {
            off_lo: 0,
            off_hi: 0,
            w_lo: 1.0,
            w_hi: 0.0,
        }
    } else if w >= grid[top] {
        RefBracket {
            off_lo: top * n_pos,
            off_hi: top * n_pos,
            w_lo: 0.0,
            w_hi: 1.0,
        }
    } else {
        let mut lo = 0usize;
        let mut hi = top;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if grid[mid] <= w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
        RefBracket {
            off_lo: lo * n_pos,
            off_hi: (lo + 1) * n_pos,
            w_lo: 1.0 - frac,
            w_hi: frac,
        }
    }
}

/// The old batch `ExpectedWidths::compute` (bracket-hoisted,
/// reachability-pruned, Eq. 1 attenuation), verbatim.
fn reference_expected_widths(
    circuit: &Circuit,
    probs: &[f64],
    pij: &SensitizationMatrix,
    delays: &[f64],
    grid: &[f64],
) -> Vec<f64> {
    let outputs = pij.outputs().to_vec();
    let n_pos = outputs.len();
    let k_n = grid.len();
    let n = circuit.node_count();
    let mut ws = vec![0.0f64; n * k_n * n_pos];

    let mut po_col = vec![usize::MAX; n];
    for (j, &po) in outputs.iter().enumerate() {
        po_col[po.index()] = j;
    }

    let mut brackets = Vec::with_capacity(n * k_n);
    for &delay in delays {
        for &g in grid {
            brackets.push(ref_bracket_for(grid, attenuate(g, delay), n_pos));
        }
    }

    for &id in circuit.topological_order().iter().rev() {
        let base = id.index() * k_n * n_pos;
        let self_col = po_col[id.index()];
        if self_col != usize::MAX {
            for k in 0..k_n {
                ws[base + k * n_pos + self_col] = grid[k];
            }
        }
        let successors = successor_sensitizations(circuit, probs, id);
        if successors.is_empty() {
            continue;
        }
        for &col in pij.reachable_columns(id) {
            let j = col as usize;
            let p_ij = pij.p(id, j);
            if p_ij <= 0.0 {
                continue;
            }
            let pis = pi_weights(&successors, p_ij, |s| pij.p(s, j));
            if pis.iter().all(|&x| x == 0.0) {
                continue;
            }
            for k in 0..k_n {
                let mut sum = 0.0;
                for (&(s, _), &pi_w) in successors.iter().zip(&pis) {
                    if pi_w == 0.0 {
                        continue;
                    }
                    let b = brackets[s.index() * k_n + k];
                    let s_base = s.index() * k_n * n_pos;
                    let we =
                        ws[s_base + b.off_lo + j] * b.w_lo + ws[s_base + b.off_hi + j] * b.w_hi;
                    sum += pi_w * we;
                }
                ws[base + k * n_pos + j] += sum;
            }
        }
    }
    ws
}

/// Interpolation of one node's `[k][j]` table (the old `interp_width`).
fn ref_interp(ws: &[f64], node_base: usize, n_pos: usize, j: usize, grid: &[f64], w: f64) -> f64 {
    let k_n = grid.len();
    if w <= grid[0] {
        return ws[node_base + j];
    }
    if w >= grid[k_n - 1] {
        return ws[node_base + (k_n - 1) * n_pos + j];
    }
    let mut lo = 0usize;
    let mut hi = k_n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if grid[mid] <= w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
    let a = ws[node_base + lo * n_pos + j];
    let b = ws[node_base + (lo + 1) * n_pos + j];
    a * (1.0 - frac) + b * frac
}

/// The pre-refactor `analyze`, captured verbatim over public APIs.
fn reference_analyze(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    pij: &SensitizationMatrix,
    cfg: &AsertaConfig,
) -> ReferenceReport {
    let loads_model = soft_error::aserta::LoadModel {
        wire_cap_per_pin: cfg.wire_cap_per_pin,
        po_load: cfg.po_load,
    };
    let timing = soft_error::aserta::timing_view(circuit, cells, library, loads_model, cfg.pi_ramp);
    let probs = soft_error::logicsim::probability::static_probabilities_analytic(
        circuit,
        cfg.pi_probability,
    );

    let mut generated = vec![0.0f64; circuit.node_count()];
    for id in circuit.gates() {
        let p = cells.get(id).expect("gates carry parameters");
        let cell = library.get_or_characterize(p);
        generated[id.index()] = cell.glitch_width_at(timing.loads[id.index()], cfg.charge);
    }

    let grid = cfg.sample_width_grid();
    let ws = reference_expected_widths(circuit, &probs, pij, &timing.delays, &grid);
    let n_pos = pij.outputs().len();
    let k_n = grid.len();

    let mut per_gate = vec![0.0f64; circuit.node_count()];
    let mut total = 0.0;
    for id in circuit.gates() {
        let z = cells.get(id).expect("gates carry parameters").size;
        let base = id.index() * k_n * n_pos;
        let row_total: f64 = (0..n_pos)
            .map(|j| ref_interp(&ws, base, n_pos, j, &grid, generated[id.index()]))
            .sum();
        let u = z * row_total;
        per_gate[id.index()] = u;
        total += u;
    }

    ReferenceReport {
        unreliability: total,
        per_gate_unreliability: per_gate,
        generated_widths: generated,
        ws,
        loads: timing.loads,
        delays: timing.delays,
    }
}

fn lib() -> Library {
    Library::new(soft_error::spice::Technology::ptm70(), CharGrids::coarse())
}

/// Pins `analyze` (new: cold session) against the captured old pipeline,
/// field by field, bit for bit.
fn assert_bitwise_equal(circuit: &Circuit, cells: &CircuitCells, cfg: &AsertaConfig) {
    let pij = sensitization_probabilities(circuit, cfg.sensitization_vectors, cfg.seed);
    let mut old_lib = lib();
    let want = reference_analyze(circuit, cells, &mut old_lib, &pij, cfg);
    let mut new_lib = lib();
    let got = analyze(circuit, cells, &mut new_lib, &pij, cfg);

    assert_eq!(got.timing.loads, want.loads, "loads");
    assert_eq!(got.timing.delays, want.delays, "delays");
    assert_eq!(got.generated_widths, want.generated_widths, "generated");
    let n_pos = pij.outputs().len();
    let k_n = cfg.sample_widths;
    for id in circuit.node_ids() {
        for j in 0..n_pos {
            for k in 0..k_n {
                let w = want.ws[(id.index() * k_n + k) * n_pos + j];
                let g = got.expected_widths.at_sample(id, j, k);
                assert!(
                    g == w,
                    "W table node {id} col {j} k {k}: {g:e} vs {w:e} (must be bitwise)"
                );
            }
        }
    }
    assert_eq!(
        got.per_gate_unreliability, want.per_gate_unreliability,
        "per-gate U"
    );
    assert_eq!(got.unreliability, want.unreliability, "total U");
}

fn cfg() -> AsertaConfig {
    let mut c = AsertaConfig::fast();
    c.sensitization_vectors = 512;
    c
}

#[test]
fn new_engine_matches_old_pipeline_on_sec32() {
    let c = sec32("sec32");
    let mut cells = CircuitCells::nominal(&c);
    // An off-nominal assignment so the oracle sees non-trivial timing.
    for (step, g) in c.gates().enumerate() {
        let mut p = *cells.get(g).unwrap();
        p.size = [1.0, 2.0, 4.0][step % 3];
        p.vth = [0.2, 0.25][step % 2];
        cells.set(g, p);
    }
    assert_bitwise_equal(&c, &cells, &cfg());
}

#[test]
fn new_engine_matches_old_pipeline_on_layered1k() {
    let c = layered(&LayeredSpec::new("layered1k", 40, 12, 1000));
    let cells = CircuitCells::nominal(&c);
    let mut fast = cfg();
    fast.sensitization_vectors = 256;
    assert_bitwise_equal(&c, &cells, &fast);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn new_engine_matches_old_pipeline_on_random_circuits(
        shape in (2usize..8, 1usize..5, 8usize..60, 0u64..5000),
        knobs in proptest::collection::vec((0u8..3, 0u8..2, 0u8..2), 1..8),
    ) {
        let (pi, po, gates, seed) = shape;
        let mut spec = LayeredSpec::new("prop", pi, po, gates.max(po));
        spec.seed = seed;
        let c = layered(&spec);
        let mut cells = CircuitCells::nominal(&c);
        let gate_ids: Vec<_> = c.gates().collect();
        for (t, &(s, v, l)) in knobs.iter().enumerate() {
            let g = gate_ids[(t * 31) % gate_ids.len()];
            let mut p: GateParams = *cells.get(g).unwrap();
            p.size = [1.0, 2.0, 8.0][s as usize];
            p.vdd = [1.0, 0.8][v as usize];
            p.l_nm = [70.0, 150.0][l as usize];
            cells.set(g, p);
        }
        let mut fast = cfg();
        fast.sensitization_vectors = 192;
        assert_bitwise_equal(&c, &cells, &fast);
    }
}
