//! Cross-crate integration: `.bench` I/O feeding analysis, library
//! persistence feeding identical results, and the c499 error-correcting
//! story.

use soft_error::aserta::{analyze, AsertaConfig, CircuitCells};
use soft_error::cells::{CharGrids, Library};
use soft_error::logicsim::sensitize::sensitization_probabilities;
use soft_error::netlist::{bench_format, generate, topo};
use soft_error::spice::Technology;

#[test]
fn bench_round_trip_preserves_analysis() {
    let original = generate::c17();
    let text = bench_format::write(&original);
    let reparsed = bench_format::parse(&text, "c17").expect("own output parses");

    let cfg = AsertaConfig::fast();
    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let pij_a = sensitization_probabilities(&original, 1024, 5);
    let pij_b = sensitization_probabilities(&reparsed, 1024, 5);
    let u_a = analyze(
        &original,
        &CircuitCells::nominal(&original),
        &mut lib,
        &pij_a,
        &cfg,
    )
    .unreliability;
    let u_b = analyze(
        &reparsed,
        &CircuitCells::nominal(&reparsed),
        &mut lib,
        &pij_b,
        &cfg,
    )
    .unreliability;
    assert_eq!(u_a, u_b, "round trip must not change the analysis");
}

#[test]
fn persisted_library_reproduces_analysis() {
    let circuit = generate::c17();
    let cells = CircuitCells::nominal(&circuit);
    let cfg = AsertaConfig::fast();
    let pij = sensitization_probabilities(&circuit, 1024, 5);

    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let u_fresh = analyze(&circuit, &cells, &mut lib, &pij, &cfg).unreliability;

    let path = std::env::temp_dir().join("soft_error_test_lib.json");
    lib.save(&path).expect("temp dir is writable");
    let mut reloaded = Library::load(&path).expect("file we wrote loads");
    let u_reloaded = analyze(&circuit, &cells, &mut reloaded, &pij, &cfg).unreliability;
    let _ = std::fs::remove_file(&path);

    assert_eq!(u_fresh, u_reloaded);
}

/// The paper's c499 observation rests on the circuit being a single-error
/// corrector built from XOR cones: glitches are never *logically* masked
/// on the way to the outputs (XOR propagates everything), so SERTOPT has
/// no cheap wins. Verify the structural half of that story.
#[test]
fn c499_xor_cones_defeat_logical_masking() {
    let ecc = generate::sec32("c499");
    let pij = sensitization_probabilities(&ecc, 2048, 9);
    // Syndrome-tree XOR nodes: flips always reach at least one output
    // with substantial probability (through e_i AND-decode they can
    // mask, but the direct d_i XOR path cannot).
    let levels = topo::levels_to_outputs(&ecc);
    let mut near_po_probs = Vec::new();
    for g in ecc.gates() {
        if levels[g.index()] == 1 {
            let best: f64 = pij.row(g).iter().copied().fold(0.0, f64::max);
            near_po_probs.push(best);
        }
    }
    assert!(!near_po_probs.is_empty());
    let min = near_po_probs.iter().copied().fold(1.0, f64::min);
    assert!(
        min > 0.9,
        "XOR-fed output stage must be observable, min P = {min}"
    );
}

#[test]
fn generated_suite_analyzes_without_panics() {
    // Smoke the whole suite through ASERTA at low vector counts.
    let cfg = {
        let mut c = AsertaConfig::fast();
        c.sensitization_vectors = 128;
        c
    };
    for name in ["c17", "c432", "c499", "c880"] {
        let circuit = generate::iscas85(name).expect("bundled");
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let cells = CircuitCells::nominal(&circuit);
        let pij = sensitization_probabilities(&circuit, 128, 1);
        let r = analyze(&circuit, &cells, &mut lib, &pij, &cfg);
        assert!(r.unreliability > 0.0, "{name}");
        assert!(r.unreliability.is_finite(), "{name}");
    }
}
