//! Session-snapshot round-trip and corruption-rejection guarantees:
//!
//! * encode → decode → restore is **bitwise** on the reference circuits
//!   (sec32, layered1k, tiled10k): every derived quantity of the
//!   restored session matches the live one bit for bit, and both
//!   sessions stay bitwise in lockstep through subsequent mutations;
//! * the file path is atomic: `snapshot_to` + `read_file` round-trips
//!   through a real filesystem;
//! * **every** corruption — random truncation, random single-bit flips,
//!   wrong magic, wrong version, duplicated sections — is rejected with
//!   a typed [`SnapshotError`], never a panic and never a
//!   silently-wrong session, and the live donor session is untouched.

use proptest::prelude::*;
use soft_error::aserta::{
    AnalysisSession, AsertaConfig, CircuitCells, SessionSnapshot, SessionSnapshotError,
};
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::generate::{self, LayeredSpec, TiledSpec};
use soft_error::netlist::snapshot::{write_circuit_section, SnapshotError, SnapshotWriter};
use soft_error::netlist::Circuit;
use soft_error::spice::{GateParams, Technology};

fn fast_cfg(vectors: usize) -> AsertaConfig {
    let mut cfg = AsertaConfig::fast();
    cfg.sensitization_vectors = vectors;
    cfg
}

fn session(circuit: &Circuit, vectors: usize) -> AnalysisSession<'_> {
    let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    AnalysisSession::builder(
        circuit,
        CircuitCells::nominal(circuit),
        lib,
        fast_cfg(vectors),
    )
    .build()
    .unwrap()
}

/// Every derived quantity of a session, bit for bit.
fn fingerprint(s: &AnalysisSession<'_>) -> Vec<u64> {
    let r = s.report();
    let mut v = vec![s.unreliability().to_bits(), s.critical_delay().to_bits()];
    v.extend(r.per_gate_unreliability.iter().map(|x| x.to_bits()));
    v.extend(r.generated_widths.iter().map(|x| x.to_bits()));
    v.extend(r.static_probs.iter().map(|x| x.to_bits()));
    v
}

/// An upsize delta that genuinely changes the assignment.
fn upsize(circuit: &Circuit) -> (soft_error::netlist::NodeId, GateParams) {
    let g = circuit.gates().next().expect("circuit has gates");
    let node = circuit.node(g);
    (
        g,
        GateParams::new(node.kind, node.fanin.len()).with_size(2.0),
    )
}

fn assert_bitwise_round_trip(circuit: &Circuit, vectors: usize) {
    let live = session(circuit, vectors);
    let snap = live.snapshot().expect("clean session snapshots");
    let bytes = snap.to_bytes().expect("encode");
    let decoded = SessionSnapshot::from_bytes(&bytes).expect("decode");
    let restored = AnalysisSession::restore_from(&decoded)
        .expect("restore re-derives the exact captured state");

    assert_eq!(
        fingerprint(&live),
        fingerprint(&restored),
        "{}: restored session must be bitwise equal to the live one",
        circuit.name()
    );
    assert_eq!(live.cells(), restored.cells(), "{}", circuit.name());

    // The restored session is not just a frozen copy: it tracks the live
    // one bitwise through subsequent incremental mutations.
    let mut live = live;
    let mut restored = restored;
    let (g, delta) = upsize(circuit);
    live.try_apply(&[(g, delta)]).expect("live mutates");
    restored.try_apply(&[(g, delta)]).expect("restored mutates");
    assert_eq!(
        fingerprint(&live),
        fingerprint(&restored),
        "{}: sessions must stay in lockstep after restore",
        circuit.name()
    );
}

#[test]
fn round_trip_is_bitwise_on_sec32() {
    assert_bitwise_round_trip(&generate::sec32("c499"), 512);
}

#[test]
fn round_trip_is_bitwise_on_layered1k() {
    assert_bitwise_round_trip(
        &generate::layered(&LayeredSpec::new("layered1k", 40, 12, 1000)),
        256,
    );
}

#[test]
fn round_trip_is_bitwise_on_tiled10k() {
    assert_bitwise_round_trip(
        &generate::tiled(&TiledSpec::scaled("tiled10k", 10_000)),
        128,
    );
}

#[test]
fn file_round_trip_survives_the_filesystem() {
    let circuit = generate::sec32("c499");
    let live = session(&circuit, 512);
    let dir = std::env::temp_dir().join(format!("sersnap-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("c499.sersnap");

    live.snapshot_to(&path).expect("atomic write");
    let decoded = SessionSnapshot::read_file(&path).expect("read back");
    let restored = AnalysisSession::restore_from(&decoded).expect("restore");
    assert_eq!(fingerprint(&live), fingerprint(&restored));

    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------- corruption

/// One encoded sec32 image shared by the corruption tests (building a
/// session per proptest case would dominate the suite's runtime).
fn reference_bytes() -> &'static [u8] {
    static BYTES: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BYTES.get_or_init(|| {
        let circuit = generate::sec32("c499");
        let live = session(&circuit, 256);
        live.snapshot().expect("clean").to_bytes().expect("encode")
    })
}

#[test]
fn wrong_magic_and_version_are_typed_rejections() {
    let bytes = reference_bytes();

    let mut bad_magic = bytes.to_vec();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        SessionSnapshot::from_bytes(&bad_magic),
        Err(SnapshotError::BadMagic)
    ));

    // The version field sits right after the 8-byte magic.
    let mut skewed = bytes.to_vec();
    skewed[8] = 0xFF;
    assert!(matches!(
        SessionSnapshot::from_bytes(&skewed),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));
}

#[test]
fn duplicated_sections_are_typed_rejections() {
    let circuit = generate::sec32("c499");
    let mut w = SnapshotWriter::new();
    write_circuit_section(&mut w, &circuit);
    write_circuit_section(&mut w, &circuit);
    let err = match SessionSnapshot::from_bytes(&w.to_bytes()) {
        Ok(_) => panic!("duplicated sections must not decode"),
        Err(e) => e,
    };
    assert!(
        matches!(err, SnapshotError::DuplicateSection { .. }),
        "{err}"
    );
}

#[test]
fn failed_restores_leave_the_donor_session_untouched() {
    let circuit = generate::sec32("c499");
    let live = session(&circuit, 256);
    let before = fingerprint(&live);
    let bytes = live.snapshot().expect("clean").to_bytes().expect("encode");

    // A corrupted image fails to decode; a tampered-but-valid-CRC image
    // would fail restore with a typed error. Neither touches the donor.
    let mut torn = bytes.clone();
    torn.truncate(bytes.len() / 3);
    assert!(SessionSnapshot::from_bytes(&torn).is_err());

    assert_eq!(
        fingerprint(&live),
        before,
        "failed restore attempts must not disturb the live session"
    );
    let again = live
        .snapshot()
        .expect("still clean")
        .to_bytes()
        .expect("encode");
    assert_eq!(bytes, again, "the donor still snapshots byte-identically");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the image at any point yields a typed error — the
    /// decoder never panics on and never accepts a short file.
    #[test]
    fn any_truncation_is_a_typed_rejection(frac in 0.0f64..1.0) {
        let bytes = reference_bytes();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let truncated = &bytes[..cut];
        match SessionSnapshot::from_bytes(truncated) {
            Ok(_) => prop_assert!(false, "decoded a truncated image (cut at {cut})"),
            Err(e) => {
                // Any typed variant is acceptable; reaching here at all
                // proves no panic escaped.
                let _ = e.to_string();
            }
        }
    }

    /// Flipping any single bit anywhere in the image yields a typed
    /// error: every byte is covered by the magic check, the version
    /// check, or a section CRC.
    #[test]
    fn any_single_bit_flip_is_a_typed_rejection(frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = reference_bytes();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = ((bytes.len() - 1) as f64 * frac) as usize;
        let mut flipped = bytes.to_vec();
        flipped[idx] ^= 1 << bit;
        match SessionSnapshot::from_bytes(&flipped) {
            Ok(_) => prop_assert!(false, "decoded with bit {bit} of byte {idx} flipped"),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

// `SessionSnapshotError` itself must round through `?` from both layers;
// a compile-time-ish check that the conversions exist and display.
#[test]
fn session_snapshot_error_wraps_both_layers() {
    let codec: SessionSnapshotError = SnapshotError::BadMagic.into();
    assert!(codec.to_string().to_lowercase().contains("magic"));
}
