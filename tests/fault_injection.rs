//! Fault-injection harness: arms every `fail-points` hook in the
//! workspace and checks the fault-tolerance contract end to end.
//!
//! For each fail point the harness asserts three things:
//!
//! 1. the fault surfaces as a **typed error** (`AnalysisError`,
//!    `TransientError`, `EvalError` or `SweepError`) — never a panic
//!    escaping a thread scope;
//! 2. the touched session is either **bitwise intact** (rejections) or
//!    **explicitly poisoned** (mid-recompute faults), verified against a
//!    fault-free twin session driven through the same calls;
//! 3. recovery works: `recover`/`recover_with` restores a clean state
//!    whose subsequent results are bitwise identical to the twin's.
//!
//! The persistence and budget hooks extend the same contract to I/O and
//! time: a torn snapshot write never replaces the target file, corrupted
//! reads are typed decode rejections, and an injected deadline at any
//! budget checkpoint is either a clean entry rejection or an explicit
//! poisoning — never a torn in-between.
//!
//! Build with `cargo test --features fail-points`; without the feature
//! this file compiles to nothing and the hooks cost zero in production.

#![cfg(feature = "fail-points")]

use ser_bench::corners::{try_sweep_session, CornerGrid, SweepError};
use soft_error::aserta::{
    AnalysisError, AnalysisSession, AsertaConfig, CircuitCells, Deadline, DegradationEvent,
    PoisonReason, SessionSnapshot, SessionSnapshotError,
};
use soft_error::cells::{CharGrids, Library};
use soft_error::netlist::failpoint::{self, FailAction};
use soft_error::netlist::generate::TiledSpec;
use soft_error::netlist::govern::InterruptReason;
use soft_error::netlist::snapshot::SnapshotError;
use soft_error::netlist::{generate, Circuit, NodeId};
use soft_error::sertopt::matching::MatchingConfig;
use soft_error::sertopt::{AllowedParams, CostWeights, DelayProblem, EnergyModel, EvalError};
use soft_error::spice::transient::{try_simulate_gate, TransientConfig};
use soft_error::spice::waveform::ramp;
use soft_error::spice::{GateElectrical, GateParams, Technology, TransientError};

// ---------------------------------------------------------------- fixtures

fn fast_cfg() -> AsertaConfig {
    let mut cfg = AsertaConfig::fast();
    cfg.sensitization_vectors = 512;
    cfg
}

fn session_pair(circuit: &Circuit) -> (AnalysisSession<'_>, AnalysisSession<'_>) {
    let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let session =
        AnalysisSession::builder(circuit, CircuitCells::nominal(circuit), lib, fast_cfg())
            .build()
            .unwrap();
    let twin = session.clone();
    (session, twin)
}

/// The observable analysis state, bit-for-bit.
fn snapshot(s: &AnalysisSession<'_>) -> (u64, u64, CircuitCells) {
    (
        s.unreliability().to_bits(),
        s.critical_delay().to_bits(),
        s.cells().clone(),
    )
}

fn first_gate(circuit: &Circuit) -> NodeId {
    circuit.gates().next().expect("circuit has gates")
}

/// An upsize delta for `id` that genuinely changes the assignment.
fn upsize(circuit: &Circuit, id: NodeId) -> GateParams {
    let node = circuit.node(id);
    GateParams::new(node.kind, node.fanin.len()).with_size(2.0)
}

fn c17_problem<'a>(circuit: &'a Circuit, lib: &mut Library) -> DelayProblem<'a> {
    DelayProblem::new(
        circuit,
        lib,
        CircuitCells::nominal(circuit),
        CostWeights::default(),
        MatchingConfig::new(AllowedParams::tiny()),
        fast_cfg(),
        EnergyModel::default(),
    )
}

// ------------------------------------------------- aserta: clean rejections

/// `aserta::set_charge` — the fault is a typed rejection and the session
/// is bitwise intact: the retried call lands bitwise on the twin.
#[test]
fn set_charge_fault_rejects_and_leaves_session_intact() {
    let circuit = generate::c17();
    let (mut session, mut twin) = session_pair(&circuit);
    let before = snapshot(&session);

    let _guard = failpoint::scenario();
    failpoint::set_times("aserta::set_charge", FailAction::Error, 1);
    let err = session.try_set_charge(32.0e-15).unwrap_err();
    assert_eq!(err, AnalysisError::FaultInjected("aserta::set_charge"));
    assert_eq!(failpoint::hits("aserta::set_charge"), 1);
    assert!(!session.is_poisoned());
    assert_eq!(
        snapshot(&session),
        before,
        "rejected call must leave no trace"
    );

    // The fail point is exhausted: the same call now succeeds and the
    // session tracks a fault-free twin bitwise.
    session.try_set_charge(32.0e-15).expect("disarmed point");
    twin.try_set_charge(32.0e-15).expect("twin is clean");
    assert_eq!(snapshot(&session), snapshot(&twin));
}

/// `aserta::resample_rows` — same contract for the Monte-Carlo
/// refinement entry point.
#[test]
fn resample_rows_fault_rejects_and_leaves_session_intact() {
    let circuit = generate::c17();
    let (mut session, mut twin) = session_pair(&circuit);
    let g = first_gate(&circuit);
    let before = snapshot(&session);

    let _guard = failpoint::scenario();
    failpoint::set_times("aserta::resample_rows", FailAction::Error, 1);
    let err = session.try_resample_pij_rows(&[g], 256, 7).unwrap_err();
    assert_eq!(err, AnalysisError::FaultInjected("aserta::resample_rows"));
    assert_eq!(failpoint::hits("aserta::resample_rows"), 1);
    assert!(!session.is_poisoned());
    assert_eq!(snapshot(&session), before);

    session
        .try_resample_pij_rows(&[g], 256, 7)
        .expect("disarmed");
    twin.try_resample_pij_rows(&[g], 256, 7).expect("twin");
    assert_eq!(snapshot(&session), snapshot(&twin));
}

// -------------------------------------------- aserta: poisoning + recovery

/// `aserta::session_recompute` — a mid-recompute fault poisons the
/// session: mutations are refused with a typed error, reads keep
/// working, and `recover()` restores a state bitwise identical to a
/// twin that took the incremental path.
#[test]
fn recompute_fault_poisons_then_recover_restores_bitwise() {
    let circuit = generate::c17();
    let (mut session, mut twin) = session_pair(&circuit);
    let g = first_gate(&circuit);
    let delta = upsize(&circuit, g);

    let _guard = failpoint::scenario();
    failpoint::set_times("aserta::session_recompute", FailAction::Error, 1);
    let err = session.try_apply(&[(g, delta)]).unwrap_err();
    assert_eq!(
        err,
        AnalysisError::Poisoned(PoisonReason::Injected("aserta::session_recompute"))
    );
    assert!(session.is_poisoned());

    // Poisoned: further mutations are refused without touching the
    // (already exhausted) fail point...
    let refused = session.try_set_charge(32.0e-15).unwrap_err();
    assert!(matches!(refused, AnalysisError::Poisoned(_)));
    assert_eq!(failpoint::hits("aserta::session_recompute"), 1);
    // ...but reads still answer from the last consistent results.
    assert!(session.unreliability().is_finite());
    assert!(session.critical_delay().is_finite());

    // Recovery rebuilds at the current cells (the delta was staged
    // before the recompute fault) — bitwise equal to the twin applying
    // the same delta incrementally, by the session fidelity contract.
    session.recover().expect("full rebuild succeeds");
    assert!(!session.is_poisoned());
    twin.try_apply(&[(g, delta)]).expect("twin is clean");
    assert_eq!(snapshot(&session), snapshot(&twin));
}

/// `aserta::full_rebuild` — a fault during recovery itself keeps the
/// session explicitly poisoned; the next recovery attempt succeeds.
#[test]
fn failed_recovery_keeps_session_poisoned() {
    let circuit = generate::c17();
    let (mut session, mut twin) = session_pair(&circuit);
    let g = first_gate(&circuit);
    let delta = upsize(&circuit, g);

    let _guard = failpoint::scenario();
    failpoint::set_times("aserta::session_recompute", FailAction::Error, 1);
    session.try_apply(&[(g, delta)]).unwrap_err();
    assert!(session.is_poisoned());

    failpoint::set_times("aserta::full_rebuild", FailAction::Error, 1);
    let err = session.recover().unwrap_err();
    assert_eq!(err, AnalysisError::FaultInjected("aserta::full_rebuild"));
    assert!(
        session.is_poisoned(),
        "failed recovery must not clear poison"
    );
    assert!(matches!(
        session.try_set_charge(32.0e-15).unwrap_err(),
        AnalysisError::Poisoned(_)
    ));

    session.recover().expect("second recovery, point disarmed");
    assert!(!session.is_poisoned());
    twin.try_apply(&[(g, delta)]).expect("twin");
    assert_eq!(snapshot(&session), snapshot(&twin));
}

// ------------------------------------------------------- spice: transient

/// `spice::transient_step` — one bad RK4 step is healed by the bounded
/// step-halving retry; a persistent fault surfaces as the typed
/// `TransientError::NonConvergence` instead of an assert.
#[test]
fn transient_fault_heals_once_then_surfaces_nonconvergence() {
    let tech = Technology::ptm70();
    let gate = GateElectrical::from_params(
        &tech,
        &GateParams::new(soft_error::netlist::GateKind::Not, 1),
    );
    let vin = ramp(0.0, 1.0, 20.0e-12, 10.0e-12);
    let cfg = TransientConfig::default();

    let _guard = failpoint::scenario();
    failpoint::set_times("spice::transient_step", FailAction::Error, 1);
    let out = try_simulate_gate(&tech, &gate, &vin, false, 2.0e-15, &cfg)
        .expect("one bad step is recovered by refinement");
    assert!(out.value_at(out.t_end()).is_finite());
    assert_eq!(failpoint::hits("spice::transient_step"), 1);

    failpoint::set("spice::transient_step", FailAction::Error);
    let err = try_simulate_gate(&tech, &gate, &vin, false, 2.0e-15, &cfg).unwrap_err();
    assert!(matches!(err, TransientError::NonConvergence { .. }));
}

// ----------------------------------------------------- sertopt: evaluation

/// `sertopt::match_realize` and `sertopt::match_refine` — matcher
/// faults surface as typed `EvalError`s from `try_evaluate_phi`, and a
/// later fault-free evaluation is bitwise unaffected.
#[test]
fn matching_faults_are_typed_and_transient() {
    let circuit = generate::c17();
    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut problem = c17_problem(&circuit, &mut lib);
    let phi = vec![0.0; problem.dim()];

    let _guard = failpoint::scenario();
    let clean = problem
        .try_evaluate_phi(&phi)
        .expect("no faults armed")
        .cost;

    failpoint::set_times("sertopt::match_realize", FailAction::Error, 1);
    let err = problem.try_evaluate_phi(&phi).unwrap_err();
    assert_eq!(err, EvalError::FaultInjected("sertopt::match_realize"));
    assert_eq!(failpoint::hits("sertopt::match_realize"), 1);

    failpoint::set_times("sertopt::match_refine", FailAction::Error, 1);
    let err = problem.try_evaluate_phi(&phi).unwrap_err();
    assert_eq!(err, EvalError::FaultInjected("sertopt::match_refine"));
    assert_eq!(failpoint::hits("sertopt::match_refine"), 1);

    let after = problem
        .try_evaluate_phi(&phi)
        .expect("points disarmed")
        .cost;
    assert_eq!(clean.to_bits(), after.to_bits());
}

/// `sertopt::replica_evaluate` (Error) — an injected evaluation fault
/// fails exactly one candidate of a batch; the rest are bitwise equal
/// to a fault-free run.
#[test]
fn replica_fault_is_contained_to_one_candidate() {
    let circuit = generate::c17();
    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut problem = c17_problem(&circuit, &mut lib);
    problem.threads = 1; // deterministic: candidate 0 takes the hit
    let dim = problem.dim();
    let phis: Vec<Vec<f64>> = (0..4)
        .map(|s| (0..dim).map(|i| 1e-13 * ((s + i) % 3) as f64).collect())
        .collect();

    let _guard = failpoint::scenario();
    let clean: Vec<f64> = problem
        .evaluate_batch(&phis)
        .into_iter()
        .map(|c| c.expect("no faults armed").cost)
        .collect();

    failpoint::set_times("sertopt::replica_evaluate", FailAction::Error, 1);
    let faulted = problem.evaluate_batch(&phis);
    assert_eq!(failpoint::hits("sertopt::replica_evaluate"), 1);
    assert!(matches!(
        faulted[0],
        Err(EvalError::FaultInjected("sertopt::replica_evaluate"))
    ));
    for (i, r) in faulted.iter().enumerate().skip(1) {
        let c = r.as_ref().expect("only candidate 0 was faulted");
        assert_eq!(c.cost.to_bits(), clean[i].to_bits(), "candidate {i}");
    }
}

/// `sertopt::replica_evaluate` (Panic) — a panic storm inside the
/// scoped evaluation threads is caught per candidate; nothing escapes
/// the thread scope, and once the storm clears the wrecked replicas
/// heal themselves back to bitwise-identical results.
#[test]
fn replica_panics_are_caught_and_replicas_self_heal() {
    let circuit = generate::c17();
    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut problem = c17_problem(&circuit, &mut lib);
    problem.threads = 2;
    let dim = problem.dim();
    let phis: Vec<Vec<f64>> = (0..4)
        .map(|s| (0..dim).map(|i| 1e-13 * ((s + i) % 3) as f64).collect())
        .collect();

    let _guard = failpoint::scenario();
    let clean: Vec<f64> = problem
        .evaluate_batch(&phis)
        .into_iter()
        .map(|c| c.expect("no faults armed").cost)
        .collect();

    // Persistent panic: every candidate fails, but each panic is caught
    // at the thread-scope boundary — this test completing at all proves
    // no panic escaped.
    failpoint::set("sertopt::replica_evaluate", FailAction::Panic);
    let stormed = problem.evaluate_batch(&phis);
    assert_eq!(stormed.len(), phis.len());
    for r in &stormed {
        assert!(
            matches!(r, Err(EvalError::Panicked { .. })),
            "caught panic must surface as a typed error, got {r:?}"
        );
    }

    // Disarm: the wrecked replicas rebuild themselves at the incoming
    // candidate and the batch is bitwise identical to the clean run.
    failpoint::clear("sertopt::replica_evaluate");
    let healed: Vec<f64> = problem
        .evaluate_batch(&phis)
        .into_iter()
        .map(|c| c.expect("storm is over").cost)
        .collect();
    for (i, (h, c)) in healed.iter().zip(&clean).enumerate() {
        assert_eq!(h.to_bits(), c.to_bits(), "candidate {i}");
    }
}

// --------------------------------------------------- ser-bench: corner sweep

/// `ser_bench::corner_eval` — a corner fault surfaces as a typed
/// `SweepError` for that corner only; the replica heals and the rest of
/// the grid is bitwise equal to a clean sweep. A persistent panic storm
/// is caught per corner at the thread-scope boundary.
#[test]
fn corner_faults_and_panics_are_contained_per_corner() {
    let circuit = generate::c17();
    let base = CircuitCells::nominal(&circuit);
    let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let cfg = fast_cfg();
    let corners = CornerGrid::smoke().corners();

    let _guard = failpoint::scenario();
    let clean: Vec<_> = try_sweep_session(&circuit, &base, lib.clone(), &cfg, &corners, 1)
        .into_iter()
        .map(|p| p.expect("no faults armed"))
        .collect();

    failpoint::set_times("ser_bench::corner_eval", FailAction::Error, 1);
    let faulted = try_sweep_session(&circuit, &base, lib.clone(), &cfg, &corners, 1);
    assert_eq!(failpoint::hits("ser_bench::corner_eval"), 1);
    assert_eq!(
        faulted[0],
        Err(SweepError::FaultInjected("ser_bench::corner_eval"))
    );
    for (i, p) in faulted.iter().enumerate().skip(1) {
        assert_eq!(
            p.as_ref().expect("only corner 0 was faulted"),
            &clean[i],
            "corner {i}"
        );
    }

    // Panic storm across two workers: every corner fails typed, nothing
    // escapes the scope.
    failpoint::set("ser_bench::corner_eval", FailAction::Panic);
    let stormed = try_sweep_session(&circuit, &base, lib, &cfg, &corners, 2);
    assert_eq!(stormed.len(), corners.len());
    for p in &stormed {
        assert_eq!(p, &Err(SweepError::Panicked));
    }
}

// ------------------------------------------------- snapshot: persistence I/O

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sersnap-fi-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// `snapshot::torn_write` — a crash mid-write leaves only a torn
/// temporary file: the target keeps its previous good image, the torn
/// bytes never decode, and a retry after the fault lands a snapshot that
/// restores bitwise.
#[test]
fn torn_snapshot_write_never_replaces_the_target() {
    let circuit = generate::c17();
    let (session, _twin) = session_pair(&circuit);
    let dir = temp_dir("torn");
    let path = dir.join("c17.sersnap");

    session.snapshot_to(&path).expect("clean write");
    let good = std::fs::read(&path).expect("target exists");

    let _guard = failpoint::scenario();
    failpoint::set_times("snapshot::torn_write", FailAction::Error, 1);
    let err = session.snapshot_to(&path).unwrap_err();
    assert!(
        matches!(
            err,
            SessionSnapshotError::Codec(SnapshotError::FaultInjected("snapshot::torn_write"))
        ),
        "{err}"
    );
    assert_eq!(failpoint::hits("snapshot::torn_write"), 1);
    assert_eq!(
        std::fs::read(&path).expect("target still exists"),
        good,
        "a torn write must never replace the target"
    );
    // The half-written temporary is not a decodable snapshot.
    if let Ok(torn) = std::fs::read(dir.join("c17.sersnap.tmp")) {
        assert!(SessionSnapshot::from_bytes(&torn).is_err());
    }

    // Disarmed: the retry succeeds and the image restores bitwise.
    session.snapshot_to(&path).expect("disarmed");
    let snap = SessionSnapshot::read_file(&path).expect("read back");
    let restored = AnalysisSession::restore_from(&snap).expect("restore");
    assert_eq!(snapshot(&session), snapshot(&restored));
    std::fs::remove_dir_all(&dir).ok();
}

/// `snapshot::short_read` and `snapshot::crc_flip` — I/O corruption on
/// the read path surfaces as typed decode rejections; once the fault
/// clears, the same file restores bitwise.
#[test]
fn short_reads_and_bit_rot_are_typed_decode_rejections() {
    let circuit = generate::c17();
    let (session, _twin) = session_pair(&circuit);
    let dir = temp_dir("rot");
    let path = dir.join("c17.sersnap");
    session.snapshot_to(&path).expect("clean write");

    let _guard = failpoint::scenario();
    failpoint::set_times("snapshot::short_read", FailAction::Error, 1);
    let err = SessionSnapshot::read_file(&path).unwrap_err();
    assert!(
        matches!(
            err,
            SnapshotError::Truncated { .. } | SnapshotError::CrcMismatch { .. }
        ),
        "a short read must be a typed rejection, got {err}"
    );
    assert_eq!(failpoint::hits("snapshot::short_read"), 1);

    failpoint::set_times("snapshot::crc_flip", FailAction::Error, 1);
    let err = SessionSnapshot::read_file(&path).unwrap_err();
    assert!(
        matches!(err, SnapshotError::CrcMismatch { .. }),
        "bit rot must trip a section CRC, got {err}"
    );
    assert_eq!(failpoint::hits("snapshot::crc_flip"), 1);

    // Disarmed: the untouched file on disk is still perfectly good.
    let snap = SessionSnapshot::read_file(&path).expect("disarmed");
    let restored = AnalysisSession::restore_from(&snap).expect("restore");
    assert_eq!(snapshot(&session), snapshot(&restored));
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------ govern: deadline injection

/// `govern::deadline` — walks the injected interruption through *every*
/// budget checkpoint a mutation crosses, in order: checkpoint 0 is the
/// clean entry rejection (session bitwise intact), every later one is a
/// mid-recompute poisoning, and in both cases the session lands bitwise
/// on a fault-free twin after retry/recovery.
#[test]
fn deadline_at_every_checkpoint_is_typed_and_recoverable() {
    let circuit = generate::c17();
    let g = first_gate(&circuit);
    let delta = upsize(&circuit, g);
    let mut k = 0usize;
    loop {
        let (mut session, mut twin) = session_pair(&circuit);

        let _guard = failpoint::scenario();
        failpoint::set_after("govern::deadline", FailAction::Error, k, 1);
        let result = session.try_apply(&[(g, delta.clone())]);
        if failpoint::hits("govern::deadline") == 0 {
            // The call crossed fewer than k+1 checkpoints and ran clean.
            result.expect("unarmed run succeeds");
            assert!(
                k >= 3,
                "expected an entry checkpoint plus several stage checkpoints, found only {k}"
            );
            break;
        }

        match result.unwrap_err() {
            // Checkpoint 0: the entry check refuses before any mutation.
            AnalysisError::Interrupted(i) => {
                assert_eq!(i.stage, "session::entry", "checkpoint {k}");
                assert_eq!(i.reason, InterruptReason::Injected);
                assert!(!session.is_poisoned(), "entry rejection must not poison");
                // The exhausted fail point lets the retry through.
                session.try_apply(&[(g, delta.clone())]).expect("retry");
            }
            // Later checkpoints: stage boundaries inside the recompute
            // poison (caches are partially updated there).
            AnalysisError::Poisoned(PoisonReason::Interrupted(i)) => {
                assert!(
                    i.stage.starts_with("session::"),
                    "checkpoint {k}: unexpected stage {}",
                    i.stage
                );
                assert!(session.is_poisoned());
                session.recover().expect("recovery after interruption");
            }
            other => panic!("checkpoint {k}: unexpected error {other:?}"),
        }

        twin.try_apply(&[(g, delta.clone())])
            .expect("twin is clean");
        assert_eq!(
            snapshot(&session),
            snapshot(&twin),
            "checkpoint {k}: session must land bitwise on the twin"
        );
        k += 1;
    }
}

/// `govern::deadline` during governed construction — interrupting before
/// any Monte-Carlo block is a typed construction failure; interrupting
/// after the first block yields a *usable* session whose truncated
/// estimate is surfaced as a degradation event.
#[test]
fn deadline_mid_estimate_truncates_or_rejects_construction() {
    let circuit = generate::sec32("c499");
    let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut cfg = fast_cfg();
    // Two 4096-vector estimation blocks, so there is a consistent
    // boundary to interrupt at.
    cfg.sensitization_vectors = 8192;
    let cells = CircuitCells::nominal(&circuit);

    {
        let _guard = failpoint::scenario();
        failpoint::set_times("govern::deadline", FailAction::Error, 1);
        let err = AnalysisSession::builder(&circuit, cells.clone(), lib.clone(), cfg.clone())
            .deadline(Deadline::none())
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(
            matches!(err, AnalysisError::Interrupted(_)),
            "zero completed blocks must reject construction, got {err}"
        );
    }

    {
        let _guard = failpoint::scenario();
        failpoint::set_after("govern::deadline", FailAction::Error, 1, 1);
        let session = AnalysisSession::builder(&circuit, cells, lib, cfg.clone())
            .deadline(Deadline::none())
            .build()
            .expect("a partial estimate is still usable");
        assert_eq!(failpoint::hits("govern::deadline"), 1);
        let truncated = session.degradations().iter().find_map(|e| match e {
            DegradationEvent::EstimateTruncated {
                completed,
                requested,
            } => Some((*completed, *requested)),
            _ => None,
        });
        let (completed, requested) =
            truncated.expect("truncation must surface as a degradation event");
        assert_eq!(requested, cfg.sensitization_vectors);
        assert!(
            completed > 0 && completed < requested,
            "a consistent partial estimate: {completed}/{requested}"
        );
        assert!(session.unreliability().is_finite());
        assert!(
            !session.report().degradations.is_empty(),
            "the report must carry the degradation"
        );
    }
}

// --------------------------------------------------- recovery at 10k scale

/// `aserta::session_recompute` at tiled-10k scale — a poisoning
/// mid-recompute on a 10 000-gate session recovers via `recover_with`
/// back to a state bitwise identical to the fresh build (this test also
/// runs under the CI scaling job's 64 MiB address-space ulimit).
#[test]
fn tiled10k_poisoned_session_recovers_bitwise_fresh() {
    let circuit = generate::tiled(&TiledSpec::scaled("tiled10k", 10_000));
    let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut cfg = AsertaConfig::fast();
    cfg.sensitization_vectors = 128;
    let nominal = CircuitCells::nominal(&circuit);
    let mut session = AnalysisSession::builder(&circuit, nominal.clone(), lib, cfg)
        .build()
        .unwrap();
    let fresh = snapshot(&session);

    let g = first_gate(&circuit);
    let delta = upsize(&circuit, g);
    let _guard = failpoint::scenario();
    failpoint::set_times("aserta::session_recompute", FailAction::Error, 1);
    let err = session.try_apply(&[(g, delta)]).unwrap_err();
    assert!(matches!(err, AnalysisError::Poisoned(_)));
    assert!(session.is_poisoned());

    // Recover *with* the original nominal assignment: the rebuild must
    // land bitwise on the fresh-construction state.
    session
        .recover_with(nominal)
        .expect("recovery at 10k gates");
    assert!(!session.is_poisoned());
    assert_eq!(
        snapshot(&session),
        fresh,
        "recover_with must be bitwise-fresh at scale"
    );
}

// ------------------------------------------------------------ meta coverage

/// The harness above must exercise every fail point the workspace
/// declares — grep-level insurance that a new hook gets a test.
#[test]
fn harness_covers_all_declared_fail_points() {
    const COVERED: [&str; 13] = [
        "aserta::set_charge",
        "aserta::resample_rows",
        "aserta::session_recompute",
        "aserta::full_rebuild",
        "spice::transient_step",
        "sertopt::match_realize",
        "sertopt::match_refine",
        "sertopt::replica_evaluate",
        "ser_bench::corner_eval",
        "snapshot::torn_write",
        "snapshot::short_read",
        "snapshot::crc_flip",
        "govern::deadline",
    ];
    assert!(COVERED.len() >= 8, "ISSUE floor: at least 8 fail points");
    // Each name must actually be armable and consumable.
    let _guard = failpoint::scenario();
    for name in COVERED {
        failpoint::set_times(name, FailAction::Error, 1);
        assert_eq!(failpoint::check(name), Some(FailAction::Error), "{name}");
        assert_eq!(failpoint::hits(name), 1, "{name}");
    }
}
