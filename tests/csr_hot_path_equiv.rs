//! Property-based equivalence of the CSR/parallel hot-path kernels
//! against **independent in-test scalar references** (the seed
//! implementations, captured here verbatim — `ser_logicsim::sim` is a
//! shim over the CSR kernels since the single-engine consolidation, so
//! it can no longer serve as an oracle), on random layered circuits:
//!
//! * `kernel::eval_word` (CSR) must match the scalar reference bit for
//!   bit;
//! * `sensitization_probabilities` must reproduce the pre-CSR per-node
//!   cone-resimulation estimate exactly, for any worker-thread count;
//! * `ExpectedWidths` must match the pre-hoist implementation (brackets
//!   recomputed per PO column) within 1e-15.

use proptest::prelude::*;
use soft_error::aserta::electrical::ExpectedWidths;
use soft_error::aserta::glitch::AttenuationModel;
use soft_error::aserta::logical::{pi_weights, successor_sensitizations};
use soft_error::logicsim::random::random_word;
use soft_error::logicsim::sensitize::{
    sensitization_probabilities_cfg, sensitization_probabilities_threaded, PijConfig,
    SensitizationMatrix,
};
use soft_error::logicsim::{kernel, probability};
use soft_error::netlist::cone::fanout_cone;
use soft_error::netlist::csr::CsrView;
use soft_error::netlist::generate::{layered, LayeredSpec};
use soft_error::netlist::{Circuit, GateKind, NodeId};

fn arbitrary_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..9, 1usize..5, 8usize..70, 0u64..5000).prop_map(|(pi, po, gates, seed)| {
        let mut spec = LayeredSpec::new("prop", pi, po, gates.max(po));
        spec.seed = seed;
        layered(&spec)
    })
}

/// Scalar packed gate evaluation (the seed `GateKind::eval_packed`).
fn ref_gate(kind: GateKind, pins: &[u64]) -> u64 {
    match kind {
        GateKind::Input => unreachable!("inputs carry no function"),
        GateKind::And => pins.iter().fold(!0u64, |acc, &w| acc & w),
        GateKind::Nand => !pins.iter().fold(!0u64, |acc, &w| acc & w),
        GateKind::Or => pins.iter().fold(0u64, |acc, &w| acc | w),
        GateKind::Nor => !pins.iter().fold(0u64, |acc, &w| acc | w),
        GateKind::Xor => pins.iter().fold(0u64, |acc, &w| acc ^ w),
        GateKind::Xnor => !pins.iter().fold(0u64, |acc, &w| acc ^ w),
        GateKind::Not => !pins[0],
        GateKind::Buf => pins[0],
    }
}

/// The seed scalar `eval_word`: a topological walk over the pointer
/// circuit.
fn ref_eval_word(circuit: &Circuit, pi_words: &[u64]) -> Vec<u64> {
    let mut words = vec![0u64; circuit.node_count()];
    for (k, &pi) in circuit.primary_inputs().iter().enumerate() {
        words[pi.index()] = pi_words[k];
    }
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        if node.is_input() {
            continue;
        }
        let pins: Vec<u64> = node.fanin.iter().map(|f| words[f.index()]).collect();
        words[id.index()] = ref_gate(node.kind, &pins);
    }
    words
}

/// The seed scalar `eval_cone_forced`.
fn ref_eval_cone_forced(
    circuit: &Circuit,
    cone: &[NodeId],
    root: NodeId,
    forced: u64,
    scratch: &mut [u64],
) {
    scratch[root.index()] = forced;
    for &id in cone {
        if id == root {
            continue;
        }
        let node = circuit.node(id);
        let pins: Vec<u64> = node.fanin.iter().map(|f| scratch[f.index()]).collect();
        scratch[id.index()] = ref_gate(node.kind, &pins);
    }
}

/// The seed implementation of `P_ij` estimation: word-major loop, per-node
/// fan-out cone resimulation through the scalar kernels, all PO columns
/// counted densely.
fn reference_pij(circuit: &Circuit, n_vectors: usize, seed: u64) -> Vec<f64> {
    let outputs = circuit.primary_outputs().to_vec();
    let n_pos = outputs.len();
    let n_nodes = circuit.node_count();
    let n_words = n_vectors.div_ceil(64);
    let n_pi = circuit.primary_inputs().len();
    let cones: Vec<Vec<NodeId>> = circuit
        .node_ids()
        .map(|id| fanout_cone(circuit, id))
        .collect();

    let mut counts = vec![0u64; n_nodes * n_pos];
    let mut scratch = vec![0u64; n_nodes];
    for w in 0..n_words {
        let pi_words = random_word(n_pi, 0.5, seed.wrapping_add(w as u64));
        let base = ref_eval_word(circuit, &pi_words);
        scratch.copy_from_slice(&base);
        for id in circuit.node_ids() {
            let cone = &cones[id.index()];
            ref_eval_cone_forced(circuit, cone, id, !base[id.index()], &mut scratch);
            let row = &mut counts[id.index() * n_pos..(id.index() + 1) * n_pos];
            for (j, &po) in outputs.iter().enumerate() {
                let diff = scratch[po.index()] ^ base[po.index()];
                row[j] += u64::from(diff.count_ones());
            }
            for &c in cone {
                scratch[c.index()] = base[c.index()];
            }
        }
    }
    let total = (n_words * 64) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

/// The pre-hoist `ExpectedWidths` pass: interpolation brackets recomputed
/// per PO column, every column visited.
fn reference_expected_widths(
    circuit: &Circuit,
    probs: &[f64],
    pij: &SensitizationMatrix,
    delays: &[f64],
    grid: &[f64],
    model: AttenuationModel,
) -> Vec<f64> {
    fn interp_width(
        ws: &[f64],
        node_base: usize,
        n_pos: usize,
        j: usize,
        grid: &[f64],
        w: f64,
    ) -> f64 {
        let k_n = grid.len();
        if w <= grid[0] {
            return ws[node_base + j];
        }
        if w >= grid[k_n - 1] {
            return ws[node_base + (k_n - 1) * n_pos + j];
        }
        let mut lo = 0usize;
        let mut hi = k_n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if grid[mid] <= w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
        let a = ws[node_base + lo * n_pos + j];
        let b = ws[node_base + (lo + 1) * n_pos + j];
        a * (1.0 - frac) + b * frac
    }

    let outputs = pij.outputs().to_vec();
    let n_pos = outputs.len();
    let k_n = grid.len();
    let n = circuit.node_count();
    let mut ws = vec![0.0f64; n * k_n * n_pos];
    let mut po_col = vec![usize::MAX; n];
    for (j, &po) in outputs.iter().enumerate() {
        po_col[po.index()] = j;
    }
    for &id in circuit.topological_order().iter().rev() {
        let base = id.index() * k_n * n_pos;
        let self_col = po_col[id.index()];
        if self_col != usize::MAX {
            for k in 0..k_n {
                ws[base + k * n_pos + self_col] = grid[k];
            }
        }
        let successors = successor_sensitizations(circuit, probs, id);
        if successors.is_empty() {
            continue;
        }
        for j in 0..n_pos {
            let p_ij = pij.p(id, j);
            if p_ij <= 0.0 {
                continue;
            }
            let pis = pi_weights(&successors, p_ij, |s| pij.p(s, j));
            if pis.iter().all(|&x| x == 0.0) {
                continue;
            }
            for k in 0..k_n {
                let mut sum = 0.0;
                for (&(s, _), &pi_w) in successors.iter().zip(&pis) {
                    if pi_w == 0.0 {
                        continue;
                    }
                    let wos = model.apply(grid[k], delays[s.index()]);
                    let we = interp_width(&ws, s.index() * k_n * n_pos, n_pos, j, grid, wos);
                    sum += pi_w * we;
                }
                ws[base + k * n_pos + j] += sum;
            }
        }
    }
    ws
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR word evaluation agrees bit for bit with the scalar reference
    /// (and the `sim` shim forwards to the kernel faithfully).
    #[test]
    fn csr_eval_word_matches_scalar(circuit in arbitrary_circuit(), seed in 0u64..1 << 40) {
        let csr = CsrView::build(&circuit);
        let pi_words = random_word(circuit.primary_inputs().len(), 0.5, seed);
        let want = ref_eval_word(&circuit, &pi_words);
        let mut got = vec![0u64; circuit.node_count()];
        kernel::eval_word(&csr, &pi_words, &mut got);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(soft_error::logicsim::sim::eval_word(&circuit, &pi_words), want);
    }

    /// The blocked/parallel estimator in fixed-budget mode
    /// ([`PijConfig::fixed`]: tolerance 0, exact mode off) reproduces
    /// the seed estimate exactly, and every lane width × thread count
    /// yields bitwise-identical matrices.
    #[test]
    fn pij_counts_match_seed_for_any_thread_count(
        circuit in arbitrary_circuit(),
        seed in 0u64..1 << 40,
    ) {
        let n_vectors = 192; // 3 words: exercises uneven thread splits
        let want = reference_pij(&circuit, n_vectors, seed);
        let n_pos = circuit.primary_outputs().len();
        let chunk = circuit.node_count().max(1);
        let m1 = sensitization_probabilities_cfg(
            &circuit, n_vectors, seed, 1, chunk, &PijConfig::fixed(),
        );
        for id in circuit.node_ids() {
            for j in 0..n_pos {
                prop_assert_eq!(m1.p(id, j), want[id.index() * n_pos + j], "node {} col {}", id, j);
            }
        }
        for lanes in [1usize, 2, 4, 8] {
            for threads in [2usize, 7] {
                let pij = PijConfig { lanes, ..PijConfig::fixed() };
                let m = sensitization_probabilities_cfg(
                    &circuit, n_vectors, seed, threads, chunk, &pij,
                );
                prop_assert_eq!(&m1, &m, "lanes {} threads {}", lanes, threads);
            }
        }
    }

    /// The bracket-hoisted, reachability-pruned width pass matches the
    /// pre-hoist implementation within 1e-15 at every table entry.
    #[test]
    fn expected_widths_match_pre_hoist(circuit in arbitrary_circuit(), seed in 0u64..1 << 40) {
        let pij = sensitization_probabilities_threaded(&circuit, 256, seed, 1);
        let probs = probability::static_probabilities_analytic(&circuit, 0.5);
        let delays: Vec<f64> = (0..circuit.node_count())
            .map(|i| (5 + (i * 7) % 20) as f64 * 1e-12)
            .collect();
        let grid = vec![0.0, 10e-12, 20e-12, 40e-12, 80e-12, 320e-12, 1280e-12, 2560e-12];
        let model = AttenuationModel::PaperEq1;
        let want = reference_expected_widths(&circuit, &probs, &pij, &delays, &grid, model);
        let got = ExpectedWidths::compute_with_model(
            &circuit,
            &probs,
            &pij,
            &delays,
            grid.clone(),
            model,
        );
        let n_pos = circuit.primary_outputs().len();
        let k_n = grid.len();
        for id in circuit.node_ids() {
            for j in 0..n_pos {
                for k in 0..k_n {
                    let w = want[(id.index() * k_n + k) * n_pos + j];
                    let g = got.at_sample(id, j, k);
                    prop_assert!(
                        (g - w).abs() <= 1e-15,
                        "node {} col {} k {}: {:e} vs {:e}",
                        id, j, k, g, w
                    );
                }
            }
        }
    }
}
