//! Property-based validation of the estimator modes added with the
//! vectorized P_ij kernels, on random small-support layered circuits
//! (≤ 8 primary inputs, so every cone's support is enumerable and a
//! brute-force truth table fits in one word):
//!
//! * the exact small-cone enumerator agrees with the fixed-budget
//!   sampled estimator within the sampling noise the fixed run itself
//!   carries — and nails the brute-force ground truth exactly wherever
//!   it qualifies;
//! * adaptive early-exit never increases the estimate's error over the
//!   fixed-budget run on the same seed beyond the advertised stop
//!   tolerance: rows that ran to the full budget are bitwise identical
//!   to the fixed run, rows that stopped early stay within the
//!   convergence half-width they stopped at.

use proptest::prelude::*;
use soft_error::logicsim::sensitize::{sensitization_probabilities_cfg, PijConfig};
use soft_error::netlist::generate::{layered, LayeredSpec};
use soft_error::netlist::{Circuit, GateKind};

/// Random circuits small enough to brute-force: 2–8 inputs.
fn small_support_circuit() -> impl Strategy<Value = Circuit> {
    (2usize..9, 1usize..4, 8usize..50, 0u64..5000).prop_map(|(pi, po, gates, seed)| {
        let mut spec = LayeredSpec::new("prop", pi, po, gates.max(po));
        spec.seed = seed;
        layered(&spec)
    })
}

/// Scalar packed gate evaluation — an independent in-test reference,
/// not the production kernel.
fn ref_gate(kind: GateKind, pins: &[u64]) -> u64 {
    match kind {
        GateKind::Input => unreachable!("inputs carry no function"),
        GateKind::And => pins.iter().fold(!0u64, |acc, &w| acc & w),
        GateKind::Nand => !pins.iter().fold(!0u64, |acc, &w| acc & w),
        GateKind::Or => pins.iter().fold(0u64, |acc, &w| acc | w),
        GateKind::Nor => !pins.iter().fold(0u64, |acc, &w| acc | w),
        GateKind::Xor => pins.iter().fold(0u64, |acc, &w| acc ^ w),
        GateKind::Xnor => !pins.iter().fold(0u64, |acc, &w| acc ^ w),
        GateKind::Not => !pins[0],
        GateKind::Buf => pins[0],
    }
}

/// Brute-force `P_ij` ground truth: every one of the `2^n_pi ≤ 256`
/// input assignments is evaluated (packed 64 per word) fault-free and
/// once per struck node, counting PO diffs exactly.
fn exhaustive_pij(circuit: &Circuit) -> Vec<f64> {
    let n_pi = circuit.primary_inputs().len();
    assert!(n_pi <= 8, "truth table must stay enumerable");
    let outputs = circuit.primary_outputs().to_vec();
    let n_pos = outputs.len();
    let n_nodes = circuit.node_count();
    let total = 1u64 << n_pi;
    let n_words = total.div_ceil(64) as usize;
    let mask = if total >= 64 {
        !0u64
    } else {
        (1u64 << total) - 1
    };

    let eval = |flip: Option<usize>, w: usize| -> Vec<u64> {
        let mut vals = vec![0u64; n_nodes];
        for (t, pi) in circuit.primary_inputs().iter().enumerate() {
            let mut word = 0u64;
            for v in 0..64u64 {
                let assignment = (w as u64) * 64 + v;
                if (assignment >> t) & 1 == 1 {
                    word |= 1 << v;
                }
            }
            vals[pi.index()] = word;
        }
        for &id in circuit.topological_order() {
            let node = circuit.node(id);
            if !node.is_input() {
                let pins: Vec<u64> = node.fanin.iter().map(|f| vals[f.index()]).collect();
                vals[id.index()] = ref_gate(node.kind, &pins);
            }
            if flip == Some(id.index()) {
                vals[id.index()] = !vals[id.index()];
            }
        }
        vals
    };

    let mut counts = vec![0u64; n_nodes * n_pos];
    for w in 0..n_words {
        let base = eval(None, w);
        for i in 0..n_nodes {
            let faulty = eval(Some(i), w);
            for (j, &po) in outputs.iter().enumerate() {
                let diff = (faulty[po.index()] ^ base[po.index()]) & mask;
                counts[i * n_pos + j] += u64::from(diff.count_ones());
            }
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / total as f64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exact mode agrees with fixed-budget sampling within the sampling
    /// noise of the fixed run (the exact rows carry none of their own),
    /// and wherever the whole matrix came out exact it equals the
    /// brute-force truth table to the last bit of the division.
    #[test]
    fn exact_mode_agrees_with_sampling_and_truth(
        circuit in small_support_circuit(),
        seed in 0u64..1 << 40,
    ) {
        let n_vectors = 4096;
        let chunk = 16;
        let sampled = sensitization_probabilities_cfg(
            &circuit, n_vectors, seed, 1, chunk, &PijConfig::fixed(),
        );
        let exact_cfg = PijConfig { exact_support: 20, ..PijConfig::fixed() };
        let exact = sensitization_probabilities_cfg(
            &circuit, n_vectors, seed, 1, chunk, &exact_cfg,
        );
        let truth = exhaustive_pij(&circuit);
        let n_pos = circuit.primary_outputs().len();
        // 6.5σ over the fixed run's own binomial noise at n = 4096.
        let noise = 6.5 * (0.25 / n_vectors as f64).sqrt();
        for id in circuit.node_ids() {
            for j in 0..n_pos {
                let t = truth[id.index() * n_pos + j];
                prop_assert!(
                    (exact.p(id, j) - sampled.p(id, j)).abs() <= noise,
                    "node {} col {}: exact {} vs sampled {}",
                    id, j, exact.p(id, j), sampled.p(id, j)
                );
                prop_assert!(
                    (sampled.p(id, j) - t).abs() <= noise,
                    "node {} col {}: sampled {} vs truth {}",
                    id, j, sampled.p(id, j), t
                );
                // Exact rows are either bitwise-sampled (root did not
                // qualify) or dead on the truth value.
                let is_sampled_row = exact.p(id, j) == sampled.p(id, j)
                    && exact.observability(id) == sampled.observability(id);
                prop_assert!(
                    is_sampled_row || (exact.p(id, j) - t).abs() < 1e-12,
                    "node {} col {}: exact {} vs truth {}",
                    id, j, exact.p(id, j), t
                );
            }
        }
    }

    /// Adaptive early-exit never increases the error over the
    /// fixed-budget run on the same seed: every row is either bitwise
    /// equal to the fixed run (no early stop) or within the advertised
    /// convergence tolerance of the brute-force truth.
    #[test]
    fn adaptive_early_exit_never_increases_error(
        circuit in small_support_circuit(),
        seed in 0u64..1 << 40,
    ) {
        let n_vectors = 64 * 64 * 2; // two convergence blocks
        let chunk = 16;
        let tolerance = 0.1;
        let fixed = sensitization_probabilities_cfg(
            &circuit, n_vectors, seed, 1, chunk, &PijConfig::fixed(),
        );
        let adaptive_cfg = PijConfig { tolerance, ..PijConfig::fixed() };
        let adaptive = sensitization_probabilities_cfg(
            &circuit, n_vectors, seed, 1, chunk, &adaptive_cfg,
        );
        let truth = exhaustive_pij(&circuit);
        let n_pos = circuit.primary_outputs().len();
        // The convergence floor the estimator uses, with 3× slack over
        // its 95% half-width (the stop decision is taken on the union
        // counter; per-column probabilities are no larger).
        let floor = 1.96 * (0.25 / n_vectors as f64).sqrt();
        for id in circuit.node_ids() {
            let stopped_early = adaptive.row(id) != fixed.row(id)
                || adaptive.observability(id) != fixed.observability(id);
            let bound = (tolerance * adaptive.observability(id)).max(floor) * 3.0;
            for j in 0..n_pos {
                let t = truth[id.index() * n_pos + j];
                let err_adaptive = (adaptive.p(id, j) - t).abs();
                if stopped_early {
                    prop_assert!(
                        err_adaptive <= bound,
                        "node {} col {}: adaptive {} vs truth {} (bound {})",
                        id, j, adaptive.p(id, j), t, bound
                    );
                } else {
                    prop_assert_eq!(
                        adaptive.p(id, j), fixed.p(id, j),
                        "node {} col {}", id, j
                    );
                }
            }
        }
    }
}
