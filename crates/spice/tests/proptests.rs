//! Property-based tests of the device model, stimulus and measurements.

use proptest::prelude::*;
use ser_spice::measure::glitch_width;
use ser_spice::{Mosfet, Polarity, Strike, Technology, Waveform};

fn arb_device() -> impl Strategy<Value = Mosfet> {
    (0.05f64..2.0, 70.0f64..300.0, 0.05f64..0.4)
        .prop_map(|(w, l, vth)| Mosfet::new(Polarity::Nmos, w, l, vth))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drain current is non-negative and monotone in Vgs for any device
    /// in the parameter space SERTOPT explores.
    #[test]
    fn current_monotone_in_vgs(d in arb_device(), vds in 0.05f64..1.3) {
        let tech = Technology::ptm70();
        let mut last = -1.0;
        for step in 0..=26 {
            let vgs = step as f64 * 0.05;
            let i = d.current(&tech, vgs, vds);
            prop_assert!(i >= 0.0);
            prop_assert!(i >= last - 1e-18, "vgs={vgs}: {i:e} < {last:e}");
            last = i;
        }
    }

    /// …and monotone in Vds.
    #[test]
    fn current_monotone_in_vds(d in arb_device(), vgs in 0.0f64..1.3) {
        let tech = Technology::ptm70();
        let mut last = -1.0;
        for step in 0..=26 {
            let vds = step as f64 * 0.05;
            let i = d.current(&tech, vgs, vds);
            prop_assert!(i >= last - 1e-18, "vds={vds}");
            last = i;
        }
    }

    /// Wider and shorter-channel devices drive at least as hard.
    #[test]
    fn drive_scales_with_geometry(
        w in 0.05f64..1.0,
        l in 70.0f64..250.0,
        vth in 0.1f64..0.3,
    ) {
        let tech = Technology::ptm70();
        let base = Mosfet::new(Polarity::Nmos, w, l, vth);
        let wider = Mosfet::new(Polarity::Nmos, w * 2.0, l, vth);
        let shorter = Mosfet::new(Polarity::Nmos, w, l / 1.5, vth);
        let i0 = base.current(&tech, 1.0, 1.0);
        prop_assert!(wider.current(&tech, 1.0, 1.0) > i0);
        prop_assert!(shorter.current(&tech, 1.0, 1.0) > i0);
    }

    /// The strike pulse always integrates to its charge (3% numerical
    /// tolerance at a coarse 0.2 ps step).
    #[test]
    fn strike_conserves_charge(
        q_fc in 1.0f64..100.0,
        tau_r in 1.0e-12f64..20.0e-12,
        extra in 5.0e-12f64..200.0e-12,
    ) {
        let s = Strike::new(q_fc * 1e-15, tau_r, tau_r + extra);
        let dt = 0.2e-12;
        let mut t = 0.0;
        let mut acc = 0.0;
        // Integrate far past the default horizon for slow pulses.
        let end = 12.0 * (tau_r + extra);
        while t < end {
            acc += s.current_at(t) * dt;
            t += dt;
        }
        prop_assert!((acc - s.charge()).abs() / s.charge() < 0.03, "{acc:e}");
    }

    /// Interpolated waveform values never escape the sample range.
    #[test]
    fn waveform_interpolation_is_bounded(
        samples in proptest::collection::vec(-0.5f64..1.7, 2..40),
        t in -1.0f64..50.0,
    ) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let w = Waveform::from_samples(0.0, 1.0, samples);
        let v = w.value_at(t);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// Glitch width never exceeds the observed window.
    #[test]
    fn glitch_width_bounded_by_window(
        samples in proptest::collection::vec(0.0f64..1.0, 2..60),
    ) {
        let n = samples.len();
        let w = Waveform::from_samples(0.0, 1.0, samples);
        let width = glitch_width(&w, 0.0, 1.0);
        prop_assert!(width >= 0.0);
        prop_assert!(width <= (n - 1) as f64 + 1e-9);
    }
}
