//! Transient simulation: RK4 integration of gate output nodes, plus the
//! single-gate experiment drivers used for characterization (delay, glitch
//! generation, glitch propagation).

use crate::error::TransientError;
use crate::gate_model::{GateElectrical, Stage};
use crate::measure;
use crate::strike::Strike;
use crate::tech::Technology;
use crate::units::{NS, PS};
use crate::waveform::{ramp, trapezoid_glitch, Waveform};

/// Step-halving levels tried before a non-finite RK4 step is reported as
/// [`TransientError::NonConvergence`]: the failing step is re-integrated
/// with 2, 4, … up to 2⁶ substeps.
pub const MAX_STEP_HALVINGS: u32 = 6;

/// Integration settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Fixed RK4 step, seconds. The fastest node time constants in the
    /// ptm70 set are ≈1–2 ps, so the 0.25 ps default is comfortably
    /// stable.
    pub dt: f64,
    /// Hard simulation horizon, seconds.
    pub max_window: f64,
    /// Early-stop: simulation ends once input and output have been still
    /// (|Δv| below this, volts) for 64 consecutive steps.
    pub settle_band: f64,
}

impl Default for TransientConfig {
    fn default() -> Self {
        TransientConfig {
            dt: 0.25 * PS,
            max_window: 3.0 * NS,
            settle_band: 1e-5,
        }
    }
}

/// Integrates one stage's output node:
/// `dv/dt = (I_stage(vin, v) + I_inj) / (C_self + c_ext)`.
///
/// `strike` is `(pulse, sign, onset)`: `sign=+1` injects (pulls the node
/// up), `sign=−1` removes charge. Voltages are clamped to
/// `[−0.5, vdd+0.5]` (diode clamps abstracted).
pub fn simulate_stage(
    tech: &Technology,
    stage: &Stage,
    vin: &dyn Fn(f64) -> f64,
    c_ext: f64,
    strike: Option<(&Strike, f64, f64)>,
    v0: f64,
    cfg: &TransientConfig,
) -> Waveform {
    match try_simulate_stage(tech, stage, vin, c_ext, strike, v0, cfg) {
        Ok(w) => w,
        Err(e) => panic!("{e}"),
    }
}

/// One (possibly clamped) RK4 step of size `h` from `(t, v)`.
#[inline]
fn rk4_step(f: &dyn Fn(f64, f64) -> f64, t: f64, v: f64, h: f64, lo: f64, hi: f64) -> f64 {
    let k1 = f(t, v);
    let k2 = f(t + 0.5 * h, v + 0.5 * h * k1);
    let k3 = f(t + 0.5 * h, v + 0.5 * h * k2);
    let k4 = f(t + h, v + h * k3);
    (v + h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4)).clamp(lo, hi)
}

/// Re-integrates the failing step `[t, t+h]` with 2, 4, … up to
/// 2^[`MAX_STEP_HALVINGS`] substeps; returns NaN when every refinement
/// level still diverges.
fn refine_step(f: &dyn Fn(f64, f64) -> f64, t: f64, v: f64, h: f64, lo: f64, hi: f64) -> f64 {
    let mut parts = 2u32;
    for _ in 0..MAX_STEP_HALVINGS {
        let hs = h / f64::from(parts);
        let mut vv = v;
        let mut diverged = false;
        for k in 0..parts {
            vv = rk4_step(f, t + f64::from(k) * hs, vv, hs, lo, hi);
            ser_netlist::failpoint!("spice::transient_step", vv = f64::NAN);
            if !vv.is_finite() {
                diverged = true;
                break;
            }
        }
        if !diverged {
            return vv;
        }
        parts *= 2;
    }
    f64::NAN
}

/// Fallible form of [`simulate_stage`]: validates the configuration with
/// typed [`TransientError::BadConfig`] errors, and recovers a non-finite
/// RK4 step by bounded step-halving (up to [`MAX_STEP_HALVINGS`] levels)
/// before reporting [`TransientError::NonConvergence`].
pub fn try_simulate_stage(
    tech: &Technology,
    stage: &Stage,
    vin: &dyn Fn(f64) -> f64,
    c_ext: f64,
    strike: Option<(&Strike, f64, f64)>,
    v0: f64,
    cfg: &TransientConfig,
) -> Result<Waveform, TransientError> {
    if !(cfg.dt > 0.0 && cfg.dt.is_finite()) {
        return Err(TransientError::BadConfig {
            reason: "time step must be positive and finite",
        });
    }
    if !(cfg.max_window > 0.0 && cfg.max_window.is_finite()) {
        return Err(TransientError::BadConfig {
            reason: "simulation window must be positive and finite",
        });
    }
    if !(c_ext >= 0.0 && c_ext.is_finite()) {
        return Err(TransientError::BadConfig {
            reason: "external load cannot be negative",
        });
    }
    let c_total = stage.c_self + c_ext;
    if !(c_total > 0.0 && c_total.is_finite()) {
        return Err(TransientError::BadConfig {
            reason: "node needs some capacitance",
        });
    }
    if !v0.is_finite() {
        return Err(TransientError::BadConfig {
            reason: "initial node voltage must be finite",
        });
    }

    let inj = |t: f64| -> f64 {
        match strike {
            Some((s, sign, onset)) => sign * s.current_at(t - onset),
            None => 0.0,
        }
    };
    let f =
        |t: f64, v: f64| -> f64 { (stage.current_into_output(tech, vin(t), v) + inj(t)) / c_total };

    let n_max = (cfg.max_window / cfg.dt).ceil() as usize;
    let mut samples = Vec::with_capacity(n_max.min(1 << 16));
    let mut v = v0;
    samples.push(v);
    let mut still = 0usize;
    let lo = -0.5;
    let hi = stage.vdd + 0.5;

    // The input is an arbitrary closure, so "input has settled" cannot be
    // inferred from a local window (a glitch's flat top looks settled).
    // Scan it once for its last activity instead.
    let scan_step = 4.0 * cfg.dt;
    let mut last_activity = 0.0f64;
    let mut t_scan = 0.0;
    let mut prev = vin(0.0);
    while t_scan < cfg.max_window {
        t_scan += scan_step;
        let cur = vin(t_scan);
        if (cur - prev).abs() > cfg.settle_band {
            last_activity = t_scan;
        }
        prev = cur;
    }
    // Strikes may start later than input activity; don't stop before the
    // pulse has fully happened.
    let t_floor = match strike {
        Some((s, _, onset)) => (onset + s.horizon()).max(last_activity),
        None => (20.0 * PS).max(last_activity),
    };

    for i in 0..n_max {
        let t = i as f64 * cfg.dt;
        let h = cfg.dt;
        let mut v_next = rk4_step(&f, t, v, h, lo, hi);
        ser_netlist::failpoint!("spice::transient_step", v_next = f64::NAN);
        if !v_next.is_finite() {
            // A diverging step on a stiff node: retry the same interval
            // with progressively halved substeps before giving up.
            v_next = refine_step(&f, t, v, h, lo, hi);
            if !v_next.is_finite() {
                return Err(TransientError::NonConvergence {
                    time: t,
                    step: h,
                    halvings: MAX_STEP_HALVINGS,
                });
            }
        }

        let output_still = (v_next - v).abs() < cfg.settle_band;
        v = v_next;
        samples.push(v);
        if output_still && t > t_floor {
            still += 1;
            if still >= 64 {
                break;
            }
        } else {
            still = 0;
        }
    }
    Ok(Waveform::from_samples(0.0, cfg.dt, samples))
}

/// DC rail for a stage given a static input: high output for input below
/// mid-rail, low otherwise (single-stage cells invert).
fn dc_output(stage: &Stage, vin: f64) -> f64 {
    if vin < stage.vdd * 0.5 {
        stage.vdd
    } else {
        0.0
    }
}

/// Response of a whole cell (one or two stages) to an input waveform on
/// its switching pin; returns the final-output waveform.
///
/// Side pins are assumed non-controlling (the sensitized case); callers
/// model a logically non-inverting path through an inverting cell by
/// pre-inverting the input (`invert_input`).
pub fn simulate_gate(
    tech: &Technology,
    gate: &GateElectrical,
    vin: &dyn Fn(f64) -> f64,
    invert_input: bool,
    c_load: f64,
    cfg: &TransientConfig,
) -> Waveform {
    match try_simulate_gate(tech, gate, vin, invert_input, c_load, cfg) {
        Ok(w) => w,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`simulate_gate`] (see [`try_simulate_stage`]).
pub fn try_simulate_gate(
    tech: &Technology,
    gate: &GateElectrical,
    vin: &dyn Fn(f64) -> f64,
    invert_input: bool,
    c_load: f64,
    cfg: &TransientConfig,
) -> Result<Waveform, TransientError> {
    let vdd = gate.params().vdd;
    let stages = gate.stages();
    let first_in: Box<dyn Fn(f64) -> f64> = if invert_input {
        let f = move |t: f64| vdd - vin(t);
        Box::new(f)
    } else {
        Box::new(move |t: f64| vin(t))
    };

    if stages.len() == 1 {
        let v0 = dc_output(&stages[0], first_in(0.0));
        return try_simulate_stage(tech, &stages[0], &*first_in, c_load, None, v0, cfg);
    }

    let inter_cap = gate.interstage_cap(tech);
    let v0_1 = dc_output(&stages[0], first_in(0.0));
    let w1 = try_simulate_stage(tech, &stages[0], &*first_in, inter_cap, None, v0_1, cfg)?;
    let v0_2 = dc_output(&stages[1], w1.value_at(0.0));
    let w1_fn = move |t: f64| w1.value_at(t);
    try_simulate_stage(tech, &stages[1], &w1_fn, c_load, None, v0_2, cfg)
}

/// Simulates a particle strike at the cell's **output** node while its
/// input is static, returning the output waveform.
///
/// `output_high` selects the struck node's logic state; charge is removed
/// from a high node and injected into a low one (the only two cases that
/// produce a glitch, per the paper).
pub fn simulate_strike(
    tech: &Technology,
    gate: &GateElectrical,
    output_high: bool,
    c_load: f64,
    strike: &Strike,
    cfg: &TransientConfig,
) -> Waveform {
    match try_simulate_strike(tech, gate, output_high, c_load, strike, cfg) {
        Ok(w) => w,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`simulate_strike`] (see [`try_simulate_stage`]).
pub fn try_simulate_strike(
    tech: &Technology,
    gate: &GateElectrical,
    output_high: bool,
    c_load: f64,
    strike: &Strike,
    cfg: &TransientConfig,
) -> Result<Waveform, TransientError> {
    let Some(out_stage) = gate.stages().last() else {
        return Err(TransientError::BadConfig {
            reason: "cell has no stages",
        });
    };
    let vdd = out_stage.vdd;
    // Static input of the output stage that produces the requested state.
    let vin_static = if output_high { 0.0 } else { vdd };
    let v0 = if output_high { vdd } else { 0.0 };
    let sign = if output_high { -1.0 } else { 1.0 };
    let onset = 10.0 * PS;
    let vin = move |_t: f64| vin_static;
    try_simulate_stage(
        tech,
        out_stage,
        &vin,
        c_load,
        Some((strike, sign, onset)),
        v0,
        cfg,
    )
}

/// A measured delay point: propagation delay and output transition time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayMeasurement {
    /// 50%-to-50% propagation delay, seconds.
    pub tpd: f64,
    /// Output transition (slew) time, 20–80% scaled to full swing,
    /// seconds.
    pub out_transition: f64,
}

/// Characterizes propagation delay for a rail-to-rail input ramp of the
/// given transition time, averaged over rising and falling inputs.
///
/// Returns `None` if the output never completes a transition inside the
/// window (pathologically slow cells into huge loads).
pub fn gate_delay(
    tech: &Technology,
    gate: &GateElectrical,
    c_load: f64,
    input_ramp: f64,
    cfg: &TransientConfig,
) -> Option<DelayMeasurement> {
    let vdd = gate.params().vdd;
    let t_start = 20.0 * PS;
    let mut tpds = Vec::with_capacity(2);
    let mut slews = Vec::with_capacity(2);
    for rising in [true, false] {
        let (v_from, v_to) = if rising { (0.0, vdd) } else { (vdd, 0.0) };
        let vin = ramp(v_from, v_to, t_start, input_ramp.max(1.0 * PS));
        let out = simulate_gate(tech, gate, &vin, false, c_load, cfg);
        let t_in_50 = t_start + 0.5 * input_ramp.max(1.0 * PS);
        let t_out_50 = measure::main_crossing(&out, vdd * 0.5, t_in_50)?;
        tpds.push(t_out_50 - t_in_50);
        slews.push(measure::transition_time(&out, vdd)?);
    }
    Some(DelayMeasurement {
        tpd: 0.5 * (tpds[0] + tpds[1]),
        out_transition: 0.5 * (slews[0] + slews[1]),
    })
}

/// Characterizes the width of the glitch a strike of `strike` generates at
/// the cell output into `c_load`, for the given struck state. Width is
/// time spent beyond mid-rail, seconds (0 when the glitch never reaches
/// mid-rail).
pub fn generated_glitch_width(
    tech: &Technology,
    gate: &GateElectrical,
    output_high: bool,
    c_load: f64,
    strike: &Strike,
    cfg: &TransientConfig,
) -> f64 {
    let vdd = gate.params().vdd;
    let out = simulate_strike(tech, gate, output_high, c_load, strike, cfg);
    let nominal = if output_high { vdd } else { 0.0 };
    measure::glitch_width(&out, nominal, vdd)
}

/// Characterizes the width of the output glitch when a glitch of
/// `input_width_50` (width at 50% amplitude) arrives at a sensitized
/// input — the paper's electrical-masking primitive (its Eq. 1 is the
/// analytic approximation of this experiment).
pub fn propagated_glitch_width(
    tech: &Technology,
    gate: &GateElectrical,
    input_width_50: f64,
    input_edge: f64,
    c_load: f64,
    cfg: &TransientConfig,
) -> f64 {
    let vdd = gate.params().vdd;
    if input_width_50 <= 0.0 {
        return 0.0;
    }
    let vin = trapezoid_glitch(0.0, vdd, 20.0 * PS, input_width_50, input_edge);
    let out = simulate_gate(tech, gate, &vin, false, c_load, cfg);
    // Input base low → (final) output nominal is its DC response to low.
    let nominal = out.value_at(0.0);
    measure::glitch_width(&out, nominal, vdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate_model::GateParams;
    use crate::units::FF;
    use ser_netlist::GateKind;

    fn tech() -> Technology {
        Technology::ptm70()
    }

    fn inv(size: f64) -> GateElectrical {
        GateElectrical::from_params(&tech(), &GateParams::new(GateKind::Not, 1).with_size(size))
    }

    #[test]
    fn inverter_inverts_a_step() {
        let t = tech();
        let g = inv(1.0);
        let vin = ramp(0.0, 1.0, 20.0 * PS, 10.0 * PS);
        let out = simulate_gate(&t, &g, &vin, false, 2.0 * FF, &TransientConfig::default());
        assert!(out.value_at(0.0) > 0.9, "starts high");
        assert!(out.value_at(out.t_end()) < 0.1, "ends low");
    }

    #[test]
    fn buffer_preserves_polarity() {
        let t = tech();
        let g = GateElectrical::from_params(&t, &GateParams::new(GateKind::Buf, 1));
        let vin = ramp(0.0, 1.0, 20.0 * PS, 10.0 * PS);
        let out = simulate_gate(&t, &g, &vin, false, 2.0 * FF, &TransientConfig::default());
        assert!(out.value_at(0.0) < 0.1);
        assert!(out.value_at(out.t_end()) > 0.9);
    }

    #[test]
    fn delay_is_70nm_scale() {
        let t = tech();
        let g = inv(1.0);
        let d = gate_delay(&t, &g, 1.0 * FF, 20.0 * PS, &TransientConfig::default()).unwrap();
        assert!(
            d.tpd > 1.0 * PS && d.tpd < 100.0 * PS,
            "tpd = {:.1} ps",
            d.tpd / PS
        );
        assert!(d.out_transition > 0.0);
    }

    #[test]
    fn delay_grows_with_load() {
        let t = tech();
        let g = inv(1.0);
        let cfg = TransientConfig::default();
        let d1 = gate_delay(&t, &g, 1.0 * FF, 20.0 * PS, &cfg).unwrap().tpd;
        let d4 = gate_delay(&t, &g, 4.0 * FF, 20.0 * PS, &cfg).unwrap().tpd;
        assert!(d4 > 2.0 * d1, "{} vs {}", d4 / PS, d1 / PS);
    }

    #[test]
    fn delay_shrinks_with_size() {
        let t = tech();
        let cfg = TransientConfig::default();
        let d1 = gate_delay(&t, &inv(1.0), 4.0 * FF, 20.0 * PS, &cfg)
            .unwrap()
            .tpd;
        let d4 = gate_delay(&t, &inv(4.0), 4.0 * FF, 20.0 * PS, &cfg)
            .unwrap()
            .tpd;
        assert!(d4 < d1 / 2.0, "{} vs {}", d4 / PS, d1 / PS);
    }

    #[test]
    fn strike_on_low_node_glitches_up() {
        let t = tech();
        let g = inv(1.0);
        let out = simulate_strike(
            &t,
            &g,
            false,
            2.0 * FF,
            &Strike::charge_fc(16.0),
            &TransientConfig::default(),
        );
        assert!(out.max_excursion_from(0.0) > 0.5, "visible glitch");
        // Node recovers.
        assert!(out.value_at(out.t_end()) < 0.05);
    }

    #[test]
    fn strike_on_high_node_glitches_down() {
        let t = tech();
        let g = inv(1.0);
        let out = simulate_strike(
            &t,
            &g,
            true,
            2.0 * FF,
            &Strike::charge_fc(16.0),
            &TransientConfig::default(),
        );
        assert!(out.max_excursion_from(1.0) > 0.5);
        assert!(out.value_at(out.t_end()) > 0.95);
    }

    #[test]
    fn bigger_gate_generates_narrower_glitch() {
        // Fig. 1's headline trend; a strong enough gate kills the glitch
        // entirely (width 0), which is physical.
        let t = tech();
        let cfg = TransientConfig::default();
        let s = Strike::charge_fc(16.0);
        let w1 = generated_glitch_width(&t, &inv(1.0), false, 2.0 * FF, &s, &cfg);
        let w2 = generated_glitch_width(&t, &inv(2.0), false, 2.0 * FF, &s, &cfg);
        let w8 = generated_glitch_width(&t, &inv(8.0), false, 2.0 * FF, &s, &cfg);
        assert!(w1 > w2 && w2 > 0.0, "{} vs {}", w1 / PS, w2 / PS);
        assert!(w8 < w2);
    }

    #[test]
    fn small_charge_on_strong_gate_makes_no_glitch() {
        let t = tech();
        let cfg = TransientConfig::default();
        let s = Strike::charge_fc(0.5);
        let w = generated_glitch_width(&t, &inv(8.0), false, 8.0 * FF, &s, &cfg);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn wide_glitch_passes_narrow_glitch_dies() {
        // Eq. 1's qualitative regimes.
        let t = tech();
        let cfg = TransientConfig::default();
        let g = inv(1.0);
        let wide = propagated_glitch_width(&t, &g, 200.0 * PS, 10.0 * PS, 2.0 * FF, &cfg);
        let narrow = propagated_glitch_width(&t, &g, 4.0 * PS, 2.0 * PS, 2.0 * FF, &cfg);
        assert!(wide > 150.0 * PS, "wide in ≈ wide out, got {}", wide / PS);
        assert_eq!(narrow, 0.0, "narrow glitch must be filtered");
    }

    #[test]
    fn two_stage_gate_attenuates_more() {
        let t = tech();
        let cfg = TransientConfig::default();
        let nand = GateElectrical::from_params(&t, &GateParams::new(GateKind::Nand, 2));
        let and = GateElectrical::from_params(&t, &GateParams::new(GateKind::And, 2));
        let w_in = 40.0 * PS;
        let w_nand = propagated_glitch_width(&t, &nand, w_in, 10.0 * PS, 2.0 * FF, &cfg);
        let w_and = propagated_glitch_width(&t, &and, w_in, 10.0 * PS, 2.0 * FF, &cfg);
        assert!(
            w_and <= w_nand + 2.0 * PS,
            "{} vs {}",
            w_and / PS,
            w_nand / PS
        );
    }

    #[test]
    fn bad_config_is_a_typed_error_not_a_panic() {
        let t = tech();
        let g = inv(1.0);
        let vin = ramp(0.0, 1.0, 20.0 * PS, 10.0 * PS);
        let cfg = TransientConfig {
            dt: 0.0,
            ..TransientConfig::default()
        };
        let err = try_simulate_gate(&t, &g, &vin, false, 2.0 * FF, &cfg).unwrap_err();
        assert!(matches!(err, TransientError::BadConfig { .. }));
        let cfg = TransientConfig {
            dt: f64::NAN,
            ..TransientConfig::default()
        };
        assert!(try_simulate_gate(&t, &g, &vin, false, 2.0 * FF, &cfg).is_err());
        assert!(try_simulate_gate(&t, &g, &vin, false, -FF, &TransientConfig::default()).is_err());
    }

    #[cfg(feature = "fail-points")]
    #[test]
    fn transient_fault_one_shot_recovers_persistent_does_not() {
        use ser_netlist::failpoint::{self, FailAction};
        let t = tech();
        let g = inv(1.0);
        let vin = ramp(0.0, 1.0, 20.0 * PS, 10.0 * PS);
        let cfg = TransientConfig::default();

        // One bad step: the step-halving retry re-integrates it cleanly.
        let _guard = failpoint::scenario();
        failpoint::set_times("spice::transient_step", FailAction::Error, 1);
        let out = try_simulate_gate(&t, &g, &vin, false, 2.0 * FF, &cfg)
            .expect("one transient bad step must be recovered by refinement");
        assert!(out.value_at(out.t_end()) < 0.1);
        assert_eq!(failpoint::hits("spice::transient_step"), 1);

        // Every step (including refinement substeps) bad: typed error.
        failpoint::set("spice::transient_step", FailAction::Error);
        let err = try_simulate_gate(&t, &g, &vin, false, 2.0 * FF, &cfg).unwrap_err();
        assert!(matches!(err, TransientError::NonConvergence { .. }));
    }

    #[test]
    fn charge_conservation_glitch_scales_with_q() {
        let t = tech();
        let cfg = TransientConfig::default();
        let g = inv(1.0);
        let w8 = generated_glitch_width(&t, &g, false, 2.0 * FF, &Strike::charge_fc(8.0), &cfg);
        let w16 = generated_glitch_width(&t, &g, false, 2.0 * FF, &Strike::charge_fc(16.0), &cfg);
        let w32 = generated_glitch_width(&t, &g, false, 2.0 * FF, &Strike::charge_fc(32.0), &cfg);
        assert!(w8 < w16 && w16 < w32);
    }
}
