//! Waveform measurements: threshold crossings, propagation delay,
//! transition times, glitch widths.

use crate::waveform::Waveform;

/// All level crossings of a waveform, as `(time, rising)` pairs with
/// linear interpolation between samples.
pub fn crossings(wf: &Waveform, level: f64) -> Vec<(f64, bool)> {
    let s = wf.samples();
    let dt = wf.dt();
    let t0 = wf.t0();
    let mut out = Vec::new();
    for i in 1..s.len() {
        let (a, b) = (s[i - 1], s[i]);
        let crossed_up = a < level && b >= level;
        let crossed_dn = a > level && b <= level;
        if crossed_up || crossed_dn {
            let frac = (level - a) / (b - a);
            out.push((t0 + dt * ((i - 1) as f64 + frac), crossed_up));
        }
    }
    out
}

/// The first crossing of `level` at or after `t_after`, if any — the
/// "main" output transition for delay measurement.
pub fn main_crossing(wf: &Waveform, level: f64, t_after: f64) -> Option<f64> {
    crossings(wf, level)
        .into_iter()
        .map(|(t, _)| t)
        .find(|&t| t >= t_after)
}

/// Output transition (slew) time: the 20%→80% interval around the main
/// rail-to-rail transition, scaled by 1/0.6 to full swing. `None` if the
/// waveform never completes a transition.
pub fn transition_time(wf: &Waveform, vdd: f64) -> Option<f64> {
    let lo = 0.2 * vdd;
    let hi = 0.8 * vdd;
    let c_lo = crossings(wf, lo);
    let c_hi = crossings(wf, hi);
    if c_lo.is_empty() || c_hi.is_empty() {
        return None;
    }
    // Take the pair bracketing the 50% main crossing.
    let mid = main_crossing(wf, 0.5 * vdd, wf.t0())?;
    let t_lo = nearest(&c_lo, mid)?;
    let t_hi = nearest(&c_hi, mid)?;
    Some((t_hi - t_lo).abs() / 0.6)
}

fn nearest(crossings: &[(f64, bool)], t: f64) -> Option<f64> {
    crossings.iter().map(|&(tc, _)| tc).min_by(|a, b| {
        (a - t)
            .abs()
            .partial_cmp(&(b - t).abs())
            .expect("crossing times are finite")
    })
}

/// Total time the waveform spends on the far side of mid-rail relative to
/// its nominal level — the paper's glitch-width measure. For a node
/// nominally low this is time above `vdd/2`; nominally high, time below.
///
/// A waveform that never reaches mid-rail has width 0; multiple excursions
/// accumulate (a single strike normally produces one).
pub fn glitch_width(wf: &Waveform, nominal: f64, vdd: f64) -> f64 {
    let level = 0.5 * vdd;
    let above = nominal < level; // measure time spent above the level
    let s = wf.samples();
    let dt = wf.dt();
    let beyond = |v: f64| if above { v > level } else { v < level };
    let mut width = 0.0;
    for i in 1..s.len() {
        let (a, b) = (s[i - 1], s[i]);
        match (beyond(a), beyond(b)) {
            (true, true) => width += dt,
            (false, false) => {}
            (false, true) => {
                let frac = (level - a) / (b - a);
                width += dt * (1.0 - frac);
            }
            (true, false) => {
                let frac = (level - a) / (b - a);
                width += dt * frac;
            }
        }
    }
    width
}

/// Pearson correlation coefficient between two equally-long series — the
/// paper's Fig. 3 figure of merit between ASERTA and SPICE unreliability.
///
/// Returns `None` for length mismatch, fewer than 2 points, or zero
/// variance in either series.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Waveform {
        // 0 → 1 → 0 over 4 steps of 1 s.
        Waveform::from_samples(0.0, 1.0, vec![0.0, 0.5, 1.0, 0.5, 0.0])
    }

    #[test]
    fn crossings_interpolate() {
        let c = crossings(&tri(), 0.25);
        assert_eq!(c.len(), 2);
        assert!((c[0].0 - 0.5).abs() < 1e-12);
        assert!(c[0].1);
        assert!((c[1].0 - 3.5).abs() < 1e-12);
        assert!(!c[1].1);
    }

    #[test]
    fn glitch_width_of_triangle() {
        // Above 0.5 from t=1 to t=3 → width 2 (the flat-top samples).
        let w = glitch_width(&tri(), 0.0, 1.0);
        assert!((w - 2.0).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn glitch_width_polarity() {
        let dip = tri().map(|v| 1.0 - v);
        let w = glitch_width(&dip, 1.0, 1.0);
        assert!((w - 2.0).abs() < 1e-12);
        // An excursion that stays on the nominal side never registers.
        let shallow = Waveform::from_samples(0.0, 1.0, vec![0.0, 0.4, 0.0]);
        assert_eq!(glitch_width(&shallow, 0.0, 1.0), 0.0);
    }

    #[test]
    fn no_crossing_means_zero_width() {
        let flat = Waveform::from_samples(0.0, 1.0, vec![0.1, 0.2, 0.1]);
        assert_eq!(glitch_width(&flat, 0.0, 1.0), 0.0);
    }

    #[test]
    fn main_crossing_respects_t_after() {
        let w = tri();
        assert!((main_crossing(&w, 0.5, 0.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((main_crossing(&w, 0.5, 2.0).unwrap() - 3.0).abs() < 1e-12);
        assert!(main_crossing(&w, 0.5, 10.0).is_none());
    }

    #[test]
    fn transition_time_of_linear_ramp() {
        let w = Waveform::sample(0.0, 0.01, 201, |t| t.clamp(0.0, 1.0));
        let tt = transition_time(&w, 1.0).unwrap();
        assert!((tt - 1.0).abs() < 0.05, "tt = {tt}");
    }

    #[test]
    fn correlation_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let yneg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&xs, &yneg).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson_correlation(&xs, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson_correlation(&xs, &ys[..3]).is_none());
    }
}
