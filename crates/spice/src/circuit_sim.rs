//! Whole-netlist particle-strike simulation by waveform propagation.
//!
//! This is the reproduction's stand-in for the paper's full-SPICE
//! reference runs ("applying 50 random input vectors, injecting charge at
//! every gate output, and using the width of the glitch at primary output
//! j"): a strike is injected at one gate output under one input vector,
//! and the resulting analog waveform is integrated gate-by-gate through
//! the struck fan-out cone with the full device model, measuring the
//! glitch width arriving at every primary output.
//!
//! Approximations versus a monolithic SPICE matrix solve, all documented
//! in DESIGN.md:
//!
//! * gates are their logical-effort equivalent stages (see
//!   [`GateElectrical`]);
//! * when reconvergent fan-out delivers glitches to several pins of one
//!   gate, the electrically dominant pin drives the response
//!   (single-dynamic-input approximation — strikes are single-node
//!   events, so this is rare and second-order);
//! * nodes whose excursion never approaches mid-rail are pruned (they
//!   cannot cross downstream thresholds).

use std::collections::HashMap;

use ser_netlist::{Circuit, NodeId};

use crate::gate_model::{GateElectrical, GateParams};
use crate::measure;
use crate::strike::Strike;
use crate::tech::Technology;
use crate::transient::{simulate_gate, simulate_stage, TransientConfig};
use crate::units::{FF, PS};
use crate::waveform::Waveform;

/// Configuration of a circuit-level strike experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSimConfig {
    /// Underlying transient integration settings.
    pub transient: TransientConfig,
    /// The injected pulse (the paper: 16 fC).
    pub strike: Strike,
    /// Additional wire capacitance per fan-out pin, farads.
    pub wire_cap_per_pin: f64,
    /// Latch input capacitance loading every primary output, farads.
    pub po_load: f64,
    /// Prune waveforms whose excursion stays below this fraction of the
    /// local VDD (they cannot cross a downstream threshold).
    pub prune_fraction: f64,
}

impl Default for CircuitSimConfig {
    fn default() -> Self {
        CircuitSimConfig {
            transient: TransientConfig::default(),
            strike: Strike::charge_fc(16.0),
            wire_cap_per_pin: 0.05 * FF,
            po_load: 2.0 * FF,
            prune_fraction: 0.25,
        }
    }
}

/// A circuit bound to per-gate electrical parameters: the object the
/// reference experiments (and SERTOPT's cost evaluation) run against.
#[derive(Debug, Clone)]
pub struct CircuitElectrical {
    params: Vec<Option<GateParams>>,
    gates: Vec<Option<GateElectrical>>,
    loads: Vec<f64>,
}

impl CircuitElectrical {
    /// Binds `circuit` to the parameters returned by `params_of` for every
    /// gate node. Loads are derived: successor pin capacitances plus wire
    /// capacitance, plus the latch load at primary outputs.
    pub fn new(
        tech: &Technology,
        circuit: &Circuit,
        cfg: &CircuitSimConfig,
        mut params_of: impl FnMut(NodeId) -> GateParams,
    ) -> Self {
        let n = circuit.node_count();
        let mut params: Vec<Option<GateParams>> = vec![None; n];
        let mut gates: Vec<Option<GateElectrical>> = vec![None; n];
        for id in circuit.gates() {
            let p = params_of(id);
            gates[id.index()] = Some(GateElectrical::from_params(tech, &p));
            params[id.index()] = Some(p);
        }
        let mut loads = vec![0.0f64; n];
        for id in circuit.node_ids() {
            let mut c = 0.0;
            for &s in circuit.fanout(id) {
                c += cfg.wire_cap_per_pin;
                c += gates[s.index()]
                    .as_ref()
                    .map(|g| g.input_capacitance())
                    .unwrap_or(0.0);
            }
            if circuit.is_primary_output(id) {
                c += cfg.po_load;
            }
            loads[id.index()] = c;
        }
        CircuitElectrical {
            params,
            gates,
            loads,
        }
    }

    /// Binds every gate to the same nominal parameters for its kind and
    /// fan-in (the pre-optimization baseline shape).
    pub fn nominal(tech: &Technology, circuit: &Circuit, cfg: &CircuitSimConfig) -> Self {
        CircuitElectrical::new(tech, circuit, cfg, |id| {
            let node = circuit.node(id);
            GateParams::new(node.kind, node.fanin.len())
        })
    }

    /// External load capacitance at a node's output, farads.
    #[inline]
    pub fn load_of(&self, id: NodeId) -> f64 {
        self.loads[id.index()]
    }

    /// The electrical cell of a gate node (`None` for primary inputs).
    #[inline]
    pub fn gate(&self, id: NodeId) -> Option<&GateElectrical> {
        self.gates[id.index()].as_ref()
    }

    /// The parameter record of a gate node (`None` for primary inputs).
    #[inline]
    pub fn params(&self, id: NodeId) -> Option<&GateParams> {
        self.params[id.index()].as_ref()
    }
}

/// Evaluates the static logic value of every node for a PI assignment
/// given in primary-input declaration order.
///
/// # Panics
///
/// Panics if `pi_values` does not match the primary-input count.
pub fn static_values(circuit: &Circuit, pi_values: &[bool]) -> Vec<bool> {
    assert_eq!(
        pi_values.len(),
        circuit.primary_inputs().len(),
        "one value per primary input"
    );
    let mut value = vec![false; circuit.node_count()];
    for (i, &pi) in circuit.primary_inputs().iter().enumerate() {
        value[pi.index()] = pi_values[i];
    }
    let mut pins = Vec::new();
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        if node.is_input() {
            continue;
        }
        pins.clear();
        pins.extend(node.fanin.iter().map(|f| value[f.index()]));
        value[id.index()] = node.kind.eval(&pins);
    }
    value
}

/// Result of one strike experiment: analog glitch width reaching each
/// primary output, seconds (0 when nothing arrives).
pub type PoWidths = Vec<(NodeId, f64)>;

/// Injects the configured strike at `struck`'s output under the given
/// static input vector and propagates waveforms through the fan-out cone.
///
/// # Panics
///
/// Panics if `struck` is a primary input (the paper — and any flop-driven
/// circuit — strikes gate outputs).
pub fn strike_po_widths(
    tech: &Technology,
    circuit: &Circuit,
    elec: &CircuitElectrical,
    statics: &[bool],
    struck: NodeId,
    cfg: &CircuitSimConfig,
) -> PoWidths {
    let struck_gate = elec
        .gate(struck)
        .expect("strikes are injected at gate outputs, not primary inputs");

    // Seed: struck node's waveform.
    let out_high = statics[struck.index()];
    let seed = {
        let stage = *struck_gate.stages().last().expect("cells have stages");
        let vdd = stage.vdd;
        let vin_static = if out_high { 0.0 } else { vdd };
        let v0 = if out_high { vdd } else { 0.0 };
        let sign = if out_high { -1.0 } else { 1.0 };
        let vin = move |_t: f64| vin_static;
        simulate_stage(
            tech,
            &stage,
            &vin,
            elec.load_of(struck),
            Some((&cfg.strike, sign, 10.0 * PS)),
            v0,
            &cfg.transient,
        )
    };

    let mut waves: HashMap<NodeId, Waveform> = HashMap::new();
    let struck_vdd = struck_gate.params().vdd;
    if seed.max_excursion_from(rail(out_high, struck_vdd)) >= cfg.prune_fraction * struck_vdd {
        waves.insert(struck, seed);
    }

    if !waves.is_empty() {
        // Walk the cone in topological order.
        let mask = ser_netlist::cone::fanout_cone_mask(circuit, struck);
        for &id in circuit.topological_order() {
            if id == struck || !mask[id.index()] {
                continue;
            }
            let Some(gate) = elec.gate(id) else { continue };
            let node = circuit.node(id);

            // Dominant dynamic pin: largest excursion from its nominal.
            let mut best: Option<(usize, f64)> = None;
            for (pin, &f) in node.fanin.iter().enumerate() {
                if let Some(w) = waves.get(&f) {
                    let pred_vdd = elec.params(f).map(|p| p.vdd).unwrap_or(tech.vdd_nominal);
                    let exc = w.max_excursion_from(rail(statics[f.index()], pred_vdd));
                    if best.map(|(_, e)| exc > e).unwrap_or(true) {
                        best = Some((pin, exc));
                    }
                }
            }
            let Some((dyn_pin, _)) = best else { continue };

            // Logic sensitization: does flipping the dynamic pin flip the
            // output, with every other pin at its static value?
            let mut pins: Vec<bool> = node.fanin.iter().map(|f| statics[f.index()]).collect();
            let out_static = node.kind.eval(&pins);
            pins[dyn_pin] = !pins[dyn_pin];
            let out_flipped = node.kind.eval(&pins);
            if out_flipped == out_static {
                continue; // logically masked here
            }

            let v_in_nominal = statics[node.fanin[dyn_pin].index()];
            let path_inverting = v_in_nominal != out_static;
            let invert_input = path_inverting != gate.is_inverting_cell();

            let input_wave = waves[&node.fanin[dyn_pin]].clone();
            let vin = move |t: f64| input_wave.value_at(t);
            let out = simulate_gate(
                tech,
                gate,
                &vin,
                invert_input,
                elec.load_of(id),
                &cfg.transient,
            );
            let vdd = gate.params().vdd;
            if out.max_excursion_from(rail(out_static, vdd)) >= cfg.prune_fraction * vdd {
                waves.insert(id, out);
            }
        }
    }

    circuit
        .primary_outputs()
        .iter()
        .map(|&po| {
            let width = match (waves.get(&po), elec.params(po)) {
                (Some(w), Some(p)) => {
                    measure::glitch_width(w, rail(statics[po.index()], p.vdd), p.vdd)
                }
                _ => 0.0,
            };
            (po, width)
        })
        .collect()
}

#[inline]
fn rail(high: bool, vdd: f64) -> f64 {
    if high {
        vdd
    } else {
        0.0
    }
}

/// The paper's SPICE-reference unreliability estimate: for each gate `i`,
/// `U_i = Z_i · mean over vectors ( Σ_j W_ij )`, with `W_ij` the measured
/// analog glitch width at PO `j` for a strike at `i` (Eq. 3 with sampled
/// logical masking). Returns one value per node (0 for primary inputs).
pub fn reference_unreliability(
    tech: &Technology,
    circuit: &Circuit,
    elec: &CircuitElectrical,
    vectors: &[Vec<bool>],
    cfg: &CircuitSimConfig,
) -> Vec<f64> {
    assert!(!vectors.is_empty(), "need at least one input vector");
    let mut u = vec![0.0f64; circuit.node_count()];
    for vector in vectors {
        let statics = static_values(circuit, vector);
        for id in circuit.gates() {
            let widths = strike_po_widths(tech, circuit, elec, &statics, id, cfg);
            let sum: f64 = widths.iter().map(|&(_, w)| w).sum();
            u[id.index()] += sum;
        }
    }
    let n = vectors.len() as f64;
    for id in circuit.gates() {
        let z = elec
            .params(id)
            .map(|p| p.size)
            .expect("gates carry parameters");
        u[id.index()] = z * u[id.index()] / n;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    fn tech() -> Technology {
        Technology::ptm70()
    }

    /// inv chain: a -> g1 -> g2(PO)
    fn chain() -> Circuit {
        let mut b = CircuitBuilder::new("chain2");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.mark_output(g2);
        b.finish().unwrap()
    }

    #[test]
    fn static_values_follow_logic() {
        let c = generate::c17();
        let v = static_values(&c, &[true, true, true, true, true]);
        // All-ones: 10 = NAND(1,3) = 0, 11 = 0, 16 = NAND(2,11) = 1,
        // 19 = NAND(11,7) = 1, 22 = NAND(10,16) = 1, 23 = NAND(16,19) = 0.
        assert!(!v[c.find("10").unwrap().index()]);
        assert!(v[c.find("22").unwrap().index()]);
        assert!(!v[c.find("23").unwrap().index()]);
    }

    #[test]
    fn strike_at_po_driver_reaches_po() {
        let t = tech();
        let c = chain();
        let cfg = CircuitSimConfig::default();
        let e = CircuitElectrical::nominal(&t, &c, &cfg);
        let statics = static_values(&c, &[false]);
        let g2 = c.find("g2").unwrap();
        let widths = strike_po_widths(&t, &c, &e, &statics, g2, &cfg);
        assert_eq!(widths.len(), 1);
        assert!(widths[0].1 > 10.0 * PS, "width {}", widths[0].1 / PS);
    }

    #[test]
    fn strike_upstream_is_attenuated_not_amplified_er_much() {
        let t = tech();
        let c = chain();
        let cfg = CircuitSimConfig::default();
        let e = CircuitElectrical::nominal(&t, &c, &cfg);
        let statics = static_values(&c, &[false]);
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        let w_at_g1 = strike_po_widths(&t, &c, &e, &statics, g1, &cfg)[0].1;
        let w_at_g2 = strike_po_widths(&t, &c, &e, &statics, g2, &cfg)[0].1;
        // Both visible; the one injected at the PO driver is at least
        // comparable (no inexplicable amplification upstream).
        assert!(w_at_g1 > 0.0 && w_at_g2 > 0.0);
        assert!(w_at_g1 < w_at_g2 * 2.0 + 50.0 * PS);
    }

    #[test]
    fn logical_masking_blocks_glitch() {
        // y = AND(g, b) with b = 0 → strike at g cannot reach y.
        let t = tech();
        let mut bb = CircuitBuilder::new("mask");
        let a = bb.input("a");
        let b2 = bb.input("b");
        let g = bb.gate(GateKind::Not, "g", &[a]).unwrap();
        let y = bb.gate(GateKind::And, "y", &[g, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let cfg = CircuitSimConfig::default();
        let e = CircuitElectrical::nominal(&t, &c, &cfg);

        let statics_masked = static_values(&c, &[false, false]);
        let gid = c.find("g").unwrap();
        let w = strike_po_widths(&t, &c, &e, &statics_masked, gid, &cfg)[0].1;
        assert_eq!(w, 0.0, "controlling 0 on the AND must mask");

        let statics_open = static_values(&c, &[false, true]);
        let w_open = strike_po_widths(&t, &c, &e, &statics_open, gid, &cfg)[0].1;
        assert!(w_open > 0.0, "non-controlling side must pass the glitch");
    }

    #[test]
    fn reference_unreliability_shape_on_c17() {
        let t = tech();
        let c = generate::c17();
        let cfg = CircuitSimConfig::default();
        let e = CircuitElectrical::nominal(&t, &c, &cfg);
        let vectors: Vec<Vec<bool>> = vec![
            vec![false, false, false, false, false],
            vec![true, true, true, true, true],
            vec![true, false, true, false, true],
        ];
        let u = reference_unreliability(&t, &c, &e, &vectors, &cfg);
        // PIs carry no unreliability.
        for &pi in c.primary_inputs() {
            assert_eq!(u[pi.index()], 0.0);
        }
        // At least the PO drivers must show nonzero unreliability: their
        // strikes reach a latch unfiltered.
        let po_sum: f64 = c.primary_outputs().iter().map(|po| u[po.index()]).sum();
        assert!(po_sum > 0.0);
    }
}
