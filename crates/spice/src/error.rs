//! Typed errors for the transient-simulation substrate.
//!
//! The crate keeps two error families: [`StrikeError`] for invalid strike
//! descriptions (untrusted, user-supplied parameters) and
//! [`TransientError`] for integration failures — bad configuration or a
//! numerically diverging RK4 step that survives bounded step-halving.

use std::fmt;

/// Invalid particle-strike parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StrikeError {
    /// Deposited charge must be positive and finite.
    NonPositiveCharge {
        /// The offending charge, coulombs.
        charge: f64,
    },
    /// Time constants must satisfy `0 < tau_rise < tau_fall` (finite).
    BadTimeConstants {
        /// The offending rise constant, seconds.
        tau_rise: f64,
        /// The offending fall constant, seconds.
        tau_fall: f64,
    },
}

impl fmt::Display for StrikeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrikeError::NonPositiveCharge { charge } => {
                write!(
                    f,
                    "strike charge must be positive and finite, got {charge:e}"
                )
            }
            StrikeError::BadTimeConstants { tau_rise, tau_fall } => write!(
                f,
                "need 0 < tau_rise < tau_fall, got tau_rise {tau_rise:e}, tau_fall {tau_fall:e}"
            ),
        }
    }
}

impl std::error::Error for StrikeError {}

/// Transient-simulation failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransientError {
    /// The integration setup is invalid (non-positive step, negative
    /// load, zero node capacitance, non-finite bounds, stageless cell).
    BadConfig {
        /// What was wrong.
        reason: &'static str,
    },
    /// An RK4 step produced a non-finite voltage and bounded step-halving
    /// retries could not recover it.
    NonConvergence {
        /// Simulation time of the failing step, seconds.
        time: f64,
        /// The (full) step size that failed, seconds.
        step: f64,
        /// Number of step-halving levels exhausted before giving up.
        halvings: u32,
    },
}

impl fmt::Display for TransientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransientError::BadConfig { reason } => {
                write!(f, "invalid transient configuration: {reason}")
            }
            TransientError::NonConvergence {
                time,
                step,
                halvings,
            } => write!(
                f,
                "transient integration diverged at t = {time:e} s \
                 (step {step:e} s, {halvings} halving levels exhausted)"
            ),
        }
    }
}

impl std::error::Error for TransientError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_mention_the_offending_quantity() {
        let e = StrikeError::BadTimeConstants {
            tau_rise: 5e-11,
            tau_fall: 5e-12,
        };
        assert!(e.to_string().contains("tau_rise"));
        let e = TransientError::NonConvergence {
            time: 1e-9,
            step: 2.5e-13,
            halvings: 6,
        };
        assert!(e.to_string().contains("diverged"));
    }
}
