use ser_netlist::GateKind;
use serde::{Deserialize, Serialize};

use crate::device::{Mosfet, Polarity};
use crate::tech::Technology;

/// The four per-gate knobs the paper's optimizer assigns, plus the gate's
/// logic identity.
///
/// * `size` — drive strength in multiples of the unit width (the paper:
///   "size of 1 means a gate width of 100 nm");
/// * `l_nm` — transistor channel length (70–300 nm in Table 1);
/// * `vdd` — supply voltage (0.8–1.2 V in Table 1);
/// * `vth` — threshold voltage (0.1–0.3 V in Table 1).
///
/// # Example
///
/// ```
/// use ser_spice::GateParams;
/// use ser_netlist::GateKind;
///
/// let p = GateParams::new(GateKind::Nand, 2).with_size(4.0).with_vdd(0.8);
/// assert_eq!(p.size, 4.0);
/// assert_eq!(p.vth, 0.2); // nominal unless overridden
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateParams {
    /// Logic function.
    pub kind: GateKind,
    /// Number of fan-in pins.
    pub fanin: usize,
    /// Drive strength in unit widths.
    pub size: f64,
    /// Channel length in nanometres.
    pub l_nm: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Threshold voltage in volts.
    pub vth: f64,
}

impl GateParams {
    /// Nominal 70 nm parameters (size 1, L 70 nm, VDD 1 V, Vth 0.2 V) —
    /// the paper's baseline operating point.
    ///
    /// # Panics
    ///
    /// Panics if `kind` cannot take `fanin` pins (e.g. a 2-input NOT) or
    /// is [`GateKind::Input`].
    pub fn new(kind: GateKind, fanin: usize) -> Self {
        assert!(!kind.is_input(), "primary inputs have no electrical cell");
        assert!(
            kind.arity_ok(fanin),
            "gate kind {kind} cannot take {fanin} pins"
        );
        GateParams {
            kind,
            fanin,
            size: 1.0,
            l_nm: 70.0,
            vdd: 1.0,
            vth: 0.2,
        }
    }

    /// Sets the drive strength (unit widths).
    pub fn with_size(mut self, size: f64) -> Self {
        self.size = size;
        self
    }

    /// Sets the channel length in nanometres.
    pub fn with_length(mut self, l_nm: f64) -> Self {
        self.l_nm = l_nm;
        self
    }

    /// Sets the supply voltage.
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }

    /// Sets the threshold voltage.
    pub fn with_vth(mut self, vth: f64) -> Self {
        self.vth = vth;
        self
    }

    /// Cell area in the abstract units of the paper's Eq. 5 `A` term:
    /// total active width × length, normalized to a unit inverter.
    pub fn area(&self) -> f64 {
        let stages = if needs_output_inverter(self.kind) {
            1.4
        } else {
            1.0
        };
        let pins = self.fanin as f64;
        self.size * pins.max(1.0) * (self.l_nm / 70.0) * stages
    }
}

/// One equivalent-inverter CMOS stage: pull-down NMOS, pull-up PMOS, a
/// supply, and self-loading capacitance at its output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Equivalent pull-down device.
    pub nmos: Mosfet,
    /// Equivalent pull-up device.
    pub pmos: Mosfet,
    /// Stage supply voltage.
    pub vdd: f64,
    /// Output self (drain) capacitance in farads.
    pub c_self: f64,
}

impl Stage {
    /// Net current **into** the output node, amperes: pull-up minus
    /// pull-down, for input voltage `vin` and output voltage `vout`.
    #[inline]
    pub fn current_into_output(&self, tech: &Technology, vin: f64, vout: f64) -> f64 {
        let i_up = self.pmos.current(tech, self.vdd - vin, self.vdd - vout);
        let i_dn = self.nmos.current(tech, vin, vout);
        i_up - i_dn
    }

    /// Worst-state off leakage: mean of the two single-device off
    /// currents at full rail.
    pub fn leakage(&self, tech: &Technology) -> f64 {
        0.5 * (self.nmos.leakage(tech, self.vdd) + self.pmos.leakage(tech, self.vdd))
    }
}

/// Returns `true` for kinds realized with a trailing output inverter
/// (their logic path is non-inverting, but a CMOS stage inverts).
fn needs_output_inverter(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And | GateKind::Or | GateKind::Buf | GateKind::Xnor
    )
}

/// Logical-effort input-capacitance factor `g` per pin.
fn logical_effort(kind: GateKind, fanin: usize) -> f64 {
    let k = fanin as f64;
    match kind {
        GateKind::Not | GateKind::Buf => 1.0,
        GateKind::Nand | GateKind::And => (k + 2.0) / 3.0,
        GateKind::Nor | GateKind::Or => (2.0 * k + 1.0) / 3.0,
        GateKind::Xor | GateKind::Xnor => k.max(2.0),
        GateKind::Input => unreachable!("inputs have no cell"),
    }
}

/// Parasitic (self-capacitance) factor `p` of the first stage.
fn parasitic_factor(kind: GateKind, fanin: usize) -> f64 {
    let k = fanin as f64;
    match kind {
        GateKind::Not | GateKind::Buf => 1.0,
        GateKind::Nand | GateKind::And | GateKind::Nor | GateKind::Or => k,
        GateKind::Xor | GateKind::Xnor => 2.0 * k.max(2.0) / 2.0,
        GateKind::Input => unreachable!("inputs have no cell"),
    }
}

/// The electrical realization of a [`GateParams`] cell: one equivalent
/// stage for inverting kinds (NAND/NOR/NOT/XOR), two (complex stage plus
/// output inverter) for AND/OR/BUF/XNOR.
///
/// The equivalent-inverter widths carry the cell's *drive*; logical-effort
/// `g`/`p` factors carry the extra input and self capacitance of the real
/// transistor network — the standard compact abstraction for delay and
/// glitch studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateElectrical {
    params: GateParams,
    stages: Vec<Stage>,
    input_cap: f64,
}

impl GateElectrical {
    /// Builds the electrical view of a cell.
    ///
    /// # Panics
    ///
    /// Propagates [`Mosfet::new`] panics for non-positive parameters.
    pub fn from_params(tech: &Technology, params: &GateParams) -> Self {
        let wn = params.size * tech.w_unit_um;
        let wp = tech.beta_p * wn;
        let g = logical_effort(params.kind, params.fanin);
        let p = parasitic_factor(params.kind, params.fanin);

        let input_cap = g * (tech.c_gate(wn, params.l_nm) + tech.c_gate(wp, params.l_nm));

        let stage1 = Stage {
            nmos: Mosfet::new(Polarity::Nmos, wn, params.l_nm, params.vth),
            pmos: Mosfet::new(Polarity::Pmos, wp, params.l_nm, params.vth),
            vdd: params.vdd,
            c_self: p * tech.c_drain(wn + wp),
        };
        let mut stages = vec![stage1];
        if needs_output_inverter(params.kind) {
            stages.push(Stage {
                nmos: Mosfet::new(Polarity::Nmos, wn, params.l_nm, params.vth),
                pmos: Mosfet::new(Polarity::Pmos, wp, params.l_nm, params.vth),
                vdd: params.vdd,
                c_self: tech.c_drain(wn + wp),
            });
        }
        GateElectrical {
            params: *params,
            stages,
            input_cap,
        }
    }

    /// The cell's parameter record.
    #[inline]
    pub fn params(&self) -> &GateParams {
        &self.params
    }

    /// Capacitance presented by one input pin, farads.
    #[inline]
    pub fn input_capacitance(&self) -> f64 {
        self.input_cap
    }

    /// The equivalent stages (1 or 2).
    #[inline]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Capacitance loading an *internal* node between stage 1 and stage 2
    /// (0 for single-stage cells).
    pub fn interstage_cap(&self, tech: &Technology) -> f64 {
        if self.stages.len() < 2 {
            return 0.0;
        }
        let wn = self.params.size * tech.w_unit_um;
        let wp = tech.beta_p * wn;
        tech.c_gate(wn, self.params.l_nm) + tech.c_gate(wp, self.params.l_nm)
    }

    /// Whether the overall cell inverts its (single switching) input.
    pub fn is_inverting_cell(&self) -> bool {
        self.stages.len() % 2 == 1
    }

    /// Total off-state leakage current of the cell, amperes.
    pub fn leakage_current(&self, tech: &Technology) -> f64 {
        self.stages.iter().map(|s| s.leakage(tech)).sum()
    }

    /// Static power at the cell's own supply, watts.
    pub fn static_power(&self, tech: &Technology) -> f64 {
        self.leakage_current(tech) * self.params.vdd
    }

    /// Dynamic energy for one full output transition into `c_load`,
    /// joules: `C·V²` over the output and any interstage node.
    pub fn dynamic_energy(&self, tech: &Technology, c_load: f64) -> f64 {
        let v2 = self.params.vdd * self.params.vdd;
        let out_stage = self.stages.last().expect("at least one stage");
        let mut e = (out_stage.c_self + c_load) * v2;
        if self.stages.len() == 2 {
            e += (self.stages[0].c_self + self.interstage_cap(tech)) * v2;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::FF;

    fn tech() -> Technology {
        Technology::ptm70()
    }

    #[test]
    fn inverter_is_single_stage() {
        let g = GateElectrical::from_params(&tech(), &GateParams::new(GateKind::Not, 1));
        assert_eq!(g.stages().len(), 1);
        assert!(g.is_inverting_cell());
    }

    #[test]
    fn and_gets_output_inverter() {
        let g = GateElectrical::from_params(&tech(), &GateParams::new(GateKind::And, 2));
        assert_eq!(g.stages().len(), 2);
        assert!(!g.is_inverting_cell());
        assert!(g.interstage_cap(&tech()) > 0.0);
    }

    #[test]
    fn nand_pin_costs_more_than_inverter_pin() {
        let t = tech();
        let inv = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1));
        let nand3 = GateElectrical::from_params(&t, &GateParams::new(GateKind::Nand, 3));
        assert!(nand3.input_capacitance() > inv.input_capacitance());
    }

    #[test]
    fn nor_pin_costs_more_than_nand_pin() {
        let t = tech();
        let nand2 = GateElectrical::from_params(&t, &GateParams::new(GateKind::Nand, 2));
        let nor2 = GateElectrical::from_params(&t, &GateParams::new(GateKind::Nor, 2));
        assert!(nor2.input_capacitance() > nand2.input_capacitance());
    }

    #[test]
    fn size_scales_caps_and_drive() {
        let t = tech();
        let s1 = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1));
        let s4 = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1).with_size(4.0));
        assert!((s4.input_capacitance() / s1.input_capacitance() - 4.0).abs() < 0.01);
        let i1 = s1.stages()[0].nmos.current(&t, 1.0, 1.0);
        let i4 = s4.stages()[0].nmos.current(&t, 1.0, 1.0);
        assert!((i4 / i1 - 4.0).abs() < 0.01);
    }

    #[test]
    fn stage_current_signs() {
        let t = tech();
        let inv = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1));
        let stage = &inv.stages()[0];
        // Input low, output low → pull-up charges the node (positive).
        assert!(stage.current_into_output(&t, 0.0, 0.1) > 0.0);
        // Input high, output high → pull-down discharges (negative).
        assert!(stage.current_into_output(&t, 1.0, 0.9) < 0.0);
    }

    #[test]
    fn leakage_rises_when_vth_drops() {
        let t = tech();
        let hi = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1).with_vth(0.3));
        let lo = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1).with_vth(0.1));
        assert!(lo.leakage_current(&t) > 10.0 * hi.leakage_current(&t));
    }

    #[test]
    fn dynamic_energy_scales_with_vdd_squared() {
        let t = tech();
        let v08 = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1).with_vdd(0.8));
        let v12 = GateElectrical::from_params(&t, &GateParams::new(GateKind::Not, 1).with_vdd(1.2));
        let load = 2.0 * FF;
        let ratio = v12.dynamic_energy(&t, load) / v08.dynamic_energy(&t, load);
        assert!((ratio - (1.2f64 / 0.8).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn area_grows_with_size_length_and_fanin() {
        let base = GateParams::new(GateKind::Nand, 2);
        assert!(base.with_size(2.0).area() > base.area());
        assert!(base.with_length(150.0).area() > base.area());
        assert!(GateParams::new(GateKind::Nand, 4).area() > base.area());
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn rejects_bad_arity() {
        let _ = GateParams::new(GateKind::Not, 3);
    }
}
