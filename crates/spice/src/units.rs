//! Unit constants for readable numeric literals.
//!
//! All simulator quantities are SI (`f64`): seconds, volts, amperes,
//! farads, coulombs — except transistor widths (micrometres) and channel
//! lengths (nanometres), which follow the paper's conventions and are
//! always named `*_um` / `*_nm`.
//!
//! # Example
//!
//! ```
//! use ser_spice::units::{FC, PS};
//!
//! let charge = 16.0 * FC;       // the paper's injected charge
//! let step = 0.5 * PS;          // integration step
//! assert!(charge / (1.0e-4) < 1.0e-9); // 16 fC at 100 µA lasts 160 ps
//! # let _ = step;
//! ```

/// One picosecond in seconds.
pub const PS: f64 = 1e-12;
/// One nanosecond in seconds.
pub const NS: f64 = 1e-9;
/// One femtofarad in farads.
pub const FF: f64 = 1e-15;
/// One femtocoulomb in coulombs.
pub const FC: f64 = 1e-15;
/// One microampere in amperes.
pub const UA: f64 = 1e-6;
/// One nanoampere in amperes.
pub const NA: f64 = 1e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations() {
        assert!((1000.0 * PS - NS).abs() < 1e-21);
        assert_eq!(FF, FC); // same SI magnitude, different quantities
        assert!((1000.0 * NA - UA).abs() < 1e-15);
    }
}
