use serde::{Deserialize, Serialize};

use crate::error::StrikeError;
use crate::units::{FC, PS};

/// A particle-strike current source: the classic double-exponential pulse
///
/// ```text
/// I(t) = Q/(τf − τr) · (exp(−t/τf) − exp(−t/τr))
/// ```
///
/// which integrates to exactly `Q` over `t ∈ [0, ∞)`. The paper models a
/// strike as "a current source injecting (or removing) a fixed amount of
/// charge" — 16 fC in its experiments; the sign (inject vs remove) is
/// chosen by the simulator from the struck node's logic state.
///
/// # Example
///
/// ```
/// use ser_spice::Strike;
///
/// let s = Strike::charge_fc(16.0);
/// assert!((s.charge() - 16.0e-15).abs() < 1e-20);
/// assert!(s.current_at(10.0e-12) > 0.0);
/// assert!(s.current_at(-1.0e-12) == 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Strike {
    charge: f64,
    tau_rise: f64,
    tau_fall: f64,
}

impl Strike {
    /// Default collection-time constant (fall), seconds.
    pub const DEFAULT_TAU_FALL: f64 = 50.0 * PS;
    /// Default onset time constant (rise), seconds.
    pub const DEFAULT_TAU_RISE: f64 = 5.0 * PS;

    /// A strike depositing `q_fc` femtocoulombs with default time
    /// constants (5 ps rise, 50 ps fall — 70 nm-class funneling).
    ///
    /// # Panics
    ///
    /// Panics if `q_fc` is not positive and finite. Use
    /// [`Strike::try_charge_fc`] to reject untrusted input gracefully.
    pub fn charge_fc(q_fc: f64) -> Self {
        Strike::new(q_fc * FC, Self::DEFAULT_TAU_RISE, Self::DEFAULT_TAU_FALL)
    }

    /// Fallible form of [`Strike::charge_fc`]: rejects a non-positive or
    /// non-finite charge with a typed error instead of panicking.
    #[must_use = "the strike is only built when the parameters validate"]
    pub fn try_charge_fc(q_fc: f64) -> Result<Self, StrikeError> {
        Strike::try_new(q_fc * FC, Self::DEFAULT_TAU_RISE, Self::DEFAULT_TAU_FALL)
    }

    /// Full constructor (SI units).
    ///
    /// # Panics
    ///
    /// Panics unless `charge > 0`, `0 < tau_rise < tau_fall`. Use
    /// [`Strike::try_new`] to reject untrusted input gracefully.
    pub fn new(charge: f64, tau_rise: f64, tau_fall: f64) -> Self {
        match Strike::try_new(charge, tau_rise, tau_fall) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible full constructor (SI units): validates `charge > 0` and
    /// `0 < tau_rise < tau_fall` (all finite), returning a typed
    /// [`StrikeError`] on violation.
    #[must_use = "the strike is only built when the parameters validate"]
    pub fn try_new(charge: f64, tau_rise: f64, tau_fall: f64) -> Result<Self, StrikeError> {
        if !(charge > 0.0 && charge.is_finite()) {
            return Err(StrikeError::NonPositiveCharge { charge });
        }
        if !(tau_rise > 0.0 && tau_fall > tau_rise && tau_fall.is_finite()) {
            return Err(StrikeError::BadTimeConstants { tau_rise, tau_fall });
        }
        Ok(Strike {
            charge,
            tau_rise,
            tau_fall,
        })
    }

    /// Deposited charge in coulombs.
    #[inline]
    pub fn charge(&self) -> f64 {
        self.charge
    }

    /// Current magnitude at time `t` after onset, amperes (0 for `t < 0`).
    pub fn current_at(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        self.charge / (self.tau_fall - self.tau_rise)
            * ((-t / self.tau_fall).exp() - (-t / self.tau_rise).exp())
    }

    /// A practical end-of-pulse horizon (beyond it, <0.1% of Q remains).
    pub fn horizon(&self) -> f64 {
        self.tau_fall * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_integrates_to_charge() {
        let s = Strike::charge_fc(16.0);
        let dt = 0.05 * PS;
        let mut q = 0.0;
        let mut t = 0.0;
        while t < s.horizon() {
            q += s.current_at(t) * dt;
            t += dt;
        }
        assert!((q - s.charge()).abs() / s.charge() < 0.005, "q = {q:e}");
    }

    #[test]
    fn pulse_is_nonnegative_and_unimodal() {
        let s = Strike::charge_fc(16.0);
        let mut rising = true;
        let mut last = 0.0;
        let mut direction_changes = 0;
        for i in 0..2000 {
            let i_t = s.current_at(i as f64 * 0.2 * PS);
            assert!(i_t >= 0.0);
            if rising && i_t < last {
                rising = false;
                direction_changes += 1;
            } else if !rising && i_t > last + 1e-12 {
                direction_changes += 1;
            }
            last = i_t;
        }
        assert_eq!(direction_changes, 1);
    }

    #[test]
    fn peak_current_is_sensible() {
        // 16 fC over ~50 ps → few hundred µA peak.
        let s = Strike::charge_fc(16.0);
        let peak = (0..1000)
            .map(|i| s.current_at(i as f64 * 0.1 * PS))
            .fold(0.0, f64::max);
        assert!(peak > 50e-6 && peak < 1e-3, "peak = {peak:e}");
    }

    #[test]
    #[should_panic(expected = "tau_rise")]
    fn rejects_inverted_taus() {
        let _ = Strike::new(16.0 * FC, 50.0 * PS, 5.0 * PS);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::error::StrikeError;
        assert!(matches!(
            Strike::try_new(0.0, 5.0 * PS, 50.0 * PS),
            Err(StrikeError::NonPositiveCharge { .. })
        ));
        assert!(matches!(
            Strike::try_charge_fc(f64::NAN),
            Err(StrikeError::NonPositiveCharge { .. })
        ));
        assert!(matches!(
            Strike::try_new(16.0 * FC, 50.0 * PS, 5.0 * PS),
            Err(StrikeError::BadTimeConstants { .. })
        ));
        assert!(matches!(
            Strike::try_new(16.0 * FC, 5.0 * PS, f64::INFINITY),
            Err(StrikeError::BadTimeConstants { .. })
        ));
        let s = Strike::try_charge_fc(16.0).expect("valid strike");
        assert_eq!(s, Strike::charge_fc(16.0));
    }
}
