//! Transistor-level transient simulation substrate — the "SPICE" of the
//! DATE'05 reproduction.
//!
//! The paper characterizes gates and validates its analysis tool against
//! HSPICE with Berkeley 70 nm predictive models. This crate plays that
//! role from scratch:
//!
//! * [`Technology`] — a 70 nm-class predictive parameter set
//!   ([`Technology::ptm70`]);
//! * [`Mosfet`] — Sakurai–Newton alpha-power-law drain current with
//!   subthreshold leakage and channel-length scaling;
//! * [`GateParams`]/[`GateElectrical`] — logical-effort-based equivalent
//!   inverter stages for every [`GateKind`](ser_netlist::GateKind),
//!   parameterized by size, channel length, VDD and Vth — the four knobs
//!   SERTOPT turns;
//! * [`transient`] — RK4 integration of the output-node ODE, with
//!   double-exponential particle-strike current injection ([`Strike`]);
//! * [`measure`] — propagation delay, transition time, glitch width,
//!   energies;
//! * [`circuit_sim`] — whole-netlist strike simulation by waveform
//!   propagation over the struck fan-out cone: the paper's "SPICE with 50
//!   random vectors" reference experiment.
//!
//! # Example: a particle strike on an inverter output
//!
//! ```
//! use ser_spice::{GateElectrical, GateParams, Strike, Technology};
//! use ser_spice::transient::{simulate_strike, TransientConfig};
//! use ser_spice::measure::glitch_width;
//! use ser_netlist::GateKind;
//!
//! let tech = Technology::ptm70();
//! let params = GateParams::new(GateKind::Not, 1);
//! let gate = GateElectrical::from_params(&tech, &params);
//! let strike = Strike::charge_fc(16.0);
//! // Output nominally low (input high): strike pulls it up.
//! let cfg = TransientConfig::default();
//! let wave = simulate_strike(&tech, &gate, false, 2.0e-15, &strike, &cfg);
//! let width = glitch_width(&wave, 0.0, params.vdd);
//! assert!(width > 10.0e-12, "16 fC must produce a visible glitch");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit_sim;
mod device;
pub mod error;
mod gate_model;
pub mod measure;
mod strike;
mod tech;
pub mod transient;
pub mod units;
pub mod waveform;

pub use device::{Mosfet, Polarity};
pub use error::{StrikeError, TransientError};
pub use gate_model::{GateElectrical, GateParams, Stage};
pub use strike::Strike;
pub use tech::Technology;
pub use waveform::Waveform;
