use serde::{Deserialize, Serialize};

use crate::tech::Technology;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// N-channel (pull-down).
    Nmos,
    /// P-channel (pull-up).
    Pmos,
}

/// A single MOSFET under the Sakurai–Newton alpha-power law with
/// subthreshold conduction and first-order channel-length scaling.
///
/// Terminal voltages are passed in **device convention**: `vgs` and `vds`
/// are the gate-source and drain-source voltages *as seen by the device*,
/// i.e. both non-negative when the transistor is conducting forward. The
/// caller (the gate stage model) performs the PMOS mirroring.
///
/// # Example
///
/// ```
/// use ser_spice::{Mosfet, Polarity, Technology};
///
/// let tech = Technology::ptm70();
/// let n = Mosfet::new(Polarity::Nmos, 0.1, 70.0, 0.2);
/// let on = n.current(&tech, 1.0, 1.0);
/// let weak = n.current(&tech, 0.5, 1.0);
/// let off = n.current(&tech, 0.0, 1.0);
/// assert!(on > weak && weak > off && off > 0.0); // off-state = leakage
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    /// Device polarity (selects the drive coefficient).
    pub polarity: Polarity,
    /// Width in micrometres.
    pub w_um: f64,
    /// Drawn channel length in nanometres.
    pub l_nm: f64,
    /// Threshold voltage magnitude in volts.
    pub vth: f64,
}

impl Mosfet {
    /// Creates a device; see field docs for units.
    ///
    /// # Panics
    ///
    /// Panics if width, length or threshold are not positive and finite.
    pub fn new(polarity: Polarity, w_um: f64, l_nm: f64, vth: f64) -> Self {
        assert!(
            w_um > 0.0 && w_um.is_finite(),
            "device width must be positive"
        );
        assert!(
            l_nm > 0.0 && l_nm.is_finite(),
            "channel length must be positive"
        );
        assert!(vth > 0.0 && vth.is_finite(), "threshold must be positive");
        Mosfet {
            polarity,
            w_um,
            l_nm,
            vth,
        }
    }

    /// Drain current in amperes for device-convention `vgs`, `vds`.
    ///
    /// Regions:
    /// * `vds ≤ 0` → 0 (reverse conduction ignored);
    /// * `vgs ≤ vth` → subthreshold:
    ///   `I0·W·(Lref/L)·exp((vgs−vth)/(n·vT))·(1−exp(−vds/vT))`;
    /// * saturation (`vds ≥ Vd0`): `B·W·(Lref/L)·(vgs−vth)^α·(1+λ(vds−Vd0))`;
    /// * triode: `Isat·(2−vds/Vd0)·(vds/Vd0)` (Sakurai–Newton).
    pub fn current(&self, tech: &Technology, vgs: f64, vds: f64) -> f64 {
        if vds <= 0.0 {
            return 0.0;
        }
        let lscale = tech.lref_nm / self.l_nm;
        let b = match self.polarity {
            Polarity::Nmos => tech.b_n,
            Polarity::Pmos => tech.b_p,
        };
        if vgs <= self.vth {
            let exp_gate = ((vgs - self.vth) / (tech.n_sub * tech.v_thermal)).exp();
            let drain_term = 1.0 - (-vds / tech.v_thermal).exp();
            return tech.i0_sub * self.w_um * lscale * exp_gate * drain_term;
        }
        let vov = vgs - self.vth;
        let vd0 = tech.kv * vov.powf(tech.m);
        let isat = b * self.w_um * lscale * vov.powf(tech.alpha);
        let strong = if vds >= vd0 {
            isat * (1.0 + tech.lambda * (vds - vd0))
        } else {
            isat * (2.0 - vds / vd0) * (vds / vd0)
        };
        // Subthreshold floor keeps the model continuous (and monotone)
        // across the threshold seam.
        let floor = tech.i0_sub * self.w_um * lscale * (1.0 - (-vds / tech.v_thermal).exp());
        strong + floor
    }

    /// Off-state leakage at `vgs = 0`, `vds = vdd` — the static-power
    /// current the paper's Vth assignment trades against glitch hardness.
    pub fn leakage(&self, tech: &Technology, vdd: f64) -> f64 {
        self.current(tech, 0.0, vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::ptm70()
    }

    fn unit_n() -> Mosfet {
        Mosfet::new(Polarity::Nmos, 0.1, 70.0, 0.2)
    }

    #[test]
    fn on_current_magnitude_is_70nm_class() {
        // ≈0.7 mA/µm at full overdrive → ≈70 µA at 0.1 µm.
        let i = unit_n().current(&tech(), 1.0, 1.0);
        assert!(i > 30e-6 && i < 150e-6, "Ion = {i:e}");
    }

    #[test]
    fn current_is_monotone_in_vgs() {
        let t = tech();
        let d = unit_n();
        let mut last = 0.0;
        for step in 0..=20 {
            let vgs = step as f64 * 0.05;
            let i = d.current(&t, vgs, 1.0);
            assert!(i >= last, "nonmonotone at vgs={vgs}");
            last = i;
        }
    }

    #[test]
    fn current_is_monotone_in_vds() {
        let t = tech();
        let d = unit_n();
        let mut last = -1.0;
        for step in 0..=20 {
            let vds = step as f64 * 0.05;
            let i = d.current(&t, 0.8, vds);
            assert!(i >= last, "nonmonotone at vds={vds}");
            last = i;
        }
    }

    #[test]
    fn triode_saturation_continuity() {
        let t = tech();
        let d = unit_n();
        let vov: f64 = 0.6;
        let vd0 = t.kv * vov.powf(t.m);
        let below = d.current(&t, 0.8, vd0 * 0.999);
        let above = d.current(&t, 0.8, vd0 * 1.001);
        assert!((below - above).abs() / above < 0.01);
    }

    #[test]
    fn continuity_at_vth() {
        let t = tech();
        let d = unit_n();
        let below = d.current(&t, 0.2 - 1e-9, 1.0);
        let above = d.current(&t, 0.2 + 1e-9, 1.0);
        assert!(
            (below - above).abs() / below < 1e-3,
            "{below:e} vs {above:e}"
        );
    }

    #[test]
    fn longer_channel_drives_less() {
        let t = tech();
        let short = Mosfet::new(Polarity::Nmos, 0.1, 70.0, 0.2);
        let long = Mosfet::new(Polarity::Nmos, 0.1, 300.0, 0.2);
        assert!(long.current(&t, 1.0, 1.0) < short.current(&t, 1.0, 1.0) / 3.0);
    }

    #[test]
    fn higher_vth_leaks_exponentially_less() {
        let t = tech();
        let lo = Mosfet::new(Polarity::Nmos, 0.1, 70.0, 0.1).leakage(&t, 1.0);
        let mid = Mosfet::new(Polarity::Nmos, 0.1, 70.0, 0.2).leakage(&t, 1.0);
        let hi = Mosfet::new(Polarity::Nmos, 0.1, 70.0, 0.3).leakage(&t, 1.0);
        assert!(lo / mid > 5.0, "0.1→0.2 ratio {}", lo / mid);
        assert!(mid / hi > 5.0, "0.2→0.3 ratio {}", mid / hi);
    }

    #[test]
    fn pmos_is_weaker_than_nmos_at_equal_width() {
        let t = tech();
        let n = Mosfet::new(Polarity::Nmos, 0.1, 70.0, 0.2);
        let p = Mosfet::new(Polarity::Pmos, 0.1, 70.0, 0.2);
        assert!(p.current(&t, 1.0, 1.0) < n.current(&t, 1.0, 1.0));
    }

    #[test]
    fn reverse_vds_carries_nothing() {
        assert_eq!(unit_n().current(&tech(), 1.0, -0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_zero_width() {
        let _ = Mosfet::new(Polarity::Nmos, 0.0, 70.0, 0.2);
    }
}
