//! Sampled voltage waveforms and analytic stimulus shapes (ramps,
//! triangular and trapezoidal glitches).

use serde::{Deserialize, Serialize};

/// A uniformly-sampled voltage waveform.
///
/// Samples start at `t0` with spacing `dt`; evaluation outside the sampled
/// window clamps to the first/last sample (waveforms settle to rails).
///
/// # Example
///
/// ```
/// use ser_spice::Waveform;
///
/// let w = Waveform::from_samples(0.0, 1.0e-12, vec![0.0, 0.5, 1.0]);
/// assert_eq!(w.value_at(0.5e-12), 0.25);
/// assert_eq!(w.value_at(-1.0), 0.0);  // clamped
/// assert_eq!(w.value_at(1.0), 1.0);   // clamped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    t0: f64,
    dt: f64,
    samples: Vec<f64>,
}

impl Waveform {
    /// Wraps raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or `samples` is empty.
    pub fn from_samples(t0: f64, dt: f64, samples: Vec<f64>) -> Self {
        assert!(dt > 0.0, "sample spacing must be positive");
        assert!(!samples.is_empty(), "waveform needs at least one sample");
        Waveform { t0, dt, samples }
    }

    /// Samples a function over `[t0, t0 + dt·(n−1)]`.
    pub fn sample(t0: f64, dt: f64, n: usize, f: impl Fn(f64) -> f64) -> Self {
        let samples = (0..n).map(|i| f(t0 + dt * i as f64)).collect();
        Waveform::from_samples(t0, dt, samples)
    }

    /// A constant waveform (single sample).
    pub fn constant(level: f64) -> Self {
        Waveform::from_samples(0.0, 1.0, vec![level])
    }

    /// Start time of the first sample.
    #[inline]
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sample spacing in seconds.
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// End time of the last sample.
    pub fn t_end(&self) -> f64 {
        self.t0 + self.dt * (self.samples.len() - 1) as f64
    }

    /// The raw samples.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Linear interpolation with clamped extension.
    pub fn value_at(&self, t: f64) -> f64 {
        let n = self.samples.len();
        let x = (t - self.t0) / self.dt;
        if x <= 0.0 {
            return self.samples[0];
        }
        if x >= (n - 1) as f64 {
            return self.samples[n - 1];
        }
        let i = x.floor() as usize;
        let frac = x - i as f64;
        self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
    }

    /// Maximum absolute excursion from `level`.
    pub fn max_excursion_from(&self, level: f64) -> f64 {
        self.samples
            .iter()
            .map(|&v| (v - level).abs())
            .fold(0.0, f64::max)
    }

    /// Pointwise map, preserving sampling.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Waveform {
        Waveform {
            t0: self.t0,
            dt: self.dt,
            samples: self.samples.iter().map(|&v| f(v)).collect(),
        }
    }
}

/// An ideal saturated-ramp transition between rails: starts at `v_from`,
/// ramps linearly from `t_start` over `ramp` seconds to `v_to`.
pub fn ramp(v_from: f64, v_to: f64, t_start: f64, ramp: f64) -> impl Fn(f64) -> f64 {
    move |t: f64| {
        if t <= t_start {
            v_from
        } else if t >= t_start + ramp {
            v_to
        } else {
            v_from + (v_to - v_from) * (t - t_start) / ramp
        }
    }
}

/// A triangular voltage glitch of the paper's Eq. 1 idealization: departs
/// `v_base` at `t_start`, reaches the opposite rail excursion `v_peak`
/// at `t_start + width/2`, and returns at `t_start + width`.
///
/// Width is measured at the *base*; the width at 50% amplitude is
/// `width/2`, matching the linear-ramp glitch model of the paper.
pub fn triangle_glitch(v_base: f64, v_peak: f64, t_start: f64, width: f64) -> impl Fn(f64) -> f64 {
    move |t: f64| {
        if t <= t_start || t >= t_start + width || width <= 0.0 {
            v_base
        } else {
            let half = width / 2.0;
            let x = t - t_start;
            if x <= half {
                v_base + (v_peak - v_base) * (x / half)
            } else {
                v_peak + (v_base - v_peak) * ((x - half) / half)
            }
        }
    }
}

/// A trapezoidal glitch: ramps to `v_peak` in `edge`, holds so the total
/// duration at 50% amplitude equals `width_50`, ramps back. Used to drive
/// gate inputs with a glitch of defined 50%-width (the paper's `w_i`).
pub fn trapezoid_glitch(
    v_base: f64,
    v_peak: f64,
    t_start: f64,
    width_50: f64,
    edge: f64,
) -> impl Fn(f64) -> f64 {
    move |t: f64| {
        if width_50 <= 0.0 {
            return v_base;
        }
        // 50% crossings happen mid-edge, so the base width is width_50 + edge.
        let hold = (width_50 - edge).max(0.0);
        let x = t - t_start;
        if x <= 0.0 {
            v_base
        } else if x < edge {
            v_base + (v_peak - v_base) * (x / edge)
        } else if x < edge + hold {
            v_peak
        } else if x < edge + hold + edge {
            v_peak + (v_base - v_peak) * ((x - edge - hold) / edge)
        } else {
            v_base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_samples() {
        let w = Waveform::from_samples(1.0, 2.0, vec![0.0, 4.0, 8.0]);
        assert_eq!(w.value_at(2.0), 2.0);
        assert_eq!(w.value_at(4.0), 6.0);
    }

    #[test]
    fn clamps_outside_window() {
        let w = Waveform::from_samples(0.0, 1.0, vec![3.0, 7.0]);
        assert_eq!(w.value_at(-5.0), 3.0);
        assert_eq!(w.value_at(99.0), 7.0);
    }

    #[test]
    fn constant_is_flat() {
        let w = Waveform::constant(0.8);
        assert_eq!(w.value_at(0.0), 0.8);
        assert_eq!(w.value_at(1e9), 0.8);
    }

    #[test]
    fn ramp_shape() {
        let f = ramp(0.0, 1.0, 10.0, 4.0);
        assert_eq!(f(9.0), 0.0);
        assert_eq!(f(12.0), 0.5);
        assert_eq!(f(15.0), 1.0);
    }

    #[test]
    fn triangle_peaks_midway() {
        let f = triangle_glitch(0.0, 1.0, 0.0, 100.0);
        assert_eq!(f(50.0), 1.0);
        assert_eq!(f(25.0), 0.5);
        assert_eq!(f(75.0), 0.5);
        assert_eq!(f(100.0), 0.0);
        // 50% width is half the base width.
        assert_eq!(f(75.0) - f(25.0), 0.0);
    }

    #[test]
    fn trapezoid_width_at_half_amplitude() {
        let width_50 = 50.0;
        let edge = 10.0;
        let f = trapezoid_glitch(0.0, 1.0, 0.0, width_50, edge);
        // 50% crossings at edge/2 and edge/2 + width_50.
        assert!((f(5.0) - 0.5).abs() < 1e-9);
        assert!((f(55.0) - 0.5).abs() < 1e-9);
        assert_eq!(f(30.0), 1.0);
    }

    #[test]
    fn sample_matches_function() {
        let w = Waveform::sample(0.0, 0.5, 5, |t| t * t);
        assert_eq!(w.samples().len(), 5);
        assert!((w.value_at(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sample spacing")]
    fn rejects_zero_dt() {
        let _ = Waveform::from_samples(0.0, 0.0, vec![1.0]);
    }
}
