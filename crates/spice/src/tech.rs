use serde::{Deserialize, Serialize};

/// Predictive technology parameter set for the compact device model.
///
/// Defaults ([`Technology::ptm70`]) approximate a 70 nm node in the spirit
/// of the Berkeley Predictive Technology Models the paper uses: 1 V
/// nominal supply, 0.2 V nominal threshold, ≈0.7 mA/µm saturated NMOS
/// drive, ≈2 fF/µm² gate capacitance. Absolute values are calibrated for
/// plausibility, not for matching a foundry deck — the reproduction
/// tracks *shapes and orderings*, per DESIGN.md.
///
/// # Example
///
/// ```
/// use ser_spice::Technology;
///
/// let tech = Technology::ptm70();
/// assert_eq!(tech.vdd_nominal, 1.0);
/// assert_eq!(tech.vth_nominal, 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable node name.
    pub name: String,
    /// Reference (drawn) channel length in nanometres.
    pub lref_nm: f64,
    /// Nominal supply voltage in volts.
    pub vdd_nominal: f64,
    /// Nominal threshold voltage magnitude in volts (applies to both
    /// polarities in this symmetric model).
    pub vth_nominal: f64,
    /// Velocity-saturation exponent α of the alpha-power law.
    pub alpha: f64,
    /// NMOS drive coefficient: `Id_sat = b_n · W[µm] · (Vgs−Vth)^α` amps.
    pub b_n: f64,
    /// PMOS drive coefficient (mobility-degraded).
    pub b_p: f64,
    /// Saturation-voltage coefficient: `Vd0 = kv · (Vgs−Vth)^m` volts.
    pub kv: f64,
    /// Saturation-voltage exponent (≈ α/2).
    pub m: f64,
    /// Channel-length modulation (per volt beyond `Vd0`).
    pub lambda: f64,
    /// Subthreshold current at `Vgs = Vth`, amps per µm of width.
    pub i0_sub: f64,
    /// Subthreshold slope factor `n` (swing = n·vT·ln 10).
    pub n_sub: f64,
    /// Thermal voltage `kT/q` in volts.
    pub v_thermal: f64,
    /// Gate-oxide capacitance in farads per µm² of gate area.
    pub cox_per_um2: f64,
    /// Gate overlap/fringe capacitance in farads per µm of width.
    pub cov_per_um: f64,
    /// Drain junction + overlap capacitance in farads per µm of width.
    pub cj_per_um: f64,
    /// PMOS/NMOS width ratio used by cell templates for balanced drive.
    pub beta_p: f64,
    /// Unit transistor width in µm for gate size 1 (the paper: "size of 1
    /// means a gate width of 100 nm").
    pub w_unit_um: f64,
}

impl Technology {
    /// The 70 nm-class predictive node used throughout the paper.
    pub fn ptm70() -> Self {
        Technology {
            name: "ptm70".to_owned(),
            lref_nm: 70.0,
            vdd_nominal: 1.0,
            vth_nominal: 0.2,
            alpha: 1.3,
            b_n: 0.9e-3,
            b_p: 0.42e-3,
            kv: 0.50,
            m: 0.65,
            lambda: 0.06,
            i0_sub: 0.3e-6,
            n_sub: 1.5,
            v_thermal: 0.0259,
            cox_per_um2: 2.9e-14,
            cov_per_um: 2.0e-16,
            cj_per_um: 4.0e-16,
            beta_p: 2.0,
            w_unit_um: 0.1,
        }
    }

    /// Gate capacitance of one transistor: `Cox·W·L + Cov·W`.
    #[inline]
    pub fn c_gate(&self, w_um: f64, l_nm: f64) -> f64 {
        self.cox_per_um2 * w_um * (l_nm * 1e-3) + self.cov_per_um * w_um
    }

    /// Drain (self-loading) capacitance of one transistor.
    #[inline]
    pub fn c_drain(&self, w_um: f64) -> f64 {
        self.cj_per_um * w_um
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::ptm70()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::FF;

    #[test]
    fn unit_inverter_input_cap_is_sub_femtofarad() {
        let t = Technology::ptm70();
        // NMOS 0.1 µm + PMOS 0.2 µm at L = 70 nm.
        let cin = t.c_gate(0.1, 70.0) + t.c_gate(0.2, 70.0);
        assert!(cin > 0.05 * FF && cin < 2.0 * FF, "cin = {cin:e}");
    }

    #[test]
    fn longer_channel_means_more_gate_cap() {
        let t = Technology::ptm70();
        assert!(t.c_gate(0.1, 300.0) > t.c_gate(0.1, 70.0));
    }

    #[test]
    fn default_is_ptm70() {
        assert_eq!(Technology::default(), Technology::ptm70());
    }
}
