//! The paper's Eq. 1: linear-ramp glitch attenuation through a gate.

/// Expected output glitch width for an input glitch of width `w_in`
/// passing through a gate of propagation delay `delay` (both seconds):
///
/// ```text
/// w_out = 0            if w_in <  d
/// w_out = 2(w_in − d)  if d ≤ w_in ≤ 2d
/// w_out = w_in         if w_in >  2d
/// ```
///
/// Slow gates (large `d`) filter more: the gate cannot respond to pulses
/// shorter than its delay, partially transmits pulses up to twice its
/// delay, and passes wide pulses unattenuated.
///
/// # Example
///
/// ```
/// use aserta::glitch::attenuate;
///
/// let d = 10.0; // any consistent time unit
/// assert_eq!(attenuate(5.0, d), 0.0);   // filtered
/// assert_eq!(attenuate(15.0, d), 10.0); // partially transmitted
/// assert_eq!(attenuate(40.0, d), 40.0); // passes unattenuated
/// ```
#[inline]
pub fn attenuate(w_in: f64, delay: f64) -> f64 {
    debug_assert!(
        w_in >= 0.0 && delay >= 0.0,
        "widths and delays are non-negative"
    );
    if w_in < delay {
        0.0
    } else if w_in <= 2.0 * delay {
        2.0 * (w_in - delay)
    } else {
        w_in
    }
}

/// Applies [`attenuate`] along a chain of gate delays — the width that
/// survives a whole path.
pub fn attenuate_chain(w_in: f64, delays: &[f64]) -> f64 {
    delays.iter().fold(w_in, |w, &d| attenuate(w, d))
}

/// A smooth (C¹) alternative to Eq. 1 in the spirit of the paper's ref.
/// \[6\] (Omana et al.'s transient-propagation model): the same three
/// regimes — kill below the delay, partial transmission, transparency
/// beyond twice the delay — blended by a logistic instead of piecewise
/// lines. Used by the ablation bench to quantify how much the analysis
/// depends on Eq. 1's exact shape.
///
/// Matches [`attenuate`] asymptotically: 0 for `w ≪ d`, `w` for
/// `w ≫ 2d`.
#[inline]
pub fn attenuate_smooth(w_in: f64, delay: f64) -> f64 {
    debug_assert!(w_in >= 0.0 && delay >= 0.0);
    if delay <= 0.0 {
        return w_in;
    }
    // Logistic gate centred at w = 1.5·d with slope matched to Eq. 1's
    // middle segment.
    let x = (w_in - 1.5 * delay) / (0.35 * delay);
    w_in / (1.0 + (-x).exp())
}

/// Which electrical-attenuation law the expected-width pass applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttenuationModel {
    /// The paper's piecewise-linear Eq. 1.
    #[default]
    PaperEq1,
    /// The smooth logistic variant ([`attenuate_smooth`]).
    SmoothLogistic,
}

impl AttenuationModel {
    /// Applies the selected law.
    #[inline]
    pub fn apply(self, w_in: f64, delay: f64) -> f64 {
        match self {
            AttenuationModel::PaperEq1 => attenuate(w_in, delay),
            AttenuationModel::SmoothLogistic => attenuate_smooth(w_in, delay),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes() {
        let d = 10.0;
        assert_eq!(attenuate(0.0, d), 0.0);
        assert_eq!(attenuate(9.999, d), 0.0);
        assert!((attenuate(12.0, d) - 4.0).abs() < 1e-12);
        assert!((attenuate(20.0, d) - 20.0).abs() < 1e-12);
        assert_eq!(attenuate(50.0, d), 50.0);
    }

    #[test]
    fn continuous_at_breakpoints() {
        let d = 7.0;
        // At w = d: 0 vs 2(w−d) = 0.
        assert!((attenuate(d - 1e-9, d) - attenuate(d + 1e-9, d)).abs() < 1e-6);
        // At w = 2d: 2(w−d) = 2d vs w = 2d.
        assert!((attenuate(2.0 * d - 1e-9, d) - attenuate(2.0 * d + 1e-9, d)).abs() < 1e-6);
    }

    #[test]
    fn monotone_in_input_width() {
        let d = 13.0;
        let mut last = 0.0;
        for i in 0..1000 {
            let w = i as f64 * 0.1;
            let out = attenuate(w, d);
            assert!(out + 1e-12 >= last, "nonmonotone at {w}");
            last = out;
        }
    }

    #[test]
    fn monotone_decreasing_in_delay() {
        let w = 30.0;
        let mut last = f64::INFINITY;
        for i in 0..100 {
            let d = i as f64 * 0.5;
            let out = attenuate(w, d);
            assert!(out <= last + 1e-12, "nonmonotone at d={d}");
            last = out;
        }
    }

    #[test]
    fn zero_delay_gate_is_transparent() {
        for w in [0.0, 5.0, 100.0] {
            assert_eq!(attenuate(w, 0.0), w);
        }
    }

    #[test]
    fn smooth_model_matches_eq1_asymptotically() {
        let d = 10.0;
        assert!(attenuate_smooth(1.0, d) < 0.05, "deep-kill regime");
        let wide = attenuate_smooth(100.0, d);
        assert!((wide - 100.0).abs() < 0.1, "transparent regime: {wide}");
        // Monotone in input width.
        let mut last = 0.0;
        for i in 0..500 {
            let w = i as f64 * 0.2;
            let out = attenuate_smooth(w, d);
            assert!(out + 1e-9 >= last, "nonmonotone at {w}");
            last = out;
        }
    }

    #[test]
    fn model_enum_dispatches() {
        assert_eq!(AttenuationModel::PaperEq1.apply(30.0, 10.0), 30.0);
        assert!(AttenuationModel::SmoothLogistic.apply(30.0, 10.0) < 30.0);
        assert_eq!(AttenuationModel::default(), AttenuationModel::PaperEq1);
    }

    #[test]
    fn chain_kills_or_passes() {
        // Three 10-unit gates: a 50-wide glitch passes unattenuated.
        assert_eq!(attenuate_chain(50.0, &[10.0, 10.0, 10.0]), 50.0);
        // A 12-wide glitch dies at the second gate: 12→4→0.
        assert_eq!(attenuate_chain(12.0, &[10.0, 10.0, 10.0]), 0.0);
    }
}
