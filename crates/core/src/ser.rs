//! Soft-error-rate (FIT) estimation over a particle-charge spectrum — the
//! paper's stated "future versions of ASERTA will have look-up tables for
//! different amounts of injected charge", implemented.
//!
//! The abstract unreliability `U` of Eq. 4 is proportional to the SER for
//! a fixed charge. This module makes the constants explicit: a strike
//! rate per unit area, a discretized charge spectrum, and a clock period
//! converting arriving glitch width into a latching probability.

use ser_cells::Library;
use ser_logicsim::SensitizationMatrix;
use ser_netlist::{Circuit, NodeId};
use serde::{Deserialize, Serialize};

use crate::analysis::analyze;
use crate::binding::CircuitCells;
use crate::config::AsertaConfig;

/// Physical constants for FIT conversion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SerModel {
    /// Particle strikes per gate-area-unit per second (area units are
    /// [`GateParams::area`](ser_spice::GateParams::area), i.e. unit-inverter
    /// equivalents; sea-level neutron flux folded with sensitive-volume
    /// geometry).
    pub strike_rate_per_area: f64,
    /// Latch aperture and clock period: an arriving glitch of width `w`
    /// latches with probability
    /// [`LatchingWindow::capture_probability`](crate::latching::LatchingWindow::capture_probability).
    pub latching: crate::latching::LatchingWindow,
    /// Discretized charge spectrum: `(charge C, probability)` pairs;
    /// probabilities should sum to 1.
    pub charge_spectrum: Vec<(f64, f64)>,
}

impl Default for SerModel {
    /// A 1 GHz clock and an exponential-ish three-point charge spectrum
    /// centred on the paper's 16 fC.
    fn default() -> Self {
        SerModel {
            strike_rate_per_area: 1.0e-12,
            latching: crate::latching::LatchingWindow::default(),
            charge_spectrum: vec![(8.0e-15, 0.60), (16.0e-15, 0.30), (32.0e-15, 0.10)],
        }
    }
}

/// FIT-rate analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct SerReport {
    /// Circuit soft-error rate in FIT (failures per 10⁹ device-hours).
    pub fit: f64,
    /// Per-node FIT contribution (0 for primary inputs).
    pub per_gate_fit: Vec<f64>,
}

/// Computes the FIT rate by integrating latching probability over the
/// charge spectrum (one ASERTA electrical pass per charge point).
///
/// # Panics
///
/// Panics if the charge spectrum is empty.
pub fn soft_error_rate(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    pij: &SensitizationMatrix,
    cfg: &AsertaConfig,
    model: &SerModel,
) -> SerReport {
    assert!(
        !model.charge_spectrum.is_empty(),
        "charge spectrum needs at least one point"
    );
    let mut per_gate = vec![0.0f64; circuit.node_count()];
    for &(charge, weight) in &model.charge_spectrum {
        let mut cfg_q = cfg.clone();
        cfg_q.charge = charge;
        let report = analyze(circuit, cells, library, pij, &cfg_q);
        for id in circuit.gates() {
            let w_total = report
                .expected_widths
                .total_expected_width(id, report.generated_widths[id.index()]);
            let p_latch = model.latching.capture_probability(w_total);
            let Some(p) = cells.get(id) else {
                panic!("gates carry parameters")
            };
            let area = p.area();
            per_gate[id.index()] += weight * model.strike_rate_per_area * area * p_latch;
        }
    }
    // failures/s → FIT.
    const FIT_SCALE: f64 = 3600.0 * 1.0e9;
    for v in per_gate.iter_mut() {
        *v *= FIT_SCALE;
    }
    SerReport {
        fit: per_gate.iter().sum(),
        per_gate_fit: per_gate,
    }
}

/// Per-gate FIT sorted descending — soft spots in physical units.
pub fn rank_by_fit(report: &SerReport, circuit: &Circuit) -> Vec<(NodeId, f64)> {
    let mut v: Vec<(NodeId, f64)> = circuit
        .gates()
        .map(|g| (g, report.per_gate_fit[g.index()]))
        .collect();
    v.sort_by(|a, b| b.1.total_cmp(&a.1));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_cells::CharGrids;
    use ser_logicsim::sensitize::sensitization_probabilities;
    use ser_netlist::generate;
    use ser_spice::Technology;

    #[test]
    fn fit_is_positive_and_scales_with_rate() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let cfg = AsertaConfig::fast();
        let pij = sensitization_probabilities(&c, 512, 1);
        let m1 = SerModel::default();
        let mut m2 = m1.clone();
        m2.strike_rate_per_area *= 10.0;
        let r1 = soft_error_rate(&c, &cells, &mut lib, &pij, &cfg, &m1);
        let r2 = soft_error_rate(&c, &cells, &mut lib, &pij, &cfg, &m2);
        assert!(r1.fit > 0.0);
        assert!((r2.fit / r1.fit - 10.0).abs() < 1e-6);
    }

    #[test]
    fn bigger_charges_mean_more_fit() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let cfg = AsertaConfig::fast();
        let pij = sensitization_probabilities(&c, 512, 1);
        let small = SerModel {
            charge_spectrum: vec![(4.0e-15, 1.0)],
            ..SerModel::default()
        };
        let big = SerModel {
            charge_spectrum: vec![(32.0e-15, 1.0)],
            ..SerModel::default()
        };
        let r_small = soft_error_rate(&c, &cells, &mut lib, &pij, &cfg, &small);
        let r_big = soft_error_rate(&c, &cells, &mut lib, &pij, &cfg, &big);
        assert!(r_big.fit > r_small.fit, "{} vs {}", r_big.fit, r_small.fit);
    }

    #[test]
    fn ranking_is_descending() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let cfg = AsertaConfig::fast();
        let pij = sensitization_probabilities(&c, 512, 1);
        let r = soft_error_rate(&c, &cells, &mut lib, &pij, &cfg, &SerModel::default());
        let ranked = rank_by_fit(&r, &c);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
