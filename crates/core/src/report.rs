//! Plain-text report formatting for analysis results.

use ser_netlist::{Circuit, NodeId};

/// Formats a per-node value table (name, value) sorted descending, top
/// `limit` rows, with a caption — handy for soft-spot listings.
pub fn format_ranked_table(
    circuit: &Circuit,
    caption: &str,
    values: &[f64],
    limit: usize,
) -> String {
    let mut rows: Vec<(NodeId, f64)> = circuit.gates().map(|g| (g, values[g.index()])).collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows.truncate(limit);
    let mut out = String::new();
    out.push_str(caption);
    out.push('\n');
    out.push_str(&format!("{:<16} {:>14}\n", "gate", "value"));
    for (id, v) in rows {
        out.push_str(&format!("{:<16} {:>14.4e}\n", circuit.node(id).name, v));
    }
    out
}

/// Formats two aligned series (e.g. ASERTA vs reference unreliability)
/// for the nodes given — the textual Fig. 3.
pub fn format_comparison(
    circuit: &Circuit,
    nodes: &[NodeId],
    left_name: &str,
    left: &[f64],
    right_name: &str,
    right: &[f64],
) -> String {
    let mut out = format!("{:<16} {:>14} {:>14}\n", "gate", left_name, right_name);
    for ((n, l), r) in nodes.iter().zip(left).zip(right) {
        out.push_str(&format!(
            "{:<16} {:>14.4e} {:>14.4e}\n",
            circuit.node(*n).name,
            l,
            r
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::generate;

    #[test]
    fn ranked_table_has_caption_and_rows() {
        let c = generate::c17();
        let values: Vec<f64> = (0..c.node_count()).map(|i| i as f64).collect();
        let t = format_ranked_table(&c, "soft spots", &values, 3);
        assert!(t.starts_with("soft spots"));
        // caption + header + 3 rows
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn comparison_lines_up() {
        let c = generate::c17();
        let nodes = vec![c.find("22").unwrap(), c.find("23").unwrap()];
        let t = format_comparison(&c, &nodes, "aserta", &[1.0, 2.0], "spice", &[1.1, 2.2]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("22"));
        assert!(t.contains("aserta"));
    }
}
