//! Logical masking: side-input sensitization probabilities `S_is` and the
//! propagation weights `π_isj` of the paper's Eq. 2.

use ser_netlist::{Circuit, GateKind, NodeId};

/// `S_is`: probability that gate `s` is sensitized to its fan-in `i`,
/// i.e. that every *other* fan-in of `s` carries a non-controlling value.
///
/// AND/NAND require 1s elsewhere (`Π p`), OR/NOR require 0s
/// (`Π (1−p)`); XOR/XNOR/NOT/BUF propagate unconditionally. If `i` feeds
/// several pins of `s`, all of them are excluded from the side product.
///
/// # Example
///
/// ```
/// use aserta::logical::side_sensitization;
/// use ser_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("t");
/// let a = b.input("a");
/// let c = b.input("b");
/// let y = b.gate(GateKind::And, "y", &[a, c]).unwrap();
/// b.mark_output(y);
/// let circuit = b.finish().unwrap();
/// let probs = vec![0.5, 0.25, 0.125];
/// // Side input of `a` at AND gate y is `b` with p(1) = 0.25.
/// assert_eq!(side_sensitization(&circuit, &probs, a, y), 0.25);
/// ```
pub fn side_sensitization(circuit: &Circuit, probs: &[f64], i: NodeId, s: NodeId) -> f64 {
    let node = circuit.node(s);
    match node.kind {
        GateKind::Xor | GateKind::Xnor | GateKind::Not | GateKind::Buf => 1.0,
        GateKind::And | GateKind::Nand => node
            .fanin
            .iter()
            .filter(|&&f| f != i)
            .map(|f| probs[f.index()])
            .product(),
        GateKind::Or | GateKind::Nor => node
            .fanin
            .iter()
            .filter(|&&f| f != i)
            .map(|f| 1.0 - probs[f.index()])
            .product(),
        GateKind::Input => 0.0,
    }
}

/// The deduplicated successors of `i` with their `S_is` weights.
pub fn successor_sensitizations(circuit: &Circuit, probs: &[f64], i: NodeId) -> Vec<(NodeId, f64)> {
    let mut out: Vec<(NodeId, f64)> = Vec::new();
    successor_sensitizations_into(circuit, probs, i, &mut out);
    out
}

/// [`successor_sensitizations`] into a caller-owned buffer (cleared
/// first) — the weight-cache builder calls this once per node, so
/// reusing one buffer avoids an allocation per node on large circuits.
pub fn successor_sensitizations_into(
    circuit: &Circuit,
    probs: &[f64],
    i: NodeId,
    out: &mut Vec<(NodeId, f64)>,
) {
    out.clear();
    for &s in circuit.fanout(i) {
        if out.iter().any(|&(seen, _)| seen == s) {
            continue; // multi-pin connection: one successor entry
        }
        out.push((s, side_sensitization(circuit, probs, i, s)));
    }
}

/// The Eq. 2 weights `π_isj = S_is·P_ij / Σ_k S_ik·P_kj` for one gate `i`
/// and one PO column `j`, in the same order as
/// [`successor_sensitizations`]. Zero denominators (no sensitizable route
/// through any successor) yield zero weights.
///
/// The normalization gives the Lemma-1 property
/// `Σ_s π_isj · P_sj = P_ij`, which the electrical-masking pass relies
/// on.
pub fn pi_weights(
    successors: &[(NodeId, f64)],
    p_ij: f64,
    p_sj: impl Fn(NodeId) -> f64,
) -> Vec<f64> {
    let mut out = Vec::new();
    pi_weights_into(successors, p_ij, p_sj, &mut out);
    out
}

/// [`pi_weights`] into a caller-owned buffer (cleared first) — called
/// once per `(node, reachable PO)` pair during weight-cache
/// construction, so the buffer reuse matters at 100k gates.
pub fn pi_weights_into(
    successors: &[(NodeId, f64)],
    p_ij: f64,
    p_sj: impl Fn(NodeId) -> f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    let denom: f64 = successors.iter().map(|&(s, s_is)| s_is * p_sj(s)).sum();
    if denom <= 0.0 || p_ij <= 0.0 {
        out.resize(successors.len(), 0.0);
        return;
    }
    out.extend(successors.iter().map(|&(_, s_is)| s_is * p_ij / denom));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::CircuitBuilder;

    /// y = NAND(i, b, c); z = NOR(i, d); x = XOR(i, e)
    fn rig() -> (Circuit, [NodeId; 8]) {
        let mut bb = CircuitBuilder::new("t");
        let i = bb.input("i");
        let b = bb.input("b");
        let c = bb.input("c");
        let d = bb.input("d");
        let e = bb.input("e");
        let y = bb.gate(GateKind::Nand, "y", &[i, b, c]).unwrap();
        let z = bb.gate(GateKind::Nor, "z", &[i, d]).unwrap();
        let x = bb.gate(GateKind::Xor, "x", &[i, e]).unwrap();
        bb.mark_output(y);
        bb.mark_output(z);
        bb.mark_output(x);
        (bb.finish().unwrap(), [i, b, c, d, e, y, z, x])
    }

    #[test]
    fn nand_needs_ones_nor_needs_zeros_xor_always() {
        let (circ, [i, b, c, d, _, y, z, x]) = rig();
        let mut probs = vec![0.0; circ.node_count()];
        probs[b.index()] = 0.8;
        probs[c.index()] = 0.5;
        probs[d.index()] = 0.3;
        assert!((side_sensitization(&circ, &probs, i, y) - 0.4).abs() < 1e-12);
        assert!((side_sensitization(&circ, &probs, i, z) - 0.7).abs() < 1e-12);
        assert_eq!(side_sensitization(&circ, &probs, i, x), 1.0);
    }

    #[test]
    fn multi_pin_feed_excludes_all_pins() {
        let mut bb = CircuitBuilder::new("t");
        let a = bb.input("a");
        let b = bb.input("b");
        let y = bb.gate(GateKind::And, "y", &[a, a, b]).unwrap();
        bb.mark_output(y);
        let circ = bb.finish().unwrap();
        let mut probs = vec![0.0; circ.node_count()];
        probs[a.index()] = 0.9;
        probs[b.index()] = 0.5;
        // Only b counts as a side input.
        assert_eq!(side_sensitization(&circ, &probs, a, y), 0.5);
        // And y appears once in the successor list.
        let succ = successor_sensitizations(&circ, &probs, a);
        assert_eq!(succ.len(), 1);
    }

    #[test]
    fn pi_weights_satisfy_lemma_property() {
        let (circ, [i, ..]) = rig();
        let mut probs = vec![0.5; circ.node_count()];
        probs[i.index()] = 0.5;
        let succ = successor_sensitizations(&circ, &probs, i);
        // Fake P values.
        let p_sj = |s: NodeId| 0.25 + 0.1 * (s.index() as f64 % 3.0);
        let p_ij = 0.4;
        let pis = pi_weights(&succ, p_ij, p_sj);
        let sum: f64 = succ
            .iter()
            .zip(&pis)
            .map(|(&(s, _), &pi)| pi * p_sj(s))
            .sum();
        assert!((sum - p_ij).abs() < 1e-12, "Σ π·P = {sum}, want {p_ij}");
    }

    #[test]
    fn zero_denominator_gives_zero_weights() {
        let (circ, [i, ..]) = rig();
        let probs = vec![0.5; circ.node_count()];
        let succ = successor_sensitizations(&circ, &probs, i);
        let pis = pi_weights(&succ, 0.4, |_| 0.0);
        assert!(pis.iter().all(|&p| p == 0.0));
    }
}
