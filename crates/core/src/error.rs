//! Typed analysis errors and the poisoned-session taxonomy.
//!
//! The fallible entry points (`try_with_pij`, `try_apply`,
//! `try_set_cells`, `try_set_charge`, `try_resample_pij_rows`,
//! [`try_analyze`](crate::try_analyze)) classify failures in two tiers:
//!
//! * **Rejections** — the input was invalid and nothing was mutated: the
//!   session is bitwise identical to its pre-call state
//!   ([`AnalysisError::MissingCellParams`],
//!   [`AnalysisError::InvalidGateParams`],
//!   [`AnalysisError::NonFiniteInput`],
//!   [`AnalysisError::InvalidConfig`], [`AnalysisError::BadCell`],
//!   [`AnalysisError::FaultInjected`], and
//!   [`AnalysisError::Interrupted`] when the session's
//!   [`Deadline`](ser_netlist::govern::Deadline) is already exhausted at
//!   a mutating entry point — the call is refused *before* any state
//!   changes);
//! * **Poisonings** — a numerical guard tripped *mid-recompute*, so the
//!   session's caches may be partially updated. The session records a
//!   [`PoisonReason`] and every further mutation is refused with
//!   [`AnalysisError::Poisoned`] until
//!   [`AnalysisSession::recover`](crate::AnalysisSession::recover) runs a
//!   full-dirty rebuild. An exhausted budget observed at a *stage
//!   boundary inside* a recompute poisons too
//!   ([`PoisonReason::Interrupted`]): the caches are partially updated
//!   at that point, exactly like a numerical fault.

use std::fmt;

use ser_logicsim::engine::EngineConfigError;
use ser_netlist::govern::Interrupted;

/// Why an [`AnalysisSession`](crate::AnalysisSession) is poisoned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoisonReason {
    /// A numerical guard in a hot kernel saw a NaN, infinity or negative
    /// quantity that must be non-negative.
    NumericalFault {
        /// Which kernel tripped (`"load"`, `"timing"`, `"generated-width"`,
        /// `"width-row"`, `"unreliability"`, `"critical-delay"`).
        stage: &'static str,
        /// The node being recomputed, when attributable.
        node: Option<u32>,
    },
    /// A fail point injected the fault mid-recompute (test builds only).
    Injected(&'static str),
    /// The execution budget ran out at a stage boundary *inside* a
    /// recompute; earlier stages had already mutated the caches.
    Interrupted(Interrupted),
    /// A recovery rebuild failed after the session had already shed its
    /// derived caches; only another recovery can restore the session.
    RecoveryFailed,
}

impl fmt::Display for PoisonReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoisonReason::NumericalFault {
                stage,
                node: Some(n),
            } => {
                write!(f, "non-finite value in the {stage} kernel at node {n}")
            }
            PoisonReason::NumericalFault { stage, node: None } => {
                write!(f, "non-finite value in the {stage} kernel")
            }
            PoisonReason::Injected(name) => write!(f, "fault injected at `{name}`"),
            PoisonReason::Interrupted(i) => write!(f, "recompute {i}"),
            PoisonReason::RecoveryFailed => {
                write!(f, "a recovery rebuild failed with the caches shed")
            }
        }
    }
}

/// Typed error surfaced by the fallible analysis entry points (see the
/// [module docs](self) for the rejection/poisoning split).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A gate has no cell parameters bound.
    MissingCellParams {
        /// The gate's node index.
        node: u32,
    },
    /// A gate's parameters are unusable (non-finite, non-positive size,
    /// or the target node is a primary input).
    InvalidGateParams {
        /// The offending node index.
        node: u32,
        /// What was wrong.
        reason: &'static str,
    },
    /// A library cell variant failed validation (non-finite table entries
    /// or unphysical scalars) — e.g. a hand-inserted or corrupted cell.
    BadCell {
        /// The gate bound to the bad cell.
        node: u32,
    },
    /// A scalar input (charge, probability, …) was non-finite or out of
    /// range.
    NonFiniteInput {
        /// What the scalar was.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The analysis configuration is unusable.
    InvalidConfig {
        /// What was wrong.
        reason: &'static str,
    },
    /// A fail point rejected the call before any mutation (test builds
    /// only); the session is bitwise intact.
    FaultInjected(&'static str),
    /// The session's execution budget
    /// ([`Deadline`](ser_netlist::govern::Deadline)) was already
    /// exhausted at a mutating entry point; the call was refused before
    /// any mutation, so the session is bitwise intact.
    Interrupted(Interrupted),
    /// The session is poisoned; only
    /// [`recover`](crate::AnalysisSession::recover) is accepted.
    Poisoned(PoisonReason),
    /// The engine environment overlay
    /// ([`EngineConfig::from_env`](ser_logicsim::engine::EngineConfig::from_env))
    /// found a malformed `SER_*` variable while resolving a session
    /// build; nothing was constructed.
    Engine(EngineConfigError),
}

impl From<EngineConfigError> for AnalysisError {
    fn from(e: EngineConfigError) -> Self {
        AnalysisError::Engine(e)
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::MissingCellParams { node } => {
                write!(f, "node {node} carries no cell parameters")
            }
            AnalysisError::InvalidGateParams { node, reason } => {
                write!(f, "invalid parameters for node {node}: {reason}")
            }
            AnalysisError::BadCell { node } => {
                write!(f, "library cell bound to node {node} fails validation")
            }
            AnalysisError::NonFiniteInput { what, value } => {
                write!(f, "{what} must be finite and in range, got {value:e}")
            }
            AnalysisError::InvalidConfig { reason } => {
                write!(f, "invalid analysis configuration: {reason}")
            }
            AnalysisError::FaultInjected(name) => {
                write!(f, "fault injected at `{name}` (session unchanged)")
            }
            AnalysisError::Interrupted(i) => {
                write!(f, "{i} (session unchanged)")
            }
            AnalysisError::Poisoned(reason) => {
                write!(f, "session is poisoned ({reason}); recover() first")
            }
            AnalysisError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = AnalysisError::Poisoned(PoisonReason::NumericalFault {
            stage: "width-row",
            node: Some(7),
        });
        let s = e.to_string();
        assert!(s.contains("poisoned") && s.contains("width-row") && s.contains('7'));
        assert!(AnalysisError::FaultInjected("aserta::session_recompute")
            .to_string()
            .contains("aserta::session_recompute"));
    }
}
