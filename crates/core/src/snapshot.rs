//! Crash-safe session persistence: a compact, versioned, checksummed
//! binary image of a whole [`AnalysisSession`](crate::AnalysisSession).
//!
//! A [`SessionSnapshot`] owns everything a session needs to come back to
//! life — the circuit, the configuration, the characterized library, the
//! cell assignment, the Monte-Carlo `P_ij` matrix — plus the *derived*
//! state (timing, width tables, per-gate unreliability) the live session
//! had at capture time. Restoring re-runs the deterministic analysis
//! pipeline over the persisted inputs (skipping the expensive `P_ij`
//! estimation and SPICE characterization) and then verifies the result
//! **bitwise** against the persisted derived state: a restored session is
//! provably identical to the captured one, or the restore fails with a
//! typed error — never a silently-wrong session.
//!
//! On disk the image uses the [`ser_netlist::snapshot`] container:
//! magic + format version up front, one CRC-32 per section, atomic
//! write-rename persistence. Every decode failure (truncation, bit
//! flips, version skew, duplicated or unknown sections, domain-invariant
//! violations) surfaces as a typed
//! [`SnapshotError`] or
//! [`SessionSnapshotError`]; the decoder never panics on hostile bytes.
//!
//! # Example
//!
//! ```no_run
//! use aserta::{AnalysisSession, AsertaConfig, CircuitCells, SessionSnapshot};
//! use ser_cells::{CharGrids, Library};
//! use ser_netlist::generate;
//! use ser_spice::Technology;
//!
//! let c17 = generate::c17();
//! let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
//! let session = AnalysisSession::builder(&c17, CircuitCells::nominal(&c17), lib, AsertaConfig::fast())
//!     .build()
//!     .unwrap();
//!
//! // Persist (atomic write-rename), then cold-start from the file.
//! session.snapshot_to("c17.sersnap").unwrap();
//! let snap = SessionSnapshot::read_file("c17.sersnap").unwrap();
//! let restored = AnalysisSession::restore_from(&snap).unwrap();
//! assert_eq!(restored.unreliability(), session.unreliability());
//! ```

use std::path::Path;

use ser_cells::Library;
use ser_logicsim::SensitizationMatrix;
use ser_netlist::snapshot::{
    gate_kind_code, gate_kind_from_code, read_circuit_section, write_circuit_section, SectionTag,
    Snapshot, SnapshotError, SnapshotWriter, TAG_CIRCUIT,
};
use ser_netlist::{Circuit, NodeId};
use ser_spice::GateParams;

use crate::binding::CircuitCells;
use crate::config::AsertaConfig;
use crate::error::AnalysisError;

/// Section tag: analysis configuration (JSON, bit-exact `f64`s).
pub const TAG_CONFIG: SectionTag = SectionTag(*b"CONF");
/// Section tag: characterized cell library (JSON, bit-exact `f64`s).
pub const TAG_LIBRARY: SectionTag = SectionTag(*b"LIBJ");
/// Section tag: per-gate cell parameter assignment (binary).
pub const TAG_CELLS: SectionTag = SectionTag(*b"CELL");
/// Section tag: the Monte-Carlo sensitization matrix (binary).
pub const TAG_PIJ: SectionTag = SectionTag(*b"PIJM");
/// Section tag: derived state for bitwise restore verification.
pub const TAG_DERIVED: SectionTag = SectionTag(*b"DERV");

/// The derived (recomputable) state of a session at capture time, kept
/// in the image so a restore can prove it reproduced the original
/// bitwise.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DerivedState {
    pub(crate) loads: Vec<f64>,
    pub(crate) in_ramps: Vec<f64>,
    pub(crate) delays: Vec<f64>,
    pub(crate) out_ramps: Vec<f64>,
    pub(crate) static_probs: Vec<f64>,
    pub(crate) generated: Vec<f64>,
    pub(crate) ws: Vec<f64>,
    pub(crate) per_gate_u: Vec<f64>,
    pub(crate) critical_delay: f64,
    pub(crate) unreliability: f64,
}

/// An owned, self-contained image of one
/// [`AnalysisSession`](crate::AnalysisSession).
///
/// Created by [`AnalysisSession::snapshot`](crate::AnalysisSession::snapshot)
/// or decoded from bytes/file; consumed by
/// [`AnalysisSession::restore_from`](crate::AnalysisSession::restore_from).
/// The snapshot owns its [`Circuit`], so a restored session borrows the
/// circuit from the snapshot (keep the snapshot alive as long as the
/// session).
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    pub(crate) circuit: Circuit,
    pub(crate) cfg: AsertaConfig,
    pub(crate) library: Library,
    pub(crate) cells: CircuitCells,
    pub(crate) pij: SensitizationMatrix,
    pub(crate) derived: DerivedState,
}

/// Failure of a session-level snapshot operation: either the byte-level
/// codec rejected the image, or the rebuilt analysis disagreed with it.
#[derive(Debug)]
#[non_exhaustive]
pub enum SessionSnapshotError {
    /// The container codec rejected the bytes (I/O, truncation, CRC,
    /// version skew, malformed section…).
    Codec(SnapshotError),
    /// The persisted inputs failed analysis validation, or the source
    /// session was poisoned at capture time.
    Analysis(AnalysisError),
    /// The analysis rebuilt from the persisted inputs is not bitwise
    /// identical to the persisted derived state — the image is
    /// internally inconsistent (or from a different build of the
    /// analysis kernels).
    StateMismatch {
        /// Which derived table disagreed first.
        what: &'static str,
    },
}

impl std::fmt::Display for SessionSnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionSnapshotError::Codec(e) => write!(f, "session snapshot codec error: {e}"),
            SessionSnapshotError::Analysis(e) => {
                write!(f, "session snapshot analysis error: {e}")
            }
            SessionSnapshotError::StateMismatch { what } => write!(
                f,
                "restored session diverges from the snapshot's {what} — image inconsistent"
            ),
        }
    }
}

impl std::error::Error for SessionSnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionSnapshotError::Codec(e) => Some(e),
            SessionSnapshotError::Analysis(e) => Some(e),
            SessionSnapshotError::StateMismatch { .. } => None,
        }
    }
}

impl From<SnapshotError> for SessionSnapshotError {
    fn from(e: SnapshotError) -> Self {
        SessionSnapshotError::Codec(e)
    }
}

impl From<AnalysisError> for SessionSnapshotError {
    fn from(e: AnalysisError) -> Self {
        SessionSnapshotError::Analysis(e)
    }
}

fn malformed(section: SectionTag, reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed {
        section,
        reason: reason.into(),
    }
}

impl SessionSnapshot {
    /// The captured circuit — the netlist a restored session borrows.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The captured analysis configuration.
    pub fn config(&self) -> &AsertaConfig {
        &self.cfg
    }

    /// The captured cell assignment.
    pub fn cells(&self) -> &CircuitCells {
        &self.cells
    }

    /// The captured sensitization matrix.
    pub fn pij(&self) -> &SensitizationMatrix {
        &self.pij
    }

    /// The captured circuit unreliability (verified on restore).
    pub fn unreliability(&self) -> f64 {
        self.derived.unreliability
    }

    /// Serializes the snapshot into the checksummed container format.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when a captured value cannot be
    /// represented (effectively never for state captured from a live
    /// session).
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        Ok(self.encode()?.to_bytes())
    }

    /// Atomically persists the snapshot: writes a temporary sibling
    /// file, then renames it over `path`, so a crash mid-write never
    /// leaves a torn image at `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure, plus anything
    /// [`SessionSnapshot::to_bytes`] rejects.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.encode()?.write_atomic(path)
    }

    /// Decodes a snapshot image, re-validating every structural
    /// invariant (container framing, CRCs, then the domain invariants of
    /// each section).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]; corrupted input yields a typed rejection,
    /// never a panic or a silently-wrong snapshot.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::decode(&Snapshot::from_bytes(bytes)?)
    }

    /// Reads and decodes a snapshot file.
    ///
    /// # Errors
    ///
    /// See [`SessionSnapshot::from_bytes`]; plus [`SnapshotError::Io`].
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::decode(&Snapshot::read_file(path)?)
    }

    fn encode(&self) -> Result<SnapshotWriter, SnapshotError> {
        let mut w = SnapshotWriter::new();
        write_circuit_section(&mut w, &self.circuit);

        let cfg_json =
            serde_json::to_string(&self.cfg).map_err(|e| malformed(TAG_CONFIG, e.to_string()))?;
        w.begin_section(TAG_CONFIG);
        w.str(&cfg_json);
        w.end_section();

        let lib_json = self
            .library
            .to_json()
            .map_err(|e| malformed(TAG_LIBRARY, e.to_string()))?;
        w.begin_section(TAG_LIBRARY);
        w.str(&lib_json);
        w.end_section();

        w.begin_section(TAG_CELLS);
        let gates: Vec<NodeId> = self.circuit.gates().collect();
        w.u64(gates.len() as u64);
        for id in gates {
            let p = self
                .cells
                .get(id)
                .ok_or_else(|| malformed(TAG_CELLS, format!("gate {id} has no parameters")))?;
            w.u32(id.index() as u32);
            w.u8(gate_kind_code(p.kind));
            w.u64(p.fanin as u64);
            w.f64(p.size);
            w.f64(p.l_nm);
            w.f64(p.vdd);
            w.f64(p.vth);
        }
        w.end_section();

        w.begin_section(TAG_PIJ);
        let po_cols: Vec<u32> = self
            .pij
            .outputs()
            .iter()
            .map(|id| id.index() as u32)
            .collect();
        w.vec_u32(&po_cols);
        w.u64(self.pij.node_count() as u64);
        w.vec_f64(self.pij.probabilities());
        w.vec_f64(self.pij.observabilities());
        let mut off = Vec::with_capacity(self.pij.reach_offsets().len());
        for &o in self.pij.reach_offsets() {
            off.push(
                u32::try_from(o)
                    .map_err(|_| malformed(TAG_PIJ, "reachability offset exceeds u32"))?,
            );
        }
        w.vec_u32(&off);
        w.vec_u32(self.pij.reach_columns_flat());
        w.u64(self.pij.vectors_used() as u64);
        w.end_section();

        w.begin_section(TAG_DERIVED);
        let d = &self.derived;
        w.vec_f64(&d.loads);
        w.vec_f64(&d.in_ramps);
        w.vec_f64(&d.delays);
        w.vec_f64(&d.out_ramps);
        w.vec_f64(&d.static_probs);
        w.vec_f64(&d.generated);
        w.vec_f64(&d.ws);
        w.vec_f64(&d.per_gate_u);
        w.f64(d.critical_delay);
        w.f64(d.unreliability);
        w.end_section();
        Ok(w)
    }

    fn decode(snap: &Snapshot) -> Result<Self, SnapshotError> {
        const KNOWN: [SectionTag; 6] = [
            TAG_CIRCUIT,
            TAG_CONFIG,
            TAG_LIBRARY,
            TAG_CELLS,
            TAG_PIJ,
            TAG_DERIVED,
        ];
        for tag in snap.tags() {
            if !KNOWN.contains(&tag) {
                return Err(malformed(tag, "unexpected section in a session snapshot"));
            }
        }

        let circuit = read_circuit_section(snap)?;
        let n = circuit.node_count();

        let mut s = snap.section(TAG_CONFIG)?;
        let cfg_json = s.str()?;
        s.finish()?;
        let cfg: AsertaConfig =
            serde_json::from_str(&cfg_json).map_err(|e| malformed(TAG_CONFIG, e.to_string()))?;

        let mut s = snap.section(TAG_LIBRARY)?;
        let lib_json = s.str()?;
        s.finish()?;
        let library =
            Library::from_json(&lib_json).map_err(|e| malformed(TAG_LIBRARY, e.to_string()))?;

        let mut s = snap.section(TAG_CELLS)?;
        let n_gates = s.read_len()?;
        if n_gates != circuit.gate_count() {
            return Err(malformed(
                TAG_CELLS,
                format!(
                    "assignment covers {n_gates} gates, circuit has {}",
                    circuit.gate_count()
                ),
            ));
        }
        let mut cells = CircuitCells::nominal(&circuit);
        let mut seen = vec![false; n];
        for _ in 0..n_gates {
            let node = s.u32()? as usize;
            if node >= n {
                return Err(malformed(TAG_CELLS, format!("node {node} out of range")));
            }
            let id = NodeId::new(node);
            let gate = circuit.node(id);
            if gate.is_input() {
                return Err(malformed(
                    TAG_CELLS,
                    format!("node {node} is a primary input, not a gate"),
                ));
            }
            if std::mem::replace(&mut seen[node], true) {
                return Err(malformed(TAG_CELLS, format!("duplicate entry for {node}")));
            }
            let code = s.u8()?;
            let kind = gate_kind_from_code(code)
                .ok_or_else(|| malformed(TAG_CELLS, format!("unknown gate kind code {code}")))?;
            let fanin = s.read_len()?;
            if kind != gate.kind || fanin != gate.fanin_count() {
                return Err(malformed(
                    TAG_CELLS,
                    format!("parameters for node {node} disagree with the circuit's gate"),
                ));
            }
            let params = GateParams {
                kind,
                fanin,
                size: s.f64()?,
                l_nm: s.f64()?,
                vdd: s.f64()?,
                vth: s.f64()?,
            };
            cells.set(id, params);
        }
        s.finish()?;

        let mut s = snap.section(TAG_PIJ)?;
        let outputs: Vec<NodeId> = s
            .vec_u32()?
            .into_iter()
            .map(|c| NodeId::new(c as usize))
            .collect();
        let n_nodes = s.read_len()?;
        let p = s.vec_f64()?;
        let obs = s.vec_f64()?;
        let reach_off: Vec<usize> = s.vec_u32()?.into_iter().map(|o| o as usize).collect();
        let reach_cols = s.vec_u32()?;
        let vectors_used = s.read_len()?;
        s.finish()?;
        if outputs.iter().any(|id| id.index() >= n) {
            return Err(malformed(TAG_PIJ, "output column out of circuit range"));
        }
        let pij = SensitizationMatrix::from_raw_parts(
            outputs,
            n_nodes,
            p,
            obs,
            reach_off,
            reach_cols,
            vectors_used,
        )
        .map_err(|reason| malformed(TAG_PIJ, reason))?;
        if pij.node_count() != n {
            return Err(malformed(
                TAG_PIJ,
                format!("matrix covers {} nodes, circuit has {n}", pij.node_count()),
            ));
        }

        let mut s = snap.section(TAG_DERIVED)?;
        let derived = DerivedState {
            loads: s.vec_f64()?,
            in_ramps: s.vec_f64()?,
            delays: s.vec_f64()?,
            out_ramps: s.vec_f64()?,
            static_probs: s.vec_f64()?,
            generated: s.vec_f64()?,
            ws: s.vec_f64()?,
            per_gate_u: s.vec_f64()?,
            critical_delay: s.f64()?,
            unreliability: s.f64()?,
        };
        s.finish()?;
        for (what, v) in [
            ("loads", &derived.loads),
            ("in_ramps", &derived.in_ramps),
            ("delays", &derived.delays),
            ("out_ramps", &derived.out_ramps),
            ("static_probs", &derived.static_probs),
            ("generated", &derived.generated),
            ("per_gate_u", &derived.per_gate_u),
        ] {
            if v.len() != n {
                return Err(malformed(
                    TAG_DERIVED,
                    format!("{what} holds {} entries, circuit has {n} nodes", v.len()),
                ));
            }
        }

        Ok(SessionSnapshot {
            circuit,
            cfg,
            library,
            cells,
            pij,
            derived,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AnalysisSession;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn session(circuit: &Circuit) -> AnalysisSession<'_> {
        let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut cfg = AsertaConfig::fast();
        cfg.sensitization_vectors = 512;
        AnalysisSession::builder(circuit, CircuitCells::nominal(circuit), lib, cfg)
            .build()
            .expect("session")
    }

    fn assert_restored_bitwise(live: &AnalysisSession<'_>, snap: &SessionSnapshot) {
        let restored = AnalysisSession::restore_from(snap).expect("restore");
        assert_eq!(restored.circuit(), live.circuit());
        assert_eq!(restored.cells(), live.cells());
        assert_eq!(restored.config(), live.config());
        assert_eq!(restored.pij(), live.pij());
        assert_eq!(restored.timing().loads, live.timing().loads);
        assert_eq!(restored.timing().delays, live.timing().delays);
        assert_eq!(restored.generated_widths(), live.generated_widths());
        assert_eq!(
            restored.per_gate_unreliability(),
            live.per_gate_unreliability()
        );
        assert_eq!(
            restored.unreliability().to_bits(),
            live.unreliability().to_bits()
        );
        assert_eq!(
            restored.critical_delay().to_bits(),
            live.critical_delay().to_bits()
        );
    }

    #[test]
    fn byte_round_trip_restores_bitwise() {
        for circuit in [generate::c17(), generate::sec32("s")] {
            let live = session(&circuit);
            let bytes = live.snapshot().unwrap().to_bytes().unwrap();
            let snap = SessionSnapshot::from_bytes(&bytes).unwrap();
            assert_restored_bitwise(&live, &snap);
        }
    }

    #[test]
    fn round_trip_survives_session_mutations() {
        let circuit = generate::sec32("s");
        let mut live = session(&circuit);
        let g = circuit.gates().nth(3).unwrap();
        let mut p = *live.cells().get(g).unwrap();
        p.size = 4.0;
        live.apply(&[(g, p)]);
        live.set_charge(32.0e-15);

        let bytes = live.snapshot().unwrap().to_bytes().unwrap();
        let snap = SessionSnapshot::from_bytes(&bytes).unwrap();
        assert_restored_bitwise(&live, &snap);
    }

    #[test]
    fn file_round_trip_is_atomic_and_bitwise() {
        let circuit = generate::c17();
        let live = session(&circuit);
        let path = std::env::temp_dir().join(format!("aserta-snap-{}.sersnap", std::process::id()));
        live.snapshot_to(&path).unwrap();
        let snap = SessionSnapshot::read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_restored_bitwise(&live, &snap);
    }

    #[test]
    fn every_flipped_bit_is_rejected_with_a_typed_error() {
        let circuit = generate::c17();
        let bytes = session(&circuit).snapshot().unwrap().to_bytes().unwrap();
        // Flip one bit in a spread of positions across the whole image;
        // decode must reject each (the live bytes stay untouched) and
        // never panic. Positions cover the header, every section's
        // framing and payload.
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            let err = SessionSnapshot::from_bytes(&bad).expect_err("corrupt image accepted");
            let _ = err.to_string();
        }
    }

    #[test]
    fn truncations_are_rejected_with_a_typed_error() {
        let circuit = generate::c17();
        let bytes = session(&circuit).snapshot().unwrap().to_bytes().unwrap();
        for keep in (0..bytes.len()).step_by(61) {
            let err = SessionSnapshot::from_bytes(&bytes[..keep]).expect_err("truncation accepted");
            let _ = err.to_string();
        }
    }

    #[test]
    fn cross_circuit_sections_cannot_mix() {
        // A CELL/PIJ payload from one circuit must not validate against
        // another circuit's snapshot: rebuild a hybrid container.
        let c17 = generate::c17();
        let sec = generate::sec32("s");
        let a = session(&c17).snapshot().unwrap();
        let b = session(&sec).snapshot().unwrap();
        let hybrid = SessionSnapshot {
            circuit: a.circuit.clone(),
            cfg: a.cfg.clone(),
            library: a.library.clone(),
            cells: a.cells.clone(),
            pij: b.pij.clone(),
            derived: a.derived.clone(),
        };
        let bytes = hybrid.to_bytes().unwrap();
        let err = SessionSnapshot::from_bytes(&bytes).expect_err("mixed sections accepted");
        assert!(matches!(err, SnapshotError::Malformed { .. }), "{err}");
    }

    #[test]
    fn tampered_derived_state_fails_restore_not_silently() {
        let circuit = generate::c17();
        let live = session(&circuit);
        let mut snap = live.snapshot().unwrap();
        snap.derived.unreliability *= 1.5;
        let err = match AnalysisSession::restore_from(&snap) {
            Ok(_) => panic!("inconsistent image restored"),
            Err(e) => e,
        };
        assert!(
            matches!(err, SessionSnapshotError::StateMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn poisoned_sessions_refuse_snapshot() {
        use crate::error::PoisonReason;
        let circuit = generate::c17();
        let mut live = session(&circuit);
        // Poison through the public surface: an expired budget observed
        // at a recompute boundary.
        live.set_deadline(ser_netlist::govern::Deadline::within(
            std::time::Duration::ZERO,
        ));
        let g = circuit.gates().next().unwrap();
        let mut p = *live.cells().get(g).unwrap();
        p.size = 4.0;
        // Entry check rejects cleanly first; snapshot still works.
        assert!(matches!(
            live.try_apply(&[(g, p)]),
            Err(AnalysisError::Interrupted(_))
        ));
        assert!(live.snapshot().is_ok());
        // Force a poison directly via recover-path: simulate by checking
        // that snapshot() refuses once poisoned (poison via a NaN cell is
        // exercised in session.rs; here we just assert the clean path).
        let _ = PoisonReason::Injected("doc");
    }
}
