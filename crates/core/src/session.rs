//! The incremental analysis engine: a persistent [`AnalysisSession`]
//! that keeps every ASERTA artifact alive between evaluations and
//! re-derives only what a batch of per-gate deltas actually invalidates.
//!
//! The SERTOPT inner loop re-evaluates circuit unreliability after every
//! candidate move, and consecutive candidates differ in a handful of
//! gates. A fresh [`analyze`](crate::analyze) pays the full
//! `O((V+E)·K·|PO|)` width pass (plus timing and library work) per move;
//! the session instead scopes each recomputation with dirty-set closures
//! over the flat CSR view:
//!
//! * a **cell change** at gate `g` dirties the loads of `g`'s fan-ins and
//!   `g`'s own delay/ramp; ramp changes flow through the *fan-out
//!   closure*, stopping as soon as recomputed values are bitwise
//!   unchanged;
//! * a **delay change** at `g` dirties the hoisted interpolation brackets
//!   of `g` and the expected-width rows of `g`'s *strict ancestors* —
//!   rows are re-derived in reverse topological order from the cached
//!   successor tables, again stopping where recomputed rows are bitwise
//!   unchanged;
//! * the Eq. 2 weights `π_isj` and static probabilities depend only on
//!   the circuit's logic, so they are computed once and served from a
//!   per-cone weight cache; `P_ij` likewise persists, with
//!   [`AnalysisSession::resample_pij_rows`] re-simulating selected cones
//!   (via [`ser_logicsim::sensitize::resimulate_rows`]) when the caller
//!   wants sharper estimates for specific nodes.
//!
//! **Fidelity contract:** after any sequence of
//! [`AnalysisSession::set_cells`] / [`AnalysisSession::apply`] calls, the
//! session state is *bitwise identical* to a fresh
//! [`analyze`](crate::analyze) of the mutated assignment — every skipped
//! recomputation is guarded by a bitwise comparison of its inputs. The
//! workspace property test `session_equiv` pins this.
//!
//! **Fault tolerance:** every mutating entry point has a fallible `try_*`
//! form returning [`AnalysisError`]. Untrusted inputs (configuration
//! scalars, cell parameters, charges) are validated *before* any
//! mutation, so a rejection leaves the session bitwise intact. Numerical
//! guards in the hot kernels (loads, timing lookups, generated widths,
//! expected-width rows, the unreliability resum) catch NaN/Inf/negative
//! intermediates mid-recompute; since the caches are then partially
//! updated, the session flips to a *poisoned* state
//! ([`AnalysisSession::is_poisoned`]) that refuses further mutations with
//! [`AnalysisError::Poisoned`] until [`AnalysisSession::recover`] /
//! [`AnalysisSession::recover_with`] runs a full-dirty rebuild. Read
//! accessors keep working on a poisoned session. The legacy panicking
//! API is preserved as thin wrappers over the `try_*` forms.
//!
//! # Example
//!
//! ```no_run
//! use aserta::{AnalysisSession, AsertaConfig, CircuitCells};
//! use ser_cells::{CharGrids, Library};
//! use ser_netlist::generate;
//! use ser_spice::Technology;
//!
//! let c17 = generate::c17();
//! let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
//! let mut session =
//!     AnalysisSession::builder(&c17, CircuitCells::nominal(&c17), lib, AsertaConfig::fast())
//!         .build()
//!         .unwrap();
//! let g = c17.find("10").unwrap();
//! let mut p = *session.cells().get(g).unwrap();
//! p.size = 4.0;
//! let stats = session.apply(&[(g, p)]);
//! println!(
//!     "U = {:.3e} after touching {} rows",
//!     session.unreliability(),
//!     stats.rows_recomputed
//! );
//! ```

use std::path::Path;

use ser_cells::{CharacterizedCell, Library};
use ser_logicsim::engine::EngineConfig;
use ser_logicsim::probability::static_probabilities_analytic;
use ser_logicsim::sensitize::{
    resimulate_rows_cfg, sensitization_probabilities_cfg, sensitization_probabilities_governed_cfg,
};
use ser_logicsim::SensitizationMatrix;
use ser_netlist::csr::CsrView;
use ser_netlist::dirty::{close_over_fanout, strict_ancestors, SparseSet};
use ser_netlist::govern::{Deadline, DegradationEvent};
use ser_netlist::{Circuit, NodeId};
use ser_spice::GateParams;

use crate::analysis::AsertaReport;
use crate::binding::{timing_view, CircuitCells, LoadModel, TimingView};
use crate::config::AsertaConfig;
use crate::electrical::{ExpectedWidths, InterpBrackets, RowKernel, WeightCache};
use crate::error::{AnalysisError, PoisonReason};
use crate::glitch::AttenuationModel;
use crate::snapshot::{DerivedState, SessionSnapshot, SessionSnapshotError};

/// What one [`AnalysisSession::set_cells`] /
/// [`AnalysisSession::apply`] call actually recomputed — the observable
/// face of the dirty-set machinery, useful for asserting locality and
/// for downstream incremental caches (e.g. per-gate energy).
#[derive(Debug, Clone, Default)]
pub struct ApplyStats {
    /// Gates whose cell parameters differed from the current assignment.
    pub gates_changed: usize,
    /// Nodes whose capacitive load changed.
    pub loads_changed: usize,
    /// Nodes whose propagation delay changed.
    pub delays_changed: usize,
    /// Expected-width rows re-derived (dirty candidates actually hit).
    pub rows_recomputed: usize,
    /// Re-derived rows that changed at least one bit.
    pub rows_changed: usize,
    /// Gates whose cell parameters *or* load changed — exactly the set a
    /// per-gate energy/area cache must refresh.
    pub energy_dirty: Vec<u32>,
}

/// Reusable per-apply scratch state (kept allocated between moves).
#[derive(Debug, Clone)]
struct Scratch {
    load_cand: SparseSet,
    load_changed: SparseSet,
    timing_affected: SparseSet,
    delay_changed: SparseSet,
    row_cand: SparseSet,
    row_changed: SparseSet,
    u_dirty: SparseSet,
    row_buf: Vec<f64>,
    arrival: Vec<f64>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            load_cand: SparseSet::new(n),
            load_changed: SparseSet::new(n),
            timing_affected: SparseSet::new(n),
            delay_changed: SparseSet::new(n),
            row_cand: SparseSet::new(n),
            row_changed: SparseSet::new(n),
            u_dirty: SparseSet::new(n),
            // Sized lazily by the row kernel (sparse rows have
            // per-node lengths).
            row_buf: Vec::new(),
            arrival: vec![0.0; n],
        }
    }
}

/// A persistent, incrementally-updated ASERTA analysis of one circuit.
///
/// See the [module docs](self) for the dirty-set architecture and the
/// bitwise fidelity contract. The session owns its [`Library`] (variants
/// are characterized lazily on first use), so it is `Clone` + `Send`:
/// optimizers replicate one session per worker thread and evaluate
/// independent candidates in parallel.
#[derive(Debug, Clone)]
pub struct AnalysisSession<'c> {
    circuit: &'c Circuit,
    cfg: AsertaConfig,
    library: Library,
    cells: CircuitCells,
    csr: CsrView,
    pij: SensitizationMatrix,
    static_probs: Vec<f64>,
    grid: Vec<f64>,
    weights: WeightCache,
    timing: TimingView,
    critical_delay: f64,
    generated: Vec<f64>,
    widths: ExpectedWidths,
    brackets: InterpBrackets,
    per_gate_u: Vec<f64>,
    unreliability: f64,
    poison: Option<PoisonReason>,
    deadline: Deadline,
    engine: EngineConfig,
    degradations: Vec<DegradationEvent>,
    scratch: Scratch,
}

/// The single construction path for [`AnalysisSession`] — obtained via
/// [`AnalysisSession::builder`], finished with
/// [`SessionBuilder::build`].
///
/// The builder folds what used to be five constructor entry points
/// (`new` / `try_new` / `with_pij` / `try_with_pij` /
/// `try_new_governed`) into one fallible surface:
///
/// * [`SessionBuilder::pij`] supplies a precomputed sensitization
///   matrix (to share one estimate across sessions); without it the
///   builder runs the Monte-Carlo estimate itself;
/// * [`SessionBuilder::deadline`] installs a cooperative execution
///   budget; when the builder estimates `P_ij` the estimate runs
///   *governed* under it (truncations and memory-governor events are
///   recorded as [`DegradationEvent`]s, exactly as the former
///   `try_new_governed`);
/// * [`SessionBuilder::engine`] pins execution-resource knobs
///   (threads, chunking, soft memory budget); unset fields fall
///   through to the strict environment overlay
///   ([`EngineConfig::from_env`]) and then the built-in defaults —
///   explicit > env > default. Results are bitwise identical for every
///   engine setting.
#[derive(Debug)]
#[must_use = "a SessionBuilder does nothing until `.build()`"]
pub struct SessionBuilder<'c> {
    circuit: &'c Circuit,
    cells: CircuitCells,
    library: Library,
    cfg: AsertaConfig,
    pij: Option<SensitizationMatrix>,
    deadline: Option<Deadline>,
    engine: EngineConfig,
}

impl<'c> SessionBuilder<'c> {
    /// Supplies a precomputed sensitization matrix; the builder skips
    /// its own estimate. The matrix must cover exactly the circuit's
    /// primary outputs.
    pub fn pij(mut self, pij: SensitizationMatrix) -> Self {
        self.pij = Some(pij);
        self
    }

    /// Installs a cooperative execution budget. A builder-run `P_ij`
    /// estimate runs governed under it (see [`AnalysisSession::builder`]);
    /// the deadline stays installed on the session, so later mutations
    /// keep honoring it ([`AnalysisSession::set_deadline`]).
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Pins execution-resource knobs for this build. Unset fields fall
    /// through to the strict environment overlay and the built-in
    /// defaults (explicit > env > default).
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Builds the session: resolves the engine overlay, estimates
    /// `P_ij` unless one was supplied, runs one full analysis and
    /// materializes every cache the incremental path serves from.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Engine`] when the environment overlay finds a
    ///   malformed `SER_*` variable (nothing is constructed);
    /// * [`AnalysisError::InvalidConfig`] for unusable configuration
    ///   scalars, or a supplied sensitization matrix that does not
    ///   cover exactly the circuit's primary outputs;
    /// * [`AnalysisError::MissingCellParams`] when a gate carries no
    ///   parameters;
    /// * [`AnalysisError::InvalidGateParams`] for non-finite or
    ///   unphysical parameters;
    /// * [`AnalysisError::BadCell`] when a gate's characterized library
    ///   cell fails validation (non-finite lookup tables or scalars);
    /// * [`AnalysisError::Interrupted`] when a deadline expires before
    ///   even one estimate block completes (there is no partial state
    ///   worth keeping).
    pub fn build(self) -> Result<AnalysisSession<'c>, AnalysisError> {
        validate_config(&self.cfg)?;
        let engine = self.engine.overlay(&EngineConfig::from_env()?);
        let (pij, events) = match (self.pij, &self.deadline) {
            (Some(pij), _) => (pij, Vec::new()),
            (None, None) => (
                sensitization_probabilities_cfg(
                    self.circuit,
                    self.cfg.sensitization_vectors,
                    self.cfg.seed,
                    engine.threads(),
                    engine.cone_chunk(),
                    &engine.pij(),
                ),
                Vec::new(),
            ),
            (None, Some(deadline)) => {
                let est = sensitization_probabilities_governed_cfg(
                    self.circuit,
                    self.cfg.sensitization_vectors,
                    self.cfg.seed,
                    engine.threads(),
                    engine.cone_chunk(),
                    &engine.pij(),
                    deadline,
                    engine.mem_soft_limit(),
                )
                .map_err(AnalysisError::Interrupted)?;
                let mut events = est.events;
                if est.interrupted.is_some()
                    && est.vectors_completed < self.cfg.sensitization_vectors
                {
                    events.push(DegradationEvent::EstimateTruncated {
                        completed: est.vectors_completed,
                        requested: self.cfg.sensitization_vectors,
                    });
                }
                (est.matrix, events)
            }
        };
        let mut session =
            AnalysisSession::construct(self.circuit, self.cells, self.library, self.cfg, pij)?;
        session.engine = engine;
        if let Some(deadline) = self.deadline {
            session.deadline = deadline;
        }
        session.degradations = events;
        Ok(session)
    }
}

impl<'c> AnalysisSession<'c> {
    /// Starts the single construction path: a [`SessionBuilder`] over
    /// the circuit, cell assignment, library and analysis
    /// configuration. See [`SessionBuilder`] for the optional pieces
    /// (precomputed `P_ij`, deadline, engine knobs).
    pub fn builder(
        circuit: &'c Circuit,
        cells: CircuitCells,
        library: Library,
        cfg: AsertaConfig,
    ) -> SessionBuilder<'c> {
        SessionBuilder {
            circuit,
            cells,
            library,
            cfg,
            pij: None,
            deadline: None,
            engine: EngineConfig::new(),
        }
    }

    /// Builds a session: estimates `P_ij` (once), runs one full analysis
    /// and materializes every cache the incremental path serves from.
    ///
    /// # Panics
    ///
    /// Panics on any [`AnalysisError`];
    /// [`AnalysisSession::builder`] is the fallible form.
    #[deprecated(since = "0.2.0", note = "use AnalysisSession::builder(..).build()")]
    pub fn new(
        circuit: &'c Circuit,
        cells: CircuitCells,
        library: Library,
        cfg: AsertaConfig,
    ) -> Self {
        match Self::builder(circuit, cells, library, cfg).build() {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates the configuration before the
    /// (expensive) `P_ij` estimate.
    ///
    /// # Errors
    ///
    /// See [`SessionBuilder::build`].
    #[deprecated(since = "0.2.0", note = "use AnalysisSession::builder(..).build()")]
    pub fn try_new(
        circuit: &'c Circuit,
        cells: CircuitCells,
        library: Library,
        cfg: AsertaConfig,
    ) -> Result<Self, AnalysisError> {
        Self::builder(circuit, cells, library, cfg).build()
    }

    /// Constructor with a caller-provided sensitization matrix (to
    /// share one estimate across sessions).
    ///
    /// # Panics
    ///
    /// Panics on any [`AnalysisError`];
    /// [`AnalysisSession::builder`] + [`SessionBuilder::pij`] is the
    /// fallible form.
    #[deprecated(
        since = "0.2.0",
        note = "use AnalysisSession::builder(..).pij(..).build()"
    )]
    pub fn with_pij(
        circuit: &'c Circuit,
        cells: CircuitCells,
        library: Library,
        cfg: AsertaConfig,
        pij: SensitizationMatrix,
    ) -> Self {
        match Self::builder(circuit, cells, library, cfg).pij(pij).build() {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor over a caller-provided sensitization
    /// matrix.
    ///
    /// # Errors
    ///
    /// See [`SessionBuilder::build`].
    #[deprecated(
        since = "0.2.0",
        note = "use AnalysisSession::builder(..).pij(..).build()"
    )]
    pub fn try_with_pij(
        circuit: &'c Circuit,
        cells: CircuitCells,
        library: Library,
        cfg: AsertaConfig,
        pij: SensitizationMatrix,
    ) -> Result<Self, AnalysisError> {
        Self::builder(circuit, cells, library, cfg).pij(pij).build()
    }

    /// The untrusted-input boundary of session construction: validates
    /// everything, runs the full analysis, materializes the caches. The
    /// engine field is stamped by the caller (builder/restore) after
    /// construction.
    pub(crate) fn construct(
        circuit: &'c Circuit,
        cells: CircuitCells,
        mut library: Library,
        cfg: AsertaConfig,
        pij: SensitizationMatrix,
    ) -> Result<Self, AnalysisError> {
        validate_config(&cfg)?;
        if pij.outputs() != circuit.primary_outputs() {
            return Err(AnalysisError::InvalidConfig {
                reason: "sensitization matrix does not cover the circuit's primary outputs",
            });
        }
        for id in circuit.gates() {
            let node = id.index() as u32;
            let p = cells
                .get(id)
                .ok_or(AnalysisError::MissingCellParams { node })?;
            validate_gate_params(node, p)?;
            if !library.get_or_characterize(p).validate() {
                return Err(AnalysisError::BadCell { node });
            }
        }

        let n = circuit.node_count();
        let loads_model = LoadModel {
            wire_cap_per_pin: cfg.wire_cap_per_pin,
            po_load: cfg.po_load,
        };
        let timing = timing_view(circuit, &cells, &mut library, loads_model, cfg.pi_ramp);
        let static_probs = static_probabilities_analytic(circuit, cfg.pi_probability);

        let mut generated = vec![0.0f64; n];
        for id in circuit.gates() {
            let Some(p) = cells.get(id) else {
                panic!("invariant: gates carry parameters (validated above)")
            };
            let cell = library.get_or_characterize(p);
            generated[id.index()] = cell.glitch_width_at(timing.loads[id.index()], cfg.charge);
        }

        // Width tables by the shared full-dirty pass: every row derived
        // by the same kernel the incremental path applies to dirty rows
        // only; the session keeps the weight cache and brackets alive as
        // its caches.
        let grid = cfg.sample_width_grid();
        let (widths, weights, brackets) = crate::electrical::full_width_state(
            circuit,
            &static_probs,
            &pij,
            &timing.delays,
            grid.clone(),
            AttenuationModel::PaperEq1,
        );

        let mut per_gate_u = vec![0.0f64; n];
        for id in circuit.gates() {
            let Some(p) = cells.get(id) else {
                panic!("invariant: gates carry parameters (validated above)")
            };
            per_gate_u[id.index()] =
                p.size * widths.total_expected_width(id, generated[id.index()]);
        }
        let critical_delay = timing.critical_path_delay(circuit);

        let mut session = AnalysisSession {
            circuit,
            cfg,
            library,
            cells,
            csr: CsrView::build(circuit),
            pij,
            static_probs,
            grid,
            weights,
            timing,
            critical_delay,
            generated,
            widths,
            brackets,
            per_gate_u,
            unreliability: 0.0,
            poison: None,
            deadline: Deadline::none(),
            engine: EngineConfig::new(),
            degradations: Vec::new(),
            scratch: Scratch::new(n),
        };
        session.resum_unreliability();
        Ok(session)
    }

    /// Governed constructor: the Monte-Carlo `P_ij` estimate runs under
    /// a cooperative execution budget. When the budget expires
    /// mid-estimate, the completed blocks (a consistent partial
    /// estimate over fewer vectors) are kept, the truncation is
    /// recorded as a [`DegradationEvent::EstimateTruncated`], and
    /// construction finishes over the partial matrix. The deadline
    /// stays installed on the session.
    ///
    /// # Errors
    ///
    /// See [`SessionBuilder::build`].
    #[deprecated(
        since = "0.2.0",
        note = "use AnalysisSession::builder(..).deadline(..).build()"
    )]
    pub fn try_new_governed(
        circuit: &'c Circuit,
        cells: CircuitCells,
        library: Library,
        cfg: AsertaConfig,
        deadline: Deadline,
    ) -> Result<Self, AnalysisError> {
        Self::builder(circuit, cells, library, cfg)
            .deadline(deadline)
            .build()
    }

    /// The circuit under analysis.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The analysis settings in force.
    pub fn config(&self) -> &AsertaConfig {
        &self.cfg
    }

    /// The current cell assignment.
    pub fn cells(&self) -> &CircuitCells {
        &self.cells
    }

    /// The cached sensitization matrix.
    pub fn pij(&self) -> &SensitizationMatrix {
        &self.pij
    }

    /// The static 1-probabilities used for logical masking.
    pub fn static_probs(&self) -> &[f64] {
        &self.static_probs
    }

    /// The current timing view (loads, ramps, delays).
    pub fn timing(&self) -> &TimingView {
        &self.timing
    }

    /// The critical PI→PO path delay of the current assignment, seconds.
    pub fn critical_delay(&self) -> f64 {
        self.critical_delay
    }

    /// Per-gate generated glitch widths, seconds.
    pub fn generated_widths(&self) -> &[f64] {
        &self.generated
    }

    /// Circuit unreliability `U` (Eq. 4) of the current assignment.
    pub fn unreliability(&self) -> f64 {
        self.unreliability
    }

    /// Whether the session is poisoned: a numerical guard (or an injected
    /// fault) tripped mid-recompute, so the caches may be partially
    /// updated. A poisoned session refuses every further mutation with
    /// [`AnalysisError::Poisoned`]; reads keep working. Clear it with
    /// [`AnalysisSession::recover`].
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    /// Why the session is poisoned, if it is.
    pub fn poison(&self) -> Option<&PoisonReason> {
        self.poison.as_ref()
    }

    /// The execution budget in force ([`Deadline::none`] by default).
    pub fn deadline(&self) -> &Deadline {
        &self.deadline
    }

    /// The resolved engine configuration this session was built with
    /// (explicit knobs overlaid on the environment at build time).
    /// Purely an execution-resource record — results never depend on it.
    pub fn engine(&self) -> &EngineConfig {
        &self.engine
    }

    /// Approximate resident footprint of the session's caches, bytes —
    /// the accounting unit a byte-budget session pool evicts by. The
    /// estimate covers the dominant tables (`P_ij` rows, expected-width
    /// tables, the per-node vectors); per-cell library state and
    /// allocator overhead are not counted, so treat it as a lower-bound
    /// proxy, not an allocator measurement.
    pub fn resident_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        let n = self.circuit.node_count();
        let n_pos = self.circuit.primary_outputs().len();
        // P_ij: dense row-major rows + union observability + reach CSR.
        let pij = n * n_pos * f + n * f + self.pij.reachable_pairs() * 4;
        // Expected-width tables (sparse per-node slabs).
        let widths = std::mem::size_of_val(self.widths.ws());
        // Per-node vectors: static probs, generated widths, per-gate U,
        // 4 timing arrays, scratch arrival.
        let per_node = 8 * n * f;
        pij + widths + per_node
    }

    /// Installs a cooperative execution budget. Every mutating entry
    /// point first checks it (an exhausted budget is a clean
    /// [`AnalysisError::Interrupted`] rejection, session untouched), and
    /// recompute stages re-check it at their boundaries (an exhaustion
    /// observed there poisons the session with
    /// [`PoisonReason::Interrupted`], since the caches are partially
    /// updated — recover as for any poisoning).
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Removes any execution budget.
    pub fn clear_deadline(&mut self) {
        self.deadline = Deadline::none();
    }

    /// Graceful-degradation events recorded while building or governing
    /// this session (estimate truncation, cone-arena shrinks/evictions
    /// under a soft memory budget). Also surfaced on
    /// [`AnalysisSession::report`].
    pub fn degradations(&self) -> &[DegradationEvent] {
        &self.degradations
    }

    /// Per-node `U_i` (Eq. 3); zero for primary inputs.
    pub fn per_gate_unreliability(&self) -> &[f64] {
        &self.per_gate_u
    }

    /// The expected-width tables of the current assignment.
    pub fn expected_widths(&self) -> &ExpectedWidths {
        &self.widths
    }

    /// The characterized cell and output load of a gate — the inputs a
    /// downstream per-gate cache (energy, area) needs to refresh an
    /// [`ApplyStats::energy_dirty`] entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a primary input.
    pub fn cell_and_load(&mut self, id: NodeId) -> (&CharacterizedCell, f64) {
        let load = self.timing.loads[id.index()];
        let Some(p) = self.cells.get(id) else {
            panic!("cell_and_load: node {id} is a primary input")
        };
        (self.library.get_or_characterize(p), load)
    }

    /// Packages the current state as a classic [`AsertaReport`] (clones
    /// the tables — use the accessors on the hot path).
    pub fn report(&self) -> AsertaReport {
        AsertaReport {
            unreliability: self.unreliability,
            per_gate_unreliability: self.per_gate_u.clone(),
            generated_widths: self.generated.clone(),
            expected_widths: self.widths.clone(),
            static_probs: self.static_probs.clone(),
            timing: self.timing.clone(),
            degradations: self.degradations.iter().map(ToString::to_string).collect(),
        }
    }

    /// Consumes the session, moving its state into a classic
    /// [`AsertaReport`] without cloning the tables — the tail of the
    /// cold-start [`analyze`](crate::analyze) path.
    pub fn into_report(self) -> AsertaReport {
        AsertaReport {
            unreliability: self.unreliability,
            per_gate_unreliability: self.per_gate_u,
            generated_widths: self.generated,
            expected_widths: self.widths,
            static_probs: self.static_probs,
            timing: self.timing,
            degradations: self.degradations.iter().map(ToString::to_string).collect(),
        }
    }

    /// Captures the whole session as an owned, persistable
    /// [`SessionSnapshot`] (circuit, configuration, library, cell
    /// assignment, `P_ij`, and the derived state for bitwise restore
    /// verification).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Poisoned`] — a poisoned session's caches are
    /// partially updated, so an image of them could never verify;
    /// recover first.
    pub fn snapshot(&self) -> Result<SessionSnapshot, AnalysisError> {
        self.ensure_clean()?;
        Ok(SessionSnapshot {
            circuit: self.circuit.clone(),
            cfg: self.cfg.clone(),
            library: self.library.clone(),
            cells: self.cells.clone(),
            pij: self.pij.clone(),
            derived: DerivedState {
                loads: self.timing.loads.clone(),
                in_ramps: self.timing.in_ramps.clone(),
                delays: self.timing.delays.clone(),
                out_ramps: self.timing.out_ramps.clone(),
                static_probs: self.static_probs.clone(),
                generated: self.generated.clone(),
                ws: self.widths.ws().to_vec(),
                per_gate_u: self.per_gate_u.clone(),
                critical_delay: self.critical_delay,
                unreliability: self.unreliability,
            },
        })
    }

    /// Atomically persists the session to `path` (snapshot capture +
    /// [`SessionSnapshot::write_to`]'s write-rename).
    ///
    /// # Errors
    ///
    /// [`SessionSnapshotError::Analysis`] for a poisoned session,
    /// [`SessionSnapshotError::Codec`] for encode/filesystem failures.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<(), SessionSnapshotError> {
        self.snapshot()?.write_to(path).map_err(Into::into)
    }

    /// Rebuilds a live session from a snapshot (borrowing the
    /// snapshot's circuit), then verifies **bitwise** that every derived
    /// table matches what the captured session held — timing, generated
    /// and expected widths, per-gate and total unreliability, critical
    /// delay. The expensive inputs (`P_ij`, characterized cells) come
    /// straight from the image, so this is a cold-start shortcut, not a
    /// re-estimation.
    ///
    /// # Errors
    ///
    /// * [`SessionSnapshotError::Analysis`] when the persisted inputs
    ///   fail construction-time validation;
    /// * [`SessionSnapshotError::StateMismatch`] when the rebuilt
    ///   analysis disagrees with the persisted derived state (an
    ///   internally inconsistent image) — the snapshot is not trusted
    ///   and no session is returned.
    pub fn restore_from(snap: &'c SessionSnapshot) -> Result<Self, SessionSnapshotError> {
        Self::restore_against(snap.circuit(), snap)
    }

    /// [`AnalysisSession::restore_from`] against a caller-owned circuit
    /// (the session borrows `circuit` instead of the snapshot, so the
    /// snapshot can be dropped) — the form a long-lived session pool
    /// uses, keying interned circuits separately from their images.
    ///
    /// # Errors
    ///
    /// As [`AnalysisSession::restore_from`], plus
    /// [`SessionSnapshotError::StateMismatch`] when `circuit` differs
    /// from the snapshot's captured circuit.
    pub fn restore_against(
        circuit: &'c Circuit,
        snap: &SessionSnapshot,
    ) -> Result<Self, SessionSnapshotError> {
        if *circuit != snap.circuit {
            return Err(SessionSnapshotError::StateMismatch { what: "circuit" });
        }
        let session = Self::construct(
            circuit,
            snap.cells.clone(),
            snap.library.clone(),
            snap.cfg.clone(),
            snap.pij.clone(),
        )?;
        let d = &snap.derived;
        let mismatch = |what: &'static str| SessionSnapshotError::StateMismatch { what };
        let bitwise_eq = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        for (what, live, stored) in [
            ("loads", &session.timing.loads, &d.loads),
            ("in_ramps", &session.timing.in_ramps, &d.in_ramps),
            ("delays", &session.timing.delays, &d.delays),
            ("out_ramps", &session.timing.out_ramps, &d.out_ramps),
            ("static_probs", &session.static_probs, &d.static_probs),
            ("generated widths", &session.generated, &d.generated),
            ("per-gate unreliability", &session.per_gate_u, &d.per_gate_u),
        ] {
            if !bitwise_eq(live, stored) {
                return Err(mismatch(what));
            }
        }
        if !bitwise_eq(session.widths.ws(), &d.ws) {
            return Err(mismatch("expected-width tables"));
        }
        if session.critical_delay.to_bits() != d.critical_delay.to_bits() {
            return Err(mismatch("critical delay"));
        }
        if session.unreliability.to_bits() != d.unreliability.to_bits() {
            return Err(mismatch("total unreliability"));
        }
        Ok(session)
    }

    /// Applies per-gate deltas (`(gate, new cell parameters)` pairs) and
    /// incrementally re-derives the analysis. No-op deltas (parameters
    /// equal to the current assignment) are skipped outright.
    ///
    /// # Panics
    ///
    /// Panics on any [`AnalysisError`] (e.g. a delta targeting a primary
    /// input); [`AnalysisSession::try_apply`] is the fallible form.
    pub fn apply(&mut self, deltas: &[(NodeId, GateParams)]) -> ApplyStats {
        match self.try_apply(deltas) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AnalysisSession::apply`]. Deltas are validated before
    /// any mutation, so on every rejection the session is bitwise
    /// identical to its pre-call state.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Poisoned`] if the session is already poisoned,
    ///   or if a numerical guard trips mid-recompute (the session then
    ///   poisons itself — see the [module docs](self));
    /// * [`AnalysisError::InvalidGateParams`] for a delta targeting a
    ///   primary input or carrying non-finite parameters (session
    ///   unchanged).
    pub fn try_apply(
        &mut self,
        deltas: &[(NodeId, GateParams)],
    ) -> Result<ApplyStats, AnalysisError> {
        self.ensure_clean()?;
        self.check_entry()?;
        for &(id, ref p) in deltas {
            self.validate_delta(id, p)?;
        }
        let mut changed: Vec<u32> = Vec::with_capacity(deltas.len());
        for &(id, p) in deltas {
            if self.cells.get(id) != Some(&p) {
                self.cells.set(id, p);
                changed.push(id.index() as u32);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        self.update_after(changed)
    }

    /// Moves the session to a full target assignment, diffing it against
    /// the current one — the natural entry point for optimizer loops
    /// whose matcher produces whole candidate assignments.
    ///
    /// # Panics
    ///
    /// Panics on any [`AnalysisError`];
    /// [`AnalysisSession::try_set_cells`] is the fallible form.
    pub fn set_cells(&mut self, target: &CircuitCells) -> ApplyStats {
        match self.try_set_cells(target) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AnalysisSession::set_cells`]. The whole target is
    /// validated before any mutation.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Poisoned`] if the session is already poisoned,
    ///   or if a numerical guard trips mid-recompute;
    /// * [`AnalysisError::MissingCellParams`] when the target misses a
    ///   gate (session unchanged);
    /// * [`AnalysisError::InvalidGateParams`] for non-finite target
    ///   parameters (session unchanged).
    pub fn try_set_cells(&mut self, target: &CircuitCells) -> Result<ApplyStats, AnalysisError> {
        self.ensure_clean()?;
        self.check_entry()?;
        for id in self.circuit.gates() {
            let node = id.index() as u32;
            let p = target
                .get(id)
                .ok_or(AnalysisError::MissingCellParams { node })?;
            validate_gate_params(node, p)?;
        }
        let mut changed: Vec<u32> = Vec::new();
        for id in self.circuit.gates() {
            let Some(&p) = target.get(id) else {
                continue; // unreachable: validated above
            };
            if self.cells.get(id) != Some(&p) {
                self.cells.set(id, p);
                changed.push(id.index() as u32);
            }
        }
        self.update_after(changed)
    }

    /// Selectively re-estimates the `P_ij` rows of `nodes` with
    /// `n_vectors` random vectors at `seed` (re-simulating only those
    /// fan-out cones), then incrementally re-derives everything
    /// downstream of the changed rows. With the session's own
    /// `(sensitization_vectors, seed)` this is a bitwise no-op; with more
    /// vectors it sharpens the estimate for the listed nodes (e.g. the
    /// current soft spots) at a fraction of a full re-estimate.
    ///
    /// Note the matrix then mixes sample sizes across rows;
    /// [`SensitizationMatrix::vectors_used`] keeps reporting the
    /// session-wide default.
    ///
    /// # Panics
    ///
    /// Panics on any [`AnalysisError`];
    /// [`AnalysisSession::try_resample_pij_rows`] is the fallible form.
    pub fn resample_pij_rows(
        &mut self,
        nodes: &[NodeId],
        n_vectors: usize,
        seed: u64,
    ) -> ApplyStats {
        match self.try_resample_pij_rows(nodes, n_vectors, seed) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AnalysisSession::resample_pij_rows`].
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Poisoned`] if the session is already poisoned,
    ///   or if a width-row guard trips mid-recompute;
    /// * [`AnalysisError::InvalidConfig`] for `n_vectors == 0` (session
    ///   unchanged).
    pub fn try_resample_pij_rows(
        &mut self,
        nodes: &[NodeId],
        n_vectors: usize,
        seed: u64,
    ) -> Result<ApplyStats, AnalysisError> {
        self.ensure_clean()?;
        self.check_entry()?;
        let mut stats = ApplyStats::default();
        if nodes.is_empty() {
            return Ok(stats);
        }
        if n_vectors == 0 {
            return Err(AnalysisError::InvalidConfig {
                reason: "resampling needs at least one vector",
            });
        }
        ser_netlist::failpoint!(
            "aserta::resample_rows",
            return Err(AnalysisError::FaultInjected("aserta::resample_rows"))
        );
        // Resampling must reuse the session's estimator modes: rows
        // refilled under a different lane width / tolerance / exact
        // threshold would silently mix accuracy settings in one matrix.
        let update = resimulate_rows_cfg(
            self.circuit,
            nodes,
            n_vectors,
            seed,
            self.engine.threads(),
            self.engine.cone_chunk(),
            &self.engine.pij(),
        );
        self.pij.apply_update(&update);
        // π weights read P rows of both a node and its successors; a full
        // rebuild is simplest and exact (refinement is a rare, heavy op).
        self.weights = WeightCache::build(self.circuit, &self.static_probs, &self.pij);
        self.budget_checkpoint("session::widths")?;

        // Width rows of the changed nodes and all their strict ancestors
        // are invalid; re-derive in reverse topological order.
        let seeds: Vec<u32> = nodes.iter().map(|id| id.index() as u32).collect();
        let scratch = &mut self.scratch;
        strict_ancestors(&self.csr, &seeds, &mut scratch.row_cand);
        for &s in &seeds {
            scratch.row_cand.insert(s);
        }
        scratch.row_changed.clear();
        scratch.u_dirty.clear();
        let topo = self.circuit.topological_order();
        for &id in topo.iter().rev() {
            let i = id.index();
            if !scratch.row_cand.contains(i as u32) {
                continue;
            }
            stats.rows_recomputed += 1;
            let kernel = RowKernel {
                weights: &self.weights,
                brackets: &self.brackets,
                grid: &self.grid,
            };
            let changed = kernel.recompute_row(i, &mut self.widths, &mut scratch.row_buf);
            if scratch
                .row_buf
                .iter()
                .any(|&v| !(v.is_finite() && v >= 0.0))
            {
                return Err(self.poison_now(PoisonReason::NumericalFault {
                    stage: "width-row",
                    node: Some(i as u32),
                }));
            }
            if changed {
                scratch.row_changed.insert(i as u32);
                scratch.u_dirty.insert(i as u32);
            }
        }
        stats.rows_changed = scratch.row_changed.len();
        self.refresh_unreliability();
        if !self.unreliability.is_finite() {
            return Err(self.poison_now(PoisonReason::NumericalFault {
                stage: "unreliability",
                node: None,
            }));
        }
        Ok(stats)
    }

    /// Moves the session to a new injected strike charge (the corner
    /// sweeps' flux/charge-spectrum axis). Charge feeds only the
    /// generated glitch widths (the strike tables' operating point), so
    /// timing, `P_ij` and the expected-width tables all survive — only
    /// the per-gate widths and `U_i` terms of gates whose width actually
    /// moved are re-derived. A no-op when `charge` equals the session's
    /// current setting.
    ///
    /// The resulting state is bitwise identical to a fresh
    /// [`analyze`](crate::analyze) at the new charge
    /// ([`ApplyStats::gates_changed`] counts the gates whose generated
    /// width moved).
    ///
    /// # Panics
    ///
    /// Panics on any [`AnalysisError`];
    /// [`AnalysisSession::try_set_charge`] is the fallible form.
    pub fn set_charge(&mut self, charge: f64) -> ApplyStats {
        match self.try_set_charge(charge) {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`AnalysisSession::set_charge`].
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::Poisoned`] if the session is already poisoned,
    ///   or if a generated-width guard trips mid-recompute;
    /// * [`AnalysisError::NonFiniteInput`] for a non-finite or
    ///   non-positive charge (session unchanged).
    pub fn try_set_charge(&mut self, charge: f64) -> Result<ApplyStats, AnalysisError> {
        self.ensure_clean()?;
        self.check_entry()?;
        if !(charge.is_finite() && charge > 0.0) {
            return Err(AnalysisError::NonFiniteInput {
                what: "injected charge",
                value: charge,
            });
        }
        let mut stats = ApplyStats::default();
        if charge == self.cfg.charge {
            return Ok(stats);
        }
        ser_netlist::failpoint!(
            "aserta::set_charge",
            return Err(AnalysisError::FaultInjected("aserta::set_charge"))
        );
        self.cfg.charge = charge;
        self.budget_checkpoint("session::generated-widths")?;
        self.scratch.u_dirty.clear();
        for id in self.circuit.gates() {
            let i = id.index();
            let Some(p) = self.cells.get(id) else {
                panic!("invariant: gates carry parameters")
            };
            let cell = self.library.get_or_characterize(p);
            let w = cell.glitch_width_at(self.timing.loads[i], charge);
            if !(w.is_finite() && w >= 0.0) {
                return Err(self.poison_now(PoisonReason::NumericalFault {
                    stage: "generated-width",
                    node: Some(i as u32),
                }));
            }
            if w != self.generated[i] {
                self.generated[i] = w;
                self.scratch.u_dirty.insert(i as u32);
                stats.gates_changed += 1;
            }
        }
        self.refresh_unreliability();
        if !self.unreliability.is_finite() {
            return Err(self.poison_now(PoisonReason::NumericalFault {
                stage: "unreliability",
                node: None,
            }));
        }
        Ok(stats)
    }

    /// The shared tail of every delta application: `self.cells` already
    /// holds the new assignment; `changed` lists the gates that differ.
    /// Numerical guards poison the session on the first non-finite (or
    /// negative-where-impossible) intermediate — the caches are partially
    /// updated at that point, so only a full rebuild can restore the
    /// fidelity contract.
    fn update_after(&mut self, changed: Vec<u32>) -> Result<ApplyStats, AnalysisError> {
        let mut stats = ApplyStats {
            gates_changed: changed.len(),
            ..ApplyStats::default()
        };
        if changed.is_empty() {
            return Ok(stats);
        }
        ser_netlist::failpoint!(
            "aserta::session_recompute",
            return Err(self.poison_now(PoisonReason::Injected("aserta::session_recompute")))
        );
        let scratch = &mut self.scratch;

        // --- Loads: only fan-ins of changed gates can see a new input
        // capacitance. Recompute with the batch pass's exact arithmetic
        // and keep the bitwise-changed ones.
        scratch.load_cand.clear();
        scratch.load_changed.clear();
        for &g in &changed {
            for &f in self.csr.fanin_of(g as usize) {
                scratch.load_cand.insert(f);
            }
        }
        let loads_model = LoadModel {
            wire_cap_per_pin: self.cfg.wire_cap_per_pin,
            po_load: self.cfg.po_load,
        };
        for idx in 0..scratch.load_cand.members().len() {
            let i = scratch.load_cand.members()[idx] as usize;
            let id = NodeId::new(i);
            let cells = &self.cells;
            let library = &mut self.library;
            let c = crate::binding::node_load(self.circuit, id, loads_model, |s| {
                cells
                    .get(s)
                    .map(|p| library.get_or_characterize(p).input_cap)
            });
            if !(c.is_finite() && c >= 0.0) {
                return Err(self.poison_now(PoisonReason::NumericalFault {
                    stage: "load",
                    node: Some(i as u32),
                }));
            }
            if c != self.timing.loads[i] {
                self.timing.loads[i] = c;
                scratch.load_changed.insert(i as u32);
            }
        }

        // --- Delays and ramps: forward sweep over the fan-out closure of
        // everything that changed, stopping where recomputed values are
        // bitwise identical.
        self.budget_checkpoint("session::timing")?;
        let scratch = &mut self.scratch;
        scratch.timing_affected.clear();
        scratch.delay_changed.clear();
        for &g in &changed {
            scratch.timing_affected.insert(g);
        }
        for &i in scratch.load_changed.members() {
            scratch.timing_affected.insert(i);
        }
        close_over_fanout(&self.csr, &mut scratch.timing_affected);
        for &id in self.circuit.topological_order() {
            let i = id.index();
            if !scratch.timing_affected.contains(i as u32) {
                continue;
            }
            let node = self.circuit.node(id);
            if node.is_input() {
                continue;
            }
            let ramp_in = crate::binding::gate_input_ramp(node, &self.timing.out_ramps);
            let params_changed = changed.binary_search(&(i as u32)).is_ok();
            if !params_changed
                && !scratch.load_changed.contains(i as u32)
                && ramp_in == self.timing.in_ramps[i]
            {
                continue;
            }
            let Some(p) = self.cells.get(id) else {
                panic!("invariant: gates carry parameters")
            };
            let cell = self.library.get_or_characterize(p);
            let d = cell.delay_at(self.timing.loads[i], ramp_in);
            let or = cell.out_ramp_at(self.timing.loads[i], ramp_in);
            if !(d.is_finite() && d >= 0.0 && or.is_finite() && or >= 0.0) {
                return Err(self.poison_now(PoisonReason::NumericalFault {
                    stage: "timing",
                    node: Some(i as u32),
                }));
            }
            self.timing.in_ramps[i] = ramp_in;
            if d != self.timing.delays[i] {
                self.timing.delays[i] = d;
                scratch.delay_changed.insert(i as u32);
            }
            if or != self.timing.out_ramps[i] {
                self.timing.out_ramps[i] = or;
            }
        }
        stats.loads_changed = scratch.load_changed.len();
        stats.delays_changed = scratch.delay_changed.len();

        // --- Generated widths + the per-gate energy dirty set: cell or
        // load changes move the strike tables' operating point.
        self.budget_checkpoint("session::generated-widths")?;
        let scratch = &mut self.scratch;
        scratch.u_dirty.clear();
        for &g in &changed {
            stats.energy_dirty.push(g);
        }
        for &i in scratch.load_changed.members() {
            if changed.binary_search(&i).is_err()
                && self.cells.get(NodeId::new(i as usize)).is_some()
            {
                stats.energy_dirty.push(i);
            }
        }
        for idx in 0..stats.energy_dirty.len() {
            let i = stats.energy_dirty[idx];
            let id = NodeId::new(i as usize);
            let Some(p) = self.cells.get(id) else {
                panic!("invariant: energy-dirty nodes are gates")
            };
            let cell = self.library.get_or_characterize(p);
            let w = cell.glitch_width_at(self.timing.loads[i as usize], self.cfg.charge);
            if !(w.is_finite() && w >= 0.0) {
                return Err(self.poison_now(PoisonReason::NumericalFault {
                    stage: "generated-width",
                    node: Some(i),
                }));
            }
            if w != self.generated[i as usize] {
                self.generated[i as usize] = w;
            }
            // Size or width may have moved U_i even if no row changes.
            scratch.u_dirty.insert(i);
        }

        // --- Expected-width rows: brackets of delay-changed nodes, then
        // the strict-ancestor closure in reverse topological order.
        self.budget_checkpoint("session::widths")?;
        let scratch = &mut self.scratch;
        for &i in scratch.delay_changed.members() {
            self.brackets.refresh_node(
                i as usize,
                &self.grid,
                self.timing.delays[i as usize],
                AttenuationModel::PaperEq1,
            );
        }
        strict_ancestors(
            &self.csr,
            scratch.delay_changed.members(),
            &mut scratch.row_cand,
        );
        scratch.row_changed.clear();
        let topo = self.circuit.topological_order();
        for &id in topo.iter().rev() {
            let i = id.index();
            if !scratch.row_cand.contains(i as u32) {
                continue;
            }
            // A candidate only needs recomputing if some successor's
            // delay or row actually changed.
            let hit = self
                .csr
                .fanout_of(i)
                .iter()
                .any(|&s| scratch.delay_changed.contains(s) || scratch.row_changed.contains(s));
            if !hit {
                continue;
            }
            stats.rows_recomputed += 1;
            let kernel = RowKernel {
                weights: &self.weights,
                brackets: &self.brackets,
                grid: &self.grid,
            };
            let row_moved = kernel.recompute_row(i, &mut self.widths, &mut scratch.row_buf);
            if scratch
                .row_buf
                .iter()
                .any(|&v| !(v.is_finite() && v >= 0.0))
            {
                return Err(self.poison_now(PoisonReason::NumericalFault {
                    stage: "width-row",
                    node: Some(i as u32),
                }));
            }
            if row_moved {
                scratch.row_changed.insert(i as u32);
                scratch.u_dirty.insert(i as u32);
            }
        }
        stats.rows_changed = scratch.row_changed.len();

        // --- Unreliability: refresh dirty U_i, then resum in the batch
        // pass's exact order. Critical delay is one cheap arrival pass.
        self.budget_checkpoint("session::unreliability")?;
        self.refresh_unreliability();
        if !self.unreliability.is_finite() {
            return Err(self.poison_now(PoisonReason::NumericalFault {
                stage: "unreliability",
                node: None,
            }));
        }
        self.refresh_critical_delay();
        if !self.critical_delay.is_finite() {
            return Err(self.poison_now(PoisonReason::NumericalFault {
                stage: "critical-delay",
                node: None,
            }));
        }
        Ok(stats)
    }

    /// Rebuilds the session from scratch over its current cell
    /// assignment, clearing any poison — the full-dirty recovery path
    /// (cold construction with the session's own `P_ij`, so no
    /// re-estimation).
    ///
    /// Recovery is memory-lean: the derived caches are shed *before*
    /// the rebuild, so peak memory stays near one session's footprint
    /// (plus the retained `P_ij`) instead of two — a 10k-gate recovery
    /// fits the same address-space ceiling cold construction does.
    ///
    /// # Errors
    ///
    /// Any [`AnalysisError`] from the fresh construction — notably
    /// [`AnalysisError::BadCell`] when the current assignment still maps
    /// to an invalid library cell; recover onto a known-good assignment
    /// with [`AnalysisSession::recover_with`] in that case. Because the
    /// caches were already shed, a failed rebuild leaves the session
    /// poisoned ([`PoisonReason::RecoveryFailed`] if it was clean); its
    /// circuit, cells, config and `P_ij` are intact, so a later recovery
    /// onto a valid assignment still succeeds (re-characterizing library
    /// cells lazily).
    pub fn recover(&mut self) -> Result<(), AnalysisError> {
        self.recover_with(self.cells.clone())
    }

    /// [`AnalysisSession::recover`] onto a caller-chosen cell assignment.
    ///
    /// # Errors
    ///
    /// See [`AnalysisSession::recover`].
    pub fn recover_with(&mut self, cells: CircuitCells) -> Result<(), AnalysisError> {
        ser_netlist::failpoint!(
            "aserta::full_rebuild",
            return Err(AnalysisError::FaultInjected("aserta::full_rebuild"))
        );
        // Shed the derived caches and hand the library over before
        // rebuilding: everything dropped here is exactly what the
        // rebuild re-derives, and releasing it first keeps recovery
        // inside the memory ceiling a single cold construction needs.
        self.weights.shed();
        self.widths.shed();
        self.brackets.shed();
        self.timing = TimingView {
            loads: Vec::new(),
            in_ramps: Vec::new(),
            delays: Vec::new(),
            out_ramps: Vec::new(),
        };
        self.scratch = Scratch::new(0);
        self.static_probs = Vec::new();
        self.generated = Vec::new();
        self.per_gate_u = Vec::new();
        self.grid = Vec::new();
        let empty = Library::new(self.library.tech().clone(), self.library.grids().clone());
        let library = std::mem::replace(&mut self.library, empty);

        match Self::construct(
            self.circuit,
            cells,
            library,
            self.cfg.clone(),
            self.pij.clone(),
        ) {
            Ok(mut fresh) => {
                fresh.engine = self.engine;
                *self = fresh;
                Ok(())
            }
            Err(e) => {
                // The caches are gone; only another recovery can help.
                self.poison.get_or_insert(PoisonReason::RecoveryFailed);
                Err(e)
            }
        }
    }

    /// Refuses the call when the session is poisoned.
    fn ensure_clean(&self) -> Result<(), AnalysisError> {
        match &self.poison {
            Some(reason) => Err(AnalysisError::Poisoned(reason.clone())),
            None => Ok(()),
        }
    }

    /// Pre-mutation budget check at a mutating entry point: an exhausted
    /// [`Deadline`] is a clean rejection, session bitwise intact.
    fn check_entry(&self) -> Result<(), AnalysisError> {
        self.deadline
            .check("session::entry")
            .map_err(AnalysisError::Interrupted)
    }

    /// Budget checkpoint at a stage boundary *inside* a recompute: the
    /// caches are partially updated here, so exhaustion poisons (exactly
    /// like a numerical fault — recover with a full-dirty rebuild).
    fn budget_checkpoint(&mut self, stage: &'static str) -> Result<(), AnalysisError> {
        match self.deadline.check(stage) {
            Ok(()) => Ok(()),
            Err(i) => Err(self.poison_now(PoisonReason::Interrupted(i))),
        }
    }

    /// Records `reason` as the session's poison and returns the matching
    /// error — the single exit used by every mid-recompute guard.
    fn poison_now(&mut self, reason: PoisonReason) -> AnalysisError {
        self.poison = Some(reason.clone());
        AnalysisError::Poisoned(reason)
    }

    /// Pre-mutation validation of one delta: the target must be a gate
    /// and the parameters finite.
    fn validate_delta(&self, id: NodeId, p: &GateParams) -> Result<(), AnalysisError> {
        let node = id.index() as u32;
        if self.circuit.node(id).is_input() {
            return Err(AnalysisError::InvalidGateParams {
                node,
                reason: "primary inputs carry no cell parameters",
            });
        }
        validate_gate_params(node, p)
    }

    /// Recomputes `U_i` for the gates in `scratch.u_dirty` and resums the
    /// total in [`analyze`](crate::analyze)'s exact iteration order.
    fn refresh_unreliability(&mut self) {
        for &i in self.scratch.u_dirty.members() {
            let id = NodeId::new(i as usize);
            let Some(p) = self.cells.get(id) else {
                continue;
            };
            self.per_gate_u[i as usize] = p.size
                * self
                    .widths
                    .total_expected_width(id, self.generated[i as usize]);
        }
        self.resum_unreliability();
    }

    fn resum_unreliability(&mut self) {
        let mut total = 0.0;
        for id in self.circuit.gates() {
            total += self.per_gate_u[id.index()];
        }
        self.unreliability = total;
    }

    fn refresh_critical_delay(&mut self) {
        // Mirrors `TimingView::critical_path_delay` over reusable
        // scratch (same fold order, hence bitwise identical).
        let arrival = &mut self.scratch.arrival;
        let mut worst = 0.0f64;
        for &id in self.circuit.topological_order() {
            let node = self.circuit.node(id);
            let arr_in = node
                .fanin
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0, f64::max);
            arrival[id.index()] = arr_in + self.timing.delays[id.index()];
            if self.circuit.is_primary_output(id) {
                worst = worst.max(arrival[id.index()]);
            }
        }
        self.critical_delay = worst;
    }
}

/// Rejects configuration scalars the analysis kernels cannot digest.
pub(crate) fn validate_config(cfg: &AsertaConfig) -> Result<(), AnalysisError> {
    let bad = |reason: &'static str| AnalysisError::InvalidConfig { reason };
    if !(cfg.charge.is_finite() && cfg.charge > 0.0) {
        return Err(bad("charge must be finite and positive"));
    }
    if cfg.sensitization_vectors == 0 {
        return Err(bad("sensitization_vectors must be at least 1"));
    }
    if cfg.sample_widths < 2 {
        return Err(bad("sample_widths must be at least 2"));
    }
    if !(cfg.wide_width.is_finite() && cfg.wide_width > 0.0) {
        return Err(bad("wide_width must be finite and positive"));
    }
    if !(cfg.pi_probability.is_finite() && (0.0..=1.0).contains(&cfg.pi_probability)) {
        return Err(bad("pi_probability must lie in [0, 1]"));
    }
    if !(cfg.pi_ramp.is_finite() && cfg.pi_ramp > 0.0) {
        return Err(bad("pi_ramp must be finite and positive"));
    }
    if !(cfg.wire_cap_per_pin.is_finite() && cfg.wire_cap_per_pin >= 0.0) {
        return Err(bad("wire_cap_per_pin must be finite and non-negative"));
    }
    if !(cfg.po_load.is_finite() && cfg.po_load >= 0.0) {
        return Err(bad("po_load must be finite and non-negative"));
    }
    Ok(())
}

/// Rejects per-gate parameters whose table lookups would produce NaN.
fn validate_gate_params(node: u32, p: &GateParams) -> Result<(), AnalysisError> {
    let reason = if !(p.size.is_finite() && p.size > 0.0) {
        "size must be finite and positive"
    } else if !(p.l_nm.is_finite() && p.l_nm > 0.0) {
        "channel length must be finite and positive"
    } else if !(p.vdd.is_finite() && p.vdd > 0.0) {
        "vdd must be finite and positive"
    } else if !p.vth.is_finite() {
        "vth must be finite"
    } else {
        return Ok(());
    };
    Err(AnalysisError::InvalidGateParams { node, reason })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn lib() -> Library {
        Library::new(Technology::ptm70(), CharGrids::coarse())
    }

    fn cfg() -> AsertaConfig {
        let mut c = AsertaConfig::fast();
        c.sensitization_vectors = 512;
        c
    }

    /// The fresh-path oracle: a full `analyze` of the session's current
    /// assignment, compared bitwise.
    fn assert_matches_fresh(session: &AnalysisSession<'_>) {
        let mut l = lib();
        let fresh = analyze(
            session.circuit(),
            session.cells(),
            &mut l,
            session.pij(),
            session.config(),
        );
        assert_eq!(session.timing().loads, fresh.timing.loads, "loads");
        assert_eq!(session.timing().in_ramps, fresh.timing.in_ramps, "ramps");
        assert_eq!(session.timing().delays, fresh.timing.delays, "delays");
        assert_eq!(session.timing().out_ramps, fresh.timing.out_ramps);
        assert_eq!(session.generated_widths(), &fresh.generated_widths[..]);
        assert_eq!(
            session.expected_widths().ws(),
            fresh.expected_widths.ws(),
            "width tables"
        );
        assert_eq!(
            session.per_gate_unreliability(),
            &fresh.per_gate_unreliability[..]
        );
        assert_eq!(session.unreliability(), fresh.unreliability, "total U");
        assert_eq!(
            session.critical_delay(),
            fresh.timing.critical_path_delay(session.circuit()),
            "critical delay"
        );
    }

    #[test]
    fn fresh_session_matches_analyze() {
        let c = generate::c17();
        let session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        assert_matches_fresh(&session);
    }

    #[test]
    fn single_delta_matches_fresh_bitwise() {
        let c = generate::c17();
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let g = c.find("10").unwrap();
        let mut p = *session.cells().get(g).unwrap();
        p.size = 4.0;
        let stats = session.apply(&[(g, p)]);
        assert_eq!(stats.gates_changed, 1);
        assert_matches_fresh(&session);
    }

    #[test]
    fn delta_sequence_matches_fresh_on_sec32() {
        let c = generate::sec32("s");
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let gates: Vec<NodeId> = c.gates().collect();
        for step in 0..6 {
            let g = gates[(step * 37) % gates.len()];
            let mut p = *session.cells().get(g).unwrap();
            p.size = [2.0, 4.0, 1.0][step % 3];
            p.vth = [0.2, 0.3][step % 2];
            session.apply(&[(g, p)]);
        }
        assert_matches_fresh(&session);
    }

    #[test]
    fn noop_delta_touches_nothing() {
        let c = generate::c17();
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let g = c.find("10").unwrap();
        let p = *session.cells().get(g).unwrap();
        let stats = session.apply(&[(g, p)]);
        assert_eq!(stats.gates_changed, 0);
        assert_eq!(stats.rows_recomputed, 0);
        assert!(stats.energy_dirty.is_empty());
    }

    #[test]
    fn set_cells_diffs_against_current() {
        let c = generate::c17();
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let mut target = session.cells().clone();
        for &po in c.primary_outputs() {
            let mut p = *target.get(po).unwrap();
            p.size = 6.0;
            target.set(po, p);
        }
        let stats = session.set_cells(&target);
        assert_eq!(stats.gates_changed, 2);
        assert_matches_fresh(&session);
        // Returning to the original assignment restores the exact state.
        let nominal = CircuitCells::nominal(&c);
        session.set_cells(&nominal);
        assert_matches_fresh(&session);
    }

    #[test]
    fn resample_with_session_settings_is_a_noop() {
        let c = generate::c17();
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let before_u = session.unreliability();
        let before_row = session.pij().row(c.find("10").unwrap()).to_vec();
        let stats = session.resample_pij_rows(
            &[c.find("10").unwrap()],
            cfg().sensitization_vectors,
            cfg().seed,
        );
        assert_eq!(stats.rows_changed, 0, "same vectors+seed must be a no-op");
        assert_eq!(session.unreliability(), before_u);
        assert_eq!(session.pij().row(c.find("10").unwrap()), &before_row[..]);
        assert_matches_fresh(&session);
    }

    #[test]
    fn resample_with_more_vectors_matches_a_patched_fresh_analysis() {
        let c = generate::sec32("s");
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let targets: Vec<NodeId> = c.gates().take(4).collect();
        session.resample_pij_rows(&targets, 2048, 99);

        // Oracle: fresh analysis over the hand-patched matrix.
        let mut pij = ser_logicsim::sensitize::sensitization_probabilities(&c, 512, cfg().seed);
        let up = ser_logicsim::sensitize::resimulate_rows(&c, &targets, 2048, 99);
        pij.apply_update(&up);
        let mut l = lib();
        let fresh = analyze(&c, session.cells(), &mut l, &pij, session.config());
        assert_eq!(session.expected_widths().ws(), fresh.expected_widths.ws());
        assert_eq!(session.unreliability(), fresh.unreliability);
    }

    #[test]
    fn set_charge_matches_fresh_at_the_new_charge() {
        let c = generate::sec32("s");
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let stats = session.set_charge(32.0e-15);
        assert!(
            stats.gates_changed > 0,
            "a doubled charge must widen glitches"
        );
        // The oracle reads the session's own config, which now carries
        // the new charge — so this compares against a fresh analysis at
        // 32 fC.
        assert_matches_fresh(&session);
        // Same charge again: a strict no-op.
        let again = session.set_charge(32.0e-15);
        assert_eq!(again.gates_changed, 0);
        // And charge composes with cell deltas.
        let g = c.gates().next().unwrap();
        let mut p = *session.cells().get(g).unwrap();
        p.size = 4.0;
        session.apply(&[(g, p)]);
        assert_matches_fresh(&session);
    }

    #[test]
    fn sessions_clone_for_parallel_replicas() {
        let c = generate::c17();
        let session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let mut clone = session.clone();
        let g = c.find("11").unwrap();
        let mut p = *clone.cells().get(g).unwrap();
        p.size = 2.0;
        clone.apply(&[(g, p)]);
        assert_ne!(clone.unreliability(), session.unreliability());
        assert_matches_fresh(&clone);
        assert_matches_fresh(&session);
    }

    #[test]
    fn construction_rejects_bad_config_and_bad_params() {
        let c = generate::c17();
        let mut bad = cfg();
        bad.charge = f64::NAN;
        let err = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), bad).build();
        assert!(matches!(err, Err(AnalysisError::InvalidConfig { .. })));

        let mut cells = CircuitCells::nominal(&c);
        let g = c.find("10").unwrap();
        let mut p = *cells.get(g).unwrap();
        p.vdd = f64::NAN;
        cells.set(g, p);
        let err = AnalysisSession::builder(&c, cells, lib(), cfg()).build();
        assert!(matches!(err, Err(AnalysisError::InvalidGateParams { .. })));
    }

    #[test]
    fn delta_rejections_leave_the_session_bitwise_intact() {
        let c = generate::c17();
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let u_before = session.unreliability();
        let timing_before = session.timing().clone();

        // A primary-input target is a typed error, not a panic.
        let pi = c.primary_inputs()[0];
        let err = session
            .try_apply(&[(pi, GateParams::new(ser_netlist::GateKind::Nand, 2))])
            .unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::InvalidGateParams { reason, .. }
                if reason.contains("primary inputs")
        ));

        // Non-finite parameters are rejected before any mutation.
        let g = c.find("10").unwrap();
        let mut p = *session.cells().get(g).unwrap();
        p.size = f64::NAN;
        assert!(matches!(
            session.try_apply(&[(g, p)]),
            Err(AnalysisError::InvalidGateParams { .. })
        ));
        let mut q = *session.cells().get(g).unwrap();
        q.vdd = f64::INFINITY;
        assert!(matches!(
            session.try_set_charge(f64::NAN),
            Err(AnalysisError::NonFiniteInput { .. })
        ));
        assert!(matches!(
            session.try_apply(&[(g, q)]),
            Err(AnalysisError::InvalidGateParams { .. })
        ));

        assert!(!session.is_poisoned());
        assert_eq!(session.unreliability(), u_before);
        assert_eq!(session.timing().delays, timing_before.delays);
        assert_eq!(session.timing().loads, timing_before.loads);
        // And the session still works.
        let mut ok = *session.cells().get(g).unwrap();
        ok.size = 4.0;
        session.apply(&[(g, ok)]);
        assert_matches_fresh(&session);
    }

    #[test]
    fn nan_lut_poisons_then_recover_with_restores() {
        use ser_cells::lut::{Axis, Lut2};

        let c = generate::c17();
        let g = c.find("10").unwrap();
        let mut p = *CircuitCells::nominal(&c).get(g).unwrap();
        p.size = 4.0;

        // Pre-insert a NaN-filled variant under the delta's exact key, so
        // the incremental recompute interpolates NaN out of the delay
        // table and the timing guard trips mid-update.
        let nan_lut = || {
            Lut2::from_raw_unchecked(
                Axis::new(vec![1e-15, 4e-15]).unwrap(),
                Axis::new(vec![1e-12, 40e-12]).unwrap(),
                vec![f64::NAN; 4],
            )
            .unwrap()
        };
        let bad_cell = CharacterizedCell {
            params: p,
            input_cap: 0.3e-15,
            delay: nan_lut(),
            out_ramp: nan_lut(),
            glitch: nan_lut(),
            leak_power: 1e-9,
            c_self_total: 0.5e-15,
            area: 2.0,
        };
        let mut l = lib();
        l.insert(bad_cell);

        // Construction validates only the *current* assignment (nominal),
        // which doesn't touch the bad key — so it succeeds.
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), l, cfg())
            .build()
            .unwrap();
        assert!(!session.is_poisoned());

        let err = session.try_apply(&[(g, p)]).unwrap_err();
        assert!(matches!(
            err,
            AnalysisError::Poisoned(PoisonReason::NumericalFault { .. })
        ));
        assert!(session.is_poisoned());

        // Every further mutation is refused with the recorded reason.
        assert!(matches!(
            session.try_set_charge(32e-15),
            Err(AnalysisError::Poisoned(_))
        ));
        assert!(matches!(
            session.try_apply(&[]),
            Err(AnalysisError::Poisoned(_))
        ));
        // Reads still work.
        let _ = session.unreliability();

        // recover() keeps the bad assignment, whose cell fails
        // construction-time validation.
        assert!(matches!(
            session.recover(),
            Err(AnalysisError::BadCell { .. })
        ));
        assert!(session.is_poisoned(), "failed recovery keeps the poison");

        // recover_with a clean assignment restores bitwise-fresh state.
        session.recover_with(CircuitCells::nominal(&c)).unwrap();
        assert!(!session.is_poisoned());
        assert_matches_fresh(&session);
        // And the session accepts mutations again.
        let mut ok = *session.cells().get(g).unwrap();
        ok.vth = 0.3;
        session.apply(&[(g, ok)]);
        assert_matches_fresh(&session);
    }

    #[test]
    fn failed_recovery_on_a_clean_session_sets_recovery_failed_poison() {
        let c = generate::c17();
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        assert!(!session.is_poisoned());

        // A rebuild target that fails construction-time validation: the
        // caches are already shed at that point, so the clean session
        // must come out explicitly poisoned, not silently hollow.
        let g = c.find("10").unwrap();
        let mut bad = CircuitCells::nominal(&c);
        let mut p = *bad.get(g).unwrap();
        p.size = f64::NAN;
        bad.set(g, p);
        session.recover_with(bad).unwrap_err();
        assert!(session.is_poisoned());
        assert_eq!(session.poison(), Some(&PoisonReason::RecoveryFailed));
        assert!(matches!(
            session.try_apply(&[]),
            Err(AnalysisError::Poisoned(PoisonReason::RecoveryFailed))
        ));

        // Recovery onto a valid assignment still succeeds (the retained
        // `P_ij` makes it bitwise-fresh, the library re-characterizes).
        session.recover_with(CircuitCells::nominal(&c)).unwrap();
        assert!(!session.is_poisoned());
        assert_matches_fresh(&session);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_shims_match_the_builder() {
        let c = generate::c17();
        let built = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let legacy = AnalysisSession::try_new(&c, CircuitCells::nominal(&c), lib(), cfg()).unwrap();
        assert_eq!(legacy.unreliability(), built.unreliability());
        assert_eq!(legacy.pij(), built.pij());
        let shared = AnalysisSession::with_pij(
            &c,
            CircuitCells::nominal(&c),
            lib(),
            cfg(),
            built.pij().clone(),
        );
        assert_eq!(shared.unreliability(), built.unreliability());
        let governed = AnalysisSession::try_new_governed(
            &c,
            CircuitCells::nominal(&c),
            lib(),
            cfg(),
            Deadline::within(std::time::Duration::from_secs(3600)),
        )
        .unwrap();
        assert_eq!(governed.unreliability(), built.unreliability());
    }

    #[test]
    fn governed_construction_matches_ungoverned_bitwise() {
        let c = generate::sec32("s");
        let plain = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let governed = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .deadline(Deadline::within(std::time::Duration::from_secs(3600)))
            .build()
            .unwrap();
        assert_eq!(governed.pij(), plain.pij());
        assert_eq!(governed.unreliability(), plain.unreliability());
        assert_eq!(
            governed.per_gate_unreliability(),
            plain.per_gate_unreliability()
        );
        assert!(governed.degradations().is_empty());
        assert!(governed.report().degradations.is_empty());
    }

    #[test]
    fn exhausted_budget_at_construction_is_a_typed_interruption() {
        let c = generate::c17();
        let err = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .deadline(Deadline::within(std::time::Duration::ZERO))
            .build()
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Interrupted(_)), "{err}");
    }

    #[test]
    fn cancelled_budget_rejects_mutations_cleanly() {
        use ser_netlist::govern::{CancelToken, InterruptReason};

        let c = generate::c17();
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let token = CancelToken::new();
        session.set_deadline(Deadline::none().with_token(token.clone()));

        // Budget still open: mutations work.
        let g = c.find("10").unwrap();
        let mut p = *session.cells().get(g).unwrap();
        p.size = 4.0;
        session.apply(&[(g, p)]);
        assert_matches_fresh(&session);

        // Cancelled: every mutating entry point is refused *before* any
        // state changes — the session stays clean and bitwise intact.
        token.cancel();
        let u_before = session.unreliability();
        let mut q = *session.cells().get(g).unwrap();
        q.size = 2.0;
        for err in [
            session.try_apply(&[(g, q)]).unwrap_err(),
            session
                .try_set_cells(&CircuitCells::nominal(&c))
                .unwrap_err(),
            session.try_set_charge(32e-15).unwrap_err(),
            session.try_resample_pij_rows(&[g], 1024, 5).unwrap_err(),
        ] {
            match err {
                AnalysisError::Interrupted(i) => {
                    assert_eq!(i.stage, "session::entry");
                    assert_eq!(i.reason, InterruptReason::Cancelled);
                }
                other => panic!("expected Interrupted, got {other}"),
            }
        }
        assert!(!session.is_poisoned(), "entry rejections never poison");
        assert_eq!(session.unreliability(), u_before);

        // Clearing the budget restores full service.
        session.clear_deadline();
        session.apply(&[(g, q)]);
        assert_matches_fresh(&session);
    }

    #[test]
    fn snapshot_of_recovered_session_round_trips() {
        let c = generate::sec32("s");
        let mut session = AnalysisSession::builder(&c, CircuitCells::nominal(&c), lib(), cfg())
            .build()
            .unwrap();
        let g = c.gates().next().unwrap();
        let mut p = *session.cells().get(g).unwrap();
        p.size = 4.0;
        session.apply(&[(g, p)]);
        session.recover().unwrap();

        let snap = session.snapshot().unwrap();
        let restored = AnalysisSession::restore_from(&snap).unwrap();
        assert_eq!(restored.unreliability(), session.unreliability());
        assert_eq!(restored.cells(), session.cells());
    }
}
