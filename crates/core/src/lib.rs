//! ASERTA — Accurate Soft-Error Tolerance Analysis of nanometer circuits.
//!
//! The analysis half of the DATE'05 paper (§3). Given a gate-level
//! circuit, a cell assignment and a characterized library, ASERTA
//! estimates the circuit's *unreliability*:
//!
//! 1. a strike (fixed charge, default 16 fC) is notionally injected at
//!    every gate output; the **generated glitch width** `w_i` comes from
//!    the library's strike tables ([`ser_cells`]);
//! 2. **logical masking** weights the propagation from gate `i` through
//!    each successor `s` towards each primary output `j` with
//!    `π_isj = S_is·P_ij / Σ_k S_ik·P_kj` (Eq. 2), where `S_is` is the
//!    probability that `s`'s side inputs are non-controlling and `P_ij`
//!    the simulated path-sensitization probability ([`ser_logicsim`]);
//! 3. **electrical masking** attenuates widths through each gate with the
//!    paper's ramp model (Eq. 1, [`glitch::attenuate`]), evaluated in one
//!    reverse-topological pass over tables of expected output widths at
//!    10 sample widths ([`electrical`]);
//! 4. **latching-window masking** makes the error probability
//!    proportional to the arriving width, giving
//!    `U_i = Z_i · Σ_j W_ij` (Eq. 3) and `U = Σ_i U_i` (Eq. 4).
//!
//! The crate also provides the Fig. 3 validation harness (correlation
//! against the transistor-level reference) and a FIT-rate extension over
//! a charge spectrum (the paper's stated future work).
//!
//! # Error handling
//!
//! Untrusted-input boundaries are fallible: [`try_analyze`] and the
//! session's `try_*` entry points return a typed [`AnalysisError`]
//! instead of panicking, and mid-recompute numerical faults flip the
//! session into an explicit *poisoned* state recoverable with
//! [`AnalysisSession::recover`] — see [`error`] and the
//! [`session`] module docs. The library code itself is compiled with
//! `clippy::unwrap_used`/`clippy::expect_used` denied; remaining panics
//! are documented invariants.
//!
//! # Example
//!
//! ```no_run
//! use aserta::{analyze_fresh, AsertaConfig, CircuitCells};
//! use ser_cells::{CharGrids, Library};
//! use ser_netlist::generate;
//! use ser_spice::Technology;
//!
//! let c17 = generate::c17();
//! let mut lib = Library::new(Technology::ptm70(), CharGrids::standard());
//! let cells = CircuitCells::nominal(&c17);
//! let report = analyze_fresh(&c17, &cells, &mut lib, &AsertaConfig::default());
//! println!("unreliability U = {:.3e}", report.unreliability);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod analysis;
mod binding;
mod config;
pub mod electrical;
pub mod error;
pub mod glitch;
pub mod latching;
pub mod logical;
pub mod report;
pub mod ser;
pub mod session;
pub mod snapshot;
pub mod validate;

pub use analysis::{analyze, analyze_fresh, try_analyze, try_analyze_fresh, AsertaReport};
pub use binding::{gate_input_ramp, node_load, timing_view, CircuitCells, LoadModel, TimingView};
pub use config::AsertaConfig;
pub use electrical::ExpectedWidths;
pub use error::{AnalysisError, PoisonReason};
pub use ser_logicsim::engine::{EngineConfig, EngineConfigError};
pub use ser_netlist::govern::{CancelToken, Deadline, DegradationEvent, Interrupted};
pub use session::{AnalysisSession, ApplyStats, SessionBuilder};
pub use snapshot::{SessionSnapshot, SessionSnapshotError};
