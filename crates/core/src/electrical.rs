//! Electrical masking: the expected output glitch width `WS_ijk` of every
//! gate `i` towards each primary output `j` at each of the `K` sample
//! input widths (paper §3.2, steps i–iv), combining Eq. 1 attenuation
//! with the Eq. 2 logical weights.
//!
//! There is exactly **one** implementation of the width arithmetic: the
//! per-row kernel (`RowKernel::recompute_row`, crate-internal), which
//! re-derives one node's `[k][j]` table from the cached Eq. 2 weights
//! (`WeightCache`), its successors' tables and the hoisted
//! interpolation brackets. Batch construction
//! ([`ExpectedWidths::compute`]) is a full-dirty application of that
//! kernel in reverse topological order, and the incremental
//! [`AnalysisSession`](crate::AnalysisSession) applies it to exactly the
//! rows a delta invalidates — so the two paths are bitwise
//! interchangeable by construction (the workspace `fresh_path_equiv`
//! proptest pins the batch result against the pre-refactor pipeline).
//!
//! Fidelity note (the paper's own concession): `π_isj` treats branch
//! propagation independently, so observability that exists *only* through
//! joint flips of reconvergent branches (every single-successor `P_sj` is
//! 0 while `P_ij > 0`) is not representable — the expected width
//! under-approximates there. Lemma 1 therefore holds exactly off those
//! anomaly cones and as the upper bound `WS ≤ ww·P_ij` in general; the
//! workspace property test `lemma1_holds_on_random_circuits` checks both
//! sides.

use ser_logicsim::SensitizationMatrix;
use ser_netlist::{Circuit, NodeId};

use crate::glitch::AttenuationModel;
use crate::logical::{pi_weights, successor_sensitizations};

/// The computed expected-width tables.
///
/// Storage is node-major, then sample-width, then PO column:
/// `ws[(node·K + k)·n_pos + j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedWidths {
    outputs: Vec<NodeId>,
    grid: Vec<f64>,
    n_pos: usize,
    ws: Vec<f64>,
}

impl ExpectedWidths {
    /// Builds the tables: a full-dirty application of the shared row
    /// kernel in reverse topological order.
    ///
    /// * `probs` — static 1-probabilities per node;
    /// * `pij` — sensitization matrix (defines the PO column order);
    /// * `delays` — per-node propagation delays (library lookups);
    /// * `grid` — the `K` sample widths, sorted ascending, `grid[0] = 0`,
    ///   top entry "very wide" (see
    ///   [`AsertaConfig::sample_width_grid`](crate::AsertaConfig::sample_width_grid)).
    ///
    /// Complexity `O((V+E)·K·|PO|)`.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is unsorted or does not start at 0.
    pub fn compute(
        circuit: &Circuit,
        probs: &[f64],
        pij: &SensitizationMatrix,
        delays: &[f64],
        grid: Vec<f64>,
    ) -> Self {
        Self::compute_with_model(
            circuit,
            probs,
            pij,
            delays,
            grid,
            AttenuationModel::PaperEq1,
        )
    }

    /// [`ExpectedWidths::compute`] with an explicit attenuation law — the
    /// ablation hook comparing Eq. 1 against the smooth variant.
    ///
    /// # Panics
    ///
    /// As for [`ExpectedWidths::compute`].
    pub fn compute_with_model(
        circuit: &Circuit,
        probs: &[f64],
        pij: &SensitizationMatrix,
        delays: &[f64],
        grid: Vec<f64>,
        model: AttenuationModel,
    ) -> Self {
        full_width_state(circuit, probs, pij, delays, grid, model).0
    }

    /// All-zero tables for `n_nodes` nodes — the starting point of the
    /// full-dirty pass (and of a cold [`AnalysisSession`]).
    ///
    /// # Panics
    ///
    /// Panics if `grid` is unsorted or does not start at 0.
    ///
    /// [`AnalysisSession`]: crate::AnalysisSession
    pub(crate) fn zeroed(outputs: Vec<NodeId>, grid: Vec<f64>, n_nodes: usize) -> Self {
        assert!(
            grid.windows(2).all(|w| w[1] > w[0]),
            "sample grid must be strictly increasing"
        );
        assert_eq!(grid.first(), Some(&0.0), "sample grid must start at 0");
        let n_pos = outputs.len();
        let ws = vec![0.0f64; n_nodes * grid.len() * n_pos];
        ExpectedWidths {
            outputs,
            grid,
            n_pos,
            ws,
        }
    }

    /// The PO column order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The sample-width grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// `WS_ijk`: expected width at PO column `j` for sample width index
    /// `k` at gate `i`.
    pub fn at_sample(&self, i: NodeId, j: usize, k: usize) -> f64 {
        self.ws[(i.index() * self.grid.len() + k) * self.n_pos + j]
    }

    /// Step (iv): the expected width `W_ij` at PO column `j` for an
    /// arbitrary generated width `w_gen` at gate `i`, interpolating the
    /// sample tables.
    pub fn expected_width(&self, i: NodeId, j: usize, w_gen: f64) -> f64 {
        interp_width(
            &self.ws,
            i.index() * self.grid.len() * self.n_pos,
            self.n_pos,
            j,
            &self.grid,
            w_gen,
        )
    }

    /// `Σ_j W_ij` for a generated width — the latching-window-masked
    /// total the unreliability formula consumes.
    pub fn total_expected_width(&self, i: NodeId, w_gen: f64) -> f64 {
        (0..self.n_pos)
            .map(|j| self.expected_width(i, j, w_gen))
            .sum()
    }

    /// The raw node-major `[k][j]` storage (test-only: equivalence
    /// assertions compare whole tables at once).
    #[cfg(test)]
    #[inline]
    pub(crate) fn ws(&self) -> &[f64] {
        &self.ws
    }

    /// Mutable access to the raw storage (see [`ExpectedWidths::ws`]).
    #[inline]
    pub(crate) fn ws_mut(&mut self) -> &mut [f64] {
        &mut self.ws
    }
}

/// One hoisted interpolation bracket: row offsets (premultiplied by the
/// PO-column stride) and blend weights of the two grid samples framing an
/// attenuated width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Bracket {
    pub(crate) off_lo: usize,
    pub(crate) off_hi: usize,
    pub(crate) w_lo: f64,
    pub(crate) w_hi: f64,
}

/// The bracket of one attenuated width `w` in `grid`: the two framing
/// sample rows (offsets premultiplied by the PO-column stride `n_pos`)
/// and their blend weights, clamped at both ends. This is the single
/// source of truth shared by the batch pass and the incremental engine's
/// per-node bracket refresh, and it reproduces [`interp_width`]'s
/// arithmetic exactly (same clamping, same blend expression).
pub(crate) fn bracket_for(grid: &[f64], w: f64, n_pos: usize) -> Bracket {
    let top = grid.len() - 1;
    if w <= grid[0] {
        Bracket {
            off_lo: 0,
            off_hi: 0,
            w_lo: 1.0,
            w_hi: 0.0,
        }
    } else if w >= grid[top] {
        Bracket {
            off_lo: top * n_pos,
            off_hi: top * n_pos,
            w_lo: 0.0,
            w_hi: 1.0,
        }
    } else {
        let mut lo = 0usize;
        let mut hi = top;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if grid[mid] <= w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
        Bracket {
            off_lo: lo * n_pos,
            off_hi: (lo + 1) * n_pos,
            w_lo: 1.0 - frac,
            w_hi: frac,
        }
    }
}

/// Brackets for every `(node, sample-width)` pair: the attenuation of
/// `grid[k]` through node `s` and its linear-interpolation coefficients,
/// computed once instead of per PO column.
#[derive(Debug, Clone)]
pub(crate) struct InterpBrackets {
    per_node: Vec<Bracket>,
    k_n: usize,
}

impl InterpBrackets {
    pub(crate) fn new(grid: &[f64], delays: &[f64], model: AttenuationModel, n_pos: usize) -> Self {
        let k_n = grid.len();
        let mut per_node = Vec::with_capacity(delays.len() * k_n);
        for &delay in delays {
            for &g in grid {
                per_node.push(bracket_for(grid, model.apply(g, delay), n_pos));
            }
        }
        InterpBrackets { per_node, k_n }
    }

    /// Recomputes the brackets of one node after its delay changed.
    pub(crate) fn refresh_node(
        &mut self,
        node: usize,
        grid: &[f64],
        delay: f64,
        model: AttenuationModel,
        n_pos: usize,
    ) {
        for (k, &g) in grid.iter().enumerate() {
            self.per_node[node * self.k_n + k] = bracket_for(grid, model.apply(g, delay), n_pos);
        }
    }

    #[inline]
    pub(crate) fn at(&self, node: usize, k: usize) -> Bracket {
        self.per_node[node * self.k_n + k]
    }
}

/// The Eq. 2 logical-masking weights `π_isj`, cached per
/// `(node, reachable PO, successor)`. Both inputs (`S_is` from the static
/// probabilities and `P_ij` from the sensitization matrix) depend only on
/// the circuit's logic, so the cache survives every delay/size/cell
/// delta — it is built once per circuit and shared by the batch pass and
/// the incremental session.
#[derive(Debug, Clone)]
pub(crate) struct WeightCache {
    /// Successor node indices per node (deduplicated, CSR layout).
    succ_off: Vec<u32>,
    succ_nodes: Vec<u32>,
    /// Per-node offset into the per-(node, reachable-col) block table.
    slot_off: Vec<usize>,
    /// Per-slot offsets into `pis`; an empty block marks a column the
    /// row kernel skips (`P_ij = 0` or all-zero weights).
    blk_off: Vec<u32>,
    pis: Vec<f64>,
    /// PO column of each node (`u32::MAX` = not a primary output) —
    /// logic-only like everything else here, so the row kernel's step
    /// (ii) is a table lookup instead of an output-list scan.
    po_col: Vec<u32>,
}

impl WeightCache {
    pub(crate) fn build(circuit: &Circuit, probs: &[f64], pij: &SensitizationMatrix) -> Self {
        let n = circuit.node_count();
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_nodes: Vec<u32> = Vec::new();
        let mut slot_off = Vec::with_capacity(n + 1);
        let mut blk_off: Vec<u32> = Vec::new();
        let mut pis: Vec<f64> = Vec::new();
        let mut po_col = vec![u32::MAX; n];
        for (j, &po) in pij.outputs().iter().enumerate() {
            po_col[po.index()] = j as u32;
        }
        succ_off.push(0u32);
        slot_off.push(0usize);
        blk_off.push(0u32);
        for i in 0..n {
            let id = NodeId::new(i);
            let successors = successor_sensitizations(circuit, probs, id);
            succ_nodes.extend(successors.iter().map(|&(s, _)| s.index() as u32));
            succ_off.push(succ_nodes.len() as u32);
            for &col in pij.reachable_columns(id) {
                let j = col as usize;
                let p_ij = pij.p(id, j);
                if p_ij > 0.0 && !successors.is_empty() {
                    let w = pi_weights(&successors, p_ij, |s| pij.p(s, j));
                    if !w.iter().all(|&x| x == 0.0) {
                        pis.extend(w);
                    }
                }
                blk_off.push(pis.len() as u32);
            }
            slot_off.push(blk_off.len() - 1);
        }
        WeightCache {
            succ_off,
            succ_nodes,
            slot_off,
            blk_off,
            pis,
            po_col,
        }
    }

    #[inline]
    fn successors(&self, i: usize) -> &[u32] {
        &self.succ_nodes[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// The weight block of node `i`'s `t`-th reachable column (empty when
    /// the row kernel would skip that column).
    #[inline]
    fn block(&self, i: usize, t: usize) -> &[f64] {
        let slot = self.slot_off[i] + t;
        &self.pis[self.blk_off[slot] as usize..self.blk_off[slot + 1] as usize]
    }
}

/// The single width-row kernel: everything needed to re-derive one
/// node's `[k][j]` expected-width table from the cached weights, its
/// successors' tables and the hoisted brackets. The batch pass applies
/// it to every node (reverse topological); the incremental session to
/// exactly the dirty rows.
pub(crate) struct RowKernel<'a> {
    pub(crate) weights: &'a WeightCache,
    pub(crate) pij: &'a SensitizationMatrix,
    pub(crate) brackets: &'a InterpBrackets,
    pub(crate) grid: &'a [f64],
    pub(crate) n_pos: usize,
}

impl RowKernel<'_> {
    /// **The** width arithmetic: derives node `i`'s `[k][j]` row into
    /// `row_buf` from the cached weights, the successors' rows in `ws`
    /// and the hoisted brackets.
    fn derive_row(&self, i: usize, ws: &[f64], row_buf: &mut [f64]) {
        let k_n = self.grid.len();
        let n_pos = self.n_pos;
        let id = NodeId::new(i);
        row_buf.fill(0.0);

        // Step (ii): a primary output latches its own glitch verbatim.
        let self_col = self.weights.po_col[i];
        if self_col != u32::MAX {
            for k in 0..k_n {
                row_buf[k * n_pos + self_col as usize] = self.grid[k];
            }
        }

        // Step (iii): propagate through successors via the cached π
        // weights (applies to PO nodes that also feed logic — a strict
        // generalization of the paper, reducing to it when POs are
        // sinks). Columns outside the reachability list are structurally
        // zero (`P_ij = 0`) and never visited.
        let successors = self.weights.successors(i);
        if !successors.is_empty() {
            for (t, &col) in self.pij.reachable_columns(id).iter().enumerate() {
                let j = col as usize;
                let blk = self.weights.block(i, t);
                if blk.is_empty() {
                    continue;
                }
                for (k, slot) in row_buf.chunks_mut(n_pos).enumerate() {
                    let mut sum = 0.0;
                    for (&s, &pi_w) in successors.iter().zip(blk) {
                        if pi_w == 0.0 {
                            continue;
                        }
                        let b = self.brackets.at(s as usize, k);
                        let s_base = s as usize * k_n * n_pos;
                        let we =
                            ws[s_base + b.off_lo + j] * b.w_lo + ws[s_base + b.off_hi + j] * b.w_hi;
                        sum += pi_w * we;
                    }
                    slot[j] += sum;
                }
            }
        }
    }

    /// Re-derives node `i`'s row in `ws` (the node-major `[k][j]`
    /// storage), using `row_buf` (one row long) as scratch. Returns
    /// whether the row changed at any bit — the incremental engine's
    /// entry point (change detection gates its dirty propagation).
    pub(crate) fn recompute_row(&self, i: usize, ws: &mut [f64], row_buf: &mut [f64]) -> bool {
        self.derive_row(i, ws, row_buf);
        let k_n = self.grid.len();
        let base = i * k_n * self.n_pos;
        let dst = &mut ws[base..base + k_n * self.n_pos];
        if dst == row_buf {
            false
        } else {
            dst.copy_from_slice(row_buf);
            true
        }
    }

    /// [`RowKernel::recompute_row`] without the change detection — the
    /// full-dirty (batch / cold-start) passes know every row is being
    /// written, so the bitwise compare would be pure overhead.
    pub(crate) fn fill_row(&self, i: usize, ws: &mut [f64], row_buf: &mut [f64]) {
        self.derive_row(i, ws, row_buf);
        let k_n = self.grid.len();
        let base = i * k_n * self.n_pos;
        ws[base..base + k_n * self.n_pos].copy_from_slice(row_buf);
    }
}

/// **The** full-dirty pass: builds the weight cache and hoisted
/// brackets, then derives every node's row with the shared kernel in
/// reverse topological order. Batch construction
/// ([`ExpectedWidths::compute`]) keeps only the tables; a cold
/// [`AnalysisSession`](crate::AnalysisSession) keeps all three pieces as
/// its live caches — one orchestration, two consumers.
pub(crate) fn full_width_state(
    circuit: &Circuit,
    probs: &[f64],
    pij: &SensitizationMatrix,
    delays: &[f64],
    grid: Vec<f64>,
    model: AttenuationModel,
) -> (ExpectedWidths, WeightCache, InterpBrackets) {
    let mut out = ExpectedWidths::zeroed(pij.outputs().to_vec(), grid, circuit.node_count());
    let weights = WeightCache::build(circuit, probs, pij);
    let brackets = InterpBrackets::new(&out.grid, delays, model, out.n_pos);
    let mut row_buf = vec![0.0f64; out.grid.len() * out.n_pos];
    {
        let kernel = RowKernel {
            weights: &weights,
            pij,
            brackets: &brackets,
            grid: &out.grid,
            n_pos: out.n_pos,
        };
        for &id in circuit.topological_order().iter().rev() {
            kernel.fill_row(id.index(), &mut out.ws, &mut row_buf);
        }
    }
    (out, weights, brackets)
}

/// Interpolates a node's `[k][j]` table along k at width `w` (clamped).
#[inline]
pub(crate) fn interp_width(
    ws: &[f64],
    node_base: usize,
    n_pos: usize,
    j: usize,
    grid: &[f64],
    w: f64,
) -> f64 {
    let k_n = grid.len();
    if w <= grid[0] {
        return ws[node_base + j];
    }
    if w >= grid[k_n - 1] {
        return ws[node_base + (k_n - 1) * n_pos + j];
    }
    let mut lo = 0usize;
    let mut hi = k_n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if grid[mid] <= w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
    let a = ws[node_base + lo * n_pos + j];
    let b = ws[node_base + (lo + 1) * n_pos + j];
    a * (1.0 - frac) + b * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_logicsim::sensitize::sensitization_probabilities;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    fn grid() -> Vec<f64> {
        vec![
            0.0, 10e-12, 20e-12, 40e-12, 80e-12, 160e-12, 320e-12, 640e-12, 1280e-12, 2560e-12,
        ]
    }

    #[test]
    fn po_row_is_identity() {
        let c = generate::c17();
        let pij = sensitization_probabilities(&c, 1024, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![15e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        for (j, &po) in ew.outputs().to_vec().iter().enumerate() {
            for (k, &w) in ew.grid().to_vec().iter().enumerate() {
                assert_eq!(ew.at_sample(po, j, k), w);
            }
        }
    }

    #[test]
    fn lemma1_wide_glitch_reaches_po_with_p_ij() {
        // The machine-checked Lemma 1: for the top (very wide) sample,
        // W_ij = ww · P_ij exactly.
        let c = generate::c17();
        let pij = sensitization_probabilities(&c, 4096, 7);
        let probs = ser_logicsim::probability::static_probabilities_sampled(&c, 4096, 7);
        let delays = vec![18e-12; c.node_count()];
        let g = grid();
        let ww = *g.last().unwrap();
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, g);
        for i in c.gates() {
            for j in 0..ew.outputs().len() {
                let got = ew.expected_width(i, j, ww);
                let want = ww * pij.p(i, j);
                assert!(
                    (got - want).abs() <= ww * 0.02 + 1e-15,
                    "node {i} col {j}: {got:e} vs {want:e}"
                );
            }
        }
    }

    #[test]
    fn narrow_glitch_dies_before_reaching_po() {
        // Chain of 3 inverters with delay 20 ps: a 15 ps glitch at the
        // head is filtered (15 < d), so nothing arrives.
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        let g3 = b.gate(GateKind::Not, "g3", &[g2]).unwrap();
        b.mark_output(g3);
        let c = b.finish().unwrap();
        let pij = sensitization_probabilities(&c, 128, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![20e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        assert_eq!(ew.expected_width(g1, 0, 15e-12), 0.0);
        // A wide glitch sails through.
        assert!((ew.expected_width(g1, 0, 2560e-12) - 2560e-12).abs() < 1e-15);
        // The PO driver's own glitch is latched verbatim.
        assert!((ew.expected_width(g3, 0, 15e-12) - 15e-12).abs() < 1e-15);
    }

    #[test]
    fn attenuation_compounds_along_the_chain() {
        // Same chain; a 30 ps glitch at g1 passes g2 (2(30−20) = 20 ps),
        // then dies at g3 (20 ≤ d). From g2 it reaches the PO as
        // 2(30−20) = 20 ps.
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        let g3 = b.gate(GateKind::Not, "g3", &[g2]).unwrap();
        b.mark_output(g3);
        let c = b.finish().unwrap();
        let pij = sensitization_probabilities(&c, 128, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![20e-12; c.node_count()];
        // Grid dense around the interesting widths for exactness.
        let g = vec![0.0, 10e-12, 20e-12, 30e-12, 40e-12, 2560e-12];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, g);
        let w_from_g2 = ew.expected_width(g2, 0, 30e-12);
        assert!((w_from_g2 - 20e-12).abs() < 1e-15, "{w_from_g2:e}");
        let w_from_g1 = ew.expected_width(g1, 0, 30e-12);
        assert!(
            w_from_g1.abs() < 1e-15,
            "20 ps remnant dies at g3 (float seam only): {w_from_g1:e}"
        );
    }

    #[test]
    fn logical_masking_scales_expected_width() {
        // y = AND(i, b): with p(b)=0.5 the expected width halves.
        let mut bb = CircuitBuilder::new("and");
        let i = bb.input("i");
        let b2 = bb.input("b");
        let g = bb.gate(GateKind::Buf, "g", &[i]).unwrap();
        let y = bb.gate(GateKind::And, "y", &[g, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let pij = sensitization_probabilities(&c, 64 * 512, 3);
        let probs = ser_logicsim::probability::static_probabilities_analytic(&c, 0.5);
        let delays = vec![5e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        let wide = 2560e-12;
        let w = ew.expected_width(g, 0, wide);
        assert!((w - 0.5 * wide).abs() < 0.03 * wide, "{w:e}");
    }
}
