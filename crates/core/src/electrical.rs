//! Electrical masking: the expected output glitch width `WS_ijk` of every
//! gate `i` towards each primary output `j` at each of the `K` sample
//! input widths (paper §3.2, steps i–iv), combining Eq. 1 attenuation
//! with the Eq. 2 logical weights.
//!
//! There is exactly **one** implementation of the width arithmetic: the
//! per-row kernel (`RowKernel::recompute_row`, crate-internal), which
//! re-derives one node's `[k][j]` table from the cached Eq. 2 weights
//! (`WeightCache`), its successors' tables and the hoisted
//! interpolation brackets. Batch construction
//! ([`ExpectedWidths::compute`]) is a full-dirty application of that
//! kernel in reverse topological order, and the incremental
//! [`AnalysisSession`](crate::AnalysisSession) applies it to exactly the
//! rows a delta invalidates — so the two paths are bitwise
//! interchangeable by construction (the workspace `fresh_path_equiv`
//! proptest pins the batch result against the pre-refactor pipeline).
//!
//! Fidelity note (the paper's own concession): `π_isj` treats branch
//! propagation independently, so observability that exists *only* through
//! joint flips of reconvergent branches (every single-successor `P_sj` is
//! 0 while `P_ij > 0`) is not representable — the expected width
//! under-approximates there. Lemma 1 therefore holds exactly off those
//! anomaly cones and as the upper bound `WS ≤ ww·P_ij` in general; the
//! workspace property test `lemma1_holds_on_random_circuits` checks both
//! sides.

use ser_logicsim::SensitizationMatrix;
use ser_netlist::{Circuit, NodeId};

use crate::glitch::AttenuationModel;
use crate::logical::{pi_weights_into, successor_sensitizations_into};

/// The computed expected-width tables.
///
/// Storage is *sparse over structurally reachable PO columns*: node `i`
/// stores `grid.len()` samples for exactly the columns in
/// `pij.reachable_columns(i)` (every other `W_ijk` is structurally
/// zero, `P_ij = 0`). Layout is node-major, then sample-width, then
/// reachable-column position: node `i`'s row starts at
/// `reach_off[i]·K` and entry `(k, t)` lives at `base + k·len_i + t`.
/// On deep circuits with few POs this is the difference between
/// `O(V·K·|PO|)` and `O(K·Σ|reach(i)|)` bytes — the dense table alone
/// would dwarf every other analysis artifact at 100k gates.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedWidths {
    outputs: Vec<NodeId>,
    grid: Vec<f64>,
    /// CSR offsets into `reach_cols` (length `n_nodes + 1`).
    reach_off: Vec<u32>,
    /// Reachable PO columns per node, ascending (mirrors the
    /// sensitization matrix's structural reachability).
    reach_cols: Vec<u32>,
    ws: Vec<f64>,
}

impl ExpectedWidths {
    /// Drops the table storage. Recovery sheds the derived caches before
    /// a full rebuild so its peak memory stays near one session's.
    pub(crate) fn shed(&mut self) {
        self.outputs = Vec::new();
        self.grid = Vec::new();
        self.reach_off = Vec::new();
        self.reach_cols = Vec::new();
        self.ws = Vec::new();
    }

    /// Builds the tables: a full-dirty application of the shared row
    /// kernel in reverse topological order.
    ///
    /// * `probs` — static 1-probabilities per node;
    /// * `pij` — sensitization matrix (defines the PO column order);
    /// * `delays` — per-node propagation delays (library lookups);
    /// * `grid` — the `K` sample widths, sorted ascending, `grid[0] = 0`,
    ///   top entry "very wide" (see
    ///   [`AsertaConfig::sample_width_grid`](crate::AsertaConfig::sample_width_grid)).
    ///
    /// Complexity `O((V+E)·K·|PO|)`.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is unsorted or does not start at 0.
    pub fn compute(
        circuit: &Circuit,
        probs: &[f64],
        pij: &SensitizationMatrix,
        delays: &[f64],
        grid: Vec<f64>,
    ) -> Self {
        Self::compute_with_model(
            circuit,
            probs,
            pij,
            delays,
            grid,
            AttenuationModel::PaperEq1,
        )
    }

    /// [`ExpectedWidths::compute`] with an explicit attenuation law — the
    /// ablation hook comparing Eq. 1 against the smooth variant.
    ///
    /// # Panics
    ///
    /// As for [`ExpectedWidths::compute`].
    pub fn compute_with_model(
        circuit: &Circuit,
        probs: &[f64],
        pij: &SensitizationMatrix,
        delays: &[f64],
        grid: Vec<f64>,
        model: AttenuationModel,
    ) -> Self {
        full_width_state(circuit, probs, pij, delays, grid, model).0
    }

    /// All-zero tables over the sensitization matrix's structural
    /// reachability — the starting point of the full-dirty pass (and of
    /// a cold [`AnalysisSession`]).
    ///
    /// # Panics
    ///
    /// Panics if `grid` is unsorted or does not start at 0.
    ///
    /// [`AnalysisSession`]: crate::AnalysisSession
    pub(crate) fn zeroed(pij: &SensitizationMatrix, grid: Vec<f64>, n_nodes: usize) -> Self {
        assert!(
            grid.windows(2).all(|w| w[1] > w[0]),
            "sample grid must be strictly increasing"
        );
        assert_eq!(grid.first(), Some(&0.0), "sample grid must start at 0");
        let mut reach_off = Vec::with_capacity(n_nodes + 1);
        let mut reach_cols: Vec<u32> = Vec::new();
        reach_off.push(0u32);
        for i in 0..n_nodes {
            reach_cols.extend_from_slice(pij.reachable_columns(NodeId::new(i)));
            reach_off.push(reach_cols.len() as u32);
        }
        let ws = vec![0.0f64; grid.len() * reach_cols.len()];
        ExpectedWidths {
            outputs: pij.outputs().to_vec(),
            grid,
            reach_off,
            reach_cols,
            ws,
        }
    }

    /// The PO column order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The sample-width grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// The sparse row geometry of node `i`: `(base, cols)` where `base`
    /// indexes `ws` at sample 0 and `cols` lists the reachable PO
    /// columns (row stride per sample = `cols.len()`).
    #[inline]
    fn row_of(&self, i: usize) -> (usize, &[u32]) {
        let lo = self.reach_off[i] as usize;
        let hi = self.reach_off[i + 1] as usize;
        (lo * self.grid.len(), &self.reach_cols[lo..hi])
    }

    /// `WS_ijk`: expected width at PO column `j` for sample width index
    /// `k` at gate `i` (structurally zero off the reachability list).
    pub fn at_sample(&self, i: NodeId, j: usize, k: usize) -> f64 {
        let (base, cols) = self.row_of(i.index());
        match cols.binary_search(&(j as u32)) {
            Ok(t) => self.ws[base + k * cols.len() + t],
            Err(_) => 0.0,
        }
    }

    /// Step (iv): the expected width `W_ij` at PO column `j` for an
    /// arbitrary generated width `w_gen` at gate `i`, interpolating the
    /// sample tables.
    pub fn expected_width(&self, i: NodeId, j: usize, w_gen: f64) -> f64 {
        let (base, cols) = self.row_of(i.index());
        match cols.binary_search(&(j as u32)) {
            Ok(t) => interp_col(&self.ws, base, cols.len(), t, &self.grid, w_gen),
            Err(_) => 0.0,
        }
    }

    /// `Σ_j W_ij` for a generated width — the latching-window-masked
    /// total the unreliability formula consumes. Unreachable columns
    /// contribute exactly `+0.0`, so summing the reachable ones in
    /// column order is bitwise identical to the dense sum.
    pub fn total_expected_width(&self, i: NodeId, w_gen: f64) -> f64 {
        let (base, cols) = self.row_of(i.index());
        (0..cols.len())
            .map(|t| interp_col(&self.ws, base, cols.len(), t, &self.grid, w_gen))
            .sum()
    }

    /// The raw sparse `[k][t]` storage — equivalence assertions and the
    /// session snapshot verifier compare whole tables at once; both
    /// sides are built over the same `P_ij`, hence the same layout.
    #[inline]
    pub(crate) fn ws(&self) -> &[f64] {
        &self.ws
    }
}

/// One hoisted interpolation bracket: the sample indices and blend
/// weights of the two grid samples framing an attenuated width. Indices
/// are plain `k` values — each consumer multiplies by its own row
/// stride (the sparse tables give every node a different one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Bracket {
    pub(crate) k_lo: usize,
    pub(crate) k_hi: usize,
    pub(crate) w_lo: f64,
    pub(crate) w_hi: f64,
}

/// The bracket of one attenuated width `w` in `grid`: the two framing
/// sample indices and their blend weights, clamped at both ends. This
/// is the single source of truth shared by the batch pass and the
/// incremental engine's per-node bracket refresh, and it reproduces
/// [`interp_col`]'s arithmetic exactly (same clamping, same blend
/// expression).
pub(crate) fn bracket_for(grid: &[f64], w: f64) -> Bracket {
    let top = grid.len() - 1;
    if w <= grid[0] {
        Bracket {
            k_lo: 0,
            k_hi: 0,
            w_lo: 1.0,
            w_hi: 0.0,
        }
    } else if w >= grid[top] {
        Bracket {
            k_lo: top,
            k_hi: top,
            w_lo: 0.0,
            w_hi: 1.0,
        }
    } else {
        let mut lo = 0usize;
        let mut hi = top;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if grid[mid] <= w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
        Bracket {
            k_lo: lo,
            k_hi: lo + 1,
            w_lo: 1.0 - frac,
            w_hi: frac,
        }
    }
}

/// Brackets for every `(node, sample-width)` pair: the attenuation of
/// `grid[k]` through node `s` and its linear-interpolation coefficients,
/// computed once instead of per PO column.
#[derive(Debug, Clone)]
pub(crate) struct InterpBrackets {
    per_node: Vec<Bracket>,
    k_n: usize,
}

impl InterpBrackets {
    /// Drops the bracket storage (see [`ExpectedWidths::shed`]).
    pub(crate) fn shed(&mut self) {
        self.per_node = Vec::new();
        self.k_n = 0;
    }

    pub(crate) fn new(grid: &[f64], delays: &[f64], model: AttenuationModel) -> Self {
        let k_n = grid.len();
        let mut per_node = Vec::with_capacity(delays.len() * k_n);
        for &delay in delays {
            for &g in grid {
                per_node.push(bracket_for(grid, model.apply(g, delay)));
            }
        }
        InterpBrackets { per_node, k_n }
    }

    /// Recomputes the brackets of one node after its delay changed.
    pub(crate) fn refresh_node(
        &mut self,
        node: usize,
        grid: &[f64],
        delay: f64,
        model: AttenuationModel,
    ) {
        for (k, &g) in grid.iter().enumerate() {
            self.per_node[node * self.k_n + k] = bracket_for(grid, model.apply(g, delay));
        }
    }

    #[inline]
    pub(crate) fn at(&self, node: usize, k: usize) -> Bracket {
        self.per_node[node * self.k_n + k]
    }
}

/// The Eq. 2 logical-masking weights `π_isj`, cached per
/// `(node, reachable PO, successor)`. Both inputs (`S_is` from the static
/// probabilities and `P_ij` from the sensitization matrix) depend only on
/// the circuit's logic, so the cache survives every delay/size/cell
/// delta — it is built once per circuit and shared by the batch pass and
/// the incremental session.
#[derive(Debug, Clone)]
pub(crate) struct WeightCache {
    /// Successor node indices per node (deduplicated, CSR layout).
    succ_off: Vec<u32>,
    succ_nodes: Vec<u32>,
    /// Per-node offset into the per-(node, reachable-col) block table.
    slot_off: Vec<usize>,
    /// Per-slot offsets into `pis`; an empty block marks a column the
    /// row kernel skips (`P_ij = 0` or all-zero weights).
    blk_off: Vec<u32>,
    pis: Vec<f64>,
    /// Parallel to `pis`: the position of the block's column in the
    /// *successor's* reachable-column list, or `u32::MAX` when the
    /// successor does not reach it (its `WS` there is exactly 0.0, so
    /// the kernel skips the term). This is what lets the row kernel
    /// index the sparse width rows without a per-term binary search.
    succ_pos: Vec<u32>,
    /// PO column of each node (`u32::MAX` = not a primary output) —
    /// logic-only like everything else here, so the row kernel's step
    /// (ii) is a table lookup instead of an output-list scan.
    po_col: Vec<u32>,
}

impl WeightCache {
    /// Drops the cached weights (see [`ExpectedWidths::shed`]). The
    /// `π_isj` table is the largest derived artifact of a session, so
    /// shedding it is most of recovery's memory headroom.
    pub(crate) fn shed(&mut self) {
        self.succ_off = Vec::new();
        self.succ_nodes = Vec::new();
        self.slot_off = Vec::new();
        self.blk_off = Vec::new();
        self.pis = Vec::new();
        self.succ_pos = Vec::new();
        self.po_col = Vec::new();
    }

    pub(crate) fn build(circuit: &Circuit, probs: &[f64], pij: &SensitizationMatrix) -> Self {
        let n = circuit.node_count();
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut succ_nodes: Vec<u32> = Vec::new();
        let mut slot_off = Vec::with_capacity(n + 1);
        let mut blk_off: Vec<u32> = Vec::new();
        let mut pis: Vec<f64> = Vec::new();
        let mut succ_pos: Vec<u32> = Vec::new();
        let mut po_col = vec![u32::MAX; n];
        for (j, &po) in pij.outputs().iter().enumerate() {
            po_col[po.index()] = j as u32;
        }
        succ_off.push(0u32);
        slot_off.push(0usize);
        blk_off.push(0u32);
        let mut successors: Vec<(NodeId, f64)> = Vec::new();
        let mut w_buf: Vec<f64> = Vec::new();
        for i in 0..n {
            let id = NodeId::new(i);
            successor_sensitizations_into(circuit, probs, id, &mut successors);
            succ_nodes.extend(successors.iter().map(|&(s, _)| s.index() as u32));
            succ_off.push(succ_nodes.len() as u32);
            for &col in pij.reachable_columns(id) {
                let j = col as usize;
                let p_ij = pij.p(id, j);
                if p_ij > 0.0 && !successors.is_empty() {
                    pi_weights_into(&successors, p_ij, |s| pij.p(s, j), &mut w_buf);
                    if !w_buf.iter().all(|&x| x == 0.0) {
                        pis.extend_from_slice(&w_buf);
                        succ_pos.extend(successors.iter().map(|&(s, _)| {
                            pij.reachable_columns(s)
                                .binary_search(&col)
                                .map_or(u32::MAX, |t| t as u32)
                        }));
                    }
                }
                blk_off.push(pis.len() as u32);
            }
            slot_off.push(blk_off.len() - 1);
        }
        WeightCache {
            succ_off,
            succ_nodes,
            slot_off,
            blk_off,
            pis,
            succ_pos,
            po_col,
        }
    }

    #[inline]
    fn successors(&self, i: usize) -> &[u32] {
        &self.succ_nodes[self.succ_off[i] as usize..self.succ_off[i + 1] as usize]
    }

    /// The weight block and successor-position block of node `i`'s
    /// `t`-th reachable column (empty when the row kernel would skip
    /// that column).
    #[inline]
    fn block(&self, i: usize, t: usize) -> (&[f64], &[u32]) {
        let slot = self.slot_off[i] + t;
        let lo = self.blk_off[slot] as usize;
        let hi = self.blk_off[slot + 1] as usize;
        (&self.pis[lo..hi], &self.succ_pos[lo..hi])
    }
}

/// The single width-row kernel: everything needed to re-derive one
/// node's `[k][j]` expected-width table from the cached weights, its
/// successors' tables and the hoisted brackets. The batch pass applies
/// it to every node (reverse topological); the incremental session to
/// exactly the dirty rows.
pub(crate) struct RowKernel<'a> {
    pub(crate) weights: &'a WeightCache,
    pub(crate) brackets: &'a InterpBrackets,
    pub(crate) grid: &'a [f64],
}

impl RowKernel<'_> {
    /// **The** width arithmetic: derives node `i`'s sparse `[k][t]` row
    /// into `row_buf` (resized to the row's exact length) from the
    /// cached weights, the successors' rows in `widths` and the hoisted
    /// brackets.
    fn derive_row(&self, i: usize, widths: &ExpectedWidths, row_buf: &mut Vec<f64>) {
        let k_n = self.grid.len();
        let (_, cols) = widths.row_of(i);
        let len_i = cols.len();
        row_buf.clear();
        row_buf.resize(k_n * len_i, 0.0);

        // Step (ii): a primary output latches its own glitch verbatim.
        // A PO's cone contains itself, so its column is always on its
        // own reachability list.
        let self_col = self.weights.po_col[i];
        if self_col != u32::MAX {
            // Invariant: the column is present — a cone contains its root.
            if let Ok(t) = cols.binary_search(&self_col) {
                for k in 0..k_n {
                    row_buf[k * len_i + t] = self.grid[k];
                }
            } else {
                debug_assert!(false, "a primary output reaches its own column");
            }
        }

        // Step (iii): propagate through successors via the cached π
        // weights (applies to PO nodes that also feed logic — a strict
        // generalization of the paper, reducing to it when POs are
        // sinks). Columns outside the reachability list are structurally
        // zero (`P_ij = 0`) and never visited; a successor that does not
        // reach the column holds an exact 0.0 there, so skipping its
        // term drops only `+0.0` additions (all summands are
        // non-negative — bitwise neutral).
        let successors = self.weights.successors(i);
        if !successors.is_empty() {
            for t in 0..len_i {
                let (blk, pos) = self.weights.block(i, t);
                if blk.is_empty() {
                    continue;
                }
                for k in 0..k_n {
                    let mut sum = 0.0;
                    for ((&s, &pi_w), &ps) in successors.iter().zip(blk).zip(pos) {
                        if pi_w == 0.0 || ps == u32::MAX {
                            continue;
                        }
                        let b = self.brackets.at(s as usize, k);
                        let (s_base, s_cols) = widths.row_of(s as usize);
                        let s_len = s_cols.len();
                        let we = widths.ws[s_base + b.k_lo * s_len + ps as usize] * b.w_lo
                            + widths.ws[s_base + b.k_hi * s_len + ps as usize] * b.w_hi;
                        sum += pi_w * we;
                    }
                    row_buf[k * len_i + t] += sum;
                }
            }
        }
    }

    /// Re-derives node `i`'s sparse row in `widths`, using `row_buf` as
    /// scratch (resized to the row length). Returns whether the row
    /// changed at any bit — the incremental engine's entry point
    /// (change detection gates its dirty propagation).
    pub(crate) fn recompute_row(
        &self,
        i: usize,
        widths: &mut ExpectedWidths,
        row_buf: &mut Vec<f64>,
    ) -> bool {
        self.derive_row(i, widths, row_buf);
        let (base, _) = widths.row_of(i);
        let dst = &mut widths.ws[base..base + row_buf.len()];
        if dst == &row_buf[..] {
            false
        } else {
            dst.copy_from_slice(row_buf);
            true
        }
    }

    /// [`RowKernel::recompute_row`] without the change detection — the
    /// full-dirty (batch / cold-start) passes know every row is being
    /// written, so the bitwise compare would be pure overhead.
    pub(crate) fn fill_row(&self, i: usize, widths: &mut ExpectedWidths, row_buf: &mut Vec<f64>) {
        self.derive_row(i, widths, row_buf);
        let (base, _) = widths.row_of(i);
        widths.ws[base..base + row_buf.len()].copy_from_slice(row_buf);
    }
}

/// **The** full-dirty pass: builds the weight cache and hoisted
/// brackets, then derives every node's row with the shared kernel in
/// reverse topological order. Batch construction
/// ([`ExpectedWidths::compute`]) keeps only the tables; a cold
/// [`AnalysisSession`](crate::AnalysisSession) keeps all three pieces as
/// its live caches — one orchestration, two consumers.
pub(crate) fn full_width_state(
    circuit: &Circuit,
    probs: &[f64],
    pij: &SensitizationMatrix,
    delays: &[f64],
    grid: Vec<f64>,
    model: AttenuationModel,
) -> (ExpectedWidths, WeightCache, InterpBrackets) {
    let mut out = ExpectedWidths::zeroed(pij, grid, circuit.node_count());
    let weights = WeightCache::build(circuit, probs, pij);
    let brackets = InterpBrackets::new(&out.grid, delays, model);
    let mut row_buf: Vec<f64> = Vec::new();
    {
        // The kernel borrows the grid by value-clone: `fill_row` needs
        // `&mut out` while the K-element grid is immutable context.
        let grid = out.grid.clone();
        let kernel = RowKernel {
            weights: &weights,
            brackets: &brackets,
            grid: &grid,
        };
        for &id in circuit.topological_order().iter().rev() {
            kernel.fill_row(id.index(), &mut out, &mut row_buf);
        }
    }
    (out, weights, brackets)
}

/// Interpolates one sparse column (`stride` entries per sample, column
/// position `t`) along k at width `w` (clamped).
#[inline]
pub(crate) fn interp_col(
    ws: &[f64],
    node_base: usize,
    stride: usize,
    t: usize,
    grid: &[f64],
    w: f64,
) -> f64 {
    let k_n = grid.len();
    if w <= grid[0] {
        return ws[node_base + t];
    }
    if w >= grid[k_n - 1] {
        return ws[node_base + (k_n - 1) * stride + t];
    }
    let mut lo = 0usize;
    let mut hi = k_n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if grid[mid] <= w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
    let a = ws[node_base + lo * stride + t];
    let b = ws[node_base + (lo + 1) * stride + t];
    a * (1.0 - frac) + b * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_logicsim::sensitize::sensitization_probabilities;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    fn grid() -> Vec<f64> {
        vec![
            0.0, 10e-12, 20e-12, 40e-12, 80e-12, 160e-12, 320e-12, 640e-12, 1280e-12, 2560e-12,
        ]
    }

    #[test]
    fn po_row_is_identity() {
        let c = generate::c17();
        let pij = sensitization_probabilities(&c, 1024, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![15e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        for (j, &po) in ew.outputs().to_vec().iter().enumerate() {
            for (k, &w) in ew.grid().to_vec().iter().enumerate() {
                assert_eq!(ew.at_sample(po, j, k), w);
            }
        }
    }

    #[test]
    fn lemma1_wide_glitch_reaches_po_with_p_ij() {
        // The machine-checked Lemma 1: for the top (very wide) sample,
        // W_ij = ww · P_ij exactly.
        let c = generate::c17();
        let pij = sensitization_probabilities(&c, 4096, 7);
        let probs = ser_logicsim::probability::static_probabilities_sampled(&c, 4096, 7);
        let delays = vec![18e-12; c.node_count()];
        let g = grid();
        let ww = *g.last().unwrap();
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, g);
        for i in c.gates() {
            for j in 0..ew.outputs().len() {
                let got = ew.expected_width(i, j, ww);
                let want = ww * pij.p(i, j);
                assert!(
                    (got - want).abs() <= ww * 0.02 + 1e-15,
                    "node {i} col {j}: {got:e} vs {want:e}"
                );
            }
        }
    }

    #[test]
    fn narrow_glitch_dies_before_reaching_po() {
        // Chain of 3 inverters with delay 20 ps: a 15 ps glitch at the
        // head is filtered (15 < d), so nothing arrives.
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        let g3 = b.gate(GateKind::Not, "g3", &[g2]).unwrap();
        b.mark_output(g3);
        let c = b.finish().unwrap();
        let pij = sensitization_probabilities(&c, 128, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![20e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        assert_eq!(ew.expected_width(g1, 0, 15e-12), 0.0);
        // A wide glitch sails through.
        assert!((ew.expected_width(g1, 0, 2560e-12) - 2560e-12).abs() < 1e-15);
        // The PO driver's own glitch is latched verbatim.
        assert!((ew.expected_width(g3, 0, 15e-12) - 15e-12).abs() < 1e-15);
    }

    #[test]
    fn attenuation_compounds_along_the_chain() {
        // Same chain; a 30 ps glitch at g1 passes g2 (2(30−20) = 20 ps),
        // then dies at g3 (20 ≤ d). From g2 it reaches the PO as
        // 2(30−20) = 20 ps.
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        let g3 = b.gate(GateKind::Not, "g3", &[g2]).unwrap();
        b.mark_output(g3);
        let c = b.finish().unwrap();
        let pij = sensitization_probabilities(&c, 128, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![20e-12; c.node_count()];
        // Grid dense around the interesting widths for exactness.
        let g = vec![0.0, 10e-12, 20e-12, 30e-12, 40e-12, 2560e-12];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, g);
        let w_from_g2 = ew.expected_width(g2, 0, 30e-12);
        assert!((w_from_g2 - 20e-12).abs() < 1e-15, "{w_from_g2:e}");
        let w_from_g1 = ew.expected_width(g1, 0, 30e-12);
        assert!(
            w_from_g1.abs() < 1e-15,
            "20 ps remnant dies at g3 (float seam only): {w_from_g1:e}"
        );
    }

    #[test]
    fn logical_masking_scales_expected_width() {
        // y = AND(i, b): with p(b)=0.5 the expected width halves.
        let mut bb = CircuitBuilder::new("and");
        let i = bb.input("i");
        let b2 = bb.input("b");
        let g = bb.gate(GateKind::Buf, "g", &[i]).unwrap();
        let y = bb.gate(GateKind::And, "y", &[g, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let pij = sensitization_probabilities(&c, 64 * 512, 3);
        let probs = ser_logicsim::probability::static_probabilities_analytic(&c, 0.5);
        let delays = vec![5e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        let wide = 2560e-12;
        let w = ew.expected_width(g, 0, wide);
        assert!((w - 0.5 * wide).abs() < 0.03 * wide, "{w:e}");
    }
}
