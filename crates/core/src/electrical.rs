//! Electrical masking: the reverse-topological pass computing, for every
//! gate `i` and primary output `j`, the expected output glitch width
//! `WS_ijk` at each of the `K` sample input widths (paper §3.2,
//! steps i–iv), combining Eq. 1 attenuation with the Eq. 2 logical
//! weights.
//!
//! Fidelity note (the paper's own concession): `π_isj` treats branch
//! propagation independently, so observability that exists *only* through
//! joint flips of reconvergent branches (every single-successor `P_sj` is
//! 0 while `P_ij > 0`) is not representable — the expected width
//! under-approximates there. Lemma 1 therefore holds exactly off those
//! anomaly cones and as the upper bound `WS ≤ ww·P_ij` in general; the
//! workspace property test `lemma1_holds_on_random_circuits` checks both
//! sides.

use ser_logicsim::SensitizationMatrix;
use ser_netlist::{Circuit, NodeId};

use crate::glitch::AttenuationModel;
use crate::logical::{pi_weights, successor_sensitizations};

/// The computed expected-width tables.
///
/// Storage is node-major, then sample-width, then PO column:
/// `ws[(node·K + k)·n_pos + j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedWidths {
    outputs: Vec<NodeId>,
    grid: Vec<f64>,
    n_pos: usize,
    ws: Vec<f64>,
}

impl ExpectedWidths {
    /// Runs the reverse-topological pass.
    ///
    /// * `probs` — static 1-probabilities per node;
    /// * `pij` — sensitization matrix (defines the PO column order);
    /// * `delays` — per-node propagation delays (library lookups);
    /// * `grid` — the `K` sample widths, sorted ascending, `grid[0] = 0`,
    ///   top entry "very wide" (see
    ///   [`AsertaConfig::sample_width_grid`](crate::AsertaConfig::sample_width_grid)).
    ///
    /// Complexity `O((V+E)·K·|PO|)`.
    ///
    /// # Panics
    ///
    /// Panics if `grid` is unsorted or does not start at 0.
    pub fn compute(
        circuit: &Circuit,
        probs: &[f64],
        pij: &SensitizationMatrix,
        delays: &[f64],
        grid: Vec<f64>,
    ) -> Self {
        Self::compute_with_model(
            circuit,
            probs,
            pij,
            delays,
            grid,
            AttenuationModel::PaperEq1,
        )
    }

    /// [`ExpectedWidths::compute`] with an explicit attenuation law — the
    /// ablation hook comparing Eq. 1 against the smooth variant.
    ///
    /// # Panics
    ///
    /// As for [`ExpectedWidths::compute`].
    pub fn compute_with_model(
        circuit: &Circuit,
        probs: &[f64],
        pij: &SensitizationMatrix,
        delays: &[f64],
        grid: Vec<f64>,
        model: AttenuationModel,
    ) -> Self {
        assert!(
            grid.windows(2).all(|w| w[1] > w[0]),
            "sample grid must be strictly increasing"
        );
        assert_eq!(grid.first(), Some(&0.0), "sample grid must start at 0");
        let outputs: Vec<NodeId> = pij.outputs().to_vec();
        let n_pos = outputs.len();
        let k_n = grid.len();
        let n = circuit.node_count();
        let mut ws = vec![0.0f64; n * k_n * n_pos];

        // Column index of each PO node (POs can appear once only).
        let mut po_col = vec![usize::MAX; n];
        for (j, &po) in outputs.iter().enumerate() {
            po_col[po.index()] = j;
        }

        // Hoisted interpolation brackets: the attenuated width
        // `wos = model.apply(grid[k], delay[s])` and its bracket in the
        // grid depend only on (node, k), not on the PO column, so the
        // per-column inner loop below reduces to one fused
        // multiply-add over precomputed row offsets and weights.
        let brackets = InterpBrackets::new(&grid, delays, model, n_pos);

        for &id in circuit.topological_order().iter().rev() {
            let base = id.index() * k_n * n_pos;

            // Step (ii): a primary output latches its own glitch verbatim.
            let self_col = po_col[id.index()];
            if self_col != usize::MAX {
                for k in 0..k_n {
                    ws[base + k * n_pos + self_col] = grid[k];
                }
            }

            // Step (iii): propagate through successors (applies to PO
            // nodes that also feed logic — a strict generalization of the
            // paper, reducing to it when POs are sinks).
            let successors = successor_sensitizations(circuit, probs, id);
            if successors.is_empty() {
                continue;
            }
            // Columns outside the reachability list are structurally
            // zero (`P_ij = 0`); skip them without touching the matrix.
            for &col in pij.reachable_columns(id) {
                let j = col as usize;
                // π weights share the denominator across k; compute once.
                let p_ij = pij.p(id, j);
                if p_ij <= 0.0 {
                    continue;
                }
                let pis = pi_weights(&successors, p_ij, |s| pij.p(s, j));
                if pis.iter().all(|&x| x == 0.0) {
                    continue;
                }
                for k in 0..k_n {
                    let mut sum = 0.0;
                    for (&(s, _), &pi_w) in successors.iter().zip(&pis) {
                        if pi_w == 0.0 {
                            continue;
                        }
                        let b = brackets.at(s.index(), k);
                        let s_base = s.index() * k_n * n_pos;
                        let we =
                            ws[s_base + b.off_lo + j] * b.w_lo + ws[s_base + b.off_hi + j] * b.w_hi;
                        sum += pi_w * we;
                    }
                    ws[base + k * n_pos + j] += sum;
                }
            }
        }

        ExpectedWidths {
            outputs,
            grid,
            n_pos,
            ws,
        }
    }

    /// The PO column order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The sample-width grid.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// `WS_ijk`: expected width at PO column `j` for sample width index
    /// `k` at gate `i`.
    pub fn at_sample(&self, i: NodeId, j: usize, k: usize) -> f64 {
        self.ws[(i.index() * self.grid.len() + k) * self.n_pos + j]
    }

    /// Step (iv): the expected width `W_ij` at PO column `j` for an
    /// arbitrary generated width `w_gen` at gate `i`, interpolating the
    /// sample tables.
    pub fn expected_width(&self, i: NodeId, j: usize, w_gen: f64) -> f64 {
        interp_width(
            &self.ws,
            i.index() * self.grid.len() * self.n_pos,
            self.n_pos,
            j,
            &self.grid,
            w_gen,
        )
    }

    /// `Σ_j W_ij` for a generated width — the latching-window-masked
    /// total the unreliability formula consumes.
    pub fn total_expected_width(&self, i: NodeId, w_gen: f64) -> f64 {
        (0..self.n_pos)
            .map(|j| self.expected_width(i, j, w_gen))
            .sum()
    }

    /// The raw node-major `[k][j]` storage — the incremental engine
    /// patches rows in place.
    #[inline]
    pub(crate) fn ws(&self) -> &[f64] {
        &self.ws
    }

    /// Mutable access to the raw storage (see [`ExpectedWidths::ws`]).
    #[inline]
    pub(crate) fn ws_mut(&mut self) -> &mut [f64] {
        &mut self.ws
    }
}

/// One hoisted interpolation bracket: row offsets (premultiplied by the
/// PO-column stride) and blend weights of the two grid samples framing an
/// attenuated width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Bracket {
    pub(crate) off_lo: usize,
    pub(crate) off_hi: usize,
    pub(crate) w_lo: f64,
    pub(crate) w_hi: f64,
}

/// The bracket of one attenuated width `w` in `grid`: the two framing
/// sample rows (offsets premultiplied by the PO-column stride `n_pos`)
/// and their blend weights, clamped at both ends. This is the single
/// source of truth shared by the batch pass and the incremental engine's
/// per-node bracket refresh, and it reproduces [`interp_width`]'s
/// arithmetic exactly (same clamping, same blend expression).
pub(crate) fn bracket_for(grid: &[f64], w: f64, n_pos: usize) -> Bracket {
    let top = grid.len() - 1;
    if w <= grid[0] {
        Bracket {
            off_lo: 0,
            off_hi: 0,
            w_lo: 1.0,
            w_hi: 0.0,
        }
    } else if w >= grid[top] {
        Bracket {
            off_lo: top * n_pos,
            off_hi: top * n_pos,
            w_lo: 0.0,
            w_hi: 1.0,
        }
    } else {
        let mut lo = 0usize;
        let mut hi = top;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if grid[mid] <= w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
        Bracket {
            off_lo: lo * n_pos,
            off_hi: (lo + 1) * n_pos,
            w_lo: 1.0 - frac,
            w_hi: frac,
        }
    }
}

/// Brackets for every `(node, sample-width)` pair: the attenuation of
/// `grid[k]` through node `s` and its linear-interpolation coefficients,
/// computed once instead of per PO column.
#[derive(Debug, Clone)]
pub(crate) struct InterpBrackets {
    per_node: Vec<Bracket>,
    k_n: usize,
}

impl InterpBrackets {
    pub(crate) fn new(grid: &[f64], delays: &[f64], model: AttenuationModel, n_pos: usize) -> Self {
        let k_n = grid.len();
        let mut per_node = Vec::with_capacity(delays.len() * k_n);
        for &delay in delays {
            for &g in grid {
                per_node.push(bracket_for(grid, model.apply(g, delay), n_pos));
            }
        }
        InterpBrackets { per_node, k_n }
    }

    /// Recomputes the brackets of one node after its delay changed.
    pub(crate) fn refresh_node(
        &mut self,
        node: usize,
        grid: &[f64],
        delay: f64,
        model: AttenuationModel,
        n_pos: usize,
    ) {
        for (k, &g) in grid.iter().enumerate() {
            self.per_node[node * self.k_n + k] = bracket_for(grid, model.apply(g, delay), n_pos);
        }
    }

    #[inline]
    pub(crate) fn at(&self, node: usize, k: usize) -> Bracket {
        self.per_node[node * self.k_n + k]
    }
}

/// Interpolates a node's `[k][j]` table along k at width `w` (clamped).
#[inline]
pub(crate) fn interp_width(
    ws: &[f64],
    node_base: usize,
    n_pos: usize,
    j: usize,
    grid: &[f64],
    w: f64,
) -> f64 {
    let k_n = grid.len();
    if w <= grid[0] {
        return ws[node_base + j];
    }
    if w >= grid[k_n - 1] {
        return ws[node_base + (k_n - 1) * n_pos + j];
    }
    let mut lo = 0usize;
    let mut hi = k_n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if grid[mid] <= w {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let frac = (w - grid[lo]) / (grid[lo + 1] - grid[lo]);
    let a = ws[node_base + lo * n_pos + j];
    let b = ws[node_base + (lo + 1) * n_pos + j];
    a * (1.0 - frac) + b * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_logicsim::sensitize::sensitization_probabilities;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    fn grid() -> Vec<f64> {
        vec![
            0.0, 10e-12, 20e-12, 40e-12, 80e-12, 160e-12, 320e-12, 640e-12, 1280e-12, 2560e-12,
        ]
    }

    #[test]
    fn po_row_is_identity() {
        let c = generate::c17();
        let pij = sensitization_probabilities(&c, 1024, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![15e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        for (j, &po) in ew.outputs().to_vec().iter().enumerate() {
            for (k, &w) in ew.grid().to_vec().iter().enumerate() {
                assert_eq!(ew.at_sample(po, j, k), w);
            }
        }
    }

    #[test]
    fn lemma1_wide_glitch_reaches_po_with_p_ij() {
        // The machine-checked Lemma 1: for the top (very wide) sample,
        // W_ij = ww · P_ij exactly.
        let c = generate::c17();
        let pij = sensitization_probabilities(&c, 4096, 7);
        let probs = ser_logicsim::probability::static_probabilities_sampled(&c, 4096, 7);
        let delays = vec![18e-12; c.node_count()];
        let g = grid();
        let ww = *g.last().unwrap();
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, g);
        for i in c.gates() {
            for j in 0..ew.outputs().len() {
                let got = ew.expected_width(i, j, ww);
                let want = ww * pij.p(i, j);
                assert!(
                    (got - want).abs() <= ww * 0.02 + 1e-15,
                    "node {i} col {j}: {got:e} vs {want:e}"
                );
            }
        }
    }

    #[test]
    fn narrow_glitch_dies_before_reaching_po() {
        // Chain of 3 inverters with delay 20 ps: a 15 ps glitch at the
        // head is filtered (15 < d), so nothing arrives.
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        let g3 = b.gate(GateKind::Not, "g3", &[g2]).unwrap();
        b.mark_output(g3);
        let c = b.finish().unwrap();
        let pij = sensitization_probabilities(&c, 128, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![20e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        assert_eq!(ew.expected_width(g1, 0, 15e-12), 0.0);
        // A wide glitch sails through.
        assert!((ew.expected_width(g1, 0, 2560e-12) - 2560e-12).abs() < 1e-15);
        // The PO driver's own glitch is latched verbatim.
        assert!((ew.expected_width(g3, 0, 15e-12) - 15e-12).abs() < 1e-15);
    }

    #[test]
    fn attenuation_compounds_along_the_chain() {
        // Same chain; a 30 ps glitch at g1 passes g2 (2(30−20) = 20 ps),
        // then dies at g3 (20 ≤ d). From g2 it reaches the PO as
        // 2(30−20) = 20 ps.
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        let g3 = b.gate(GateKind::Not, "g3", &[g2]).unwrap();
        b.mark_output(g3);
        let c = b.finish().unwrap();
        let pij = sensitization_probabilities(&c, 128, 1);
        let probs = vec![0.5; c.node_count()];
        let delays = vec![20e-12; c.node_count()];
        // Grid dense around the interesting widths for exactness.
        let g = vec![0.0, 10e-12, 20e-12, 30e-12, 40e-12, 2560e-12];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, g);
        let w_from_g2 = ew.expected_width(g2, 0, 30e-12);
        assert!((w_from_g2 - 20e-12).abs() < 1e-15, "{w_from_g2:e}");
        let w_from_g1 = ew.expected_width(g1, 0, 30e-12);
        assert!(
            w_from_g1.abs() < 1e-15,
            "20 ps remnant dies at g3 (float seam only): {w_from_g1:e}"
        );
    }

    #[test]
    fn logical_masking_scales_expected_width() {
        // y = AND(i, b): with p(b)=0.5 the expected width halves.
        let mut bb = CircuitBuilder::new("and");
        let i = bb.input("i");
        let b2 = bb.input("b");
        let g = bb.gate(GateKind::Buf, "g", &[i]).unwrap();
        let y = bb.gate(GateKind::And, "y", &[g, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let pij = sensitization_probabilities(&c, 64 * 512, 3);
        let probs = ser_logicsim::probability::static_probabilities_analytic(&c, 0.5);
        let delays = vec![5e-12; c.node_count()];
        let ew = ExpectedWidths::compute(&c, &probs, &pij, &delays, grid());
        let wide = 2560e-12;
        let w = ew.expected_width(g, 0, wide);
        assert!((w - 0.5 * wide).abs() < 0.03 * wide, "{w:e}");
    }
}
