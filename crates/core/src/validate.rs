//! Validation against the transistor-level reference — the paper's Fig. 3
//! experiment: per-node unreliability from ASERTA vs "SPICE" (50 random
//! vectors, strikes at every gate output, analog glitch widths at the
//! POs), correlated over the nodes within a few levels of the primary
//! outputs.

use ser_cells::Library;
use ser_logicsim::random::random_vectors;
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_netlist::{topo, Circuit, NodeId};
use ser_spice::circuit_sim::{reference_unreliability, CircuitElectrical, CircuitSimConfig};
use ser_spice::measure::pearson_correlation;
use ser_spice::{Strike, Technology};

use crate::analysis::analyze;
use crate::binding::CircuitCells;
use crate::config::AsertaConfig;

/// The Fig. 3 data: per-node unreliability by both methods, and their
/// Pearson correlation.
#[derive(Debug, Clone)]
pub struct CorrelationReport {
    /// The nodes compared (gates within `max_level` of a PO).
    pub nodes: Vec<NodeId>,
    /// ASERTA per-node unreliability `U_i`, size·seconds.
    pub aserta: Vec<f64>,
    /// Transistor-level per-node unreliability, same units.
    pub reference: Vec<f64>,
    /// Pearson correlation (the paper reports 0.96 on c432, 0.9 average).
    pub correlation: f64,
}

/// Runs both analyses and correlates them.
///
/// * `n_vectors` — random vectors for the reference run (paper: 50);
/// * `max_level` — include gates at most this many levels from a PO
///   (paper plots ≤ 5 for c432).
///
/// The reference shares ASERTA's load model and charge so the two sides
/// measure the same physical experiment.
pub fn correlate_with_reference(
    tech: &Technology,
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    cfg: &AsertaConfig,
    n_vectors: usize,
    max_level: usize,
) -> CorrelationReport {
    // ASERTA side.
    let pij = sensitization_probabilities(circuit, cfg.sensitization_vectors, cfg.seed);
    let report = analyze(circuit, cells, library, &pij, cfg);

    // Reference side.
    let sim_cfg = CircuitSimConfig {
        strike: Strike::new(
            cfg.charge,
            Strike::DEFAULT_TAU_RISE,
            Strike::DEFAULT_TAU_FALL,
        ),
        wire_cap_per_pin: cfg.wire_cap_per_pin,
        po_load: cfg.po_load,
        ..CircuitSimConfig::default()
    };
    let elec = CircuitElectrical::new(tech, circuit, &sim_cfg, |id| {
        let Some(p) = cells.get(id) else {
            panic!("gates carry parameters")
        };
        *p
    });
    let vectors = random_vectors(
        circuit.primary_inputs().len(),
        n_vectors,
        0.5,
        cfg.seed ^ 0x51CE_u64,
    );
    let reference_u = reference_unreliability(tech, circuit, &elec, &vectors, &sim_cfg);

    // Compare over near-PO gates (the paper's plotted slice).
    let levels = topo::levels_to_outputs(circuit);
    let nodes: Vec<NodeId> = circuit
        .gates()
        .filter(|&g| levels[g.index()] <= max_level)
        .collect();
    let aserta: Vec<f64> = nodes
        .iter()
        .map(|n| report.per_gate_unreliability[n.index()])
        .collect();
    let reference: Vec<f64> = nodes.iter().map(|n| reference_u[n.index()]).collect();
    let correlation = pearson_correlation(&aserta, &reference).unwrap_or(0.0);

    CorrelationReport {
        nodes,
        aserta,
        reference,
        correlation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_cells::CharGrids;
    use ser_netlist::generate;

    #[test]
    fn c17_correlation_is_strongly_positive() {
        let tech = Technology::ptm70();
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut lib = Library::new(tech.clone(), CharGrids::coarse());
        let mut cfg = AsertaConfig::fast();
        cfg.sensitization_vectors = 2048;
        let r = correlate_with_reference(&tech, &c, &cells, &mut lib, &cfg, 16, 5);
        assert_eq!(r.nodes.len(), 6, "all six NANDs are within 5 levels");
        assert!(
            r.correlation > 0.5,
            "correlation {} too low; aserta={:?} ref={:?}",
            r.correlation,
            r.aserta,
            r.reference
        );
    }
}
