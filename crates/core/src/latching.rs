//! Latching-window masking with explicit timing constants — the paper
//! folds these into a proportionality ("the probability of a glitch being
//! captured by a latch is directly proportional to its duration"); this
//! module makes the constants available for absolute-rate work (§3.3 +
//! the FIT extension).

use serde::{Deserialize, Serialize};

/// Latch timing model: a glitch is captured when it overlaps the
/// setup+hold aperture around a clock edge whose arrival is uniformly
/// distributed over the cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatchingWindow {
    /// Setup time, seconds.
    pub setup: f64,
    /// Hold time, seconds.
    pub hold: f64,
    /// Clock period, seconds.
    pub clock_period: f64,
}

impl Default for LatchingWindow {
    /// 1 GHz clock with 20 ps setup and 10 ps hold.
    fn default() -> Self {
        LatchingWindow {
            setup: 20.0e-12,
            hold: 10.0e-12,
            clock_period: 1.0e-9,
        }
    }
}

impl LatchingWindow {
    /// Probability that a glitch of `width` seconds arriving at the latch
    /// input is captured: `min(1, (width + setup + hold) / T_clk)` for
    /// positive widths, 0 otherwise.
    ///
    /// The paper's proportional model is the `setup + hold → 0`,
    /// `width ≪ T_clk` limit of this expression.
    pub fn capture_probability(&self, width: f64) -> f64 {
        if width <= 0.0 {
            return 0.0;
        }
        ((width + self.setup + self.hold) / self.clock_period).min(1.0)
    }

    /// The aperture the glitch must overlap, seconds.
    pub fn aperture(&self) -> f64 {
        self.setup + self.hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_width_is_never_captured() {
        let w = LatchingWindow::default();
        assert_eq!(w.capture_probability(0.0), 0.0);
        assert_eq!(w.capture_probability(-1.0e-12), 0.0);
    }

    #[test]
    fn probability_is_proportional_then_saturates() {
        let w = LatchingWindow {
            setup: 0.0,
            hold: 0.0,
            clock_period: 1.0e-9,
        };
        let p100 = w.capture_probability(100.0e-12);
        let p200 = w.capture_probability(200.0e-12);
        assert!((p200 / p100 - 2.0).abs() < 1e-12, "proportional regime");
        assert_eq!(w.capture_probability(2.0e-9), 1.0, "saturates at 1");
    }

    #[test]
    fn aperture_adds_to_effective_width() {
        let w = LatchingWindow::default();
        let bare = 50.0e-12 / w.clock_period;
        let p = w.capture_probability(50.0e-12);
        assert!(p > bare, "setup+hold widen the capture window");
        assert!((p - (50.0e-12 + 30.0e-12) / 1.0e-9).abs() < 1e-12);
    }

    #[test]
    fn faster_clock_captures_more() {
        let slow = LatchingWindow {
            clock_period: 2.0e-9,
            ..LatchingWindow::default()
        };
        let fast = LatchingWindow {
            clock_period: 0.5e-9,
            ..LatchingWindow::default()
        };
        // The paper's motivation: rising clock frequencies reduce
        // latching-window masking.
        assert!(fast.capture_probability(80.0e-12) > slow.capture_probability(80.0e-12));
    }
}
