use ser_spice::units::{FC, NS, PS};
use serde::{Deserialize, Serialize};

/// ASERTA analysis settings, defaulting to the paper's choices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsertaConfig {
    /// Random vectors for the `P_ij` sensitization estimate (paper:
    /// 10 000).
    pub sensitization_vectors: usize,
    /// RNG seed for all stochastic estimates.
    pub seed: u64,
    /// Injected strike charge, coulombs (paper: a fixed 16 fC).
    pub charge: f64,
    /// Number of sample glitch widths in the expected-width tables
    /// (paper: 10).
    pub sample_widths: usize,
    /// The "very wide" top sample width, seconds. Must exceed twice the
    /// slowest gate delay so Lemma 1 holds exactly.
    pub wide_width: f64,
    /// Static probability of each primary input being 1 (paper: 0.5, fed
    /// to Design Compiler).
    pub pi_probability: f64,
    /// Transition time assumed for primary-input drivers, seconds.
    pub pi_ramp: f64,
    /// Wire capacitance per fan-out pin, farads.
    pub wire_cap_per_pin: f64,
    /// Latch capacitance loading each primary output, farads.
    pub po_load: f64,
}

impl Default for AsertaConfig {
    fn default() -> Self {
        AsertaConfig {
            sensitization_vectors: 10_000,
            seed: 0xA5E27A,
            charge: 16.0 * FC,
            sample_widths: 10,
            wide_width: 2.56 * NS,
            pi_probability: 0.5,
            pi_ramp: 20.0 * PS,
            wire_cap_per_pin: 0.05e-15,
            po_load: 2.0e-15,
        }
    }
}

impl AsertaConfig {
    /// The sample-width grid: 0, then a geometric ladder ending exactly at
    /// [`AsertaConfig::wide_width`] (so the Lemma-1 wide sample is a grid
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if `sample_widths < 2` or `wide_width <= 0`.
    pub fn sample_width_grid(&self) -> Vec<f64> {
        assert!(self.sample_widths >= 2, "need at least two sample widths");
        assert!(self.wide_width > 0.0, "wide width must be positive");
        let k = self.sample_widths;
        let mut grid = Vec::with_capacity(k);
        grid.push(0.0);
        // wide / 2^(k-2), …, wide / 2, wide
        for step in (0..k - 1).rev() {
            grid.push(self.wide_width / (1u64 << step) as f64);
        }
        grid
    }

    /// A faster profile for tests: fewer vectors, coarser tables.
    pub fn fast() -> Self {
        AsertaConfig {
            sensitization_vectors: 1024,
            ..AsertaConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_sorted_starts_at_zero_ends_wide() {
        let cfg = AsertaConfig::default();
        let g = cfg.sample_width_grid();
        assert_eq!(g.len(), 10);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), cfg.wide_width);
        assert!(g.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn grid_has_fine_resolution_at_small_widths() {
        let cfg = AsertaConfig::default();
        let g = cfg.sample_width_grid();
        // Second point must be well under typical gate delays' 2x.
        assert!(g[1] < 25.0 * PS, "{}", g[1] / PS);
    }

    #[test]
    fn defaults_match_paper() {
        let cfg = AsertaConfig::default();
        assert_eq!(cfg.sensitization_vectors, 10_000);
        assert_eq!(cfg.sample_widths, 10);
        assert!((cfg.charge - 16.0 * FC).abs() < 1e-20);
        assert_eq!(cfg.pi_probability, 0.5);
    }
}
