//! The top-level ASERTA analysis entry points (paper §3 end-to-end).
//!
//! Since the single-engine consolidation there is no separate "fresh"
//! pipeline: [`analyze`] cold-starts an
//! [`AnalysisSession`](crate::AnalysisSession) (construct → full-dirty
//! recompute → extract report), so batch and incremental analyses run
//! the exact same kernels. The workspace `fresh_path_equiv` proptest
//! pins the reports bitwise against the pre-consolidation pipeline.

use ser_cells::Library;
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_logicsim::SensitizationMatrix;
use ser_netlist::{Circuit, NodeId};

use crate::binding::{CircuitCells, TimingView};
use crate::config::AsertaConfig;
use crate::electrical::ExpectedWidths;
use crate::error::AnalysisError;
use crate::session::AnalysisSession;

/// Everything ASERTA computes for one circuit + cell assignment.
#[derive(Debug, Clone)]
pub struct AsertaReport {
    /// Circuit unreliability `U = Σ_i U_i` (Eq. 4), in size·seconds.
    pub unreliability: f64,
    /// Per-node `U_i = Z_i · Σ_j W_ij` (Eq. 3); zero for primary inputs.
    pub per_gate_unreliability: Vec<f64>,
    /// Per-node generated glitch width `w_i` from the strike tables,
    /// seconds.
    pub generated_widths: Vec<f64>,
    /// The expected-width tables (exposes `W_ij` via
    /// [`ExpectedWidths::expected_width`]).
    pub expected_widths: ExpectedWidths,
    /// Static 1-probabilities used for logical masking.
    pub static_probs: Vec<f64>,
    /// The timing view (loads, ramps, delays) used for electrical
    /// masking.
    pub timing: TimingView,
    /// Human-readable graceful-degradation events recorded while this
    /// analysis ran under an execution/memory budget (estimate
    /// truncation, cone-arena shrinks or evictions). Empty for
    /// ungoverned runs — a non-empty list means the numbers above were
    /// produced with a reduced accuracy/performance envelope.
    pub degradations: Vec<String>,
}

impl AsertaReport {
    /// The `W_ij` matrix row of a gate, at its generated width.
    pub fn po_widths(&self, i: NodeId) -> Vec<f64> {
        (0..self.expected_widths.outputs().len())
            .map(|j| {
                self.expected_widths
                    .expected_width(i, j, self.generated_widths[i.index()])
            })
            .collect()
    }

    /// Gates sorted by decreasing unreliability contribution — the
    /// "soft spots".
    pub fn soft_spots(&self, circuit: &Circuit, top: usize) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> = circuit
            .gates()
            .map(|g| (g, self.per_gate_unreliability[g.index()]))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(top);
        v
    }
}

/// Runs the full analysis with a precomputed sensitization matrix.
///
/// `P_ij` depends only on the circuit's logic (not on sizing/VDD/Vth), so
/// optimizers compute it once and reuse it across every cost evaluation —
/// this is the entry point they call.
///
/// # Panics
///
/// Panics on any [`AnalysisError`]; [`try_analyze`] is the fallible form.
pub fn analyze(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    pij: &SensitizationMatrix,
    cfg: &AsertaConfig,
) -> AsertaReport {
    match try_analyze(circuit, cells, library, pij, cfg) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`analyze`] — validates the configuration and cell assignment
/// (typed errors instead of panics) before running the full pipeline.
///
/// # Errors
///
/// See [`SessionBuilder::build`](crate::SessionBuilder::build).
pub fn try_analyze(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    pij: &SensitizationMatrix,
    cfg: &AsertaConfig,
) -> Result<AsertaReport, AnalysisError> {
    // Warm the caller's library first (the pre-consolidation pipeline
    // characterized into it as a side effect, and repeated fresh analyses
    // rely on that cache staying hot), then cold-start a session on a
    // clone of the warmed state.
    for id in circuit.gates() {
        let p = cells.get(id).ok_or(AnalysisError::MissingCellParams {
            node: id.index() as u32,
        })?;
        library.get_or_characterize(p);
    }
    let session = AnalysisSession::construct(
        circuit,
        cells.clone(),
        library.clone(),
        cfg.clone(),
        pij.clone(),
    )?;
    Ok(session.into_report())
}

/// Convenience entry point that also estimates `P_ij` (paper: 10 000
/// random vectors) before running [`analyze`].
///
/// # Panics
///
/// Panics on any [`AnalysisError`]; [`try_analyze_fresh`] is the
/// fallible form.
pub fn analyze_fresh(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    cfg: &AsertaConfig,
) -> AsertaReport {
    match try_analyze_fresh(circuit, cells, library, cfg) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`analyze_fresh`] — validates the configuration *before*
/// the Monte-Carlo `P_ij` estimate (whose kernels assert on e.g. zero
/// vectors), then runs [`try_analyze`].
///
/// # Errors
///
/// See [`SessionBuilder::build`](crate::SessionBuilder::build).
pub fn try_analyze_fresh(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    cfg: &AsertaConfig,
) -> Result<AsertaReport, AnalysisError> {
    crate::session::validate_config(cfg)?;
    let pij = sensitization_probabilities(circuit, cfg.sensitization_vectors, cfg.seed);
    try_analyze(circuit, cells, library, &pij, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::{GateParams, Technology};

    fn lib() -> Library {
        Library::new(Technology::ptm70(), CharGrids::coarse())
    }

    fn cfg() -> AsertaConfig {
        AsertaConfig::fast()
    }

    #[test]
    fn c17_analysis_is_positive_and_reproducible() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut l = lib();
        let r1 = analyze_fresh(&c, &cells, &mut l, &cfg());
        let r2 = analyze_fresh(&c, &cells, &mut l, &cfg());
        assert!(r1.unreliability > 0.0);
        assert_eq!(r1.unreliability, r2.unreliability, "deterministic");
        for &pi in c.primary_inputs() {
            assert_eq!(r1.per_gate_unreliability[pi.index()], 0.0);
        }
    }

    #[test]
    fn fresh_analysis_validates_config_before_pij_estimation() {
        // A zero-vector config must surface as a typed error from the
        // fresh entry point, not an assert inside the Monte-Carlo kernel.
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut l = lib();
        let mut bad = cfg();
        bad.sensitization_vectors = 0;
        let err = try_analyze_fresh(&c, &cells, &mut l, &bad).unwrap_err();
        assert!(matches!(err, AnalysisError::InvalidConfig { .. }));
    }

    #[test]
    fn multi_po_gates_dominate_soft_spots_in_c17() {
        // With weak electrical masking (wide 16 fC glitches vs ~20 ps gate
        // delays), gates whose glitches reach *both* POs — 11 and 16 —
        // accumulate roughly twice the expected width of single-PO gates,
        // so they top the soft-spot ranking.
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut l = lib();
        let r = analyze_fresh(&c, &cells, &mut l, &cfg());
        let spots = r.soft_spots(&c, 2);
        let dual_po = [c.find("11").unwrap(), c.find("16").unwrap()];
        assert!(
            spots.iter().all(|(id, _)| dual_po.contains(id)),
            "dual-PO gates must top the ranking: {spots:?}"
        );
        // PO drivers still carry nonzero unreliability (their strikes are
        // latched unfiltered).
        for &po in c.primary_outputs() {
            assert!(r.per_gate_unreliability[po.index()] > 0.0);
        }
    }

    #[test]
    fn upsizing_po_drivers_cuts_their_generated_width() {
        let c = generate::c17();
        let mut cells = CircuitCells::nominal(&c);
        let mut l = lib();
        let r_before = analyze_fresh(&c, &cells, &mut l, &cfg());
        for &po in c.primary_outputs() {
            let node = c.node(po);
            cells.set(
                po,
                GateParams::new(node.kind, node.fanin.len()).with_size(6.0),
            );
        }
        let r_after = analyze_fresh(&c, &cells, &mut l, &cfg());
        for &po in c.primary_outputs() {
            assert!(
                r_after.generated_widths[po.index()] < r_before.generated_widths[po.index()],
                "upsized PO driver must generate a narrower glitch"
            );
        }
    }

    #[test]
    fn report_po_widths_row_matches_total() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut l = lib();
        let r = analyze_fresh(&c, &cells, &mut l, &cfg());
        for g in c.gates() {
            let row_sum: f64 = r.po_widths(g).iter().sum();
            let z = cells.get(g).unwrap().size;
            assert!(
                (z * row_sum - r.per_gate_unreliability[g.index()]).abs() < 1e-18,
                "gate {g}"
            );
        }
    }

    #[test]
    fn xor_ecc_circuit_has_high_observability_unreliability() {
        // c499-like: no logical masking in XOR trees → strikes observable.
        let ecc = generate::sec32("c499");
        let cells = CircuitCells::nominal(&ecc);
        let mut l = lib();
        let mut fast = cfg();
        fast.sensitization_vectors = 512;
        let r = analyze_fresh(&ecc, &cells, &mut l, &fast);
        assert!(r.unreliability > 0.0);
    }
}
