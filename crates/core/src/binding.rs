//! Binding a circuit to cell parameters and deriving its timing view
//! (loads, ramps, delays) from library lookups.

use ser_cells::Library;
use ser_netlist::{Circuit, NodeId};
use ser_spice::GateParams;
use serde::{Deserialize, Serialize};

/// Per-gate cell parameter assignment — the object SERTOPT mutates and
/// ASERTA analyses.
///
/// # Example
///
/// ```
/// use aserta::CircuitCells;
/// use ser_netlist::generate;
///
/// let c17 = generate::c17();
/// let mut cells = CircuitCells::nominal(&c17);
/// let g = c17.find("10").unwrap();
/// let mut p = *cells.get(g).unwrap();
/// p.size = 4.0;
/// cells.set(g, p);
/// assert_eq!(cells.get(g).unwrap().size, 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitCells {
    params: Vec<Option<GateParams>>,
}

impl CircuitCells {
    /// Nominal assignment: every gate at size 1, L 70 nm, VDD 1 V,
    /// Vth 0.2 V (the paper's §5 baseline operating point).
    pub fn nominal(circuit: &Circuit) -> Self {
        let mut params = vec![None; circuit.node_count()];
        for id in circuit.gates() {
            let node = circuit.node(id);
            params[id.index()] = Some(GateParams::new(node.kind, node.fanin.len()));
        }
        CircuitCells { params }
    }

    /// Assignment produced by a custom function over gate ids.
    pub fn from_fn(circuit: &Circuit, mut f: impl FnMut(NodeId) -> GateParams) -> Self {
        let mut params = vec![None; circuit.node_count()];
        for id in circuit.gates() {
            params[id.index()] = Some(f(id));
        }
        CircuitCells { params }
    }

    /// The parameters of a gate (`None` for primary inputs).
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&GateParams> {
        self.params[id.index()].as_ref()
    }

    /// Replaces the parameters of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` refers to a primary input.
    pub fn set(&mut self, id: NodeId, params: GateParams) {
        let slot = &mut self.params[id.index()];
        assert!(slot.is_some(), "primary inputs carry no cell parameters");
        *slot = Some(params);
    }

    /// Total abstract area of the assignment (Eq. 5's `A` term).
    pub fn total_area(&self) -> f64 {
        self.params.iter().flatten().map(|p| p.area()).sum()
    }
}

/// Capacitive load model shared by analysis and validation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadModel {
    /// Wire capacitance per fan-out pin, farads.
    pub wire_cap_per_pin: f64,
    /// Latch capacitance at each primary output, farads.
    pub po_load: f64,
}

/// The timing view of a bound circuit: per-node output load, input ramp,
/// propagation delay and output ramp, all from library lookups (the
/// paper's "delays … looked up from the SPICE tables").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingView {
    /// External load at each node's output, farads.
    pub loads: Vec<f64>,
    /// Input transition time seen by each gate, seconds.
    pub in_ramps: Vec<f64>,
    /// Propagation delay of each gate, seconds (0 for primary inputs).
    pub delays: Vec<f64>,
    /// Output transition time of each node, seconds.
    pub out_ramps: Vec<f64>,
}

impl TimingView {
    /// Longest PI→PO path delay under this view (static timing analysis,
    /// topological longest path).
    pub fn critical_path_delay(&self, circuit: &Circuit) -> f64 {
        let mut arrival = vec![0.0f64; circuit.node_count()];
        let mut worst = 0.0f64;
        for &id in circuit.topological_order() {
            let node = circuit.node(id);
            let arr_in = node
                .fanin
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0, f64::max);
            arrival[id.index()] = arr_in + self.delays[id.index()];
            if circuit.is_primary_output(id) {
                worst = worst.max(arrival[id.index()]);
            }
        }
        worst
    }
}

/// The output load of one node: wire capacitance plus successor input
/// capacitance per fan-out pin (in fan-out order), plus the latch load
/// when the node is a primary output.
///
/// This is **the** load formula — the batch [`timing_view`], the
/// incremental session and the matcher's refinement anchor all call it,
/// so their results stay bitwise interchangeable. `input_cap` maps a
/// fan-out node to its cell's input capacitance (`None` for nodes
/// without a cell).
pub fn node_load(
    circuit: &Circuit,
    id: NodeId,
    model: LoadModel,
    mut input_cap: impl FnMut(NodeId) -> Option<f64>,
) -> f64 {
    let mut c = 0.0;
    for &s in circuit.fanout(id) {
        c += model.wire_cap_per_pin;
        if let Some(cap) = input_cap(s) {
            c += cap;
        }
    }
    if circuit.is_primary_output(id) {
        c += model.po_load;
    }
    c
}

/// The input transition time a gate sees: the worst (slowest) fan-in
/// output ramp, floored at 1 ps. The single source of truth shared by
/// every timing pass (see [`node_load`]).
#[inline]
pub fn gate_input_ramp(node: &ser_netlist::Node, out_ramps: &[f64]) -> f64 {
    node.fanin
        .iter()
        .map(|f| out_ramps[f.index()])
        .fold(0.0, f64::max)
        .max(1.0e-12)
}

/// Computes the timing view for a cell assignment: loads from successor
/// pin capacitances (plus wire and latch loads), then one topological pass
/// propagating ramps and looking up delays.
///
/// `pi_ramp` is the transition time assumed at primary inputs; a gate's
/// input ramp is the worst (slowest) fan-in output ramp.
pub fn timing_view(
    circuit: &Circuit,
    cells: &CircuitCells,
    library: &mut Library,
    loads_model: LoadModel,
    pi_ramp: f64,
) -> TimingView {
    let n = circuit.node_count();
    // Loads need successor input capacitances.
    let mut loads = vec![0.0f64; n];
    for id in circuit.node_ids() {
        loads[id.index()] = node_load(circuit, id, loads_model, |s| {
            cells
                .get(s)
                .map(|p| library.get_or_characterize(p).input_cap)
        });
    }

    let mut in_ramps = vec![pi_ramp; n];
    let mut delays = vec![0.0f64; n];
    let mut out_ramps = vec![pi_ramp; n];
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        if node.is_input() {
            continue;
        }
        let ramp_in = gate_input_ramp(node, &out_ramps);
        let Some(p) = cells.get(id) else {
            panic!("gates carry parameters")
        };
        let cell = library.get_or_characterize(p);
        in_ramps[id.index()] = ramp_in;
        delays[id.index()] = cell.delay_at(loads[id.index()], ramp_in);
        out_ramps[id.index()] = cell.out_ramp_at(loads[id.index()], ramp_in);
    }

    TimingView {
        loads,
        in_ramps,
        delays,
        out_ramps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn lib() -> Library {
        Library::new(Technology::ptm70(), CharGrids::coarse())
    }

    fn model() -> LoadModel {
        LoadModel {
            wire_cap_per_pin: 0.05e-15,
            po_load: 2.0e-15,
        }
    }

    #[test]
    fn nominal_assignment_covers_gates_only() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        for &pi in c.primary_inputs() {
            assert!(cells.get(pi).is_none());
        }
        for g in c.gates() {
            assert!(cells.get(g).is_some());
        }
    }

    #[test]
    fn timing_view_is_positive_and_ordered() {
        let c = generate::c17();
        let cells = CircuitCells::nominal(&c);
        let mut l = lib();
        let tv = timing_view(&c, &cells, &mut l, model(), 20.0e-12);
        for g in c.gates() {
            assert!(tv.delays[g.index()] > 0.0, "gate {g}");
            assert!(tv.loads[g.index()] > 0.0, "gate {g}");
        }
        let t = tv.critical_path_delay(&c);
        // Three NAND levels: strictly more than one gate delay, less than
        // the sum of all six.
        let dmax = c.gates().map(|g| tv.delays[g.index()]).fold(0.0, f64::max);
        let dsum: f64 = c.gates().map(|g| tv.delays[g.index()]).sum();
        assert!(t > dmax && t < dsum, "{t} vs {dmax}/{dsum}");
    }

    #[test]
    fn upsizing_a_fanin_increases_predecessor_load() {
        let c = generate::c17();
        let mut cells = CircuitCells::nominal(&c);
        let mut l = lib();
        let g16 = c.find("16").unwrap();
        let g11 = c.find("11").unwrap();
        let tv_before = timing_view(&c, &cells, &mut l, model(), 20.0e-12);
        let mut p = *cells.get(g16).unwrap();
        p.size = 4.0;
        cells.set(g16, p);
        let tv_after = timing_view(&c, &cells, &mut l, model(), 20.0e-12);
        assert!(tv_after.loads[g11.index()] > tv_before.loads[g11.index()]);
    }

    #[test]
    fn bigger_cells_shrink_critical_path() {
        let c = generate::c17();
        let mut l = lib();
        let nominal = CircuitCells::nominal(&c);
        let upsized = CircuitCells::from_fn(&c, |id| {
            let node = c.node(id);
            GateParams::new(node.kind, node.fanin.len()).with_size(4.0)
        });
        let t_nom = timing_view(&c, &nominal, &mut l, model(), 20.0e-12).critical_path_delay(&c);
        let t_big = timing_view(&c, &upsized, &mut l, model(), 20.0e-12).critical_path_delay(&c);
        assert!(t_big < t_nom, "{t_big} vs {t_nom}");
    }

    #[test]
    #[should_panic(expected = "primary inputs")]
    fn setting_pi_params_panics() {
        let c = generate::c17();
        let mut cells = CircuitCells::nominal(&c);
        let pi = c.primary_inputs()[0];
        cells.set(pi, GateParams::new(ser_netlist::GateKind::Not, 1));
    }
}
