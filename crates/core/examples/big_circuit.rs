//! Generates and analyzes a 100 000-gate tiled circuit end to end.
//!
//! Demonstrates the scaling architecture from the README's "Scaling"
//! section: the tiled generator keeps fan-out cones tile-bounded, the
//! streamed cone arena keeps estimation memory proportional to one
//! chunk, and the sparse width tables keep the electrical pass
//! proportional to actual reachability. Run with:
//!
//! ```text
//! cargo run --release -p aserta --example big_circuit
//! ```
//!
//! Environment knobs: `BIG_CIRCUIT_GATES` (default 100 000) and
//! `SER_CONE_CHUNK` (roots per streamed arena chunk).

use std::time::Instant;

use aserta::{analyze_fresh, AsertaConfig, CircuitCells};
use ser_cells::{CharGrids, Library};
use ser_logicsim::sensitize;
use ser_spice::Technology;

fn main() {
    let gates: usize = std::env::var("BIG_CIRCUIT_GATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);

    let t0 = Instant::now();
    let spec = ser_netlist::generate::TiledSpec::scaled("big100k", gates);
    let circuit = ser_netlist::generate::tiled(&spec);
    let n_nodes = circuit.node_count();
    println!(
        "generated {} gates / {} nodes / {} POs in {:.2}s ({} tiles of ~{} gates)",
        circuit.gate_count(),
        n_nodes,
        circuit.primary_outputs().len(),
        t0.elapsed().as_secs_f64(),
        spec.tiles,
        spec.tile_gates,
    );

    // Modest vector count: the paper's 10 000 vectors are statistical
    // overkill for a demonstration run, and estimation cost is linear in
    // vectors. 2048 keeps the whole example interactive.
    let cfg = AsertaConfig {
        sensitization_vectors: 2048,
        ..AsertaConfig::default()
    };

    // Probe the streamed estimator's memory profile first: same work as
    // the P_ij pass inside `analyze_fresh`, but reporting peak bytes.
    let threads = sensitize::simulation_threads();
    let chunk = sensitize::cone_chunk_size();
    let t1 = Instant::now();
    let (_pij, stats) = sensitize::sensitization_probabilities_with_stats(
        &circuit,
        cfg.sensitization_vectors,
        cfg.seed,
        threads,
        chunk,
    );
    println!(
        "P_ij: {:.2}s on {threads} threads, {} chunks of {chunk} roots, \
         peak arena {:.1} MiB = {:.1} bytes/node amortized",
        t1.elapsed().as_secs_f64(),
        stats.chunks,
        stats.peak_bytes as f64 / (1024.0 * 1024.0),
        stats.peak_bytes as f64 / n_nodes as f64,
    );

    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let cells = CircuitCells::nominal(&circuit);
    let t2 = Instant::now();
    let report = analyze_fresh(&circuit, &cells, &mut lib, &cfg);
    println!(
        "analyze_fresh: {:.2}s, circuit unreliability U = {:.3e}",
        t2.elapsed().as_secs_f64(),
        report.unreliability,
    );

    println!("top soft-error contributors:");
    for (id, u) in report.soft_spots(&circuit, 5) {
        println!("  {:<12} U_i = {:.3e}", circuit.node(id).name, u);
    }
}
