//! Sensitization probabilities `P_ij`: the probability that at least one
//! path from node `i` to primary output `j` is sensitized.
//!
//! Exact computation is NP-complete for circuits with reconvergent
//! fan-out (the paper's ref. \[9\]); following the paper (and its ref.
//! \[5\]), `P_ij` is estimated by zero-delay simulation with random
//! vectors: for each vector, node `i` is flipped, the fan-out cone is
//! re-evaluated, and `P_ij` accumulates whether PO `j` changed — 64
//! vectors per pass thanks to bit-parallel words.
//!
//! # Hot-path architecture
//!
//! The estimator runs over the flat CSR view ([`CsrView`]) with every
//! node's fan-out cone and reachable-PO column list premultiplied into
//! one [`ConeArena`], so each strike resimulates exactly the nodes that
//! can change and counts differences only at the POs it can reach.
//! 64-vector words are distributed round-robin over worker threads
//! ([`simulation_threads`]: `SER_SIM_THREADS` or the machine's available
//! parallelism).
//!
//! **Determinism contract:** results are bitwise identical for every
//! thread count. Word `w` always draws its stimulus from
//! `seed.wrapping_add(w)` regardless of which thread runs it, each
//! thread accumulates integer hit counts privately, and the per-word
//! counts are merged by integer summation (associative and commutative)
//! before a single final division.

use ser_netlist::csr::{ConeArena, CsrView};
use ser_netlist::{Circuit, GateKind, NodeId};

use crate::kernel;
use crate::random::random_word;

/// Dense `node × PO` matrix of sensitization probabilities, plus the
/// directly measured any-PO observability and the reachability lists the
/// estimate was computed over.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitizationMatrix {
    outputs: Vec<NodeId>,
    n_nodes: usize,
    /// node-major storage: `p[node * outputs.len() + j]`.
    p: Vec<f64>,
    /// Directly measured union probability per node.
    obs: Vec<f64>,
    /// Reachable-PO columns per node, CSR layout.
    reach_off: Vec<usize>,
    reach_cols: Vec<u32>,
    vectors_used: usize,
}

impl SensitizationMatrix {
    /// The primary outputs, defining the column order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of random vectors behind the estimate.
    pub fn vectors_used(&self) -> usize {
        self.vectors_used
    }

    /// `P_ij` for a node and PO **column index** (see
    /// [`SensitizationMatrix::outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if the node or column is out of range.
    #[inline]
    pub fn p(&self, node: NodeId, po_col: usize) -> f64 {
        assert!(po_col < self.outputs.len(), "PO column out of range");
        self.p[node.index() * self.outputs.len() + po_col]
    }

    /// The whole row of a node (one entry per PO).
    #[inline]
    pub fn row(&self, node: NodeId) -> &[f64] {
        let n = self.outputs.len();
        &self.p[node.index() * n..(node.index() + 1) * n]
    }

    /// Probability that a flip of `node` is observed at *any* output.
    ///
    /// Measured directly during simulation (the union of per-PO
    /// difference words is counted alongside the marginals), not derived
    /// from the per-PO rows — so it is the true union estimate, which the
    /// row maximum only lower-bounds.
    pub fn observability(&self, node: NodeId) -> f64 {
        self.obs[node.index()]
    }

    /// PO **column indices** reachable from `node`, ascending. `P_ij` is
    /// structurally zero for every column not listed — consumers can skip
    /// them outright.
    #[inline]
    pub fn reachable_columns(&self, node: NodeId) -> &[u32] {
        &self.reach_cols[self.reach_off[node.index()]..self.reach_off[node.index() + 1]]
    }

    /// Patches the rows covered by a selective re-simulation
    /// ([`resimulate_rows`]) into the matrix, replacing the per-PO
    /// probabilities and the measured union observability of exactly the
    /// re-simulated nodes. Reachability is structural and stays as built.
    ///
    /// # Panics
    ///
    /// Panics if the update was computed for a different circuit shape
    /// (PO count or node range mismatch).
    pub fn apply_update(&mut self, update: &PijRowUpdate) {
        assert_eq!(
            update.n_pos,
            self.outputs.len(),
            "update and matrix must share the PO column space"
        );
        let n_pos = self.outputs.len();
        for (t, &node) in update.nodes.iter().enumerate() {
            let i = node as usize;
            assert!(i < self.n_nodes, "update node out of range");
            self.p[i * n_pos..(i + 1) * n_pos]
                .copy_from_slice(&update.p[t * n_pos..(t + 1) * n_pos]);
            self.obs[i] = update.obs[t];
        }
    }
}

/// Dense replacement rows for a subset of nodes, produced by
/// [`resimulate_rows`] and consumed by
/// [`SensitizationMatrix::apply_update`].
#[derive(Debug, Clone, PartialEq)]
pub struct PijRowUpdate {
    nodes: Vec<u32>,
    n_pos: usize,
    /// `p[t * n_pos + j]` for the `t`-th node in `nodes`.
    p: Vec<f64>,
    obs: Vec<f64>,
    vectors_used: usize,
}

impl PijRowUpdate {
    /// The re-simulated node indices, in request order.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// The replacement row of the `t`-th node.
    pub fn row(&self, t: usize) -> &[f64] {
        &self.p[t * self.n_pos..(t + 1) * self.n_pos]
    }

    /// The replacement any-PO union observability of the `t`-th node.
    pub fn observability(&self, t: usize) -> f64 {
        self.obs[t]
    }

    /// Number of random vectors behind the update.
    pub fn vectors_used(&self) -> usize {
        self.vectors_used
    }
}

/// Worker-thread count used by [`sensitization_probabilities`]: the
/// `SER_SIM_THREADS` environment override when set to a positive
/// integer, else [`std::thread::available_parallelism`].
pub fn simulation_threads() -> usize {
    std::env::var("SER_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Estimates the full matrix with `n_vectors` random vectors (rounded up
/// to a multiple of 64), PI probability 0.5, deterministic in `seed` and
/// independent of the worker-thread count (see the module docs).
///
/// The paper uses 10 000 vectors; 64-way packing makes that ~157 passes
/// over each fan-out cone.
///
/// # Panics
///
/// Panics if `n_vectors` is 0.
pub fn sensitization_probabilities(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
) -> SensitizationMatrix {
    sensitization_probabilities_threaded(circuit, n_vectors, seed, simulation_threads())
}

/// [`sensitization_probabilities`] with an explicit worker-thread count.
/// Results are bitwise identical for every `threads` value.
///
/// # Panics
///
/// Panics if `n_vectors` or `threads` is 0.
pub fn sensitization_probabilities_threaded(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
) -> SensitizationMatrix {
    assert!(n_vectors > 0, "need at least one vector");
    assert!(threads > 0, "need at least one worker thread");
    let outputs: Vec<NodeId> = circuit.primary_outputs().to_vec();
    let n_pos = outputs.len();
    let n_nodes = circuit.node_count();
    let n_words = n_vectors.div_ceil(64);

    let csr = CsrView::build(circuit);
    let arena = ConeArena::build(&csr);
    let roots: Vec<u32> = (0..n_nodes as u32).collect();
    let progs = ConePrograms::compile(&csr, &arena, &roots);

    let (counts, obs_counts) = accumulate_counts(&csr, &progs, seed, threads, n_words);

    // Scatter the flat reachable-PO counts into the dense row-major
    // matrix; unreachable columns stay at their structural zero.
    let total = (n_words * 64) as f64;
    let mut p = vec![0.0f64; n_nodes * n_pos];
    for i in 0..n_nodes {
        let start = progs.po_off[i];
        for (t, &col) in arena.reachable_cols(i).iter().enumerate() {
            p[i * n_pos + col as usize] = counts[start + t] as f64 / total;
        }
    }
    let obs: Vec<f64> = obs_counts.into_iter().map(|c| c as f64 / total).collect();

    SensitizationMatrix {
        outputs,
        n_nodes,
        p,
        obs,
        reach_off: arena.reachable_offsets().to_vec(),
        reach_cols: arena.reachable_cols_flat().to_vec(),
        vectors_used: n_words * 64,
    }
}

/// Selectively re-simulates the strike cones of `nodes` only, with the
/// same word-blocked kernels, vector stream and counting rules as
/// [`sensitization_probabilities`] — the rows it returns are **bitwise
/// identical** to the corresponding rows of the full estimate at the same
/// `(n_vectors, seed)`, at a cost proportional to the listed cones
/// instead of the whole circuit.
///
/// This is the cache-refill primitive of the incremental engine: when a
/// consumer invalidates (or wants to re-estimate at higher accuracy) the
/// `P_ij` rows of a few nodes, only those cones are replayed.
///
/// # Panics
///
/// Panics if `n_vectors` is 0.
pub fn resimulate_rows(
    circuit: &Circuit,
    nodes: &[NodeId],
    n_vectors: usize,
    seed: u64,
) -> PijRowUpdate {
    resimulate_rows_threaded(circuit, nodes, n_vectors, seed, simulation_threads())
}

/// [`resimulate_rows`] with an explicit worker-thread count. Results are
/// bitwise identical for every `threads` value.
///
/// # Panics
///
/// Panics if `n_vectors` or `threads` is 0.
pub fn resimulate_rows_threaded(
    circuit: &Circuit,
    nodes: &[NodeId],
    n_vectors: usize,
    seed: u64,
    threads: usize,
) -> PijRowUpdate {
    assert!(n_vectors > 0, "need at least one vector");
    assert!(threads > 0, "need at least one worker thread");
    let n_pos = circuit.primary_outputs().len();
    let n_words = n_vectors.div_ceil(64);
    let roots: Vec<u32> = nodes.iter().map(|id| id.index() as u32).collect();
    if roots.is_empty() {
        return PijRowUpdate {
            nodes: roots,
            n_pos,
            p: Vec::new(),
            obs: Vec::new(),
            vectors_used: n_words * 64,
        };
    }

    // Only the listed cones are materialized (slot-indexed arena), so
    // the setup cost is one O(V+E) flattening pass plus work
    // proportional to the requested cones.
    let csr = CsrView::build(circuit);
    let arena = ConeArena::build_for(&csr, &roots);
    let progs = ConePrograms::compile(&csr, &arena, &roots);

    let (counts, obs_counts) = accumulate_counts(&csr, &progs, seed, threads, n_words);

    let total = (n_words * 64) as f64;
    let mut p = vec![0.0f64; roots.len() * n_pos];
    for ri in 0..roots.len() {
        let start = progs.po_off[ri];
        for (t, &col) in arena.reachable_cols(ri).iter().enumerate() {
            p[ri * n_pos + col as usize] = counts[start + t] as f64 / total;
        }
    }
    let obs: Vec<f64> = obs_counts.into_iter().map(|c| c as f64 / total).collect();

    PijRowUpdate {
        nodes: roots,
        n_pos,
        p,
        obs,
        vectors_used: n_words * 64,
    }
}

/// Runs [`count_words`] over the compiled programs, across `threads`
/// workers dealt round-robin; per-worker integer accumulators are merged
/// by order-independent summation, so the result is bitwise identical for
/// every thread count.
fn accumulate_counts(
    csr: &CsrView,
    progs: &ConePrograms,
    seed: u64,
    threads: usize,
    n_words: usize,
) -> (Vec<u64>, Vec<u64>) {
    let threads = threads.min(n_words);
    if threads <= 1 {
        return count_words(csr, progs, seed, 0, 1, n_words);
    }
    let partials: Vec<(Vec<u64>, Vec<u64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let progs = &*progs;
                scope.spawn(move || count_words(csr, progs, seed, t, threads, n_words))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation worker panicked"))
            .collect()
    });
    let mut counts = vec![0u64; progs.total_reachable()];
    let mut obs_counts = vec![0u64; progs.root_count()];
    for (c, o) in partials {
        for (acc, x) in counts.iter_mut().zip(&c) {
            *acc += x;
        }
        for (acc, x) in obs_counts.iter_mut().zip(&o) {
            *acc += x;
        }
    }
    (counts, obs_counts)
}

/// Words evaluated together in one block: cone programs stay hot in L1
/// across the whole block and every row operation runs over contiguous
/// `u64` lanes the compiler can vectorize.
const BLOCK: usize = 64;

/// Tag bit marking a cone-local operand (index into the cone's value
/// rows) as opposed to an untouched node read from the base evaluation.
const LOCAL: u32 = 1 << 31;

/// One gate of a compiled cone program; its destination is implicit (the
/// `e`-th op writes cone-local row `e + 1`, matching the topological cone
/// order).
#[derive(Debug, Clone, Copy)]
struct ProgOp {
    kind: GateKind,
    n_in: u32,
    /// Offset into [`ConePrograms::operands`].
    off: u32,
}

/// A reachable PO of a cone: its cone-local value row and global node
/// index.
#[derive(Debug, Clone, Copy)]
struct PoSlot {
    local: u32,
    po: u32,
}

/// The fan-out cones of a set of *root* nodes compiled into flat
/// strike-resimulation programs over cone-local value rows. The full
/// estimator compiles every node; selective re-simulation compiles only
/// the requested subset.
///
/// Side inputs (fan-ins outside the cone) are untagged global node
/// indices resolved against the base evaluation, so no scratch state
/// needs restoring between strikes — the value rows are simply
/// overwritten by the next cone.
///
/// All per-root arrays (`op_off`, `po_off`, …) are indexed by *position
/// in the root list*, not by node index.
struct ConePrograms {
    roots: Vec<u32>,
    op_off: Vec<usize>,
    ops: Vec<ProgOp>,
    operands: Vec<u32>,
    po_off: Vec<usize>,
    po_slots: Vec<PoSlot>,
    max_cone: usize,
}

impl ConePrograms {
    fn compile(csr: &CsrView, arena: &ConeArena, roots: &[u32]) -> Self {
        let n = csr.node_count();
        assert!(
            n < LOCAL as usize,
            "node count exceeds the operand tag space"
        );
        let mut op_off = Vec::with_capacity(roots.len() + 1);
        let mut ops = Vec::new();
        let mut operands: Vec<u32> = Vec::new();
        let mut po_off = Vec::with_capacity(roots.len() + 1);
        let mut po_slots = Vec::new();
        op_off.push(0);
        po_off.push(0);

        // Stamped cone-membership map: pos[v] is v's value row while
        // stamp[v] == current root position.
        let mut stamp = vec![u32::MAX; n];
        let mut pos = vec![0u32; n];
        let mut max_cone = 0usize;
        for ri in 0..roots.len() {
            let cone = arena.cone(ri);
            max_cone = max_cone.max(cone.len());
            for (p, &v) in cone.iter().enumerate() {
                stamp[v as usize] = ri as u32;
                pos[v as usize] = p as u32;
            }
            for &v in &cone[1..] {
                let fanin = csr.fanin_of(v as usize);
                ops.push(ProgOp {
                    kind: csr.kind(v as usize),
                    n_in: fanin.len() as u32,
                    off: operands.len() as u32,
                });
                for &f in fanin {
                    operands.push(if stamp[f as usize] == ri as u32 {
                        LOCAL | pos[f as usize]
                    } else {
                        f
                    });
                }
            }
            for &col in arena.reachable_cols(ri) {
                let po = csr.outputs()[col as usize];
                debug_assert_eq!(stamp[po as usize], ri as u32, "reachable PO is in the cone");
                po_slots.push(PoSlot {
                    local: pos[po as usize],
                    po,
                });
            }
            op_off.push(ops.len());
            po_off.push(po_slots.len());
        }

        ConePrograms {
            roots: roots.to_vec(),
            op_off,
            ops,
            operands,
            po_off,
            po_slots,
            max_cone,
        }
    }

    #[inline]
    fn root_count(&self) -> usize {
        self.roots.len()
    }

    #[inline]
    fn total_reachable(&self) -> usize {
        self.po_slots.len()
    }

    #[inline]
    fn ops_of(&self, ri: usize) -> &[ProgOp] {
        &self.ops[self.op_off[ri]..self.op_off[ri + 1]]
    }

    #[inline]
    fn po_slots_of(&self, ri: usize) -> &[PoSlot] {
        &self.po_slots[self.po_off[ri]..self.po_off[ri + 1]]
    }
}

/// `dst[w] = op(a[w])` over one block row.
#[inline]
fn unary_row(kind: GateKind, dst: &mut [u64], a: &[u64]) {
    if kind.is_inverting() {
        for (d, &x) in dst.iter_mut().zip(a) {
            *d = !x;
        }
    } else {
        dst.copy_from_slice(a);
    }
}

/// `dst[w] = op(a[w], b[w])` over one block row, specialized per kind so
/// the lane loop vectorizes.
#[inline]
fn binary_row(kind: GateKind, dst: &mut [u64], a: &[u64], b: &[u64]) {
    macro_rules! lanes {
        ($f:expr) => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = $f(x, y);
            }
        };
    }
    match kind {
        GateKind::And => lanes!(|x, y| x & y),
        GateKind::Nand => lanes!(|x: u64, y: u64| !(x & y)),
        GateKind::Or => lanes!(|x, y| x | y),
        GateKind::Nor => lanes!(|x: u64, y: u64| !(x | y)),
        GateKind::Xor => lanes!(|x, y| x ^ y),
        GateKind::Xnor => lanes!(|x: u64, y: u64| !(x ^ y)),
        // NOT/BUF are unary; inputs never appear inside a cone tail.
        GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
    }
}

/// Folds `src` into `dst` with the kind's accumulate operation (3+-input
/// gates; the final inversion is applied by the caller).
#[inline]
fn accumulate_row(kind: GateKind, dst: &mut [u64], src: &[u64]) {
    macro_rules! lanes {
        ($f:expr) => {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d = $f(*d, x);
            }
        };
    }
    match kind {
        GateKind::And | GateKind::Nand => lanes!(|acc: u64, x: u64| acc & x),
        GateKind::Or | GateKind::Nor => lanes!(|acc: u64, x: u64| acc | x),
        GateKind::Xor | GateKind::Xnor => lanes!(|acc: u64, x: u64| acc ^ x),
        GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
    }
}

/// Simulates the words `first, first + stride, …` below `n_words` in
/// blocks of [`BLOCK`], returning flat reachable-PO hit counts (laid out
/// per the programs' root-positional `po_off`) and per-root any-PO union
/// counts.
///
/// Per block, the fault-free circuit is evaluated word-major and
/// transposed into node-major rows (`base[node][word]`); each compiled
/// root's cone program then replays the strike for every word in the
/// block against those rows, with no scratch state to restore.
fn count_words(
    csr: &CsrView,
    progs: &ConePrograms,
    seed: u64,
    first: usize,
    stride: usize,
    n_words: usize,
) -> (Vec<u64>, Vec<u64>) {
    let n_nodes = csr.node_count();
    let n_pi = csr.inputs().len();
    let mut counts = vec![0u64; progs.total_reachable()];
    let mut obs_counts = vec![0u64; progs.root_count()];

    let mut base = vec![0u64; n_nodes * BLOCK];
    let mut tmp = vec![0u64; n_nodes];
    let mut vals = vec![0u64; progs.max_cone.max(1) * BLOCK];
    let mut union_buf = [0u64; BLOCK];
    let mut block: Vec<usize> = Vec::with_capacity(BLOCK);

    let mut w = first;
    while w < n_words {
        block.clear();
        while w < n_words && block.len() < BLOCK {
            block.push(w);
            w += stride;
        }
        let wc = block.len();

        // Fault-free base values, transposed to node-major rows.
        for (wl, &wg) in block.iter().enumerate() {
            let pi_words = random_word(n_pi, 0.5, seed.wrapping_add(wg as u64));
            kernel::eval_word(csr, &pi_words, &mut tmp);
            for (i, &v) in tmp.iter().enumerate() {
                base[i * BLOCK + wl] = v;
            }
        }

        for (ri, &root) in progs.roots.iter().enumerate() {
            let i = root as usize;
            // Row 0: the struck node, flipped in every lane.
            for (d, &x) in vals[..wc].iter_mut().zip(&base[i * BLOCK..][..wc]) {
                *d = !x;
            }
            for (e, op) in progs.ops_of(ri).iter().enumerate() {
                let (done, rest) = vals.split_at_mut((e + 1) * BLOCK);
                let dst = &mut rest[..wc];
                let row = |t: u32| -> &[u64] {
                    if t & LOCAL != 0 {
                        &done[((t & !LOCAL) as usize) * BLOCK..][..wc]
                    } else {
                        &base[(t as usize) * BLOCK..][..wc]
                    }
                };
                let args = &progs.operands[op.off as usize..(op.off + op.n_in) as usize];
                match *args {
                    [a] => unary_row(op.kind, dst, row(a)),
                    [a, b] => binary_row(op.kind, dst, row(a), row(b)),
                    [a, ref more @ ..] => {
                        dst.copy_from_slice(row(a));
                        for &m in more {
                            accumulate_row(op.kind, dst, row(m));
                        }
                        if op.kind.is_inverting() {
                            for d in dst.iter_mut() {
                                *d = !*d;
                            }
                        }
                    }
                    [] => unreachable!("gates have at least one fan-in"),
                }
            }

            let slots = progs.po_slots_of(ri);
            if slots.is_empty() {
                continue;
            }
            union_buf[..wc].fill(0);
            let start = progs.po_off[ri];
            for (t, slot) in slots.iter().enumerate() {
                let vrow = &vals[(slot.local as usize) * BLOCK..][..wc];
                let prow = &base[(slot.po as usize) * BLOCK..][..wc];
                let mut hits = 0u64;
                for (u, (&v, &p)) in union_buf[..wc].iter_mut().zip(vrow.iter().zip(prow)) {
                    let diff = v ^ p;
                    hits += u64::from(diff.count_ones());
                    *u |= diff;
                }
                counts[start + t] += hits;
            }
            obs_counts[ri] += union_buf[..wc]
                .iter()
                .map(|&u| u64::from(u.count_ones()))
                .sum::<u64>();
        }
    }
    (counts, obs_counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    #[test]
    fn po_is_self_sensitized() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for (j, &po) in m.outputs().iter().enumerate() {
            assert_eq!(m.p(po, j), 1.0, "P_jj must be 1");
        }
    }

    #[test]
    fn unreachable_output_has_zero_probability() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        // Gate 10 feeds only output 22 (never 23).
        let g10 = c.find("10").unwrap();
        let col23 = m
            .outputs()
            .iter()
            .position(|&po| c.node(po).name == "23")
            .unwrap();
        assert_eq!(m.p(g10, col23), 0.0);
        assert!(!m.reachable_columns(g10).contains(&(col23 as u32)));
    }

    #[test]
    fn inverter_chain_is_always_sensitized() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 1);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn and_gate_side_probability() {
        // y = AND(a, b): a flip of `a` reaches y iff b = 1 → P = 0.5.
        let mut bb = CircuitBuilder::new("and");
        let a = bb.input("a");
        let b2 = bb.input("b");
        let y = bb.gate(GateKind::And, "y", &[a, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let m = sensitization_probabilities(&c, 64 * 256, 123);
        assert!((m.p(a, 0) - 0.5).abs() < 0.03, "{}", m.p(a, 0));
    }

    #[test]
    fn xor_tree_is_fully_observable() {
        // XOR trees never mask: every node flip reaches the output.
        let mut b = CircuitBuilder::new("xt");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let x0 = b.gate(GateKind::Xor, "x0", &[i0, i1]).unwrap();
        let x1 = b.gate(GateKind::Xor, "x1", &[i2, i3]).unwrap();
        let y = b.gate(GateKind::Xor, "y", &[x0, x1]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 3);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn estimates_are_stable_across_seeds() {
        let c = generate::c17();
        let m1 = sensitization_probabilities(&c, 64 * 128, 10);
        let m2 = sensitization_probabilities(&c, 64 * 128, 20);
        for id in c.node_ids() {
            for j in 0..m1.outputs().len() {
                assert!(
                    (m1.p(id, j) - m2.p(id, j)).abs() < 0.05,
                    "node {id} col {j}"
                );
            }
        }
    }

    #[test]
    fn observability_bounds_row() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for id in c.node_ids() {
            let o = m.observability(id);
            for j in 0..m.outputs().len() {
                assert!(m.p(id, j) <= o + 1e-12);
            }
        }
    }

    #[test]
    fn measured_union_can_exceed_row_max() {
        // y0 = AND(a, b), y1 = AND(a, c): a flip of `a` reaches y0 iff
        // b=1, y1 iff c=1; union = P(b=1 or c=1) = 0.75 > 0.5 = max.
        let mut bb = CircuitBuilder::new("u");
        let a = bb.input("a");
        let b = bb.input("b");
        let c = bb.input("c");
        let y0 = bb.gate(GateKind::And, "y0", &[a, b]).unwrap();
        let y1 = bb.gate(GateKind::And, "y1", &[a, c]).unwrap();
        bb.mark_output(y0);
        bb.mark_output(y1);
        let circ = bb.finish().unwrap();
        let m = sensitization_probabilities(&circ, 64 * 512, 9);
        let row_max = m.row(a).iter().copied().fold(0.0, f64::max);
        assert!((row_max - 0.5).abs() < 0.03, "{row_max}");
        assert!(
            (m.observability(a) - 0.75).abs() < 0.03,
            "{}",
            m.observability(a)
        );
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let c = generate::sec32("t");
        let m1 = sensitization_probabilities_threaded(&c, 512, 77, 1);
        let m2 = sensitization_probabilities_threaded(&c, 512, 77, 2);
        let m5 = sensitization_probabilities_threaded(&c, 512, 77, 5);
        assert_eq!(m1, m2);
        assert_eq!(m1, m5);
    }

    #[test]
    fn selective_resim_matches_full_rows_bitwise() {
        let c = generate::sec32("t");
        let m = sensitization_probabilities_threaded(&c, 512, 77, 1);
        // A scattered subset: every third node, in shuffled-ish order.
        let subset: Vec<_> = c.node_ids().filter(|id| id.index() % 3 == 1).collect();
        for threads in [1usize, 3] {
            let up = resimulate_rows_threaded(&c, &subset, 512, 77, threads);
            assert_eq!(up.nodes().len(), subset.len());
            for (t, &id) in subset.iter().enumerate() {
                assert_eq!(up.row(t), m.row(id), "row of {id} ({threads} threads)");
                assert_eq!(
                    up.observability(t),
                    m.observability(id),
                    "obs of {id} ({threads} threads)"
                );
            }
        }
    }

    #[test]
    fn apply_update_patches_only_listed_rows() {
        let c = generate::c17();
        let m256 = sensitization_probabilities(&c, 256, 5);
        let m512 = sensitization_probabilities(&c, 512, 5);
        let subset: Vec<_> = c.gates().take(3).collect();
        let up = resimulate_rows(&c, &subset, 512, 5);
        let mut patched = m256.clone();
        patched.apply_update(&up);
        for id in c.node_ids() {
            if subset.contains(&id) {
                assert_eq!(patched.row(id), m512.row(id), "patched row of {id}");
                assert_eq!(patched.observability(id), m512.observability(id));
            } else {
                assert_eq!(patched.row(id), m256.row(id), "untouched row of {id}");
            }
        }
        // Patching with a same-(vectors, seed) update is a no-op.
        let noop = resimulate_rows(&c, &subset, 256, 5);
        let mut same = m256.clone();
        same.apply_update(&noop);
        assert_eq!(same, m256);
    }

    #[test]
    fn empty_resim_is_trivial() {
        let c = generate::c17();
        let up = resimulate_rows(&c, &[], 128, 1);
        assert!(up.nodes().is_empty());
        assert_eq!(up.vectors_used(), 128);
    }

    #[test]
    fn reachable_columns_define_the_support() {
        let c = generate::sec32("t");
        let m = sensitization_probabilities(&c, 256, 3);
        for id in c.node_ids() {
            for j in 0..m.outputs().len() {
                if !m.reachable_columns(id).contains(&(j as u32)) {
                    assert_eq!(m.p(id, j), 0.0, "node {id} col {j}");
                }
            }
        }
    }
}
