//! Sensitization probabilities `P_ij`: the probability that at least one
//! path from node `i` to primary output `j` is sensitized.
//!
//! Exact computation is NP-complete for circuits with reconvergent
//! fan-out (the paper's ref. \[9\]); following the paper (and its ref.
//! \[5\]), `P_ij` is estimated by zero-delay simulation with random
//! vectors: for
//! each vector, node `i` is flipped, the fan-out cone is re-evaluated, and
//! `P_ij` accumulates whether PO `j` changed — 64 vectors per pass thanks
//! to bit-parallel words.

use ser_netlist::cone::fanout_cone;
use ser_netlist::{Circuit, NodeId};

use crate::random::random_word;
use crate::sim::{eval_cone_forced, eval_word};

/// Dense `node × PO` matrix of sensitization probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitizationMatrix {
    outputs: Vec<NodeId>,
    n_nodes: usize,
    /// node-major storage: `p[node * outputs.len() + j]`.
    p: Vec<f64>,
    vectors_used: usize,
}

impl SensitizationMatrix {
    /// The primary outputs, defining the column order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of random vectors behind the estimate.
    pub fn vectors_used(&self) -> usize {
        self.vectors_used
    }

    /// `P_ij` for a node and PO **column index** (see
    /// [`SensitizationMatrix::outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if the node or column is out of range.
    #[inline]
    pub fn p(&self, node: NodeId, po_col: usize) -> f64 {
        assert!(po_col < self.outputs.len(), "PO column out of range");
        self.p[node.index() * self.outputs.len() + po_col]
    }

    /// The whole row of a node (one entry per PO).
    #[inline]
    pub fn row(&self, node: NodeId) -> &[f64] {
        let n = self.outputs.len();
        &self.p[node.index() * n..(node.index() + 1) * n]
    }

    /// Probability that a flip of `node` is observed at *any* output
    /// (upper-bounded union estimate: measured directly, not via the
    /// per-PO marginals).
    pub fn observability(&self, node: NodeId) -> f64 {
        // With per-PO marginals only, use the max as a lower bound on the
        // union; rows are what ASERTA consumes, this is a convenience.
        self.row(node).iter().copied().fold(0.0, f64::max)
    }
}

/// Estimates the full matrix with `n_vectors` random vectors (rounded up
/// to a multiple of 64), PI probability 0.5, deterministic in `seed`.
///
/// The paper uses 10 000 vectors; 64-way packing makes that ~157 passes
/// over each fan-out cone.
///
/// # Panics
///
/// Panics if `n_vectors` is 0.
pub fn sensitization_probabilities(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
) -> SensitizationMatrix {
    assert!(n_vectors > 0, "need at least one vector");
    let outputs: Vec<NodeId> = circuit.primary_outputs().to_vec();
    let n_pos = outputs.len();
    let n_nodes = circuit.node_count();
    let n_words = n_vectors.div_ceil(64);
    let n_pi = circuit.primary_inputs().len();

    // Precompute cones once (dominant cost is resimulation anyway).
    let cones: Vec<Vec<NodeId>> = circuit
        .node_ids()
        .map(|id| fanout_cone(circuit, id))
        .collect();

    let mut counts = vec![0u64; n_nodes * n_pos];
    let mut scratch = vec![0u64; n_nodes];
    for w in 0..n_words {
        let pi_words = random_word(n_pi, 0.5, seed.wrapping_add(w as u64));
        let base = eval_word(circuit, &pi_words);
        // Invariant between nodes: scratch == base everywhere, so cone
        // side-inputs read correct values and non-cone POs diff to zero.
        scratch.copy_from_slice(&base);
        for id in circuit.node_ids() {
            let cone = &cones[id.index()];
            eval_cone_forced(circuit, cone, id, !base[id.index()], &mut scratch);
            let row = &mut counts[id.index() * n_pos..(id.index() + 1) * n_pos];
            for (j, &po) in outputs.iter().enumerate() {
                let diff = scratch[po.index()] ^ base[po.index()];
                row[j] += diff.count_ones() as u64;
            }
            // Restore the invariant (cheaper than a full copy: cones are
            // usually small).
            for &c in cone {
                scratch[c.index()] = base[c.index()];
            }
        }
    }

    let total = (n_words * 64) as f64;
    SensitizationMatrix {
        outputs,
        n_nodes,
        p: counts.into_iter().map(|c| c as f64 / total).collect(),
        vectors_used: n_words * 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    #[test]
    fn po_is_self_sensitized() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for (j, &po) in m.outputs().iter().enumerate() {
            assert_eq!(m.p(po, j), 1.0, "P_jj must be 1");
        }
    }

    #[test]
    fn unreachable_output_has_zero_probability() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        // Gate 10 feeds only output 22 (never 23).
        let g10 = c.find("10").unwrap();
        let col23 = m
            .outputs()
            .iter()
            .position(|&po| c.node(po).name == "23")
            .unwrap();
        assert_eq!(m.p(g10, col23), 0.0);
    }

    #[test]
    fn inverter_chain_is_always_sensitized() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 1);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn and_gate_side_probability() {
        // y = AND(a, b): a flip of `a` reaches y iff b = 1 → P = 0.5.
        let mut bb = CircuitBuilder::new("and");
        let a = bb.input("a");
        let b2 = bb.input("b");
        let y = bb.gate(GateKind::And, "y", &[a, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let m = sensitization_probabilities(&c, 64 * 256, 123);
        assert!((m.p(a, 0) - 0.5).abs() < 0.03, "{}", m.p(a, 0));
    }

    #[test]
    fn xor_tree_is_fully_observable() {
        // XOR trees never mask: every node flip reaches the output.
        let mut b = CircuitBuilder::new("xt");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let x0 = b.gate(GateKind::Xor, "x0", &[i0, i1]).unwrap();
        let x1 = b.gate(GateKind::Xor, "x1", &[i2, i3]).unwrap();
        let y = b.gate(GateKind::Xor, "y", &[x0, x1]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 3);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn estimates_are_stable_across_seeds() {
        let c = generate::c17();
        let m1 = sensitization_probabilities(&c, 64 * 128, 10);
        let m2 = sensitization_probabilities(&c, 64 * 128, 20);
        for id in c.node_ids() {
            for j in 0..m1.outputs().len() {
                assert!(
                    (m1.p(id, j) - m2.p(id, j)).abs() < 0.05,
                    "node {id} col {j}"
                );
            }
        }
    }

    #[test]
    fn observability_bounds_row() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for id in c.node_ids() {
            let o = m.observability(id);
            for j in 0..m.outputs().len() {
                assert!(m.p(id, j) <= o + 1e-12);
            }
        }
    }
}
