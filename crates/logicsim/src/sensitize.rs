//! Sensitization probabilities `P_ij`: the probability that at least one
//! path from node `i` to primary output `j` is sensitized.
//!
//! Exact computation is NP-complete for circuits with reconvergent
//! fan-out (the paper's ref. \[9\]); following the paper (and its ref.
//! \[5\]), `P_ij` is estimated by zero-delay simulation with random
//! vectors: for each vector, node `i` is flipped, the fan-out cone is
//! re-evaluated, and `P_ij` accumulates whether PO `j` changed — 64
//! vectors per pass thanks to bit-parallel words.
//!
//! # Hot-path architecture
//!
//! The estimator runs over the flat CSR view ([`CsrView`]) with every
//! node's fan-out cone and reachable-PO column list premultiplied into
//! one [`ConeArena`], so each strike resimulates exactly the nodes that
//! can change and counts differences only at the POs it can reach.
//! 64-vector words are distributed round-robin over worker threads
//! ([`simulation_threads`]: `SER_SIM_THREADS` or the machine's available
//! parallelism).
//!
//! **Determinism contract:** results are bitwise identical for every
//! thread count. Word `w` always draws its stimulus from
//! `seed.wrapping_add(w)` regardless of which thread runs it, each
//! thread accumulates integer hit counts privately, and the per-word
//! counts are merged by integer summation (associative and commutative)
//! before a single final division.

use ser_netlist::csr::{ConeArena, CsrView};
use ser_netlist::{Circuit, GateKind, NodeId};

use crate::kernel;
use crate::random::random_word;

/// Dense `node × PO` matrix of sensitization probabilities, plus the
/// directly measured any-PO observability and the reachability lists the
/// estimate was computed over.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitizationMatrix {
    outputs: Vec<NodeId>,
    n_nodes: usize,
    /// node-major storage: `p[node * outputs.len() + j]`.
    p: Vec<f64>,
    /// Directly measured union probability per node.
    obs: Vec<f64>,
    /// Reachable-PO columns per node, CSR layout.
    reach_off: Vec<usize>,
    reach_cols: Vec<u32>,
    vectors_used: usize,
}

impl SensitizationMatrix {
    /// The primary outputs, defining the column order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of random vectors behind the estimate.
    pub fn vectors_used(&self) -> usize {
        self.vectors_used
    }

    /// `P_ij` for a node and PO **column index** (see
    /// [`SensitizationMatrix::outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if the node or column is out of range.
    #[inline]
    pub fn p(&self, node: NodeId, po_col: usize) -> f64 {
        assert!(po_col < self.outputs.len(), "PO column out of range");
        self.p[node.index() * self.outputs.len() + po_col]
    }

    /// The whole row of a node (one entry per PO).
    #[inline]
    pub fn row(&self, node: NodeId) -> &[f64] {
        let n = self.outputs.len();
        &self.p[node.index() * n..(node.index() + 1) * n]
    }

    /// Probability that a flip of `node` is observed at *any* output.
    ///
    /// Measured directly during simulation (the union of per-PO
    /// difference words is counted alongside the marginals), not derived
    /// from the per-PO rows — so it is the true union estimate, which the
    /// row maximum only lower-bounds.
    pub fn observability(&self, node: NodeId) -> f64 {
        self.obs[node.index()]
    }

    /// PO **column indices** reachable from `node`, ascending. `P_ij` is
    /// structurally zero for every column not listed — consumers can skip
    /// them outright.
    #[inline]
    pub fn reachable_columns(&self, node: NodeId) -> &[u32] {
        &self.reach_cols[self.reach_off[node.index()]..self.reach_off[node.index() + 1]]
    }
}

/// Worker-thread count used by [`sensitization_probabilities`]: the
/// `SER_SIM_THREADS` environment override when set to a positive
/// integer, else [`std::thread::available_parallelism`].
pub fn simulation_threads() -> usize {
    std::env::var("SER_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Estimates the full matrix with `n_vectors` random vectors (rounded up
/// to a multiple of 64), PI probability 0.5, deterministic in `seed` and
/// independent of the worker-thread count (see the module docs).
///
/// The paper uses 10 000 vectors; 64-way packing makes that ~157 passes
/// over each fan-out cone.
///
/// # Panics
///
/// Panics if `n_vectors` is 0.
pub fn sensitization_probabilities(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
) -> SensitizationMatrix {
    sensitization_probabilities_threaded(circuit, n_vectors, seed, simulation_threads())
}

/// [`sensitization_probabilities`] with an explicit worker-thread count.
/// Results are bitwise identical for every `threads` value.
///
/// # Panics
///
/// Panics if `n_vectors` or `threads` is 0.
pub fn sensitization_probabilities_threaded(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
) -> SensitizationMatrix {
    assert!(n_vectors > 0, "need at least one vector");
    assert!(threads > 0, "need at least one worker thread");
    let outputs: Vec<NodeId> = circuit.primary_outputs().to_vec();
    let n_pos = outputs.len();
    let n_nodes = circuit.node_count();
    let n_words = n_vectors.div_ceil(64);

    let csr = CsrView::build(circuit);
    let arena = ConeArena::build(&csr);
    let progs = ConePrograms::compile(&csr, &arena);
    let threads = threads.min(n_words);

    let (counts, obs_counts) = if threads <= 1 {
        count_words(&csr, &arena, &progs, seed, 0, 1, n_words)
    } else {
        // Words are dealt round-robin; each worker owns private integer
        // accumulators, merged below by order-independent summation.
        let partials: Vec<(Vec<u64>, Vec<u64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let csr = &csr;
                    let arena = &arena;
                    let progs = &progs;
                    scope.spawn(move || count_words(csr, arena, progs, seed, t, threads, n_words))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation worker panicked"))
                .collect()
        });
        let mut counts = vec![0u64; arena.total_reachable()];
        let mut obs_counts = vec![0u64; n_nodes];
        for (c, o) in partials {
            for (acc, x) in counts.iter_mut().zip(&c) {
                *acc += x;
            }
            for (acc, x) in obs_counts.iter_mut().zip(&o) {
                *acc += x;
            }
        }
        (counts, obs_counts)
    };

    // Scatter the flat reachable-PO counts into the dense row-major
    // matrix; unreachable columns stay at their structural zero.
    let total = (n_words * 64) as f64;
    let mut p = vec![0.0f64; n_nodes * n_pos];
    for i in 0..n_nodes {
        let start = arena.reachable_start(i);
        for (t, &col) in arena.reachable_cols(i).iter().enumerate() {
            p[i * n_pos + col as usize] = counts[start + t] as f64 / total;
        }
    }
    let obs: Vec<f64> = obs_counts.into_iter().map(|c| c as f64 / total).collect();

    SensitizationMatrix {
        outputs,
        n_nodes,
        p,
        obs,
        reach_off: arena.reachable_offsets().to_vec(),
        reach_cols: arena.reachable_cols_flat().to_vec(),
        vectors_used: n_words * 64,
    }
}

/// Words evaluated together in one block: cone programs stay hot in L1
/// across the whole block and every row operation runs over contiguous
/// `u64` lanes the compiler can vectorize.
const BLOCK: usize = 64;

/// Tag bit marking a cone-local operand (index into the cone's value
/// rows) as opposed to an untouched node read from the base evaluation.
const LOCAL: u32 = 1 << 31;

/// One gate of a compiled cone program; its destination is implicit (the
/// `e`-th op writes cone-local row `e + 1`, matching the topological cone
/// order).
#[derive(Debug, Clone, Copy)]
struct ProgOp {
    kind: GateKind,
    n_in: u32,
    /// Offset into [`ConePrograms::operands`].
    off: u32,
}

/// A reachable PO of a cone: its cone-local value row and global node
/// index.
#[derive(Debug, Clone, Copy)]
struct PoSlot {
    local: u32,
    po: u32,
}

/// Every node's fan-out cone compiled into a flat strike-resimulation
/// program over cone-local value rows.
///
/// Side inputs (fan-ins outside the cone) are untagged global node
/// indices resolved against the base evaluation, so no scratch state
/// needs restoring between strikes — the value rows are simply
/// overwritten by the next cone.
struct ConePrograms {
    op_off: Vec<usize>,
    ops: Vec<ProgOp>,
    operands: Vec<u32>,
    po_off: Vec<usize>,
    po_slots: Vec<PoSlot>,
    max_cone: usize,
}

impl ConePrograms {
    fn compile(csr: &CsrView, arena: &ConeArena) -> Self {
        let n = csr.node_count();
        assert!(
            n < LOCAL as usize,
            "node count exceeds the operand tag space"
        );
        let mut op_off = Vec::with_capacity(n + 1);
        let mut ops = Vec::with_capacity(arena.total_cone_len() - n);
        let mut operands: Vec<u32> = Vec::new();
        let mut po_off = Vec::with_capacity(n + 1);
        let mut po_slots = Vec::with_capacity(arena.total_reachable());
        op_off.push(0);
        po_off.push(0);

        // Stamped cone-membership map: pos[v] is v's value row while
        // stamp[v] == current root.
        let mut stamp = vec![u32::MAX; n];
        let mut pos = vec![0u32; n];
        let mut max_cone = 0usize;
        for i in 0..n {
            let cone = arena.cone(i);
            max_cone = max_cone.max(cone.len());
            for (p, &v) in cone.iter().enumerate() {
                stamp[v as usize] = i as u32;
                pos[v as usize] = p as u32;
            }
            for &v in &cone[1..] {
                let fanin = csr.fanin_of(v as usize);
                ops.push(ProgOp {
                    kind: csr.kind(v as usize),
                    n_in: fanin.len() as u32,
                    off: operands.len() as u32,
                });
                for &f in fanin {
                    operands.push(if stamp[f as usize] == i as u32 {
                        LOCAL | pos[f as usize]
                    } else {
                        f
                    });
                }
            }
            for &col in arena.reachable_cols(i) {
                let po = csr.outputs()[col as usize];
                debug_assert_eq!(stamp[po as usize], i as u32, "reachable PO is in the cone");
                po_slots.push(PoSlot {
                    local: pos[po as usize],
                    po,
                });
            }
            op_off.push(ops.len());
            po_off.push(po_slots.len());
        }

        ConePrograms {
            op_off,
            ops,
            operands,
            po_off,
            po_slots,
            max_cone,
        }
    }

    #[inline]
    fn ops_of(&self, i: usize) -> &[ProgOp] {
        &self.ops[self.op_off[i]..self.op_off[i + 1]]
    }

    #[inline]
    fn po_slots_of(&self, i: usize) -> &[PoSlot] {
        &self.po_slots[self.po_off[i]..self.po_off[i + 1]]
    }
}

/// `dst[w] = op(a[w])` over one block row.
#[inline]
fn unary_row(kind: GateKind, dst: &mut [u64], a: &[u64]) {
    if kind.is_inverting() {
        for (d, &x) in dst.iter_mut().zip(a) {
            *d = !x;
        }
    } else {
        dst.copy_from_slice(a);
    }
}

/// `dst[w] = op(a[w], b[w])` over one block row, specialized per kind so
/// the lane loop vectorizes.
#[inline]
fn binary_row(kind: GateKind, dst: &mut [u64], a: &[u64], b: &[u64]) {
    macro_rules! lanes {
        ($f:expr) => {
            for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                *d = $f(x, y);
            }
        };
    }
    match kind {
        GateKind::And => lanes!(|x, y| x & y),
        GateKind::Nand => lanes!(|x: u64, y: u64| !(x & y)),
        GateKind::Or => lanes!(|x, y| x | y),
        GateKind::Nor => lanes!(|x: u64, y: u64| !(x | y)),
        GateKind::Xor => lanes!(|x, y| x ^ y),
        GateKind::Xnor => lanes!(|x: u64, y: u64| !(x ^ y)),
        // NOT/BUF are unary; inputs never appear inside a cone tail.
        GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
    }
}

/// Folds `src` into `dst` with the kind's accumulate operation (3+-input
/// gates; the final inversion is applied by the caller).
#[inline]
fn accumulate_row(kind: GateKind, dst: &mut [u64], src: &[u64]) {
    macro_rules! lanes {
        ($f:expr) => {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d = $f(*d, x);
            }
        };
    }
    match kind {
        GateKind::And | GateKind::Nand => lanes!(|acc: u64, x: u64| acc & x),
        GateKind::Or | GateKind::Nor => lanes!(|acc: u64, x: u64| acc | x),
        GateKind::Xor | GateKind::Xnor => lanes!(|acc: u64, x: u64| acc ^ x),
        GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
    }
}

/// Simulates the words `first, first + stride, …` below `n_words` in
/// blocks of [`BLOCK`], returning flat reachable-PO hit counts (laid out
/// per [`ConeArena::reachable_start`]) and per-node any-PO union counts.
///
/// Per block, the fault-free circuit is evaluated word-major and
/// transposed into node-major rows (`base[node][word]`); each node's
/// compiled cone program then replays the strike for every word in the
/// block against those rows, with no scratch state to restore.
fn count_words(
    csr: &CsrView,
    arena: &ConeArena,
    progs: &ConePrograms,
    seed: u64,
    first: usize,
    stride: usize,
    n_words: usize,
) -> (Vec<u64>, Vec<u64>) {
    let n_nodes = csr.node_count();
    let n_pi = csr.inputs().len();
    let mut counts = vec![0u64; arena.total_reachable()];
    let mut obs_counts = vec![0u64; n_nodes];

    let mut base = vec![0u64; n_nodes * BLOCK];
    let mut tmp = vec![0u64; n_nodes];
    let mut vals = vec![0u64; progs.max_cone.max(1) * BLOCK];
    let mut union_buf = [0u64; BLOCK];
    let mut block: Vec<usize> = Vec::with_capacity(BLOCK);

    let mut w = first;
    while w < n_words {
        block.clear();
        while w < n_words && block.len() < BLOCK {
            block.push(w);
            w += stride;
        }
        let wc = block.len();

        // Fault-free base values, transposed to node-major rows.
        for (wl, &wg) in block.iter().enumerate() {
            let pi_words = random_word(n_pi, 0.5, seed.wrapping_add(wg as u64));
            kernel::eval_word(csr, &pi_words, &mut tmp);
            for (i, &v) in tmp.iter().enumerate() {
                base[i * BLOCK + wl] = v;
            }
        }

        for i in 0..n_nodes {
            // Row 0: the struck node, flipped in every lane.
            for (d, &x) in vals[..wc].iter_mut().zip(&base[i * BLOCK..][..wc]) {
                *d = !x;
            }
            for (e, op) in progs.ops_of(i).iter().enumerate() {
                let (done, rest) = vals.split_at_mut((e + 1) * BLOCK);
                let dst = &mut rest[..wc];
                let row = |t: u32| -> &[u64] {
                    if t & LOCAL != 0 {
                        &done[((t & !LOCAL) as usize) * BLOCK..][..wc]
                    } else {
                        &base[(t as usize) * BLOCK..][..wc]
                    }
                };
                let args = &progs.operands[op.off as usize..(op.off + op.n_in) as usize];
                match *args {
                    [a] => unary_row(op.kind, dst, row(a)),
                    [a, b] => binary_row(op.kind, dst, row(a), row(b)),
                    [a, ref more @ ..] => {
                        dst.copy_from_slice(row(a));
                        for &m in more {
                            accumulate_row(op.kind, dst, row(m));
                        }
                        if op.kind.is_inverting() {
                            for d in dst.iter_mut() {
                                *d = !*d;
                            }
                        }
                    }
                    [] => unreachable!("gates have at least one fan-in"),
                }
            }

            let slots = progs.po_slots_of(i);
            if slots.is_empty() {
                continue;
            }
            union_buf[..wc].fill(0);
            let start = arena.reachable_start(i);
            for (t, slot) in slots.iter().enumerate() {
                let vrow = &vals[(slot.local as usize) * BLOCK..][..wc];
                let prow = &base[(slot.po as usize) * BLOCK..][..wc];
                let mut hits = 0u64;
                for (u, (&v, &p)) in union_buf[..wc].iter_mut().zip(vrow.iter().zip(prow)) {
                    let diff = v ^ p;
                    hits += u64::from(diff.count_ones());
                    *u |= diff;
                }
                counts[start + t] += hits;
            }
            obs_counts[i] += union_buf[..wc]
                .iter()
                .map(|&u| u64::from(u.count_ones()))
                .sum::<u64>();
        }
    }
    (counts, obs_counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    #[test]
    fn po_is_self_sensitized() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for (j, &po) in m.outputs().iter().enumerate() {
            assert_eq!(m.p(po, j), 1.0, "P_jj must be 1");
        }
    }

    #[test]
    fn unreachable_output_has_zero_probability() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        // Gate 10 feeds only output 22 (never 23).
        let g10 = c.find("10").unwrap();
        let col23 = m
            .outputs()
            .iter()
            .position(|&po| c.node(po).name == "23")
            .unwrap();
        assert_eq!(m.p(g10, col23), 0.0);
        assert!(!m.reachable_columns(g10).contains(&(col23 as u32)));
    }

    #[test]
    fn inverter_chain_is_always_sensitized() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 1);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn and_gate_side_probability() {
        // y = AND(a, b): a flip of `a` reaches y iff b = 1 → P = 0.5.
        let mut bb = CircuitBuilder::new("and");
        let a = bb.input("a");
        let b2 = bb.input("b");
        let y = bb.gate(GateKind::And, "y", &[a, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let m = sensitization_probabilities(&c, 64 * 256, 123);
        assert!((m.p(a, 0) - 0.5).abs() < 0.03, "{}", m.p(a, 0));
    }

    #[test]
    fn xor_tree_is_fully_observable() {
        // XOR trees never mask: every node flip reaches the output.
        let mut b = CircuitBuilder::new("xt");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let x0 = b.gate(GateKind::Xor, "x0", &[i0, i1]).unwrap();
        let x1 = b.gate(GateKind::Xor, "x1", &[i2, i3]).unwrap();
        let y = b.gate(GateKind::Xor, "y", &[x0, x1]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 3);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn estimates_are_stable_across_seeds() {
        let c = generate::c17();
        let m1 = sensitization_probabilities(&c, 64 * 128, 10);
        let m2 = sensitization_probabilities(&c, 64 * 128, 20);
        for id in c.node_ids() {
            for j in 0..m1.outputs().len() {
                assert!(
                    (m1.p(id, j) - m2.p(id, j)).abs() < 0.05,
                    "node {id} col {j}"
                );
            }
        }
    }

    #[test]
    fn observability_bounds_row() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for id in c.node_ids() {
            let o = m.observability(id);
            for j in 0..m.outputs().len() {
                assert!(m.p(id, j) <= o + 1e-12);
            }
        }
    }

    #[test]
    fn measured_union_can_exceed_row_max() {
        // y0 = AND(a, b), y1 = AND(a, c): a flip of `a` reaches y0 iff
        // b=1, y1 iff c=1; union = P(b=1 or c=1) = 0.75 > 0.5 = max.
        let mut bb = CircuitBuilder::new("u");
        let a = bb.input("a");
        let b = bb.input("b");
        let c = bb.input("c");
        let y0 = bb.gate(GateKind::And, "y0", &[a, b]).unwrap();
        let y1 = bb.gate(GateKind::And, "y1", &[a, c]).unwrap();
        bb.mark_output(y0);
        bb.mark_output(y1);
        let circ = bb.finish().unwrap();
        let m = sensitization_probabilities(&circ, 64 * 512, 9);
        let row_max = m.row(a).iter().copied().fold(0.0, f64::max);
        assert!((row_max - 0.5).abs() < 0.03, "{row_max}");
        assert!(
            (m.observability(a) - 0.75).abs() < 0.03,
            "{}",
            m.observability(a)
        );
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let c = generate::sec32("t");
        let m1 = sensitization_probabilities_threaded(&c, 512, 77, 1);
        let m2 = sensitization_probabilities_threaded(&c, 512, 77, 2);
        let m5 = sensitization_probabilities_threaded(&c, 512, 77, 5);
        assert_eq!(m1, m2);
        assert_eq!(m1, m5);
    }

    #[test]
    fn reachable_columns_define_the_support() {
        let c = generate::sec32("t");
        let m = sensitization_probabilities(&c, 256, 3);
        for id in c.node_ids() {
            for j in 0..m.outputs().len() {
                if !m.reachable_columns(id).contains(&(j as u32)) {
                    assert_eq!(m.p(id, j), 0.0, "node {id} col {j}");
                }
            }
        }
    }
}
