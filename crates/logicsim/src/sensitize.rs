//! Sensitization probabilities `P_ij`: the probability that at least one
//! path from node `i` to primary output `j` is sensitized.
//!
//! Exact computation is NP-complete for circuits with reconvergent
//! fan-out (the paper's ref. \[9\]); following the paper (and its ref.
//! \[5\]), `P_ij` is estimated by zero-delay simulation with random
//! vectors: for each vector, node `i` is flipped, the fan-out cone is
//! re-evaluated, and `P_ij` accumulates whether PO `j` changed — 64
//! vectors per pass thanks to bit-parallel words.
//!
//! # Hot-path architecture
//!
//! The estimator runs over the flat CSR view ([`CsrView`]) with fan-out
//! cones and reachable-PO column lists materialized in [`ConeArena`]s,
//! so each strike resimulates exactly the nodes that can change and
//! counts differences only at the POs it can reach. 64-vector words are
//! distributed round-robin over worker threads ([`simulation_threads`]:
//! `SER_SIM_THREADS` or the machine's available parallelism).
//!
//! Cones are **streamed in chunks** rather than held all at once: a
//! [`ChunkedConeArena`] plans a PO-region partition of the roots
//! ([`cone_chunk_size`] roots per chunk, `SER_CONE_CHUNK` to override),
//! and the estimator builds each chunk's arena on first touch, compiles
//! and replays its cone programs, scatters the counts, and releases the
//! chunk before touching the next. Peak arena memory is therefore
//! bounded by one chunk — not the whole-circuit cone closure, which on
//! 100k-gate circuits runs to gigabytes. Per-thread simulation buffers
//! and the program-compile scratch live in a pool that is reused across
//! chunks, so the inner loop performs no per-node allocation.
//!
//! **Determinism contract:** results are bitwise identical for every
//! thread count. Word `w` always draws its stimulus from
//! `seed.wrapping_add(w)` regardless of which thread runs it, each
//! thread accumulates integer hit counts privately, and the per-word
//! counts are merged by integer summation (associative and commutative)
//! before a single final division.
//!
//! # Estimator modes ([`PijConfig`])
//!
//! Three composable speedups sit on top of the streamed driver, all
//! governed by the resolved [`PijConfig`] (knobs: `SER_SIMD_LANES`,
//! `SER_PIJ_TOL`, `SER_EXACT_SUPPORT`; see [`crate::engine`]):
//!
//! * **Wide kernels** (`lanes`): the cone-replay interpreter processes
//!   1, 2, 4 or 8 packed words per step through the hand-unrolled row
//!   primitives in [`crate::kernel`]. Purely an execution knob — every
//!   lane width is bitwise identical to the scalar path, and the
//!   workspace proptests pin every `lanes × threads × chunk_size`
//!   combination.
//! * **Adaptive sampling** (`tolerance > 0`): vectors still run in
//!   64-word blocks, but each root tracks its any-PO observability
//!   counter and stops early at a block boundary once the
//!   Wilson-score half-width of that proportion falls under
//!   `max(tolerance × estimate, floor)`, where `floor` is the
//!   half-width the full requested budget would reach — so the default
//!   tolerance can only stop once a cone is at least as tight as the
//!   fixed budget's own resolution. A run stops outright when every
//!   root has converged. `tolerance = 0` disables all early stopping
//!   and reproduces the historical fixed-budget stream bitwise.
//! * **Exact small cones** (`exact_support > 0`): a root whose strike
//!   cone is observed through at most `exact_support` primary inputs
//!   (the transitive fan-in support of the cone) and whose `2^support`
//!   assignments do not exceed the requested vector budget is
//!   *enumerated* instead of sampled — every assignment weighted
//!   equally (PI probability 0.5), zero variance, and never more work
//!   than the sampling it replaces.
//!
//! Adaptive and exact results remain bitwise identical across thread
//! counts, chunk sizes and lane widths; they differ from the fixed
//! budget (deliberately) in *sample counts*, which is why the
//! tolerance and support threshold are part of a result's identity —
//! see [`SensitizationMatrix::vectors_used`] and the serve-pool session
//! keys.

use ser_netlist::csr::{ChunkedConeArena, ConeArena, CsrView};
use ser_netlist::govern::{Deadline, DegradationEvent, Interrupted};
use ser_netlist::{Circuit, GateKind, NodeId};

pub use crate::engine::PijConfig;
use crate::kernel;
use crate::kernel::AlignedWords;
use crate::random::random_word;

/// Dense `node × PO` matrix of sensitization probabilities, plus the
/// directly measured any-PO observability and the reachability lists the
/// estimate was computed over.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitizationMatrix {
    outputs: Vec<NodeId>,
    n_nodes: usize,
    /// node-major storage: `p[node * outputs.len() + j]`.
    p: Vec<f64>,
    /// Directly measured union probability per node.
    obs: Vec<f64>,
    /// Reachable-PO columns per node, CSR layout.
    reach_off: Vec<usize>,
    reach_cols: Vec<u32>,
    vectors_used: usize,
}

impl SensitizationMatrix {
    /// The primary outputs, defining the column order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of random vectors behind the estimate.
    pub fn vectors_used(&self) -> usize {
        self.vectors_used
    }

    /// `P_ij` for a node and PO **column index** (see
    /// [`SensitizationMatrix::outputs`]).
    ///
    /// # Panics
    ///
    /// Panics if the node or column is out of range.
    #[inline]
    pub fn p(&self, node: NodeId, po_col: usize) -> f64 {
        assert!(po_col < self.outputs.len(), "PO column out of range");
        self.p[node.index() * self.outputs.len() + po_col]
    }

    /// The whole row of a node (one entry per PO).
    #[inline]
    pub fn row(&self, node: NodeId) -> &[f64] {
        let n = self.outputs.len();
        &self.p[node.index() * n..(node.index() + 1) * n]
    }

    /// Probability that a flip of `node` is observed at *any* output.
    ///
    /// Measured directly during simulation (the union of per-PO
    /// difference words is counted alongside the marginals), not derived
    /// from the per-PO rows — so it is the true union estimate, which the
    /// row maximum only lower-bounds.
    pub fn observability(&self, node: NodeId) -> f64 {
        self.obs[node.index()]
    }

    /// PO **column indices** reachable from `node`, ascending. `P_ij` is
    /// structurally zero for every column not listed — consumers can skip
    /// them outright.
    #[inline]
    pub fn reachable_columns(&self, node: NodeId) -> &[u32] {
        &self.reach_cols[self.reach_off[node.index()]..self.reach_off[node.index() + 1]]
    }

    /// Total `(node, reachable PO)` pair count across the matrix — the
    /// size of the reachability CSR, useful for footprint accounting.
    pub fn reachable_pairs(&self) -> usize {
        self.reach_cols.len()
    }

    /// Number of nodes the matrix covers (the row space).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// The full node-major probability storage
    /// (`p[node * outputs.len() + col]`) — the raw payload a snapshot
    /// encoder persists bitwise.
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.p
    }

    /// The measured any-PO union observability per node (see
    /// [`SensitizationMatrix::observability`]), as one flat slice.
    #[inline]
    pub fn observabilities(&self) -> &[f64] {
        &self.obs
    }

    /// The per-node reachable-column offsets (`node_count + 1` entries)
    /// behind [`SensitizationMatrix::reachable_columns`].
    #[inline]
    pub fn reach_offsets(&self) -> &[usize] {
        &self.reach_off
    }

    /// The concatenated reachable-column lists behind
    /// [`SensitizationMatrix::reachable_columns`].
    #[inline]
    pub fn reach_columns_flat(&self) -> &[u32] {
        &self.reach_cols
    }

    /// Reassembles a matrix from the raw parts exposed by the accessors
    /// above, re-validating every structural invariant — the funnel a
    /// snapshot decoder must pass so a damaged file can never produce a
    /// silently-wrong matrix.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violated invariant: length
    /// mismatches, a non-monotonic reachability CSR, column indices out
    /// of range or not strictly ascending per row, probabilities outside
    /// `[0, 1]` or non-finite, or a zero vector count.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        outputs: Vec<NodeId>,
        n_nodes: usize,
        p: Vec<f64>,
        obs: Vec<f64>,
        reach_off: Vec<usize>,
        reach_cols: Vec<u32>,
        vectors_used: usize,
    ) -> Result<Self, String> {
        let n_pos = outputs.len();
        if vectors_used == 0 {
            return Err("vectors_used must be positive".into());
        }
        if p.len() != n_nodes.checked_mul(n_pos).ok_or("matrix size overflows")? {
            return Err(format!(
                "probability storage holds {} entries, expected {}",
                p.len(),
                n_nodes * n_pos
            ));
        }
        if obs.len() != n_nodes {
            return Err(format!(
                "observability storage holds {} entries, expected {n_nodes}",
                obs.len()
            ));
        }
        if reach_off.len() != n_nodes + 1 || reach_off.first() != Some(&0) {
            return Err("reachability offsets malformed".into());
        }
        if reach_off.windows(2).any(|w| w[0] > w[1]) {
            return Err("reachability offsets not monotonic".into());
        }
        if *reach_off.last().unwrap_or(&0) != reach_cols.len() {
            return Err("reachability offsets do not cover the column list".into());
        }
        for i in 0..n_nodes {
            let row = &reach_cols[reach_off[i]..reach_off[i + 1]];
            if row.iter().any(|&c| c as usize >= n_pos) {
                return Err(format!("node {i} reaches a column out of range"));
            }
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("node {i} columns not strictly ascending"));
            }
            // The reachability CSR declares the structural support: a
            // probability outside it must be exactly zero.
            let mut next = row.iter().peekable();
            for (j, &pij) in p[i * n_pos..(i + 1) * n_pos].iter().enumerate() {
                let reachable = next.peek().is_some_and(|&&c| c as usize == j);
                if reachable {
                    next.next();
                } else if pij != 0.0 {
                    return Err(format!("node {i} has nonzero P at unreachable column {j}"));
                }
            }
        }
        if p.iter().chain(&obs).any(|&x| !(0.0..=1.0).contains(&x)) {
            return Err("probability outside [0, 1]".into());
        }
        Ok(SensitizationMatrix {
            outputs,
            n_nodes,
            p,
            obs,
            reach_off,
            reach_cols,
            vectors_used,
        })
    }

    /// Patches the rows covered by a selective re-simulation
    /// ([`resimulate_rows`]) into the matrix, replacing the per-PO
    /// probabilities and the measured union observability of exactly the
    /// re-simulated nodes. Reachability is structural and stays as built.
    ///
    /// # Panics
    ///
    /// Panics if the update was computed for a different circuit shape
    /// (PO count or node range mismatch).
    pub fn apply_update(&mut self, update: &PijRowUpdate) {
        assert_eq!(
            update.n_pos,
            self.outputs.len(),
            "update and matrix must share the PO column space"
        );
        let n_pos = self.outputs.len();
        for (t, &node) in update.nodes.iter().enumerate() {
            let i = node as usize;
            assert!(i < self.n_nodes, "update node out of range");
            self.p[i * n_pos..(i + 1) * n_pos]
                .copy_from_slice(&update.p[t * n_pos..(t + 1) * n_pos]);
            self.obs[i] = update.obs[t];
        }
    }
}

/// Dense replacement rows for a subset of nodes, produced by
/// [`resimulate_rows`] and consumed by
/// [`SensitizationMatrix::apply_update`].
#[derive(Debug, Clone, PartialEq)]
pub struct PijRowUpdate {
    nodes: Vec<u32>,
    n_pos: usize,
    /// `p[t * n_pos + j]` for the `t`-th node in `nodes`.
    p: Vec<f64>,
    obs: Vec<f64>,
    vectors_used: usize,
}

impl PijRowUpdate {
    /// The re-simulated node indices, in request order.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// The replacement row of the `t`-th node.
    pub fn row(&self, t: usize) -> &[f64] {
        &self.p[t * self.n_pos..(t + 1) * self.n_pos]
    }

    /// The replacement any-PO union observability of the `t`-th node.
    pub fn observability(&self, t: usize) -> f64 {
        self.obs[t]
    }

    /// Number of random vectors behind the update.
    pub fn vectors_used(&self) -> usize {
        self.vectors_used
    }
}

/// Worker-thread count used by [`sensitization_probabilities`]: the
/// `SER_SIM_THREADS` environment override when set to a positive
/// integer, else [`std::thread::available_parallelism`].
///
/// Legacy convenience over [`EngineConfig::lenient_env`](crate::engine::EngineConfig::lenient_env)
/// — malformed values are silently ignored. Callers that can surface an
/// error should use the strict
/// [`EngineConfig::from_env`](crate::engine::EngineConfig::from_env).
pub fn simulation_threads() -> usize {
    crate::engine::EngineConfig::lenient_env().threads()
}

/// Roots-per-chunk used by the streamed estimator: the `SER_CONE_CHUNK`
/// environment override when set to a positive integer, else the
/// built-in default of [`crate::engine::DEFAULT_CONE_CHUNK`]. Results
/// are bitwise identical for every chunk size. The fault-free base
/// evaluation is hoisted per word-block (not per chunk), so the knob
/// trades peak arena memory against per-block program recompilation
/// only — shrinking it is cheap.
///
/// Legacy convenience over [`EngineConfig::lenient_env`](crate::engine::EngineConfig::lenient_env)
/// — malformed values are silently ignored.
pub fn cone_chunk_size() -> usize {
    crate::engine::EngineConfig::lenient_env().cone_chunk()
}

/// Memory/work profile of one streamed estimation run — the probe the
/// scaling benchmark reads. Deliberately *not* part of
/// [`SensitizationMatrix`], whose equality is the bitwise-determinism
/// oracle and must not depend on chunking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EstimateStats {
    /// Number of cone chunks the run streamed through.
    pub chunks: usize,
    /// High-water mark of arena plus compiled-program bytes across the
    /// run (including the arena builder's transient assembly buffer).
    pub peak_bytes: usize,
    /// Total cone entries replayed (the Σ|cone| work term).
    pub cone_entries: usize,
    /// Roots resolved by the exact small-cone enumerator instead of
    /// sampling (0 unless [`PijConfig::exact_support`] is enabled).
    pub exact_roots: usize,
    /// Roots the adaptive sampler stopped before the full vector
    /// budget (0 unless [`PijConfig::tolerance`] is positive).
    pub adaptive_stops: usize,
}

/// Estimates the full matrix with `n_vectors` random vectors (rounded up
/// to a multiple of 64), PI probability 0.5, deterministic in `seed` and
/// independent of the worker-thread count (see the module docs).
///
/// The paper uses 10 000 vectors; 64-way packing makes that ~157 passes
/// over each fan-out cone.
///
/// # Panics
///
/// Panics if `n_vectors` is 0.
pub fn sensitization_probabilities(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
) -> SensitizationMatrix {
    sensitization_probabilities_threaded(circuit, n_vectors, seed, simulation_threads())
}

/// [`sensitization_probabilities`] with an explicit worker-thread count.
/// Results are bitwise identical for every `threads` value.
///
/// # Panics
///
/// Panics if `n_vectors` or `threads` is 0.
pub fn sensitization_probabilities_threaded(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
) -> SensitizationMatrix {
    sensitization_probabilities_chunked(circuit, n_vectors, seed, threads, cone_chunk_size())
}

/// [`sensitization_probabilities_threaded`] with an explicit
/// roots-per-chunk for the streamed cone arena. Results are bitwise
/// identical for every `chunk_size` (and every `threads`) value — the
/// workspace proptests pin this.
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
pub fn sensitization_probabilities_chunked(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
) -> SensitizationMatrix {
    sensitization_probabilities_with_stats(circuit, n_vectors, seed, threads, chunk_size).0
}

/// [`sensitization_probabilities_chunked`] plus the [`EstimateStats`]
/// memory/work profile of the run. Estimator modes resolve from the
/// lenient environment ([`PijConfig::from_lenient_env`]).
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
pub fn sensitization_probabilities_with_stats(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
) -> (SensitizationMatrix, EstimateStats) {
    sensitization_probabilities_with_stats_cfg(
        circuit,
        n_vectors,
        seed,
        threads,
        chunk_size,
        &PijConfig::from_lenient_env(),
    )
}

/// [`sensitization_probabilities_chunked`] with the estimator modes
/// explicit — the entry point consumers use to pin a lane width,
/// adaptive tolerance or exact-support threshold (see the module docs
/// and [`PijConfig`]).
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
pub fn sensitization_probabilities_cfg(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
    pij: &PijConfig,
) -> SensitizationMatrix {
    sensitization_probabilities_with_stats_cfg(circuit, n_vectors, seed, threads, chunk_size, pij).0
}

/// [`sensitization_probabilities_cfg`] plus the [`EstimateStats`]
/// memory/work profile of the run.
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
pub fn sensitization_probabilities_with_stats_cfg(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
    pij: &PijConfig,
) -> (SensitizationMatrix, EstimateStats) {
    assert!(n_vectors > 0, "need at least one vector");
    assert!(threads > 0, "need at least one worker thread");
    let outputs: Vec<NodeId> = circuit.primary_outputs().to_vec();
    let n_pos = outputs.len();
    let n_nodes = circuit.node_count();
    let n_words = n_vectors.div_ceil(64);

    let csr = CsrView::build(circuit);
    let mut plan = ChunkedConeArena::plan(&csr, chunk_size);

    // Scatter the flat reachable-PO counts into the dense row-major
    // matrix; unreachable columns stay at their structural zero. The
    // (node, col) pairs rebuild the node-ordered reachability CSR after
    // the chunk arenas (which visit roots in PO-region order) are gone.
    let mut p = vec![0.0f64; n_nodes * n_pos];
    let mut obs = vec![0.0f64; n_nodes];
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let (stats, words_done, _) = estimate_chunks(
        &csr,
        &mut plan,
        seed,
        threads,
        n_words,
        pij,
        None,
        |root, cols, counts, obs_count, samples| {
            let total = samples as f64;
            let i = root as usize;
            for (t, &col) in cols.iter().enumerate() {
                p[i * n_pos + col as usize] = counts[t] as f64 / total;
                pairs.push((root, col));
            }
            obs[i] = obs_count as f64 / total;
        },
    );

    pairs.sort_unstable();
    let mut reach_off = vec![0usize; n_nodes + 1];
    for &(i, _) in &pairs {
        reach_off[i as usize + 1] += 1;
    }
    for i in 0..n_nodes {
        reach_off[i + 1] += reach_off[i];
    }
    let reach_cols: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();

    (
        SensitizationMatrix {
            outputs,
            n_nodes,
            p,
            obs,
            reach_off,
            reach_cols,
            vectors_used: words_done * 64,
        },
        stats,
    )
}

/// Soft memory budget (bytes) for the streamed estimator: the
/// `SER_MEM_SOFT_LIMIT` environment override when set to a positive
/// byte count (optional `K`/`M`/`G` suffix, powers of 1024), else
/// `None` (ungoverned). Only the *governed* estimation entry points
/// honor it; see [`sensitization_probabilities_governed`].
///
/// Legacy convenience over [`EngineConfig::lenient_env`](crate::engine::EngineConfig::lenient_env)
/// — malformed values are silently ignored.
pub fn mem_soft_limit() -> Option<usize> {
    crate::engine::EngineConfig::lenient_env().mem_soft_limit()
}

/// Outcome of a *governed* estimation run: the matrix built from every
/// word block that completed before the budget ran out, plus the
/// degradation record.
///
/// When `interrupted` is `None` the run finished in full and `matrix`
/// is bitwise identical to the ungoverned estimate at the same
/// parameters. When it is `Some`, the run stopped at a word-block
/// boundary and `matrix` is a consistent, smaller-sample result —
/// never a torn one. In the fixed-budget estimator mode
/// ([`PijConfig::fixed`], or `tolerance = 0` with the exact enumerator
/// off) that truncated matrix is additionally bitwise identical to a
/// *fresh* ungoverned estimate over exactly `vectors_completed`
/// vectors at the same seed; with adaptive stopping or exact
/// enumeration enabled the per-root sample counts depend on the
/// requested budget, so the truncation is consistent but not
/// budget-renamable.
#[derive(Debug, Clone)]
pub struct GovernedEstimate {
    /// The estimated matrix (over `vectors_completed` vectors).
    pub matrix: SensitizationMatrix,
    /// Random vectors actually simulated (a multiple of 64; equals the
    /// rounded-up request unless the run was interrupted).
    pub vectors_completed: usize,
    /// Memory/work profile of the run.
    pub stats: EstimateStats,
    /// Memory-governor degradations applied to stay under the soft
    /// budget, in the order they occurred. Empty when nothing degraded.
    pub events: Vec<DegradationEvent>,
    /// `Some` when a deadline/cancellation stopped the run early (at a
    /// word-block boundary); the matrix still holds every completed
    /// block.
    pub interrupted: Option<Interrupted>,
}

/// [`sensitization_probabilities`] under a wall-clock/cancellation
/// budget and the environment's soft memory budget
/// ([`mem_soft_limit`]): thread count, chunk size and memory limit all
/// come from their environment knobs.
///
/// # Errors
///
/// Returns the [`Interrupted`] budget verdict only when **zero** word
/// blocks completed — there is no partial result to hand back. Any
/// later interruption returns `Ok` with
/// [`GovernedEstimate::interrupted`] set.
///
/// # Panics
///
/// Panics if `n_vectors` is 0.
pub fn sensitization_probabilities_governed(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    deadline: &Deadline,
) -> Result<GovernedEstimate, Interrupted> {
    sensitization_probabilities_governed_chunked(
        circuit,
        n_vectors,
        seed,
        simulation_threads(),
        cone_chunk_size(),
        deadline,
        mem_soft_limit(),
    )
}

/// [`sensitization_probabilities_governed`] with every governor knob
/// explicit. `mem_soft_limit` is a *soft* byte budget: before the run,
/// the cone chunk size is halved (and the chunks replanned) until one
/// chunk's build fits, and during the run resident chunks are shed
/// LRU-first; both degradations are recorded as
/// [`DegradationEvent`]s rather than failing the run. The deadline (or
/// its cancel token) is checked at every 64-word block boundary — the
/// points where the hit counters hold a consistent prefix of the
/// vector stream.
///
/// # Errors
///
/// See [`sensitization_probabilities_governed`].
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
pub fn sensitization_probabilities_governed_chunked(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
    deadline: &Deadline,
    mem_soft_limit: Option<usize>,
) -> Result<GovernedEstimate, Interrupted> {
    sensitization_probabilities_governed_cfg(
        circuit,
        n_vectors,
        seed,
        threads,
        chunk_size,
        &PijConfig::from_lenient_env(),
        deadline,
        mem_soft_limit,
    )
}

/// [`sensitization_probabilities_governed_chunked`] with the estimator
/// modes explicit (see [`PijConfig`] and the module docs).
///
/// # Errors
///
/// See [`sensitization_probabilities_governed`].
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
#[allow(clippy::too_many_arguments)]
pub fn sensitization_probabilities_governed_cfg(
    circuit: &Circuit,
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
    pij: &PijConfig,
    deadline: &Deadline,
    mem_soft_limit: Option<usize>,
) -> Result<GovernedEstimate, Interrupted> {
    assert!(n_vectors > 0, "need at least one vector");
    assert!(threads > 0, "need at least one worker thread");
    let outputs: Vec<NodeId> = circuit.primary_outputs().to_vec();
    let n_pos = outputs.len();
    let n_nodes = circuit.node_count();
    let n_words = n_vectors.div_ceil(64);

    let csr = CsrView::build(circuit);
    let mut events = Vec::new();
    let mut plan = plan_under_budget(&csr, chunk_size, mem_soft_limit, &mut events);

    let mut p = vec![0.0f64; n_nodes * n_pos];
    let mut obs = vec![0.0f64; n_nodes];
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let (stats, words_done, interrupted) = estimate_chunks(
        &csr,
        &mut plan,
        seed,
        threads,
        n_words,
        pij,
        Some(Governor {
            deadline,
            keep_resident: mem_soft_limit.is_some(),
        }),
        |root, cols, counts, obs_count, samples| {
            let total = samples as f64;
            let i = root as usize;
            for (t, &col) in cols.iter().enumerate() {
                p[i * n_pos + col as usize] = counts[t] as f64 / total;
                pairs.push((root, col));
            }
            obs[i] = obs_count as f64 / total;
        },
    );
    if words_done == 0 {
        return Err(interrupted.expect("a run that did no work must have been interrupted"));
    }
    if plan.evictions() > 0 {
        events.push(DegradationEvent::ConesShed {
            evictions: plan.evictions(),
        });
    }

    pairs.sort_unstable();
    let mut reach_off = vec![0usize; n_nodes + 1];
    for &(i, _) in &pairs {
        reach_off[i as usize + 1] += 1;
    }
    for i in 0..n_nodes {
        reach_off[i + 1] += reach_off[i];
    }
    let reach_cols: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();

    Ok(GovernedEstimate {
        matrix: SensitizationMatrix {
            outputs,
            n_nodes,
            p,
            obs,
            reach_off,
            reach_cols,
            vectors_used: words_done * 64,
        },
        vectors_completed: words_done * 64,
        stats,
        events,
        interrupted,
    })
}

/// Execution-governor knobs threaded into [`estimate_chunks`]; see its
/// docs for the semantics of each field.
struct Governor<'a> {
    deadline: &'a Deadline,
    keep_resident: bool,
}

/// Plans the chunked cone arena under an optional soft byte budget:
/// halve the chunk size (and replan) while building the first chunk
/// overshoots the limit, then install the limit as the plan's LRU
/// residency budget. The probe inspects the first chunk only — the
/// limit stays *soft* for pathological cones — and every shrink is
/// recorded as a [`DegradationEvent::ChunkShrunk`].
fn plan_under_budget(
    csr: &CsrView,
    chunk_size: usize,
    limit: Option<usize>,
    events: &mut Vec<DegradationEvent>,
) -> ChunkedConeArena {
    let Some(limit) = limit else {
        return ChunkedConeArena::plan(csr, chunk_size);
    };
    let mut size = chunk_size;
    loop {
        let mut plan = ChunkedConeArena::plan(csr, size);
        if plan.chunk_count() > 0 {
            plan.ensure(csr, 0);
            let probe = plan.peak_bytes();
            plan.release(0);
            if probe > limit && size > 1 {
                size = (size / 2).max(1);
                continue;
            }
        }
        if size != chunk_size {
            events.push(DegradationEvent::ChunkShrunk {
                from: chunk_size,
                to: size,
                limit_bytes: limit,
            });
        }
        return plan.with_budget(limit);
    }
}

/// Selectively re-simulates the strike cones of `nodes` only, with the
/// same word-blocked kernels, vector stream and counting rules as
/// [`sensitization_probabilities`] — the rows it returns are **bitwise
/// identical** to the corresponding rows of the full estimate at the same
/// `(n_vectors, seed)`, at a cost proportional to the listed cones
/// instead of the whole circuit.
///
/// This is the cache-refill primitive of the incremental engine: when a
/// consumer invalidates (or wants to re-estimate at higher accuracy) the
/// `P_ij` rows of a few nodes, only those cones are replayed.
///
/// # Panics
///
/// Panics if `n_vectors` is 0.
pub fn resimulate_rows(
    circuit: &Circuit,
    nodes: &[NodeId],
    n_vectors: usize,
    seed: u64,
) -> PijRowUpdate {
    resimulate_rows_threaded(circuit, nodes, n_vectors, seed, simulation_threads())
}

/// [`resimulate_rows`] with an explicit worker-thread count. Results are
/// bitwise identical for every `threads` value.
///
/// # Panics
///
/// Panics if `n_vectors` or `threads` is 0.
pub fn resimulate_rows_threaded(
    circuit: &Circuit,
    nodes: &[NodeId],
    n_vectors: usize,
    seed: u64,
    threads: usize,
) -> PijRowUpdate {
    resimulate_rows_chunked(circuit, nodes, n_vectors, seed, threads, cone_chunk_size())
}

/// [`resimulate_rows_threaded`] with an explicit roots-per-chunk for the
/// streamed cone arena. Results are bitwise identical for every
/// `chunk_size` (and every `threads`) value.
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
pub fn resimulate_rows_chunked(
    circuit: &Circuit,
    nodes: &[NodeId],
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
) -> PijRowUpdate {
    resimulate_rows_cfg(
        circuit,
        nodes,
        n_vectors,
        seed,
        threads,
        chunk_size,
        &PijConfig::from_lenient_env(),
    )
}

/// [`resimulate_rows_chunked`] with the estimator modes explicit. Rows
/// are bitwise identical to the corresponding rows of
/// [`sensitization_probabilities_cfg`] at the same `(n_vectors, seed,
/// pij)` — sessions that cache a matrix must refill it with the same
/// [`PijConfig`] it was built with.
///
/// # Panics
///
/// Panics if `n_vectors`, `threads` or `chunk_size` is 0.
pub fn resimulate_rows_cfg(
    circuit: &Circuit,
    nodes: &[NodeId],
    n_vectors: usize,
    seed: u64,
    threads: usize,
    chunk_size: usize,
    pij: &PijConfig,
) -> PijRowUpdate {
    assert!(n_vectors > 0, "need at least one vector");
    assert!(threads > 0, "need at least one worker thread");
    let n_pos = circuit.primary_outputs().len();
    let n_words = n_vectors.div_ceil(64);
    let roots: Vec<u32> = nodes.iter().map(|id| id.index() as u32).collect();
    if roots.is_empty() {
        return PijRowUpdate {
            nodes: roots,
            n_pos,
            p: Vec::new(),
            obs: Vec::new(),
            vectors_used: n_words * 64,
        };
    }

    // Only the listed cones are materialized (and only one chunk of them
    // at a time), so the setup cost is one O(V+E) flattening pass plus
    // work proportional to the requested cones.
    let csr = CsrView::build(circuit);
    let mut plan = ChunkedConeArena::plan_for(&csr, &roots, chunk_size);

    // The chunk plan visits roots in deduplicated PO-region order; the
    // update must come back in request order (with duplicates repeated).
    let mut first_slot = vec![u32::MAX; circuit.node_count()];
    for (t, &r) in roots.iter().enumerate() {
        if first_slot[r as usize] == u32::MAX {
            first_slot[r as usize] = t as u32;
        }
    }
    let mut p = vec![0.0f64; roots.len() * n_pos];
    let mut obs = vec![0.0f64; roots.len()];
    estimate_chunks(
        &csr,
        &mut plan,
        seed,
        threads,
        n_words,
        pij,
        None,
        |root, cols, counts, obs_count, samples| {
            let total = samples as f64;
            let t = first_slot[root as usize] as usize;
            for (ci, &col) in cols.iter().enumerate() {
                p[t * n_pos + col as usize] = counts[ci] as f64 / total;
            }
            obs[t] = obs_count as f64 / total;
        },
    );
    for (t, &r) in roots.iter().enumerate() {
        let f = first_slot[r as usize] as usize;
        if f != t {
            let (head, tail) = p.split_at_mut(t * n_pos);
            tail[..n_pos].copy_from_slice(&head[f * n_pos..(f + 1) * n_pos]);
            obs[t] = obs[f];
        }
    }

    PijRowUpdate {
        nodes: roots,
        n_pos,
        p,
        obs,
        vectors_used: n_words * 64,
    }
}

/// The streamed estimation driver: for each [`BLOCK`]-word block, the
/// fault-free circuit is evaluated **once** and transposed to node-major
/// rows; every planned chunk then streams through — arena built on first
/// touch, cone programs recompiled into the pooled buffers, strikes
/// replayed with the chunk's roots split across the worker pool — and is
/// released before the next chunk is touched.
///
/// Hoisting the base evaluation out of the chunk loop is what makes
/// small chunks affordable: the full-circuit work is `O(V)` per word
/// regardless of the chunk count, so the chunk size trades only peak
/// arena memory against per-block recompilation, not simulation time.
///
/// `sink(root_node, reachable_cols, counts_per_col, union_count,
/// samples)` is invoked exactly once per planned root, after the last
/// completed block; `samples` is the number of input assignments behind
/// that root's counters — `n_words * 64` in the fixed mode, the
/// early-stop prefix for an adaptively converged root, `2^support` for
/// an exactly enumerated one. Peak tracked memory is one chunk's arena
/// plus programs; on top of that live the block's base rows
/// (`node_count × block` words), one set of integer hit counters per
/// planned root, and a copy of each root's reachable-column list
/// (captured on the first block so the counters can be finalized even
/// after the chunk arenas are gone).
///
/// When `govern` is `Some`, the deadline/cancel token is checked at
/// every word-block boundary — the only points where every counter
/// holds a consistent prefix of the vector stream — and an expiry stops
/// the loop there, finalizing whatever blocks completed.
///
/// When the governor's `keep_resident` is set (governed runs with an
/// LRU byte budget installed on `plan`), chunk arenas stay resident
/// across blocks and the budget decides what to shed, trading the
/// per-block rebuild for governed memory; otherwise each chunk is
/// released as soon as its block slice is replayed, exactly like the
/// ungoverned streamer.
///
/// Estimator modes (`pij`): lane width selects the wide replay kernels
/// (bitwise-neutral); a positive tolerance arms the per-root Wilson
/// convergence check at block boundaries; a positive exact-support
/// threshold routes qualifying roots through [`exact_roots_pass`] on
/// block 0. Roots that are done (exact, converged, or with no
/// reachable PO) are skipped by the replay workers, and chunks whose
/// roots are all done are skipped entirely — including their arena
/// rebuild.
#[allow(clippy::too_many_arguments)]
fn estimate_chunks(
    csr: &CsrView,
    plan: &mut ChunkedConeArena,
    seed: u64,
    threads: usize,
    n_words: usize,
    pij: &PijConfig,
    govern: Option<Governor<'_>>,
    mut sink: impl FnMut(u32, &[u32], &[u64], u64, u64),
) -> (EstimateStats, usize, Option<Interrupted>) {
    let n_chunks = plan.chunk_count();
    let mut pool: Vec<SimScratch> = (0..threads.max(1)).map(|_| SimScratch::default()).collect();
    let mut compile_scratch = CompileScratch::default();
    let mut progs = ConePrograms::default();
    let mut base = AlignedWords::default();
    // Hit counters for every planned root, chunk-major in plan order;
    // they persist across blocks (the arena chunks need not).
    let mut counts: Vec<u64> = Vec::new();
    let mut obs_counts: Vec<u64> = Vec::new();
    let mut count_off: Vec<usize> = vec![0];
    let mut root_off: Vec<usize> = vec![0];
    // Per-root reachable columns, flat in the same chunk-major order as
    // `counts`; captured once on block 0.
    let mut cols_flat: Vec<u32> = Vec::new();
    let mut root_po_off: Vec<usize> = vec![0];
    // Per-root completion state: a done root's counters are final and
    // its sample count fixed (0 = still sampling, finalized at the end).
    let mut done: Vec<bool> = Vec::new();
    let mut samples: Vec<u64> = Vec::new();
    let mut active: Vec<usize> = Vec::with_capacity(n_chunks);
    let mut stats = EstimateStats {
        chunks: n_chunks,
        ..EstimateStats::default()
    };

    let keep_resident = govern.as_ref().is_some_and(|g| g.keep_resident);
    let total_vectors = (n_words * 64) as u64;
    // A root may stop early only once it is at least as tight as the
    // full requested budget's own worst-case resolution.
    let floor = CONV_Z * (0.25 / total_vectors as f64).sqrt();
    let adaptive = pij.tolerance > 0.0;
    let n_blocks = n_words.div_ceil(BLOCK);
    let mut words_done = 0usize;
    let mut interrupted = None;
    for b in 0..n_blocks {
        if b > 0 && active.iter().all(|&a| a == 0) {
            // Every root is exact or converged: the remaining budget
            // cannot change any counter.
            break;
        }
        if let Some(g) = &govern {
            if let Err(stop) = g.deadline.check("sensitize::block") {
                interrupted = Some(stop);
                break;
            }
        }
        let w0 = b * BLOCK;
        let wc = BLOCK.min(n_words - w0);
        eval_base_block(csr, seed, w0, wc, &mut base);

        for k in 0..n_chunks {
            if b > 0 && active[k] == 0 {
                continue;
            }
            plan.ensure(csr, k);
            let arena = plan.chunk_arena(k).expect("chunk built above");
            let chunk_roots = plan.chunk_roots(k);
            progs.recompile(csr, arena, chunk_roots, &mut compile_scratch);
            if b == 0 {
                stats.cone_entries += arena.total_cone_len();
                count_off.push(count_off[k] + progs.total_reachable());
                root_off.push(root_off[k] + progs.root_count());
                counts.resize(count_off[k + 1], 0);
                obs_counts.resize(root_off[k + 1], 0);
                done.resize(root_off[k + 1], false);
                samples.resize(root_off[k + 1], 0);
                for slot in 0..chunk_roots.len() {
                    cols_flat.extend_from_slice(arena.reachable_cols(slot));
                    root_po_off.push(cols_flat.len());
                    // No reachable PO: every counter is structurally
                    // zero, nothing to replay.
                    if arena.reachable_cols(slot).is_empty() {
                        done[root_off[k] + slot] = true;
                    }
                }
                if pij.exact_support > 0 {
                    stats.exact_roots += exact_roots_pass(
                        csr,
                        &progs,
                        arena,
                        pij.exact_support,
                        total_vectors,
                        &mut pool,
                        &mut counts[count_off[k]..count_off[k + 1]],
                        &mut obs_counts[root_off[k]..root_off[k + 1]],
                        &mut done[root_off[k]..root_off[k + 1]],
                        &mut samples[root_off[k]..root_off[k + 1]],
                    );
                }
                active.push(
                    done[root_off[k]..root_off[k + 1]]
                        .iter()
                        .filter(|&&d| !d)
                        .count(),
                );
            }
            stats.peak_bytes = stats.peak_bytes.max(plan.peak_bytes() + progs.bytes());

            replay_block(
                &progs,
                base.words(),
                wc,
                pij.lanes,
                &done[root_off[k]..root_off[k + 1]],
                &mut pool,
                &mut counts[count_off[k]..count_off[k + 1]],
                &mut obs_counts[root_off[k]..root_off[k + 1]],
            );

            if !keep_resident {
                plan.release(k);
            }
        }
        words_done += wc;

        // Convergence sweep at the block boundary: each root's decision
        // depends only on its own counter and the global word prefix,
        // so it is identical for every thread count, chunk size and
        // lane width — and for any co-scheduled root set (selective
        // re-simulation reproduces full-run rows bitwise).
        if adaptive && words_done < n_words {
            let n_samp = (words_done * 64) as u64;
            for k in 0..n_chunks {
                if active[k] == 0 {
                    continue;
                }
                for g in root_off[k]..root_off[k + 1] {
                    if done[g] {
                        continue;
                    }
                    let p_hat = obs_counts[g] as f64 / n_samp as f64;
                    let hw = wilson_half_width(obs_counts[g], n_samp);
                    if hw <= (pij.tolerance * p_hat).max(floor) {
                        done[g] = true;
                        samples[g] = n_samp;
                        active[k] -= 1;
                        stats.adaptive_stops += 1;
                    }
                }
            }
        }
    }

    if words_done > 0 {
        for (g, &root) in plan.planned_roots().iter().enumerate() {
            let range = root_po_off[g]..root_po_off[g + 1];
            let samp = if samples[g] > 0 {
                samples[g]
            } else {
                (words_done * 64) as u64
            };
            sink(
                root,
                &cols_flat[range.clone()],
                &counts[range],
                obs_counts[g],
                samp,
            );
        }
    }
    (stats, words_done, interrupted)
}

/// `z` of the adaptive convergence test: 95% two-sided confidence —
/// the standard level for a convergence criterion, and the one the
/// stop tolerance is advertised at.
const CONV_Z: f64 = 1.96;

/// Wilson-score half-width of a binomial proportion with `hits`
/// successes in `n` trials at [`CONV_Z`]. Unlike the plain Wald
/// interval this stays honest at `p̂` near 0 or 1 — exactly where
/// observability estimates live — so a zero-hit cone is *not* declared
/// converged after one block.
fn wilson_half_width(hits: u64, n: u64) -> f64 {
    let nf = n as f64;
    let x = hits as f64;
    CONV_Z / (nf + CONV_Z * CONV_Z) * (x * (nf - x) / nf + CONV_Z * CONV_Z / 4.0).sqrt()
}

/// Evaluates the fault-free circuit for global words `w0 .. w0 + wc`
/// directly into node-major rows (`base[node * wc + lane]`) shared
/// read-only by every worker replaying the block. Stimulus words are
/// scattered into the PI rows first, then one topological pass
/// evaluates each gate over its whole `wc`-lane row — contiguous runs
/// the compiler vectorizes, with no transpose step.
fn eval_base_block(csr: &CsrView, seed: u64, w0: usize, wc: usize, base: &mut AlignedWords) {
    let n_pi = csr.inputs().len();
    base.ensure(csr.node_count() * wc);
    let words = base.words_mut();
    for wl in 0..wc {
        let pi_words = random_word(n_pi, 0.5, seed.wrapping_add((w0 + wl) as u64));
        for (k, &pi) in csr.inputs().iter().enumerate() {
            words[pi as usize * wc + wl] = pi_words[k];
        }
    }
    for &id in csr.topo() {
        let i = id as usize;
        let kind = csr.kind(i);
        if kind.is_input() {
            continue;
        }
        let fanin = csr.fanin_of(i);
        let d0 = i * wc;
        match *fanin {
            [a] => {
                let s0 = a as usize * wc;
                if kind.is_inverting() {
                    for l in 0..wc {
                        words[d0 + l] = !words[s0 + l];
                    }
                } else {
                    for l in 0..wc {
                        words[d0 + l] = words[s0 + l];
                    }
                }
            }
            [a, b] => {
                let s0 = a as usize * wc;
                let s1 = b as usize * wc;
                macro_rules! lanes {
                    ($f:expr) => {
                        for l in 0..wc {
                            words[d0 + l] = $f(words[s0 + l], words[s1 + l]);
                        }
                    };
                }
                match kind {
                    GateKind::And => lanes!(|x, y| x & y),
                    GateKind::Nand => lanes!(|x: u64, y: u64| !(x & y)),
                    GateKind::Or => lanes!(|x, y| x | y),
                    GateKind::Nor => lanes!(|x: u64, y: u64| !(x | y)),
                    GateKind::Xor => lanes!(|x, y| x ^ y),
                    GateKind::Xnor => lanes!(|x: u64, y: u64| !(x ^ y)),
                    GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
                }
            }
            _ => {
                let s0 = fanin[0] as usize * wc;
                for l in 0..wc {
                    words[d0 + l] = words[s0 + l];
                }
                for &f in &fanin[1..] {
                    let sf = f as usize * wc;
                    macro_rules! lanes {
                        ($f:expr) => {
                            for l in 0..wc {
                                words[d0 + l] = $f(words[d0 + l], words[sf + l]);
                            }
                        };
                    }
                    match kind {
                        GateKind::And | GateKind::Nand => lanes!(|x, y| x & y),
                        GateKind::Or | GateKind::Nor => lanes!(|x, y| x | y),
                        GateKind::Xor | GateKind::Xnor => lanes!(|x, y| x ^ y),
                        GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
                    }
                }
                if kind.is_inverting() {
                    for l in 0..wc {
                        words[d0 + l] = !words[d0 + l];
                    }
                }
            }
        }
    }
}

/// Replays one block's strikes for every root of the compiled chunk,
/// splitting the roots into contiguous spans balanced by program size,
/// one worker per span. Each `(root, word)` hit increments exactly one
/// integer counter owned by exactly one worker, so the totals are
/// bitwise identical for every thread count. Done roots weigh (almost)
/// nothing in the balance and are skipped by the workers.
#[allow(clippy::too_many_arguments)]
fn replay_block(
    progs: &ConePrograms,
    base: &[u64],
    wc: usize,
    lanes: usize,
    done: &[bool],
    pool: &mut [SimScratch],
    counts: &mut [u64],
    obs_counts: &mut [u64],
) {
    match lanes {
        1 => replay_block_wide::<1>(progs, base, wc, done, pool, counts, obs_counts),
        2 => replay_block_wide::<2>(progs, base, wc, done, pool, counts, obs_counts),
        8 => replay_block_wide::<8>(progs, base, wc, done, pool, counts, obs_counts),
        _ => replay_block_wide::<4>(progs, base, wc, done, pool, counts, obs_counts),
    }
}

fn replay_block_wide<const L: usize>(
    progs: &ConePrograms,
    base: &[u64],
    wc: usize,
    done: &[bool],
    pool: &mut [SimScratch],
    counts: &mut [u64],
    obs_counts: &mut [u64],
) {
    let n_roots = progs.root_count();
    if n_roots == 0 || done.iter().all(|&d| d) {
        return;
    }
    let workers = pool.len().min(n_roots).max(1);
    if workers == 1 {
        pool[0].prepare(progs.max_cone, wc);
        replay_roots::<L>(
            progs,
            base,
            wc,
            0..n_roots,
            done,
            pool[0].vals.words_mut(),
            counts,
            obs_counts,
        );
        return;
    }

    // Greedy spans weighted by op count (+1 per root so trivial cones
    // still advance; done roots weigh 1); the target guarantees at most
    // `workers` spans.
    let total_w: usize = (0..n_roots)
        .map(|ri| {
            if done[ri] {
                1
            } else {
                progs.op_off[ri + 1] - progs.op_off[ri] + 1
            }
        })
        .sum();
    let target = total_w / workers + 1;
    let mut spans: Vec<std::ops::Range<usize>> = Vec::with_capacity(workers);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (ri, &root_done) in done.iter().enumerate().take(n_roots) {
        acc += if root_done {
            1
        } else {
            progs.op_off[ri + 1] - progs.op_off[ri] + 1
        };
        if acc >= target {
            spans.push(start..ri + 1);
            start = ri + 1;
            acc = 0;
        }
    }
    if start < n_roots {
        spans.push(start..n_roots);
    }
    debug_assert!(spans.len() <= workers, "span balancing overflowed the pool");

    std::thread::scope(|scope| {
        let mut counts_rest = counts;
        let mut obs_rest = obs_counts;
        let mut count_consumed = 0usize;
        let mut root_consumed = 0usize;
        for (span, scratch) in spans.into_iter().zip(pool.iter_mut()) {
            scratch.prepare(progs.max_cone, wc);
            let (c_span, c_rest) =
                counts_rest.split_at_mut(progs.po_off[span.end] - count_consumed);
            let (o_span, o_rest) = obs_rest.split_at_mut(span.end - root_consumed);
            count_consumed = progs.po_off[span.end];
            root_consumed = span.end;
            counts_rest = c_rest;
            obs_rest = o_rest;
            let vals = scratch.vals.words_mut();
            let progs = &*progs;
            scope.spawn(move || {
                replay_roots::<L>(progs, base, wc, span, done, vals, c_span, o_span)
            });
        }
    });
}

/// Words evaluated together in one block: cone programs stay hot in L1
/// across the whole block and every row operation runs over contiguous
/// `u64` lanes the compiler can vectorize.
const BLOCK: usize = 64;

/// Tag bit marking a cone-local operand (index into the cone's value
/// rows) as opposed to an untouched node read from the base evaluation.
const LOCAL: u32 = 1 << 31;

/// One gate of a compiled cone program; its destination is implicit (the
/// `e`-th op writes cone-local row `e + 1`, matching the topological cone
/// order).
#[derive(Debug, Clone, Copy)]
struct ProgOp {
    kind: GateKind,
    n_in: u32,
    /// Offset into [`ConePrograms::operands`].
    off: u32,
}

/// A reachable PO of a cone: its cone-local value row and global node
/// index.
#[derive(Debug, Clone, Copy)]
struct PoSlot {
    local: u32,
    po: u32,
}

/// The fan-out cones of a set of *root* nodes compiled into flat
/// strike-resimulation programs over cone-local value rows. The full
/// estimator compiles every node; selective re-simulation compiles only
/// the requested subset.
///
/// Side inputs (fan-ins outside the cone) are untagged global node
/// indices resolved against the base evaluation, so no scratch state
/// needs restoring between strikes — the value rows are simply
/// overwritten by the next cone.
///
/// All per-root arrays (`op_off`, `po_off`, …) are indexed by *position
/// in the root list*, not by node index.
///
/// The struct is a reusable buffer: the streamed estimator keeps one
/// instance and [`recompile`](ConePrograms::recompile)s it per chunk, so
/// no program storage is reallocated between chunks.
#[derive(Default)]
struct ConePrograms {
    roots: Vec<u32>,
    op_off: Vec<usize>,
    ops: Vec<ProgOp>,
    operands: Vec<u32>,
    po_off: Vec<usize>,
    po_slots: Vec<PoSlot>,
    max_cone: usize,
}

/// Reusable compile-time scratch for [`ConePrograms::recompile`]: the
/// stamped cone-membership map, carried across chunks with a monotonic
/// epoch so it never needs clearing.
#[derive(Default)]
struct CompileScratch {
    stamp: Vec<u32>,
    pos: Vec<u32>,
    epoch: u32,
}

impl CompileScratch {
    /// Sizes the maps for `n` nodes and reserves `n_roots` fresh stamp
    /// values, returning the first.
    fn begin(&mut self, n: usize, n_roots: usize) -> u32 {
        if self.stamp.len() < n {
            self.stamp.resize(n, u32::MAX);
            self.pos.resize(n, 0);
        }
        let span = u32::try_from(n_roots).expect("chunk root count fits in u32");
        if self.epoch >= u32::MAX - span {
            self.stamp.fill(u32::MAX);
            self.epoch = 0;
        }
        let base = self.epoch;
        self.epoch += span;
        base
    }
}

impl ConePrograms {
    fn recompile(
        &mut self,
        csr: &CsrView,
        arena: &ConeArena,
        roots: &[u32],
        scratch: &mut CompileScratch,
    ) {
        let n = csr.node_count();
        assert!(
            n < LOCAL as usize,
            "node count exceeds the operand tag space"
        );
        self.roots.clear();
        self.roots.extend_from_slice(roots);
        self.op_off.clear();
        self.ops.clear();
        self.operands.clear();
        self.po_off.clear();
        self.po_slots.clear();
        self.op_off.push(0);
        self.po_off.push(0);

        // Stamped cone-membership map: pos[v] is v's value row while
        // stamp[v] == this root's epoch stamp.
        let base = scratch.begin(n, roots.len());
        let stamp = &mut scratch.stamp;
        let pos = &mut scratch.pos;
        self.max_cone = 0;
        for ri in 0..roots.len() {
            let mark = base + ri as u32;
            let cone = arena.cone(ri);
            self.max_cone = self.max_cone.max(cone.len());
            for (p, &v) in cone.iter().enumerate() {
                stamp[v as usize] = mark;
                pos[v as usize] = p as u32;
            }
            for &v in &cone[1..] {
                let fanin = csr.fanin_of(v as usize);
                self.ops.push(ProgOp {
                    kind: csr.kind(v as usize),
                    n_in: fanin.len() as u32,
                    off: self.operands.len() as u32,
                });
                for &f in fanin {
                    self.operands.push(if stamp[f as usize] == mark {
                        LOCAL | pos[f as usize]
                    } else {
                        f
                    });
                }
            }
            for &col in arena.reachable_cols(ri) {
                let po = csr.outputs()[col as usize];
                debug_assert_eq!(stamp[po as usize], mark, "reachable PO is in the cone");
                self.po_slots.push(PoSlot {
                    local: pos[po as usize],
                    po,
                });
            }
            self.op_off.push(self.ops.len());
            self.po_off.push(self.po_slots.len());
        }
    }

    /// Logical heap footprint of the compiled programs, in bytes.
    fn bytes(&self) -> usize {
        self.roots.len() * 4
            + self.ops.len() * std::mem::size_of::<ProgOp>()
            + self.operands.len() * 4
            + self.po_slots.len() * std::mem::size_of::<PoSlot>()
            + (self.op_off.len() + self.po_off.len()) * 8
    }

    #[inline]
    fn root_count(&self) -> usize {
        self.roots.len()
    }

    #[inline]
    fn total_reachable(&self) -> usize {
        self.po_slots.len()
    }

    #[inline]
    fn ops_of(&self, ri: usize) -> &[ProgOp] {
        &self.ops[self.op_off[ri]..self.op_off[ri + 1]]
    }

    #[inline]
    fn po_slots_of(&self, ri: usize) -> &[PoSlot] {
        &self.po_slots[self.po_off[ri]..self.po_off[ri + 1]]
    }
}

/// Per-worker scratch pooled across chunks and blocks by the streamed
/// estimator: the cone-local value rows of the sampling replay
/// (cache-line aligned for the wide kernels) and the exact enumerator's
/// closure/evaluation state. Grow-only, so a multi-chunk run performs
/// no per-chunk reallocation beyond the first.
#[derive(Default)]
struct SimScratch {
    vals: AlignedWords,
    exact: ExactScratch,
}

impl SimScratch {
    fn prepare(&mut self, max_cone: usize, wc: usize) {
        self.vals.ensure(max_cone.max(1) * wc);
    }
}

/// Replays the strike of every root in `roots` against one block's base
/// rows (stride `wc`, see [`eval_base_block`]), accumulating flat
/// reachable-PO hit counts and per-root any-PO union counts, `L` words
/// per interpreter step. The `counts`/`obs_counts` slices cover exactly
/// this span's po-slots and roots (offset by the span start), so
/// concurrent spans never share a counter; `done` is chunk-relative and
/// read-only (done roots are skipped).
#[allow(clippy::too_many_arguments)]
fn replay_roots<const L: usize>(
    progs: &ConePrograms,
    base: &[u64],
    wc: usize,
    roots: std::ops::Range<usize>,
    done: &[bool],
    vals: &mut [u64],
    counts: &mut [u64],
    obs_counts: &mut [u64],
) {
    let count_base = progs.po_off[roots.start];
    let obs_base = roots.start;
    let mut union_buf = [0u64; BLOCK];

    for ri in roots {
        if done[ri] {
            continue;
        }
        let i = progs.roots[ri] as usize;
        // Row 0: the struck node, flipped in every lane.
        kernel::unary_row::<L>(&mut vals[..wc], &base[i * wc..][..wc], true);
        for (e, op) in progs.ops_of(ri).iter().enumerate() {
            let (prev, rest) = vals.split_at_mut((e + 1) * wc);
            let dst = &mut rest[..wc];
            let row = |t: u32| -> &[u64] {
                if t & LOCAL != 0 {
                    &prev[((t & !LOCAL) as usize) * wc..][..wc]
                } else {
                    &base[(t as usize) * wc..][..wc]
                }
            };
            let args = &progs.operands[op.off as usize..(op.off + op.n_in) as usize];
            match *args {
                [a] => kernel::unary_row::<L>(dst, row(a), op.kind.is_inverting()),
                [a, b] => kernel::binary_row::<L>(op.kind, dst, row(a), row(b)),
                [a, ref more @ ..] => {
                    dst.copy_from_slice(row(a));
                    for &m in more {
                        kernel::accumulate_row::<L>(op.kind, dst, row(m));
                    }
                    if op.kind.is_inverting() {
                        kernel::invert_row::<L>(dst);
                    }
                }
                [] => unreachable!("gates have at least one fan-in"),
            }
        }

        let slots = progs.po_slots_of(ri);
        if slots.is_empty() {
            continue;
        }
        union_buf[..wc].fill(0);
        let start = progs.po_off[ri] - count_base;
        for (t, slot) in slots.iter().enumerate() {
            let vrow = &vals[(slot.local as usize) * wc..][..wc];
            let prow = &base[(slot.po as usize) * wc..][..wc];
            counts[start + t] +=
                kernel::diff_count_union_row::<L>(vrow, prow, &mut union_buf[..wc]);
        }
        obs_counts[ri - obs_base] += union_buf[..wc]
            .iter()
            .map(|&u| u64::from(u.count_ones()))
            .sum::<u64>();
    }
}

// ------------------------------------------------------- exact cones

/// Hard cap on the fan-in-closure size the exact qualifier will walk
/// before giving up on a root — bounds the per-root qualification cost
/// on deep circuits where the support check alone would crawl a large
/// region just to find the 21st primary input.
const EXACT_CLOSURE_CAP: usize = 1 << 13;

/// Bit patterns giving primary input `t < 6` its truth-table value for
/// the 64 assignments packed in one word: bit `v` of `PAT[t]` is bit
/// `t` of the assignment index `v`.
const EXACT_PAT: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Reusable per-worker state of the exact small-cone enumerator: the
/// stamped visited map and work stack of the closure walk, the
/// collected primary inputs and rank-ordered closure gates, and the
/// node-indexed base values plus cone-local rows of the truth-table
/// evaluation.
#[derive(Default)]
struct ExactScratch {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
    pis: Vec<u32>,
    gates: Vec<u32>,
    node_vals: Vec<u64>,
    local: Vec<u64>,
}

impl ExactScratch {
    /// Sizes the maps for `n` nodes and returns a fresh stamp value.
    fn begin(&mut self, n: usize) -> u32 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.node_vals.len() < n {
            self.node_vals.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Runs the exact enumerator over one compiled chunk: every root whose
/// strike cone qualifies (see [`try_exact_root`]) gets its counters
/// filled exactly, its `done` flag set and its sample count fixed to
/// `2^support`. Roots are split into contiguous spans across the
/// worker pool; per-root writes touch disjoint counter spans, so the
/// result is bitwise identical for every thread count. Returns the
/// number of roots enumerated.
#[allow(clippy::too_many_arguments)]
fn exact_roots_pass(
    csr: &CsrView,
    progs: &ConePrograms,
    arena: &ConeArena,
    max_support: usize,
    budget_vectors: u64,
    pool: &mut [SimScratch],
    counts: &mut [u64],
    obs_counts: &mut [u64],
    done: &mut [bool],
    samples: &mut [u64],
) -> usize {
    let n_roots = progs.root_count();
    if n_roots == 0 {
        return 0;
    }
    let before = done.iter().filter(|&&d| d).count();
    let workers = pool.len().min(n_roots).max(1);
    if workers == 1 {
        exact_roots_span(
            csr,
            progs,
            arena,
            max_support,
            budget_vectors,
            0..n_roots,
            &mut pool[0].exact,
            counts,
            obs_counts,
            done,
            samples,
        );
    } else {
        let per = n_roots.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut counts_rest = &mut *counts;
            let mut obs_rest = &mut *obs_counts;
            let mut done_rest = &mut *done;
            let mut samples_rest = &mut *samples;
            let mut count_consumed = 0usize;
            let mut root_consumed = 0usize;
            for (w, scratch) in pool.iter_mut().enumerate().take(workers) {
                let span = (w * per).min(n_roots)..((w + 1) * per).min(n_roots);
                if span.is_empty() {
                    break;
                }
                let (c_span, c_rest) =
                    counts_rest.split_at_mut(progs.po_off[span.end] - count_consumed);
                let (o_span, o_rest) = obs_rest.split_at_mut(span.end - root_consumed);
                let (d_span, d_rest) = done_rest.split_at_mut(span.end - root_consumed);
                let (s_span, s_rest) = samples_rest.split_at_mut(span.end - root_consumed);
                count_consumed = progs.po_off[span.end];
                root_consumed = span.end;
                counts_rest = c_rest;
                obs_rest = o_rest;
                done_rest = d_rest;
                samples_rest = s_rest;
                let exact = &mut scratch.exact;
                scope.spawn(move || {
                    exact_roots_span(
                        csr,
                        progs,
                        arena,
                        max_support,
                        budget_vectors,
                        span,
                        exact,
                        c_span,
                        o_span,
                        d_span,
                        s_span,
                    )
                });
            }
        });
    }
    done.iter().filter(|&&d| d).count() - before
}

/// [`exact_roots_pass`] worker body over one contiguous root span; all
/// counter slices are span-relative.
#[allow(clippy::too_many_arguments)]
fn exact_roots_span(
    csr: &CsrView,
    progs: &ConePrograms,
    arena: &ConeArena,
    max_support: usize,
    budget_vectors: u64,
    roots: std::ops::Range<usize>,
    scratch: &mut ExactScratch,
    counts: &mut [u64],
    obs_counts: &mut [u64],
    done: &mut [bool],
    samples: &mut [u64],
) {
    let count_base = progs.po_off[roots.start];
    let root_base = roots.start;
    for ri in roots {
        if done[ri - root_base] {
            continue;
        }
        let start = progs.po_off[ri] - count_base;
        let end = progs.po_off[ri + 1] - count_base;
        if let Some((obs, samp)) = try_exact_root(
            csr,
            progs,
            ri,
            arena.cone(ri),
            max_support,
            budget_vectors,
            scratch,
            &mut counts[start..end],
        ) {
            obs_counts[ri - root_base] = obs;
            samples[ri - root_base] = samp;
            done[ri - root_base] = true;
        }
    }
}

/// Attempts to resolve one root exactly: walks the transitive fan-in
/// closure of its strike cone, and if the primary-input support `s`
/// stays within `max_support` (and the enumeration is no more work
/// than the sampling it replaces), evaluates all `2^s` input
/// assignments — 64 per word via truth-table patterns — writing exact
/// hit counts. Returns `(union_count, 2^s)` on success, `None` when
/// the root must be sampled.
///
/// The support walk and the per-word evaluation order are functions of
/// the cone alone (inputs sorted by node index, closure gates by
/// topological rank), so the exact counters are identical no matter
/// which chunk, thread or run computes them.
#[allow(clippy::too_many_arguments)]
fn try_exact_root(
    csr: &CsrView,
    progs: &ConePrograms,
    ri: usize,
    cone: &[u32],
    max_support: usize,
    budget_vectors: u64,
    scratch: &mut ExactScratch,
    counts: &mut [u64],
) -> Option<(u64, u64)> {
    let mark = scratch.begin(csr.node_count());
    scratch.stack.clear();
    scratch.pis.clear();
    scratch.gates.clear();
    let mut visited = 0usize;
    for &v in cone {
        if scratch.stamp[v as usize] != mark {
            scratch.stamp[v as usize] = mark;
            scratch.stack.push(v);
            visited += 1;
        }
    }
    while let Some(v) = scratch.stack.pop() {
        if csr.kind(v as usize).is_input() {
            scratch.pis.push(v);
            if scratch.pis.len() > max_support {
                return None;
            }
        } else {
            scratch.gates.push(v);
            for &f in csr.fanin_of(v as usize) {
                if scratch.stamp[f as usize] != mark {
                    scratch.stamp[f as usize] = mark;
                    visited += 1;
                    if visited > EXACT_CLOSURE_CAP {
                        return None;
                    }
                    scratch.stack.push(f);
                }
            }
        }
    }
    let s = scratch.pis.len();
    if s >= 63 {
        return None;
    }
    let ops = progs.ops_of(ri);
    let slots = progs.po_slots_of(ri);
    let n_ew: u64 = if s >= 6 { 1u64 << (s - 6) } else { 1 };
    // Profitability guard: enumeration (closure gates + cone replay per
    // truth-table word) must not exceed the sampling work it replaces,
    // so exact mode is a strict win keyed on the *requested* budget.
    let exact_work = n_ew.saturating_mul((scratch.gates.len() + ops.len() + slots.len()) as u64);
    let sampled_work = (budget_vectors / 64)
        .max(1)
        .saturating_mul((ops.len() + slots.len() + 1) as u64);
    if exact_work > sampled_work {
        return None;
    }

    // Canonical orders make the enumeration run-invariant.
    scratch.pis.sort_unstable();
    scratch
        .gates
        .sort_unstable_by_key(|&g| csr.rank_of(g as usize));

    if scratch.local.len() < cone.len() {
        scratch.local.resize(cone.len(), 0);
    }
    let mask: u64 = if s >= 6 {
        !0
    } else {
        (1u64 << (1u32 << s)) - 1
    };
    let root = cone[0] as usize;
    let mut obs = 0u64;
    for w in 0..n_ew {
        for (t, &pi) in scratch.pis.iter().enumerate() {
            scratch.node_vals[pi as usize] = if t < 6 {
                EXACT_PAT[t]
            } else if (w >> (t - 6)) & 1 == 1 {
                !0
            } else {
                0
            };
        }
        for &g in &scratch.gates {
            let gi = g as usize;
            let v = kernel::eval_gate(csr.kind(gi), csr.fanin_of(gi), &scratch.node_vals);
            scratch.node_vals[gi] = v;
        }
        scratch.local[0] = !scratch.node_vals[root];
        for (e, op) in ops.iter().enumerate() {
            let args = &progs.operands[op.off as usize..(op.off + op.n_in) as usize];
            let v = eval_tagged_scalar(op.kind, args, &scratch.local, &scratch.node_vals);
            scratch.local[e + 1] = v;
        }
        let mut union = 0u64;
        for (t, slot) in slots.iter().enumerate() {
            let diff =
                (scratch.local[slot.local as usize] ^ scratch.node_vals[slot.po as usize]) & mask;
            counts[t] += u64::from(diff.count_ones());
            union |= diff;
        }
        obs += u64::from(union.count_ones());
    }
    Some((obs, 1u64 << s))
}

/// Scalar (one-word) evaluation of a compiled cone op whose operands
/// carry the [`LOCAL`] tag — the exact enumerator's counterpart of the
/// row interpreter in [`replay_roots`].
#[inline(always)]
fn eval_tagged_scalar(kind: GateKind, args: &[u32], local: &[u64], node_vals: &[u64]) -> u64 {
    let rv = |t: u32| -> u64 {
        if t & LOCAL != 0 {
            local[(t & !LOCAL) as usize]
        } else {
            node_vals[t as usize]
        }
    };
    match *args {
        [a] => {
            let x = rv(a);
            if kind.is_inverting() {
                !x
            } else {
                x
            }
        }
        [a, b] => {
            let x = rv(a);
            let y = rv(b);
            match kind {
                GateKind::And => x & y,
                GateKind::Nand => !(x & y),
                GateKind::Or => x | y,
                GateKind::Nor => !(x | y),
                GateKind::Xor => x ^ y,
                GateKind::Xnor => !(x ^ y),
                GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
            }
        }
        [a, ref more @ ..] => {
            let mut acc = rv(a);
            for &m in more {
                let x = rv(m);
                acc = match kind {
                    GateKind::And | GateKind::Nand => acc & x,
                    GateKind::Or | GateKind::Nor => acc | x,
                    GateKind::Xor | GateKind::Xnor => acc ^ x,
                    GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
                };
            }
            if kind.is_inverting() {
                !acc
            } else {
                acc
            }
        }
        [] => unreachable!("gates have at least one fan-in"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::govern::{CancelToken, InterruptReason};
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    #[test]
    fn po_is_self_sensitized() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for (j, &po) in m.outputs().iter().enumerate() {
            assert_eq!(m.p(po, j), 1.0, "P_jj must be 1");
        }
    }

    #[test]
    fn unreachable_output_has_zero_probability() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        // Gate 10 feeds only output 22 (never 23).
        let g10 = c.find("10").unwrap();
        let col23 = m
            .outputs()
            .iter()
            .position(|&po| c.node(po).name == "23")
            .unwrap();
        assert_eq!(m.p(g10, col23), 0.0);
        assert!(!m.reachable_columns(g10).contains(&(col23 as u32)));
    }

    #[test]
    fn inverter_chain_is_always_sensitized() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g1 = b.gate(GateKind::Not, "g1", &[a]).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", &[g1]).unwrap();
        b.mark_output(g2);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 1);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn and_gate_side_probability() {
        // y = AND(a, b): a flip of `a` reaches y iff b = 1 → P = 0.5.
        let mut bb = CircuitBuilder::new("and");
        let a = bb.input("a");
        let b2 = bb.input("b");
        let y = bb.gate(GateKind::And, "y", &[a, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let m = sensitization_probabilities(&c, 64 * 256, 123);
        assert!((m.p(a, 0) - 0.5).abs() < 0.03, "{}", m.p(a, 0));
    }

    #[test]
    fn xor_tree_is_fully_observable() {
        // XOR trees never mask: every node flip reaches the output.
        let mut b = CircuitBuilder::new("xt");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let x0 = b.gate(GateKind::Xor, "x0", &[i0, i1]).unwrap();
        let x1 = b.gate(GateKind::Xor, "x1", &[i2, i3]).unwrap();
        let y = b.gate(GateKind::Xor, "y", &[x0, x1]).unwrap();
        b.mark_output(y);
        let c = b.finish().unwrap();
        let m = sensitization_probabilities(&c, 128, 3);
        for id in c.node_ids() {
            assert_eq!(m.p(id, 0), 1.0, "node {id}");
        }
    }

    #[test]
    fn estimates_are_stable_across_seeds() {
        let c = generate::c17();
        let m1 = sensitization_probabilities(&c, 64 * 128, 10);
        let m2 = sensitization_probabilities(&c, 64 * 128, 20);
        for id in c.node_ids() {
            for j in 0..m1.outputs().len() {
                assert!(
                    (m1.p(id, j) - m2.p(id, j)).abs() < 0.05,
                    "node {id} col {j}"
                );
            }
        }
    }

    #[test]
    fn observability_bounds_row() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 256, 5);
        for id in c.node_ids() {
            let o = m.observability(id);
            for j in 0..m.outputs().len() {
                assert!(m.p(id, j) <= o + 1e-12);
            }
        }
    }

    #[test]
    fn measured_union_can_exceed_row_max() {
        // y0 = AND(a, b), y1 = AND(a, c): a flip of `a` reaches y0 iff
        // b=1, y1 iff c=1; union = P(b=1 or c=1) = 0.75 > 0.5 = max.
        let mut bb = CircuitBuilder::new("u");
        let a = bb.input("a");
        let b = bb.input("b");
        let c = bb.input("c");
        let y0 = bb.gate(GateKind::And, "y0", &[a, b]).unwrap();
        let y1 = bb.gate(GateKind::And, "y1", &[a, c]).unwrap();
        bb.mark_output(y0);
        bb.mark_output(y1);
        let circ = bb.finish().unwrap();
        let m = sensitization_probabilities(&circ, 64 * 512, 9);
        let row_max = m.row(a).iter().copied().fold(0.0, f64::max);
        assert!((row_max - 0.5).abs() < 0.03, "{row_max}");
        assert!(
            (m.observability(a) - 0.75).abs() < 0.03,
            "{}",
            m.observability(a)
        );
    }

    #[test]
    fn thread_counts_agree_bitwise() {
        let c = generate::sec32("t");
        let m1 = sensitization_probabilities_threaded(&c, 512, 77, 1);
        let m2 = sensitization_probabilities_threaded(&c, 512, 77, 2);
        let m5 = sensitization_probabilities_threaded(&c, 512, 77, 5);
        assert_eq!(m1, m2);
        assert_eq!(m1, m5);
    }

    #[test]
    fn chunk_sizes_agree_bitwise() {
        // The streamed estimator is bitwise chunk-size invariant — a
        // chunk per root, odd chunk sizes, and one chunk covering the
        // whole circuit all reproduce the same matrix (including the
        // reachability CSR, whose node order must survive the PO-region
        // chunk ordering).
        let c = generate::sec32("t");
        let whole = sensitization_probabilities_chunked(&c, 512, 77, 2, c.node_count());
        for chunk_size in [1, 13, 100] {
            for threads in [1, 3] {
                let m = sensitization_probabilities_chunked(&c, 512, 77, threads, chunk_size);
                assert_eq!(m, whole, "chunk {chunk_size}, {threads} threads");
            }
        }
    }

    #[test]
    fn resim_chunk_sizes_agree_bitwise() {
        let c = generate::sec32("t");
        let subset: Vec<_> = c.node_ids().filter(|id| id.index() % 4 == 1).collect();
        let whole = resimulate_rows_chunked(&c, &subset, 512, 77, 1, c.node_count());
        for chunk_size in [1, 7] {
            let up = resimulate_rows_chunked(&c, &subset, 512, 77, 2, chunk_size);
            assert_eq!(up, whole, "chunk {chunk_size}");
        }
    }

    #[test]
    fn resim_handles_duplicate_nodes() {
        let c = generate::c17();
        let g = c.gates().next().unwrap();
        let h = c.gates().nth(2).unwrap();
        let up = resimulate_rows_chunked(&c, &[g, h, g], 256, 5, 1, 2);
        assert_eq!(
            up.nodes(),
            &[g.index() as u32, h.index() as u32, g.index() as u32]
        );
        assert_eq!(up.row(0), up.row(2), "duplicate rows repeat");
        assert_eq!(up.observability(0), up.observability(2));
    }

    #[test]
    fn estimate_stats_profile_the_run() {
        let c = generate::sec32("t");
        let (m, stats) = sensitization_probabilities_with_stats(&c, 512, 77, 1, 32);
        assert_eq!(stats.chunks, c.node_count().div_ceil(32));
        assert!(stats.peak_bytes > 0);
        assert!(stats.cone_entries > c.node_count());
        // Streaming in chunks must hold strictly less than the
        // monolithic closure plus its compiled programs would.
        let csr = CsrView::build(&c);
        let full = ConeArena::build(&csr);
        let roots: Vec<u32> = (0..c.node_count() as u32).collect();
        let mut full_progs = ConePrograms::default();
        full_progs.recompile(&csr, &full, &roots, &mut CompileScratch::default());
        let monolithic = full.bytes() + full_progs.bytes();
        assert!(
            stats.peak_bytes < monolithic,
            "{} vs monolithic {monolithic}",
            stats.peak_bytes
        );
        // And the stats probe returns the same matrix.
        assert_eq!(m, sensitization_probabilities_chunked(&c, 512, 77, 1, 32));
    }

    #[test]
    fn exact_mode_resolves_small_cones_exactly() {
        // y = AND(a, b) has a 2-input support: the exact enumerator
        // covers all four assignments, so P(a→y) is 0.5 *exactly* even
        // at a budget far too small for sampling to settle.
        let mut bb = CircuitBuilder::new("and");
        let a = bb.input("a");
        let b2 = bb.input("b");
        let y = bb.gate(GateKind::And, "y", &[a, b2]).unwrap();
        bb.mark_output(y);
        let c = bb.finish().unwrap();
        let (m, stats) =
            sensitization_probabilities_with_stats_cfg(&c, 128, 1, 1, 8, &PijConfig::default());
        assert_eq!(m.p(a, 0), 0.5);
        assert_eq!(m.p(b2, 0), 0.5);
        assert_eq!(m.p(y, 0), 1.0);
        assert_eq!(stats.exact_roots, c.node_count());
        assert_eq!(stats.adaptive_stops, 0);
    }

    #[test]
    fn exact_union_counter_is_exact() {
        // Same circuit as `measured_union_can_exceed_row_max`: under
        // exact mode the any-PO union lands on 0.75 with zero variance.
        let mut bb = CircuitBuilder::new("u");
        let a = bb.input("a");
        let b = bb.input("b");
        let c = bb.input("c");
        let y0 = bb.gate(GateKind::And, "y0", &[a, b]).unwrap();
        let y1 = bb.gate(GateKind::And, "y1", &[a, c]).unwrap();
        bb.mark_output(y0);
        bb.mark_output(y1);
        let circ = bb.finish().unwrap();
        let m = sensitization_probabilities_cfg(&circ, 256, 9, 1, 4, &PijConfig::default());
        assert_eq!(m.p(a, 0), 0.5);
        assert_eq!(m.p(a, 1), 0.5);
        assert_eq!(m.observability(a), 0.75);
    }

    #[test]
    fn wide_lanes_match_scalar_bitwise() {
        // At tolerance=0 with exact mode off, every lane width must
        // reproduce the scalar fixed-budget matrix bit-for-bit, for
        // every thread count.
        let c = generate::sec32("t");
        let scalar = sensitization_probabilities_cfg(&c, 512, 77, 1, 13, &PijConfig::fixed());
        for lanes in [2usize, 4, 8] {
            for threads in [1usize, 3] {
                let pij = PijConfig {
                    lanes,
                    ..PijConfig::fixed()
                };
                let m = sensitization_probabilities_cfg(&c, 512, 77, threads, 13, &pij);
                assert_eq!(m, scalar, "lanes {lanes}, {threads} threads");
            }
        }
    }

    #[test]
    fn adaptive_sampling_stops_early_within_tolerance() {
        // c17's cones all resolve exactly under the default config, so
        // the exact run is an oracle. The adaptive-only run (exact mode
        // off) must converge before exhausting a deliberately oversized
        // budget, and land within the advertised tolerance of the
        // oracle.
        let c = generate::c17();
        let (oracle, ostats) =
            sensitization_probabilities_with_stats_cfg(&c, 256, 7, 1, 8, &PijConfig::default());
        assert_eq!(ostats.exact_roots, c.node_count());
        // A 10% relative tolerance so mid-probability cones (p ≈ 0.5,
        // the slowest to converge) settle before the budget runs out —
        // the default 2% needs nearly the full fixed budget there,
        // which is exactly the accuracy-preserving intent.
        let adaptive = PijConfig {
            exact_support: 0,
            tolerance: 0.1,
            lanes: PijConfig::default().lanes,
        };
        let budget = 64 * 64 * 4; // four convergence blocks
        let (m, stats) = sensitization_probabilities_with_stats_cfg(&c, budget, 7, 1, 8, &adaptive);
        assert_eq!(stats.exact_roots, 0);
        assert!(stats.adaptive_stops > 0, "no root converged: {stats:?}");
        assert!(
            m.vectors_used() < budget,
            "no early exit: {} of {budget}",
            m.vectors_used()
        );
        let floor = CONV_Z * (0.25 / budget as f64).sqrt();
        for id in c.node_ids() {
            for j in 0..m.outputs().len() {
                let tol = (adaptive.tolerance * oracle.p(id, j)).max(floor) * 2.0;
                assert!(
                    (m.p(id, j) - oracle.p(id, j)).abs() <= tol,
                    "node {id} col {j}: {} vs exact {}",
                    m.p(id, j),
                    oracle.p(id, j)
                );
            }
        }
    }

    #[test]
    fn adaptive_and_exact_are_off_by_default_wrappers_env() {
        // The legacy wrappers read the env leniently; with no SER_*
        // vars set they resolve to the accuracy-preserving defaults,
        // which on c17 means every root is exact — so two different
        // seeds must agree perfectly.
        let c = generate::c17();
        let m1 = sensitization_probabilities(&c, 256, 1);
        let m2 = sensitization_probabilities(&c, 256, 2);
        for id in c.node_ids() {
            for j in 0..m1.outputs().len() {
                assert_eq!(m1.p(id, j), m2.p(id, j), "node {id} col {j}");
            }
        }
    }

    #[test]
    fn selective_resim_matches_full_rows_bitwise() {
        let c = generate::sec32("t");
        let m = sensitization_probabilities_threaded(&c, 512, 77, 1);
        // A scattered subset: every third node, in shuffled-ish order.
        let subset: Vec<_> = c.node_ids().filter(|id| id.index() % 3 == 1).collect();
        for threads in [1usize, 3] {
            let up = resimulate_rows_threaded(&c, &subset, 512, 77, threads);
            assert_eq!(up.nodes().len(), subset.len());
            for (t, &id) in subset.iter().enumerate() {
                assert_eq!(up.row(t), m.row(id), "row of {id} ({threads} threads)");
                assert_eq!(
                    up.observability(t),
                    m.observability(id),
                    "obs of {id} ({threads} threads)"
                );
            }
        }
    }

    #[test]
    fn apply_update_patches_only_listed_rows() {
        let c = generate::c17();
        let m256 = sensitization_probabilities(&c, 256, 5);
        let m512 = sensitization_probabilities(&c, 512, 5);
        let subset: Vec<_> = c.gates().take(3).collect();
        let up = resimulate_rows(&c, &subset, 512, 5);
        let mut patched = m256.clone();
        patched.apply_update(&up);
        for id in c.node_ids() {
            if subset.contains(&id) {
                assert_eq!(patched.row(id), m512.row(id), "patched row of {id}");
                assert_eq!(patched.observability(id), m512.observability(id));
            } else {
                assert_eq!(patched.row(id), m256.row(id), "untouched row of {id}");
            }
        }
        // Patching with a same-(vectors, seed) update is a no-op.
        let noop = resimulate_rows(&c, &subset, 256, 5);
        let mut same = m256.clone();
        same.apply_update(&noop);
        assert_eq!(same, m256);
    }

    #[test]
    fn empty_resim_is_trivial() {
        let c = generate::c17();
        let up = resimulate_rows(&c, &[], 128, 1);
        assert!(up.nodes().is_empty());
        assert_eq!(up.vectors_used(), 128);
    }

    #[test]
    fn reachable_columns_define_the_support() {
        let c = generate::sec32("t");
        let m = sensitization_probabilities(&c, 256, 3);
        for id in c.node_ids() {
            for j in 0..m.outputs().len() {
                if !m.reachable_columns(id).contains(&(j as u32)) {
                    assert_eq!(m.p(id, j), 0.0, "node {id} col {j}");
                }
            }
        }
    }

    #[test]
    fn raw_parts_round_trip_is_bitwise() {
        let c = generate::sec32("t");
        let m = sensitization_probabilities(&c, 512, 77);
        let rebuilt = SensitizationMatrix::from_raw_parts(
            m.outputs().to_vec(),
            m.node_count(),
            m.probabilities().to_vec(),
            m.observabilities().to_vec(),
            m.reach_offsets().to_vec(),
            m.reach_columns_flat().to_vec(),
            m.vectors_used(),
        )
        .unwrap();
        assert_eq!(rebuilt, m);
    }

    /// A corruption applied to (p, reach_off, reach_cols, vectors_used).
    type DamageFn = dyn Fn(&mut Vec<f64>, &mut Vec<usize>, &mut Vec<u32>, &mut usize);

    #[test]
    fn raw_parts_reject_structural_damage() {
        let c = generate::c17();
        let m = sensitization_probabilities(&c, 128, 5);
        let parts = |f: &DamageFn| {
            let mut p = m.probabilities().to_vec();
            let mut off = m.reach_offsets().to_vec();
            let mut cols = m.reach_columns_flat().to_vec();
            let mut vecs = m.vectors_used();
            f(&mut p, &mut off, &mut cols, &mut vecs);
            SensitizationMatrix::from_raw_parts(
                m.outputs().to_vec(),
                m.node_count(),
                p,
                m.observabilities().to_vec(),
                off,
                cols,
                vecs,
            )
        };
        assert!(parts(&|p, _, _, _| p.truncate(3)).is_err(), "short p");
        assert!(parts(&|p, _, _, _| p[0] = 1.5).is_err(), "p out of range");
        assert!(parts(&|p, _, _, _| p[0] = f64::NAN).is_err(), "NaN p");
        assert!(parts(&|_, off, _, _| off[1] = usize::MAX).is_err(), "off");
        assert!(parts(&|_, _, cols, _| cols[0] = 999).is_err(), "col range");
        assert!(parts(&|_, _, _, v| *v = 0).is_err(), "zero vectors");
        assert!(
            parts(&|_, off, cols, _| {
                off.iter_mut().for_each(|o| *o = 0);
                cols.clear();
            })
            .is_err(),
            "offsets must cover the column list"
        );
    }

    #[test]
    fn governed_full_run_matches_ungoverned_bitwise() {
        let c = generate::sec32("t");
        let plain = sensitization_probabilities_chunked(&c, 512, 77, 2, 13);
        let gov = sensitization_probabilities_governed_chunked(
            &c,
            512,
            77,
            2,
            13,
            &Deadline::none(),
            None,
        )
        .unwrap();
        assert!(gov.interrupted.is_none());
        assert!(gov.events.is_empty());
        assert_eq!(gov.vectors_completed, 512);
        assert_eq!(gov.matrix, plain);
    }

    #[test]
    fn expired_deadline_interrupts_before_any_work() {
        let c = generate::c17();
        let deadline = Deadline::within(std::time::Duration::ZERO);
        let err = sensitization_probabilities_governed_chunked(&c, 512, 7, 1, 16, &deadline, None)
            .unwrap_err();
        assert_eq!(err.stage, "sensitize::block");
        assert_eq!(err.reason, InterruptReason::DeadlineExpired);
    }

    #[test]
    fn cancelled_token_interrupts_with_typed_reason() {
        let c = generate::c17();
        let token = CancelToken::new();
        token.cancel();
        let deadline = Deadline::none().with_token(token);
        let err = sensitization_probabilities_governed_chunked(&c, 512, 7, 1, 16, &deadline, None)
            .unwrap_err();
        assert_eq!(err.reason, InterruptReason::Cancelled);
    }

    #[test]
    fn memory_governor_shrinks_chunks_and_stays_bitwise() {
        let c = generate::sec32("t");
        // A one-byte budget forces the preflight all the way down to
        // one-root chunks and arms LRU shedding; the matrix must still
        // be bitwise identical (chunk-size invariance).
        let plain = sensitization_probabilities_chunked(&c, 512, 77, 2, 64);
        let gov = sensitization_probabilities_governed_chunked(
            &c,
            512,
            77,
            2,
            64,
            &Deadline::none(),
            Some(1),
        )
        .unwrap();
        assert_eq!(gov.matrix, plain);
        assert!(
            gov.events
                .iter()
                .any(|e| matches!(e, DegradationEvent::ChunkShrunk { to: 1, .. })),
            "events: {:?}",
            gov.events
        );
        assert!(
            gov.events
                .iter()
                .any(|e| matches!(e, DegradationEvent::ConesShed { .. })),
            "events: {:?}",
            gov.events
        );
    }

    #[test]
    fn generous_memory_budget_degrades_nothing() {
        let c = generate::c17();
        let gov = sensitization_probabilities_governed_chunked(
            &c,
            256,
            5,
            1,
            16,
            &Deadline::none(),
            Some(1 << 30),
        )
        .unwrap();
        assert!(gov.events.is_empty(), "events: {:?}", gov.events);
        assert_eq!(
            gov.matrix,
            sensitization_probabilities_chunked(&c, 256, 5, 1, 16)
        );
    }
}
