//! Bit-parallel zero-delay logic simulation and probability estimation.
//!
//! ASERTA's logical-masking model needs two statistical inputs
//! (paper §3.1):
//!
//! * the **static probability** `p_i` of every node being 1 — the paper
//!   reads these from Synopsys Design Compiler with PI probability 0.5;
//!   [`probability`] computes them analytically (topological propagation
//!   under the independence assumption) or by sampling;
//! * the **sensitization probability** `P_ij` that at least one path from
//!   gate `i` to primary output `j` is sensitized — exact computation is
//!   NP-complete under reconvergent fan-out, so the paper estimates it
//!   with "zero delay simulation of the circuit with 10000 random inputs";
//!   [`sensitize`] implements exactly that, 64 vectors at a time, flipping
//!   each node and resimulating only its fan-out cone.
//!
//! # Example
//!
//! ```
//! use ser_logicsim::{sensitize, probability};
//! use ser_netlist::generate;
//!
//! let c17 = generate::c17();
//! let pij = sensitize::sensitization_probabilities(&c17, 1024, 7);
//! // A primary output is trivially sensitized to itself.
//! let po0 = c17.primary_outputs()[0];
//! assert_eq!(pij.p(po0, 0), 1.0);
//!
//! let p = probability::static_probabilities_analytic(&c17, 0.5);
//! assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod kernel;
pub mod probability;
pub mod random;
pub mod sensitize;
pub mod sim;

pub use engine::{EngineConfig, EngineConfigError};
pub use sensitize::{GovernedEstimate, PijRowUpdate, SensitizationMatrix};
