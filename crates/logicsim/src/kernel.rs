//! CSR-based 64-way packed simulation kernels — the hot path.
//!
//! These kernels mirror the scalar reference implementations in
//! [`crate::sim`] but run over a [`CsrView`]: gate kinds and adjacency
//! live in flat `u32` arrays, and the overwhelmingly common 1- and
//! 2-input gates are evaluated by specialized match arms with no per-gate
//! heap traffic. The property test `csr_kernels_match_reference` (in the
//! workspace test suite) pins them bit-for-bit to the reference path.

use ser_netlist::csr::CsrView;
use ser_netlist::GateKind;

/// Evaluates one gate over packed words read straight from the CSR
/// fan-in slice.
///
/// Callers guarantee `fanin` is non-empty (circuit validation enforces
/// arity) and that `kind` is not [`GateKind::Input`].
#[inline(always)]
fn eval_gate(kind: GateKind, fanin: &[u32], words: &[u64]) -> u64 {
    match *fanin {
        [a] => {
            let x = words[a as usize];
            if kind.is_inverting() {
                !x
            } else {
                x
            }
        }
        [a, b] => {
            let x = words[a as usize];
            let y = words[b as usize];
            match kind {
                GateKind::And => x & y,
                GateKind::Nand => !(x & y),
                GateKind::Or => x | y,
                GateKind::Nor => !(x | y),
                GateKind::Xor => x ^ y,
                GateKind::Xnor => !(x ^ y),
                // NOT/BUF are strictly unary and inputs carry no function;
                // circuit validation rules both out here.
                GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
            }
        }
        _ => {
            let mut it = fanin.iter().map(|&f| words[f as usize]);
            let first = it.next().expect("gates have at least one fan-in");
            let acc = match kind {
                GateKind::And | GateKind::Nand => it.fold(first, |acc, w| acc & w),
                GateKind::Or | GateKind::Nor => it.fold(first, |acc, w| acc | w),
                GateKind::Xor | GateKind::Xnor => it.fold(first, |acc, w| acc ^ w),
                GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
            };
            if kind.is_inverting() {
                !acc
            } else {
                acc
            }
        }
    }
}

/// Evaluates the whole circuit for one word of 64 input vectors, writing
/// one word per node into `words`.
///
/// CSR twin of [`crate::sim::eval_word`], with which it agrees bit for
/// bit.
///
/// # Panics
///
/// Panics if `pi_words` does not hold one word per primary input or
/// `words` one slot per node.
pub fn eval_word(csr: &CsrView, pi_words: &[u64], words: &mut [u64]) {
    assert_eq!(
        pi_words.len(),
        csr.inputs().len(),
        "one word per primary input"
    );
    assert_eq!(words.len(), csr.node_count(), "one word per node");
    for (k, &pi) in csr.inputs().iter().enumerate() {
        words[pi as usize] = pi_words[k];
    }
    for &id in csr.topo() {
        let i = id as usize;
        let kind = csr.kind(i);
        if kind.is_input() {
            continue;
        }
        words[i] = eval_gate(kind, csr.fanin_of(i), words);
    }
}

/// Re-evaluates only the fan-out cone of `cone[0]` after forcing its word
/// to `forced`. `cone` must be an inclusive, topologically sorted fan-out
/// cone (as produced by [`ser_netlist::csr::ConeArena::cone`]) and
/// `scratch` must start as a copy of the base evaluation.
///
/// CSR twin of [`crate::sim::eval_cone_forced`].
///
/// # Panics
///
/// Panics if `cone` is empty.
pub fn eval_cone_forced(csr: &CsrView, cone: &[u32], forced: u64, scratch: &mut [u64]) {
    let (&root, tail) = cone.split_first().expect("cones are inclusive");
    scratch[root as usize] = forced;
    for &id in tail {
        let i = id as usize;
        scratch[i] = eval_gate(csr.kind(i), csr.fanin_of(i), scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;
    use ser_netlist::csr::ConeArena;
    use ser_netlist::generate::{self, LayeredSpec};

    #[test]
    fn csr_eval_matches_reference_on_c17() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let n = c.primary_inputs().len();
        let pi_words: Vec<u64> = (0..n as u64)
            .map(|k| 0x9E3779B97F4A7C15 ^ (k * 31))
            .collect();
        let want = sim::eval_word(&c, &pi_words);
        let mut got = vec![0u64; c.node_count()];
        eval_word(&csr, &pi_words, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn csr_eval_matches_reference_on_layered() {
        // Exercises the 3+-input fold path and every gate kind.
        let c = generate::layered(&LayeredSpec::new("k", 9, 4, 70));
        let csr = CsrView::build(&c);
        let n = c.primary_inputs().len();
        let pi_words: Vec<u64> = (0..n as u64)
            .map(|k| 0xDEADBEEF ^ (k * 0x5DEECE66D))
            .collect();
        let want = sim::eval_word(&c, &pi_words);
        let mut got = vec![0u64; c.node_count()];
        eval_word(&csr, &pi_words, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn csr_cone_forcing_matches_reference() {
        let c = generate::layered(&LayeredSpec::new("k", 8, 3, 50));
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        let n = c.primary_inputs().len();
        let pi_words: Vec<u64> = (0..n as u64).map(|k| 0xCAFEF00D ^ (k * 97)).collect();
        let base = sim::eval_word(&c, &pi_words);
        for root in c.node_ids() {
            let cone_ref = ser_netlist::cone::fanout_cone(&c, root);
            let mut want = base.clone();
            sim::eval_cone_forced(&c, &cone_ref, root, !base[root.index()], &mut want);
            let mut got = base.clone();
            eval_cone_forced(
                &csr,
                arena.cone(root.index()),
                !base[root.index()],
                &mut got,
            );
            assert_eq!(got, want, "root {root}");
        }
    }

    #[test]
    #[should_panic(expected = "one word per primary input")]
    fn csr_eval_checks_pi_count() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let mut out = vec![0u64; c.node_count()];
        eval_word(&csr, &[0, 0], &mut out);
    }
}
