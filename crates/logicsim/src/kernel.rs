//! CSR-based 64-way packed simulation kernels — the **only**
//! gate-evaluation implementation in the workspace.
//!
//! Everything that evaluates logic runs through these kernels: the
//! `P_ij` estimator's compiled cone programs ([`crate::sensitize`]),
//! sampled signal probabilities ([`crate::probability`]), and the
//! pointer-`Circuit` convenience wrappers in [`crate::sim`], which are
//! thin shims that build a [`CsrView`] and forward here. Gate kinds and
//! adjacency live in flat `u32` arrays, and the overwhelmingly common 1-
//! and 2-input gates are evaluated by specialized match arms with no
//! per-gate heap traffic. The workspace property suite
//! (`tests/csr_hot_path_equiv.rs`) pins the kernels bit-for-bit against
//! independent in-test scalar references.

use ser_netlist::csr::CsrView;
use ser_netlist::GateKind;

/// Evaluates one gate over packed words read straight from the CSR
/// fan-in slice.
///
/// Callers guarantee `fanin` is non-empty (circuit validation enforces
/// arity) and that `kind` is not [`GateKind::Input`].
#[inline(always)]
pub(crate) fn eval_gate(kind: GateKind, fanin: &[u32], words: &[u64]) -> u64 {
    match *fanin {
        [a] => {
            let x = words[a as usize];
            if kind.is_inverting() {
                !x
            } else {
                x
            }
        }
        [a, b] => {
            let x = words[a as usize];
            let y = words[b as usize];
            match kind {
                GateKind::And => x & y,
                GateKind::Nand => !(x & y),
                GateKind::Or => x | y,
                GateKind::Nor => !(x | y),
                GateKind::Xor => x ^ y,
                GateKind::Xnor => !(x ^ y),
                // NOT/BUF are strictly unary and inputs carry no function;
                // circuit validation rules both out here.
                GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
            }
        }
        _ => {
            let mut it = fanin.iter().map(|&f| words[f as usize]);
            let first = it.next().expect("gates have at least one fan-in");
            let acc = match kind {
                GateKind::And | GateKind::Nand => it.fold(first, |acc, w| acc & w),
                GateKind::Or | GateKind::Nor => it.fold(first, |acc, w| acc | w),
                GateKind::Xor | GateKind::Xnor => it.fold(first, |acc, w| acc ^ w),
                GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
            };
            if kind.is_inverting() {
                !acc
            } else {
                acc
            }
        }
    }
}

/// Evaluates the whole circuit for one word of 64 input vectors, writing
/// one word per node into `words`.
///
/// This is the canonical full-circuit evaluation;
/// [`crate::sim::eval_word`] is a convenience shim over it, and the
/// workspace property suite pins it against an independent scalar
/// reference.
///
/// # Panics
///
/// Panics if `pi_words` does not hold one word per primary input or
/// `words` one slot per node.
pub fn eval_word(csr: &CsrView, pi_words: &[u64], words: &mut [u64]) {
    assert_eq!(
        pi_words.len(),
        csr.inputs().len(),
        "one word per primary input"
    );
    assert_eq!(words.len(), csr.node_count(), "one word per node");
    for (k, &pi) in csr.inputs().iter().enumerate() {
        words[pi as usize] = pi_words[k];
    }
    for &id in csr.topo() {
        let i = id as usize;
        let kind = csr.kind(i);
        if kind.is_input() {
            continue;
        }
        words[i] = eval_gate(kind, csr.fanin_of(i), words);
    }
}

/// Re-evaluates only the fan-out cone of `cone[0]` after forcing its word
/// to `forced`. `cone` must be an inclusive, topologically sorted fan-out
/// cone (as produced by [`ser_netlist::csr::ConeArena::cone`]) and
/// `scratch` must start as a copy of the base evaluation.
///
/// # Panics
///
/// Panics if `cone` is empty.
pub fn eval_cone_forced(csr: &CsrView, cone: &[u32], forced: u64, scratch: &mut [u64]) {
    let (&root, tail) = cone.split_first().expect("cones are inclusive");
    scratch[root as usize] = forced;
    for &id in tail {
        let i = id as usize;
        scratch[i] = eval_gate(csr.kind(i), csr.fanin_of(i), scratch);
    }
}

/// Evaluates the whole circuit with the flagged nodes **forced to the
/// complement of their fault-free value** — the multi-node upset kernel
/// (the paper's c499 discussion of simultaneous multiple-error
/// injection). `golden` must hold the fault-free evaluation of the same
/// `pi_words` (see [`eval_word`]); `flip` holds one flag per node.
///
/// A flagged node is forced *after* its own evaluation, so upsets also
/// apply to primary inputs and to nodes inside other upsets' cones.
///
/// # Panics
///
/// Panics if `pi_words`, `golden`, `flip` or `words` have the wrong
/// length.
pub fn eval_word_with_flips(
    csr: &CsrView,
    pi_words: &[u64],
    golden: &[u64],
    flip: &[bool],
    words: &mut [u64],
) {
    assert_eq!(
        pi_words.len(),
        csr.inputs().len(),
        "one word per primary input"
    );
    assert_eq!(golden.len(), csr.node_count(), "one golden word per node");
    assert_eq!(flip.len(), csr.node_count(), "one flip flag per node");
    assert_eq!(words.len(), csr.node_count(), "one word per node");
    for (k, &pi) in csr.inputs().iter().enumerate() {
        words[pi as usize] = pi_words[k];
    }
    for &id in csr.topo() {
        let i = id as usize;
        let kind = csr.kind(i);
        if !kind.is_input() {
            words[i] = eval_gate(kind, csr.fanin_of(i), words);
        }
        if flip[i] {
            words[i] = !golden[i];
        }
    }
}

// --------------------------------------------------------- wide rows
//
// Row primitives for the cone-replay interpreter in
// [`crate::sensitize`]: each operates on whole rows of packed words,
// hand-unrolled `L` words at a time (`L` ∈ {1, 2, 4, 8}, selected by
// `SER_SIMD_LANES` / `EngineConfig::simd_lanes` and monomorphized at
// the replay loop). Every operation is a pure per-word bitwise
// function, so the result is bitwise identical for every lane width —
// the wide forms exist only to keep the interpreter's inner loops in
// straight-line register code the compiler can turn into SIMD.

/// `dst[k] = f(a[k])` over a whole row, `L` words per step.
#[inline(always)]
fn zip1_row<const L: usize>(dst: &mut [u64], a: &[u64], f: impl Fn(u64) -> u64) {
    debug_assert_eq!(dst.len(), a.len());
    let main = dst.len() - dst.len() % L;
    let (dm, dt) = dst.split_at_mut(main);
    let (am, at) = a.split_at(main);
    for (d, x) in dm.chunks_exact_mut(L).zip(am.chunks_exact(L)) {
        let mut out = [0u64; L];
        for l in 0..L {
            out[l] = f(x[l]);
        }
        d.copy_from_slice(&out);
    }
    for (d, &x) in dt.iter_mut().zip(at) {
        *d = f(x);
    }
}

/// `dst[k] = f(a[k], b[k])` over a whole row, `L` words per step.
#[inline(always)]
fn zip2_row<const L: usize>(dst: &mut [u64], a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let main = dst.len() - dst.len() % L;
    let (dm, dt) = dst.split_at_mut(main);
    let (am, at) = a.split_at(main);
    let (bm, bt) = b.split_at(main);
    for ((d, x), y) in dm
        .chunks_exact_mut(L)
        .zip(am.chunks_exact(L))
        .zip(bm.chunks_exact(L))
    {
        let mut out = [0u64; L];
        for l in 0..L {
            out[l] = f(x[l], y[l]);
        }
        d.copy_from_slice(&out);
    }
    for ((d, &x), &y) in dt.iter_mut().zip(at).zip(bt) {
        *d = f(x, y);
    }
}

/// Unary row op: copy or complement `a` into `dst`.
#[inline(always)]
pub(crate) fn unary_row<const L: usize>(dst: &mut [u64], a: &[u64], invert: bool) {
    if invert {
        zip1_row::<L>(dst, a, |x| !x);
    } else {
        dst.copy_from_slice(a);
    }
}

/// Binary row op for the specialized 2-input gates.
#[inline(always)]
pub(crate) fn binary_row<const L: usize>(kind: GateKind, dst: &mut [u64], a: &[u64], b: &[u64]) {
    match kind {
        GateKind::And => zip2_row::<L>(dst, a, b, |x, y| x & y),
        GateKind::Nand => zip2_row::<L>(dst, a, b, |x, y| !(x & y)),
        GateKind::Or => zip2_row::<L>(dst, a, b, |x, y| x | y),
        GateKind::Nor => zip2_row::<L>(dst, a, b, |x, y| !(x | y)),
        GateKind::Xor => zip2_row::<L>(dst, a, b, |x, y| x ^ y),
        GateKind::Xnor => zip2_row::<L>(dst, a, b, |x, y| !(x ^ y)),
        GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
    }
}

/// Fold step of the 3+-input gates: `dst[k] op= src[k]` with the gate's
/// base connective (inversion is applied once at the end via
/// [`invert_row`]).
#[inline(always)]
pub(crate) fn accumulate_row<const L: usize>(kind: GateKind, dst: &mut [u64], src: &[u64]) {
    match kind {
        GateKind::And | GateKind::Nand => zip2_in_place::<L>(dst, src, |x, y| x & y),
        GateKind::Or | GateKind::Nor => zip2_in_place::<L>(dst, src, |x, y| x | y),
        GateKind::Xor | GateKind::Xnor => zip2_in_place::<L>(dst, src, |x, y| x ^ y),
        GateKind::Not | GateKind::Buf | GateKind::Input => unreachable!(),
    }
}

/// `dst[k] = f(dst[k], src[k])` over a whole row, `L` words per step.
#[inline(always)]
fn zip2_in_place<const L: usize>(dst: &mut [u64], src: &[u64], f: impl Fn(u64, u64) -> u64) {
    debug_assert_eq!(dst.len(), src.len());
    let main = dst.len() - dst.len() % L;
    let (dm, dt) = dst.split_at_mut(main);
    let (sm, st) = src.split_at(main);
    for (d, s) in dm.chunks_exact_mut(L).zip(sm.chunks_exact(L)) {
        let mut out = [0u64; L];
        for l in 0..L {
            out[l] = f(d[l], s[l]);
        }
        d.copy_from_slice(&out);
    }
    for (d, &s) in dt.iter_mut().zip(st) {
        *d = f(*d, s);
    }
}

/// In-place complement of a whole row.
#[inline(always)]
pub(crate) fn invert_row<const L: usize>(dst: &mut [u64]) {
    let main = dst.len() - dst.len() % L;
    let (dm, dt) = dst.split_at_mut(main);
    for d in dm.chunks_exact_mut(L) {
        let mut out = [0u64; L];
        for l in 0..L {
            out[l] = !d[l];
        }
        d.copy_from_slice(&out);
    }
    for d in dt {
        *d = !*d;
    }
}

/// Diff-and-count row: XORs the faulty row `v` against the fault-free
/// row `p`, ORs the difference into `union_buf` and returns the total
/// popcount — the per-output hit counting step of the replay loop.
#[inline(always)]
pub(crate) fn diff_count_union_row<const L: usize>(
    v: &[u64],
    p: &[u64],
    union_buf: &mut [u64],
) -> u64 {
    debug_assert_eq!(v.len(), p.len());
    debug_assert_eq!(v.len(), union_buf.len());
    let mut hits = 0u64;
    let main = v.len() - v.len() % L;
    let (vm, vt) = v.split_at(main);
    let (pm, pt) = p.split_at(main);
    let (um, ut) = union_buf.split_at_mut(main);
    for ((x, y), u) in vm
        .chunks_exact(L)
        .zip(pm.chunks_exact(L))
        .zip(um.chunks_exact_mut(L))
    {
        let mut out = [0u64; L];
        for l in 0..L {
            let d = x[l] ^ y[l];
            out[l] = u[l] | d;
            hits += d.count_ones() as u64;
        }
        u.copy_from_slice(&out);
    }
    for ((&x, &y), u) in vt.iter().zip(pt).zip(ut) {
        let d = x ^ y;
        *u |= d;
        hits += d.count_ones() as u64;
    }
    hits
}

/// A `u64` scratch buffer whose live window starts on a 64-byte
/// boundary — cache-line-aligned rows for the wide kernels. `Vec<u64>`
/// only guarantees 8-byte alignment, so the buffer over-allocates by up
/// to 7 words and offsets the window.
#[derive(Default)]
pub(crate) struct AlignedWords {
    buf: Vec<u64>,
    off: usize,
    len: usize,
}

impl AlignedWords {
    /// Resizes the live window to `len` words without zeroing on the
    /// reuse path — for callers that overwrite every word before
    /// reading. Reallocates (and re-derives the alignment offset) only
    /// on growth.
    pub(crate) fn ensure(&mut self, len: usize) {
        if self.buf.len() < len + 7 {
            self.buf = vec![0u64; len + 7];
        }
        self.off = (self.buf.as_ptr() as usize).wrapping_neg() % 64 / 8;
        self.len = len;
    }

    /// Resizes the live window to `len` zeroed words, reallocating only
    /// on growth.
    #[cfg(test)]
    pub(crate) fn reset(&mut self, len: usize) {
        let fresh = self.buf.len() < len + 7;
        self.ensure(len);
        if !fresh {
            self.buf.iter_mut().for_each(|w| *w = 0);
        }
    }

    /// The aligned live window.
    pub(crate) fn words(&self) -> &[u64] {
        &self.buf[self.off..self.off + self.len]
    }

    /// The aligned live window, mutable.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.buf[self.off..self.off + self.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::csr::ConeArena;
    use ser_netlist::generate::{self, LayeredSpec};
    use ser_netlist::{Circuit, NodeId};

    /// Independent scalar reference over the pointer circuit —
    /// deliberately *not* the production kernels (which `crate::sim` now
    /// forwards to), so these tests stay a real oracle.
    fn ref_gate(kind: GateKind, pins: &[u64]) -> u64 {
        let mut it = pins.iter().copied();
        let first = it.next().expect("gates have at least one fan-in");
        match kind {
            GateKind::And => it.fold(first, |a, w| a & w),
            GateKind::Nand => !it.fold(first, |a, w| a & w),
            GateKind::Or => it.fold(first, |a, w| a | w),
            GateKind::Nor => !it.fold(first, |a, w| a | w),
            GateKind::Xor => it.fold(first, |a, w| a ^ w),
            GateKind::Xnor => !it.fold(first, |a, w| a ^ w),
            GateKind::Not => !first,
            GateKind::Buf => first,
            GateKind::Input => unreachable!("inputs carry no function"),
        }
    }

    fn ref_eval_word(c: &Circuit, pi_words: &[u64]) -> Vec<u64> {
        let mut words = vec![0u64; c.node_count()];
        for (k, &pi) in c.primary_inputs().iter().enumerate() {
            words[pi.index()] = pi_words[k];
        }
        for &id in c.topological_order() {
            let node = c.node(id);
            if node.is_input() {
                continue;
            }
            let pins: Vec<u64> = node.fanin.iter().map(|f| words[f.index()]).collect();
            words[id.index()] = ref_gate(node.kind, &pins);
        }
        words
    }

    #[test]
    fn csr_eval_matches_reference_on_c17() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let n = c.primary_inputs().len();
        let pi_words: Vec<u64> = (0..n as u64)
            .map(|k| 0x9E3779B97F4A7C15 ^ (k * 31))
            .collect();
        let want = ref_eval_word(&c, &pi_words);
        let mut got = vec![0u64; c.node_count()];
        eval_word(&csr, &pi_words, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn csr_eval_matches_reference_on_layered() {
        // Exercises the 3+-input fold path and every gate kind.
        let c = generate::layered(&LayeredSpec::new("k", 9, 4, 70));
        let csr = CsrView::build(&c);
        let n = c.primary_inputs().len();
        let pi_words: Vec<u64> = (0..n as u64)
            .map(|k| 0xDEADBEEF ^ (k * 0x5DEECE66D))
            .collect();
        let want = ref_eval_word(&c, &pi_words);
        let mut got = vec![0u64; c.node_count()];
        eval_word(&csr, &pi_words, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn csr_cone_forcing_matches_reference() {
        let c = generate::layered(&LayeredSpec::new("k", 8, 3, 50));
        let csr = CsrView::build(&c);
        let arena = ConeArena::build(&csr);
        let n = c.primary_inputs().len();
        let pi_words: Vec<u64> = (0..n as u64).map(|k| 0xCAFEF00D ^ (k * 97)).collect();
        let base = ref_eval_word(&c, &pi_words);
        for root in c.node_ids() {
            // Reference: full re-evaluation with the root forced at its
            // topological step.
            let mut want = vec![0u64; c.node_count()];
            for (k, &pi) in c.primary_inputs().iter().enumerate() {
                want[pi.index()] = pi_words[k];
            }
            for &id in c.topological_order() {
                let node = c.node(id);
                if !node.is_input() {
                    let pins: Vec<u64> = node.fanin.iter().map(|f| want[f.index()]).collect();
                    want[id.index()] = ref_gate(node.kind, &pins);
                }
                if id == root {
                    want[id.index()] = !base[root.index()];
                }
            }
            let mut got = base.clone();
            eval_cone_forced(
                &csr,
                arena.cone(root.index()),
                !base[root.index()],
                &mut got,
            );
            // Outside the cone `got` keeps base values; inside it must
            // match the forced re-evaluation.
            for id in c.node_ids() {
                if arena.cone(root.index()).contains(&(id.index() as u32)) {
                    assert_eq!(got[id.index()], want[id.index()], "root {root} node {id}");
                } else {
                    assert_eq!(got[id.index()], base[id.index()], "root {root} node {id}");
                }
            }
        }
    }

    #[test]
    fn flip_kernel_matches_reference() {
        let c = generate::layered(&LayeredSpec::new("k", 6, 3, 40));
        let csr = CsrView::build(&c);
        let n = c.primary_inputs().len();
        let pi_words: Vec<u64> = (0..n as u64).map(|k| 0xABCDEF ^ (k * 1301)).collect();
        let golden = ref_eval_word(&c, &pi_words);
        let gates: Vec<NodeId> = c.node_ids().collect();
        for pair in gates.windows(2).step_by(7) {
            let mut flip = vec![false; c.node_count()];
            flip[pair[0].index()] = true;
            flip[pair[1].index()] = true;
            // Reference: forced complements folded into the scalar pass.
            let mut want = vec![0u64; c.node_count()];
            for (k, &pi) in c.primary_inputs().iter().enumerate() {
                want[pi.index()] = pi_words[k];
            }
            for &id in c.topological_order() {
                let node = c.node(id);
                if !node.is_input() {
                    let pins: Vec<u64> = node.fanin.iter().map(|f| want[f.index()]).collect();
                    want[id.index()] = ref_gate(node.kind, &pins);
                }
                if flip[id.index()] {
                    want[id.index()] = !golden[id.index()];
                }
            }
            let mut got = vec![0u64; c.node_count()];
            eval_word_with_flips(&csr, &pi_words, &golden, &flip, &mut got);
            assert_eq!(got, want, "flips {pair:?}");
        }
    }

    #[test]
    #[should_panic(expected = "one word per primary input")]
    fn csr_eval_checks_pi_count() {
        let c = generate::c17();
        let csr = CsrView::build(&c);
        let mut out = vec![0u64; c.node_count()];
        eval_word(&csr, &[0, 0], &mut out);
    }

    /// Every wide row primitive must be bitwise identical to its L=1
    /// form at every supported lane width, including rows whose length
    /// is not a multiple of the lane count (remainder path).
    #[test]
    fn wide_rows_match_scalar_at_every_lane_width() {
        let kinds = [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        // 13 words: exercises both the unrolled body and the tail for
        // L ∈ {2, 4, 8}.
        let a: Vec<u64> = (0..13u64)
            .map(|k| k.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let b: Vec<u64> = (0..13u64)
            .map(|k| k.wrapping_mul(0xD1B54A32D192ED03))
            .collect();

        fn run<const L: usize>(kinds: &[GateKind], a: &[u64], b: &[u64]) -> Vec<Vec<u64>> {
            let mut out = Vec::new();
            for &kind in kinds {
                let mut d = vec![0u64; a.len()];
                binary_row::<L>(kind, &mut d, a, b);
                out.push(d.clone());
                accumulate_row::<L>(kind, &mut d, a);
                out.push(d.clone());
                invert_row::<L>(&mut d);
                out.push(d.clone());
                let mut u = vec![0u64; a.len()];
                let hits = diff_count_union_row::<L>(&d, b, &mut u);
                out.push(u);
                out.push(vec![hits]);
            }
            let mut d = vec![0u64; a.len()];
            unary_row::<L>(&mut d, a, true);
            out.push(d.clone());
            unary_row::<L>(&mut d, b, false);
            out.push(d);
            out
        }

        let scalar = run::<1>(&kinds, &a, &b);
        assert_eq!(scalar, run::<2>(&kinds, &a, &b));
        assert_eq!(scalar, run::<4>(&kinds, &a, &b));
        assert_eq!(scalar, run::<8>(&kinds, &a, &b));
    }

    #[test]
    fn aligned_words_window_is_cache_line_aligned() {
        let mut w = AlignedWords::default();
        for len in [1usize, 7, 64, 1000] {
            w.reset(len);
            assert_eq!(w.words().len(), len);
            assert!(w.words().iter().all(|&x| x == 0));
            assert_eq!(w.words().as_ptr() as usize % 64, 0);
            w.words_mut().iter_mut().for_each(|x| *x = !0);
        }
    }
}
