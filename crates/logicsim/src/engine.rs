//! [`EngineConfig`]: one explicit home for the execution knobs that
//! used to live in scattered environment reads inside the kernels.
//!
//! Three knobs govern how (not what) the engine computes — none of them
//! affects results, which are bitwise identical for every setting:
//!
//! * **worker threads** (`SER_SIM_THREADS`) — simulation/replica
//!   parallelism;
//! * **cone chunk size** (`SER_CONE_CHUNK`) — roots per streamed
//!   cone-arena chunk (peak memory vs recompilation trade);
//! * **soft memory limit** (`SER_MEM_SOFT_LIMIT`) — byte budget the
//!   governed estimator degrades under instead of OOMing.
//!
//! Three more knobs govern the `P_ij` **estimator** itself (see
//! [`PijConfig`]). One is again purely about *how* (`SER_SIMD_LANES`,
//! bitwise identical for every value); the other two trade accuracy
//! bookkeeping for speed and are therefore part of a result's identity:
//!
//! * **SIMD lanes** (`SER_SIMD_LANES`) — `u64` words processed per
//!   interpreter step in the wide cone-replay kernels (1, 2, 4 or 8);
//! * **adaptive tolerance** (`SER_PIJ_TOL`) — per-cone relative
//!   half-width target for early sampling stops (`0` = the fixed-budget
//!   bitwise-pinned mode);
//! * **exact support threshold** (`SER_EXACT_SUPPORT`) — cones whose
//!   primary-input support is at most this are enumerated exactly
//!   instead of sampled (`0` = never).
//!
//! Precedence is **explicit > environment > default**: a field set on
//! the config wins; an unset field falls through to the environment
//! overlay ([`EngineConfig::from_env`]) and then to the built-in
//! default. The strict [`EngineConfig::from_env`] rejects malformed
//! variable values with a typed [`EngineConfigError`];
//! [`EngineConfig::lenient_env`] preserves the historical
//! silently-ignore-garbage behavior for the legacy free functions
//! ([`sensitize::simulation_threads`](crate::sensitize::simulation_threads)
//! and friends) that cannot surface an error.
//!
//! # Example
//!
//! ```
//! use ser_logicsim::engine::EngineConfig;
//!
//! // Explicit beats environment beats default.
//! let cfg = EngineConfig::new().with_threads(2).overlay(
//!     &EngineConfig::new().with_threads(8).with_cone_chunk(64),
//! );
//! assert_eq!(cfg.threads(), 2); // explicit
//! assert_eq!(cfg.cone_chunk(), 64); // from the overlay
//! assert_eq!(cfg.mem_soft_limit(), None); // default
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Default roots-per-chunk of the streamed estimator. At typical cone
/// sizes a chunk's arena plus compiled programs stays in the low
/// megabytes, which amortizes to tens of bytes per circuit node on
/// 100k-gate designs.
pub const DEFAULT_CONE_CHUNK: usize = 128;

/// Default `u64` lane width of the wide cone-replay kernels. Four
/// 64-bit words per interpreter step keeps the unrolled row loops in
/// registers on every x86-64/aarch64 target without spilling.
pub const DEFAULT_SIMD_LANES: usize = 4;

/// Lane widths the wide kernels are monomorphized for.
pub const VALID_SIMD_LANES: [usize; 4] = [1, 2, 4, 8];

/// Default relative tolerance of the adaptive sampler: a cone stops
/// early once its observability confidence half-width drops below
/// `tolerance * estimate` (never below the half-width the full
/// requested budget would achieve, so the default preserves the
/// fixed-budget accuracy). `0` disables adaptivity entirely.
pub const DEFAULT_PIJ_TOLERANCE: f64 = 0.02;

/// Default primary-input support threshold of the exact small-cone
/// enumerator: cones observed through at most this many primary inputs
/// are enumerated exhaustively instead of sampled. `0` disables the
/// exact mode.
pub const DEFAULT_EXACT_SUPPORT: usize = 20;

/// A malformed engine environment variable, rejected by the strict
/// [`EngineConfig::from_env`] overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfigError {
    /// The offending environment variable.
    pub var: &'static str,
    /// The value found there.
    pub value: String,
    /// What a valid value would look like.
    pub expected: &'static str,
}

impl fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed {}=`{}`: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EngineConfigError {}

/// Execution-resource configuration for the analysis engine: worker
/// threads, streamed-arena chunk size and the soft memory budget.
///
/// All fields are optional; an unset field resolves through the
/// layering described in the [module docs](self). The resolved
/// accessors ([`EngineConfig::threads`], [`EngineConfig::cone_chunk`],
/// [`EngineConfig::mem_soft_limit`]) apply the built-in defaults, so a
/// fully-unset config is always usable.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Worker threads (`None` = machine parallelism).
    pub sim_threads: Option<usize>,
    /// Roots per streamed cone-arena chunk (`None` =
    /// [`DEFAULT_CONE_CHUNK`]).
    pub cone_chunk: Option<usize>,
    /// Soft memory budget in bytes for governed estimation (`None` =
    /// ungoverned).
    pub mem_soft_limit: Option<usize>,
    /// `u64` lane width of the wide cone-replay kernels; must be one of
    /// [`VALID_SIMD_LANES`] (`None` = [`DEFAULT_SIMD_LANES`]). Purely
    /// an execution knob: every lane width is bitwise identical.
    pub simd_lanes: Option<usize>,
    /// Relative tolerance of the adaptive `P_ij` sampler; `0` pins the
    /// fixed-budget bitwise path (`None` = [`DEFAULT_PIJ_TOLERANCE`]).
    pub pij_tolerance: Option<f64>,
    /// Primary-input support threshold of the exact small-cone
    /// enumerator; `0` disables it (`None` = [`DEFAULT_EXACT_SUPPORT`]).
    pub exact_support: Option<usize>,
}

impl EngineConfig {
    /// An empty config: every knob falls through to its default.
    pub const fn new() -> Self {
        EngineConfig {
            sim_threads: None,
            cone_chunk: None,
            mem_soft_limit: None,
            simd_lanes: None,
            pij_tolerance: None,
            exact_support: None,
        }
    }

    /// Sets the worker-thread count (must be positive to take effect;
    /// the resolved accessor treats 0 as unset).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sim_threads = Some(threads);
        self
    }

    /// Sets the streamed-arena chunk size (roots per chunk).
    #[must_use]
    pub fn with_cone_chunk(mut self, roots: usize) -> Self {
        self.cone_chunk = Some(roots);
        self
    }

    /// Sets the soft memory budget, bytes.
    #[must_use]
    pub fn with_mem_soft_limit(mut self, bytes: usize) -> Self {
        self.mem_soft_limit = Some(bytes);
        self
    }

    /// Sets the wide-kernel lane width (one of [`VALID_SIMD_LANES`];
    /// the resolved accessor treats other values as unset).
    #[must_use]
    pub fn with_simd_lanes(mut self, lanes: usize) -> Self {
        self.simd_lanes = Some(lanes);
        self
    }

    /// Sets the adaptive sampler's relative tolerance (`0` = fixed
    /// budget, bitwise-pinned).
    #[must_use]
    pub fn with_pij_tolerance(mut self, tolerance: f64) -> Self {
        self.pij_tolerance = Some(tolerance);
        self
    }

    /// Sets the exact enumerator's support threshold (`0` = off).
    #[must_use]
    pub fn with_exact_support(mut self, support: usize) -> Self {
        self.exact_support = Some(support);
        self
    }

    /// The **strict** environment overlay: reads `SER_SIM_THREADS`,
    /// `SER_CONE_CHUNK` and `SER_MEM_SOFT_LIMIT`, rejecting malformed
    /// or zero values with a typed [`EngineConfigError`] instead of
    /// silently ignoring them. Unset variables leave the field unset.
    ///
    /// # Errors
    ///
    /// [`EngineConfigError`] naming the offending variable when its
    /// value is not a positive integer (threads, chunk) or a positive
    /// byte count with optional `K`/`M`/`G` suffix (memory limit).
    pub fn from_env() -> Result<Self, EngineConfigError> {
        let mut cfg = EngineConfig::new();
        if let Ok(v) = std::env::var("SER_SIM_THREADS") {
            cfg.sim_threads = Some(parse_positive(&v).ok_or(EngineConfigError {
                var: "SER_SIM_THREADS",
                value: v,
                expected: "a positive integer",
            })?);
        }
        if let Ok(v) = std::env::var("SER_CONE_CHUNK") {
            cfg.cone_chunk = Some(parse_positive(&v).ok_or(EngineConfigError {
                var: "SER_CONE_CHUNK",
                value: v,
                expected: "a positive integer",
            })?);
        }
        if let Ok(v) = std::env::var("SER_MEM_SOFT_LIMIT") {
            cfg.mem_soft_limit = Some(parse_byte_size(&v).ok_or(EngineConfigError {
                var: "SER_MEM_SOFT_LIMIT",
                value: v,
                expected: "a positive byte count with optional K/M/G suffix",
            })?);
        }
        if let Ok(v) = std::env::var("SER_SIMD_LANES") {
            cfg.simd_lanes = Some(parse_lanes(&v).ok_or(EngineConfigError {
                var: "SER_SIMD_LANES",
                value: v,
                expected: "one of 1, 2, 4, 8",
            })?);
        }
        if let Ok(v) = std::env::var("SER_PIJ_TOL") {
            cfg.pij_tolerance = Some(parse_tolerance(&v).ok_or(EngineConfigError {
                var: "SER_PIJ_TOL",
                value: v,
                expected: "a finite non-negative number (0 disables adaptivity)",
            })?);
        }
        if let Ok(v) = std::env::var("SER_EXACT_SUPPORT") {
            cfg.exact_support = Some(parse_support(&v).ok_or(EngineConfigError {
                var: "SER_EXACT_SUPPORT",
                value: v,
                expected: "a non-negative integer (0 disables exact mode)",
            })?);
        }
        Ok(cfg)
    }

    /// The **lenient** environment overlay: like
    /// [`EngineConfig::from_env`] but malformed values are silently
    /// treated as unset — the historical behavior of the raw env reads,
    /// kept only for the legacy free functions that return plain values
    /// and cannot surface an error. New code should use the strict
    /// form.
    pub fn lenient_env() -> Self {
        let mut cfg = EngineConfig::new();
        if let Ok(v) = std::env::var("SER_SIM_THREADS") {
            cfg.sim_threads = parse_positive(&v);
        }
        if let Ok(v) = std::env::var("SER_CONE_CHUNK") {
            cfg.cone_chunk = parse_positive(&v);
        }
        if let Ok(v) = std::env::var("SER_MEM_SOFT_LIMIT") {
            cfg.mem_soft_limit = parse_byte_size(&v);
        }
        if let Ok(v) = std::env::var("SER_SIMD_LANES") {
            cfg.simd_lanes = parse_lanes(&v);
        }
        if let Ok(v) = std::env::var("SER_PIJ_TOL") {
            cfg.pij_tolerance = parse_tolerance(&v);
        }
        if let Ok(v) = std::env::var("SER_EXACT_SUPPORT") {
            cfg.exact_support = parse_support(&v);
        }
        cfg
    }

    /// Layers `self` over `under`: fields set on `self` win, unset
    /// fields fall through — the "explicit > env > default" composition
    /// (`explicit.overlay(&env)`), with the resolved accessors applying
    /// the final defaults.
    #[must_use]
    pub fn overlay(&self, under: &EngineConfig) -> EngineConfig {
        EngineConfig {
            sim_threads: self.sim_threads.or(under.sim_threads),
            cone_chunk: self.cone_chunk.or(under.cone_chunk),
            mem_soft_limit: self.mem_soft_limit.or(under.mem_soft_limit),
            simd_lanes: self.simd_lanes.or(under.simd_lanes),
            pij_tolerance: self.pij_tolerance.or(under.pij_tolerance),
            exact_support: self.exact_support.or(under.exact_support),
        }
    }

    /// Resolved worker-thread count: the configured value when
    /// positive, else [`std::thread::available_parallelism`].
    pub fn threads(&self) -> usize {
        match self.sim_threads {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Resolved streamed-arena chunk size: the configured value when
    /// positive, else [`DEFAULT_CONE_CHUNK`].
    pub fn cone_chunk(&self) -> usize {
        match self.cone_chunk {
            Some(n) if n > 0 => n,
            _ => DEFAULT_CONE_CHUNK,
        }
    }

    /// Resolved soft memory budget, bytes (`None` = ungoverned).
    pub fn mem_soft_limit(&self) -> Option<usize> {
        self.mem_soft_limit.filter(|&b| b > 0)
    }

    /// Resolved wide-kernel lane width: the configured value when it is
    /// one of [`VALID_SIMD_LANES`], else [`DEFAULT_SIMD_LANES`].
    pub fn simd_lanes(&self) -> usize {
        match self.simd_lanes {
            Some(n) if VALID_SIMD_LANES.contains(&n) => n,
            _ => DEFAULT_SIMD_LANES,
        }
    }

    /// Resolved adaptive tolerance: the configured value when finite
    /// and non-negative (including the pinned `0`), else
    /// [`DEFAULT_PIJ_TOLERANCE`].
    pub fn pij_tolerance(&self) -> f64 {
        match self.pij_tolerance {
            Some(t) if t.is_finite() && t >= 0.0 => t,
            _ => DEFAULT_PIJ_TOLERANCE,
        }
    }

    /// Resolved exact-enumerator support threshold (including the
    /// disabling `0`); unset falls to [`DEFAULT_EXACT_SUPPORT`].
    pub fn exact_support(&self) -> usize {
        self.exact_support.unwrap_or(DEFAULT_EXACT_SUPPORT)
    }

    /// The resolved estimator configuration consumed by the `P_ij`
    /// kernels (see [`crate::sensitize`]).
    pub fn pij(&self) -> PijConfig {
        PijConfig {
            lanes: self.simd_lanes(),
            tolerance: self.pij_tolerance(),
            exact_support: self.exact_support(),
        }
    }
}

/// Resolved estimator knobs handed to the `P_ij` kernels: the wide
/// lane width (execution-only — bitwise identical for every value),
/// the adaptive sampler's relative tolerance and the exact
/// enumerator's support threshold (both part of a result's identity
/// unless pinned to their fixed-mode values).
///
/// [`PijConfig::default`] is the engine default (adaptive + exact on);
/// [`PijConfig::fixed`] is the bitwise-pinned legacy mode that every
/// historical estimate used (scalar lanes, no early stops, no
/// enumeration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PijConfig {
    /// `u64` words per interpreter step (one of [`VALID_SIMD_LANES`]).
    pub lanes: usize,
    /// Relative half-width target for early sampling stops; `0`
    /// disables adaptivity.
    pub tolerance: f64,
    /// Primary-input support threshold for exact enumeration; `0`
    /// disables the exact mode.
    pub exact_support: usize,
}

impl Default for PijConfig {
    fn default() -> Self {
        PijConfig {
            lanes: DEFAULT_SIMD_LANES,
            tolerance: DEFAULT_PIJ_TOLERANCE,
            exact_support: DEFAULT_EXACT_SUPPORT,
        }
    }
}

impl PijConfig {
    /// The fixed-budget scalar mode: bitwise identical to every
    /// estimate the engine produced before the estimator knobs existed,
    /// and the reference the wide/adaptive/exact paths are validated
    /// against.
    pub const fn fixed() -> Self {
        PijConfig {
            lanes: 1,
            tolerance: 0.0,
            exact_support: 0,
        }
    }

    /// Resolves the estimator knobs from the lenient environment
    /// overlay — the default used by the legacy entry points that take
    /// no explicit config.
    pub fn from_lenient_env() -> Self {
        EngineConfig::lenient_env().pij()
    }
}

/// Parses a positive integer; `None` for malformed or zero values.
fn parse_positive(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Parses a wide-kernel lane width; `None` unless one of
/// [`VALID_SIMD_LANES`].
fn parse_lanes(s: &str) -> Option<usize> {
    s.trim()
        .parse::<usize>()
        .ok()
        .filter(|n| VALID_SIMD_LANES.contains(n))
}

/// Parses an adaptive tolerance; `None` unless finite and
/// non-negative (zero is the valid pinned mode).
fn parse_tolerance(s: &str) -> Option<f64> {
    s.trim()
        .parse::<f64>()
        .ok()
        .filter(|t| t.is_finite() && *t >= 0.0)
}

/// Parses an exact-support threshold; any non-negative integer (zero
/// disables the mode).
fn parse_support(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok()
}

/// Parses `"65536"`, `"64K"`, `"8M"`, `"1G"` into bytes (powers of
/// 1024). `None` for malformed or zero values.
pub(crate) fn parse_byte_size(s: &str) -> Option<usize> {
    let t = s.trim();
    let (num, mult) = match t.as_bytes().last()? {
        b'k' | b'K' => (&t[..t.len() - 1], 1usize << 10),
        b'm' | b'M' => (&t[..t.len() - 1], 1usize << 20),
        b'g' | b'G' => (&t[..t.len() - 1], 1usize << 30),
        _ => (t, 1),
    };
    let n: usize = num.trim().parse().ok()?;
    (n > 0).then(|| n.saturating_mul(mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_prefers_upper_layer() {
        let explicit = EngineConfig::new().with_threads(3);
        let env = EngineConfig::new().with_threads(7).with_cone_chunk(32);
        let merged = explicit.overlay(&env);
        assert_eq!(merged.sim_threads, Some(3));
        assert_eq!(merged.cone_chunk, Some(32));
        assert_eq!(merged.mem_soft_limit, None);
    }

    #[test]
    fn resolved_defaults_are_usable() {
        let cfg = EngineConfig::new();
        assert!(cfg.threads() >= 1);
        assert_eq!(cfg.cone_chunk(), DEFAULT_CONE_CHUNK);
        assert_eq!(cfg.mem_soft_limit(), None);
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("65536"), Some(65536));
        assert_eq!(parse_byte_size("64K"), Some(64 << 10));
        assert_eq!(parse_byte_size(" 8M "), Some(8 << 20));
        assert_eq!(parse_byte_size("1g"), Some(1 << 30));
        assert_eq!(parse_byte_size("0"), None);
        assert_eq!(parse_byte_size("lots"), None);
        assert_eq!(parse_byte_size(""), None);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = EngineConfig::new()
            .with_threads(4)
            .with_mem_soft_limit(1 << 20)
            .with_simd_lanes(8)
            .with_pij_tolerance(0.01)
            .with_exact_support(12);
        let v = serde::Serialize::serialize(&cfg);
        let back: EngineConfig = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn estimator_knobs_resolve_with_defaults() {
        let cfg = EngineConfig::new();
        assert_eq!(cfg.simd_lanes(), DEFAULT_SIMD_LANES);
        assert_eq!(cfg.pij_tolerance(), DEFAULT_PIJ_TOLERANCE);
        assert_eq!(cfg.exact_support(), DEFAULT_EXACT_SUPPORT);
        assert_eq!(cfg.pij(), PijConfig::default());
    }

    #[test]
    fn estimator_knobs_accept_pinned_zeroes() {
        // 0 is meaningful (fixed budget / exact off), not "unset".
        let cfg = EngineConfig::new()
            .with_simd_lanes(1)
            .with_pij_tolerance(0.0)
            .with_exact_support(0);
        assert_eq!(cfg.pij(), PijConfig::fixed());
    }

    #[test]
    fn invalid_lane_width_falls_back_to_default() {
        assert_eq!(
            EngineConfig::new().with_simd_lanes(3).simd_lanes(),
            DEFAULT_SIMD_LANES
        );
        assert_eq!(EngineConfig::new().with_simd_lanes(8).simd_lanes(), 8);
        assert_eq!(
            EngineConfig::new().with_pij_tolerance(-1.0).pij_tolerance(),
            DEFAULT_PIJ_TOLERANCE
        );
    }

    #[test]
    fn overlay_carries_estimator_knobs() {
        let explicit = EngineConfig::new().with_pij_tolerance(0.0);
        let env = EngineConfig::new()
            .with_pij_tolerance(0.1)
            .with_simd_lanes(2);
        let merged = explicit.overlay(&env);
        assert_eq!(merged.pij_tolerance, Some(0.0));
        assert_eq!(merged.simd_lanes, Some(2));
        assert_eq!(merged.exact_support, None);
    }

    // The env-reading paths are covered in `tests/engine_env.rs` as a
    // separate process-wide-env test binary (env mutation races the
    // in-crate parallel tests otherwise).
}
