//! [`EngineConfig`]: one explicit home for the execution knobs that
//! used to live in scattered environment reads inside the kernels.
//!
//! Three knobs govern how (not what) the engine computes — none of them
//! affects results, which are bitwise identical for every setting:
//!
//! * **worker threads** (`SER_SIM_THREADS`) — simulation/replica
//!   parallelism;
//! * **cone chunk size** (`SER_CONE_CHUNK`) — roots per streamed
//!   cone-arena chunk (peak memory vs recompilation trade);
//! * **soft memory limit** (`SER_MEM_SOFT_LIMIT`) — byte budget the
//!   governed estimator degrades under instead of OOMing.
//!
//! Precedence is **explicit > environment > default**: a field set on
//! the config wins; an unset field falls through to the environment
//! overlay ([`EngineConfig::from_env`]) and then to the built-in
//! default. The strict [`EngineConfig::from_env`] rejects malformed
//! variable values with a typed [`EngineConfigError`];
//! [`EngineConfig::lenient_env`] preserves the historical
//! silently-ignore-garbage behavior for the legacy free functions
//! ([`sensitize::simulation_threads`](crate::sensitize::simulation_threads)
//! and friends) that cannot surface an error.
//!
//! # Example
//!
//! ```
//! use ser_logicsim::engine::EngineConfig;
//!
//! // Explicit beats environment beats default.
//! let cfg = EngineConfig::new().with_threads(2).overlay(
//!     &EngineConfig::new().with_threads(8).with_cone_chunk(64),
//! );
//! assert_eq!(cfg.threads(), 2); // explicit
//! assert_eq!(cfg.cone_chunk(), 64); // from the overlay
//! assert_eq!(cfg.mem_soft_limit(), None); // default
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Default roots-per-chunk of the streamed estimator. At typical cone
/// sizes a chunk's arena plus compiled programs stays in the low
/// megabytes, which amortizes to tens of bytes per circuit node on
/// 100k-gate designs.
pub const DEFAULT_CONE_CHUNK: usize = 128;

/// A malformed engine environment variable, rejected by the strict
/// [`EngineConfig::from_env`] overlay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfigError {
    /// The offending environment variable.
    pub var: &'static str,
    /// The value found there.
    pub value: String,
    /// What a valid value would look like.
    pub expected: &'static str,
}

impl fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed {}=`{}`: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EngineConfigError {}

/// Execution-resource configuration for the analysis engine: worker
/// threads, streamed-arena chunk size and the soft memory budget.
///
/// All fields are optional; an unset field resolves through the
/// layering described in the [module docs](self). The resolved
/// accessors ([`EngineConfig::threads`], [`EngineConfig::cone_chunk`],
/// [`EngineConfig::mem_soft_limit`]) apply the built-in defaults, so a
/// fully-unset config is always usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Worker threads (`None` = machine parallelism).
    pub sim_threads: Option<usize>,
    /// Roots per streamed cone-arena chunk (`None` =
    /// [`DEFAULT_CONE_CHUNK`]).
    pub cone_chunk: Option<usize>,
    /// Soft memory budget in bytes for governed estimation (`None` =
    /// ungoverned).
    pub mem_soft_limit: Option<usize>,
}

impl EngineConfig {
    /// An empty config: every knob falls through to its default.
    pub const fn new() -> Self {
        EngineConfig {
            sim_threads: None,
            cone_chunk: None,
            mem_soft_limit: None,
        }
    }

    /// Sets the worker-thread count (must be positive to take effect;
    /// the resolved accessor treats 0 as unset).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.sim_threads = Some(threads);
        self
    }

    /// Sets the streamed-arena chunk size (roots per chunk).
    #[must_use]
    pub fn with_cone_chunk(mut self, roots: usize) -> Self {
        self.cone_chunk = Some(roots);
        self
    }

    /// Sets the soft memory budget, bytes.
    #[must_use]
    pub fn with_mem_soft_limit(mut self, bytes: usize) -> Self {
        self.mem_soft_limit = Some(bytes);
        self
    }

    /// The **strict** environment overlay: reads `SER_SIM_THREADS`,
    /// `SER_CONE_CHUNK` and `SER_MEM_SOFT_LIMIT`, rejecting malformed
    /// or zero values with a typed [`EngineConfigError`] instead of
    /// silently ignoring them. Unset variables leave the field unset.
    ///
    /// # Errors
    ///
    /// [`EngineConfigError`] naming the offending variable when its
    /// value is not a positive integer (threads, chunk) or a positive
    /// byte count with optional `K`/`M`/`G` suffix (memory limit).
    pub fn from_env() -> Result<Self, EngineConfigError> {
        let mut cfg = EngineConfig::new();
        if let Ok(v) = std::env::var("SER_SIM_THREADS") {
            cfg.sim_threads = Some(parse_positive(&v).ok_or(EngineConfigError {
                var: "SER_SIM_THREADS",
                value: v,
                expected: "a positive integer",
            })?);
        }
        if let Ok(v) = std::env::var("SER_CONE_CHUNK") {
            cfg.cone_chunk = Some(parse_positive(&v).ok_or(EngineConfigError {
                var: "SER_CONE_CHUNK",
                value: v,
                expected: "a positive integer",
            })?);
        }
        if let Ok(v) = std::env::var("SER_MEM_SOFT_LIMIT") {
            cfg.mem_soft_limit = Some(parse_byte_size(&v).ok_or(EngineConfigError {
                var: "SER_MEM_SOFT_LIMIT",
                value: v,
                expected: "a positive byte count with optional K/M/G suffix",
            })?);
        }
        Ok(cfg)
    }

    /// The **lenient** environment overlay: like
    /// [`EngineConfig::from_env`] but malformed values are silently
    /// treated as unset — the historical behavior of the raw env reads,
    /// kept only for the legacy free functions that return plain values
    /// and cannot surface an error. New code should use the strict
    /// form.
    pub fn lenient_env() -> Self {
        let mut cfg = EngineConfig::new();
        if let Ok(v) = std::env::var("SER_SIM_THREADS") {
            cfg.sim_threads = parse_positive(&v);
        }
        if let Ok(v) = std::env::var("SER_CONE_CHUNK") {
            cfg.cone_chunk = parse_positive(&v);
        }
        if let Ok(v) = std::env::var("SER_MEM_SOFT_LIMIT") {
            cfg.mem_soft_limit = parse_byte_size(&v);
        }
        cfg
    }

    /// Layers `self` over `under`: fields set on `self` win, unset
    /// fields fall through — the "explicit > env > default" composition
    /// (`explicit.overlay(&env)`), with the resolved accessors applying
    /// the final defaults.
    #[must_use]
    pub fn overlay(&self, under: &EngineConfig) -> EngineConfig {
        EngineConfig {
            sim_threads: self.sim_threads.or(under.sim_threads),
            cone_chunk: self.cone_chunk.or(under.cone_chunk),
            mem_soft_limit: self.mem_soft_limit.or(under.mem_soft_limit),
        }
    }

    /// Resolved worker-thread count: the configured value when
    /// positive, else [`std::thread::available_parallelism`].
    pub fn threads(&self) -> usize {
        match self.sim_threads {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Resolved streamed-arena chunk size: the configured value when
    /// positive, else [`DEFAULT_CONE_CHUNK`].
    pub fn cone_chunk(&self) -> usize {
        match self.cone_chunk {
            Some(n) if n > 0 => n,
            _ => DEFAULT_CONE_CHUNK,
        }
    }

    /// Resolved soft memory budget, bytes (`None` = ungoverned).
    pub fn mem_soft_limit(&self) -> Option<usize> {
        self.mem_soft_limit.filter(|&b| b > 0)
    }
}

/// Parses a positive integer; `None` for malformed or zero values.
fn parse_positive(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Parses `"65536"`, `"64K"`, `"8M"`, `"1G"` into bytes (powers of
/// 1024). `None` for malformed or zero values.
pub(crate) fn parse_byte_size(s: &str) -> Option<usize> {
    let t = s.trim();
    let (num, mult) = match t.as_bytes().last()? {
        b'k' | b'K' => (&t[..t.len() - 1], 1usize << 10),
        b'm' | b'M' => (&t[..t.len() - 1], 1usize << 20),
        b'g' | b'G' => (&t[..t.len() - 1], 1usize << 30),
        _ => (t, 1),
    };
    let n: usize = num.trim().parse().ok()?;
    (n > 0).then(|| n.saturating_mul(mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_prefers_upper_layer() {
        let explicit = EngineConfig::new().with_threads(3);
        let env = EngineConfig::new().with_threads(7).with_cone_chunk(32);
        let merged = explicit.overlay(&env);
        assert_eq!(merged.sim_threads, Some(3));
        assert_eq!(merged.cone_chunk, Some(32));
        assert_eq!(merged.mem_soft_limit, None);
    }

    #[test]
    fn resolved_defaults_are_usable() {
        let cfg = EngineConfig::new();
        assert!(cfg.threads() >= 1);
        assert_eq!(cfg.cone_chunk(), DEFAULT_CONE_CHUNK);
        assert_eq!(cfg.mem_soft_limit(), None);
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("65536"), Some(65536));
        assert_eq!(parse_byte_size("64K"), Some(64 << 10));
        assert_eq!(parse_byte_size(" 8M "), Some(8 << 20));
        assert_eq!(parse_byte_size("1g"), Some(1 << 30));
        assert_eq!(parse_byte_size("0"), None);
        assert_eq!(parse_byte_size("lots"), None);
        assert_eq!(parse_byte_size(""), None);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = EngineConfig::new()
            .with_threads(4)
            .with_mem_soft_limit(1 << 20);
        let v = serde::Serialize::serialize(&cfg);
        let back: EngineConfig = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(cfg, back);
    }

    // The env-reading paths are covered in `tests/engine_env.rs` as a
    // separate process-wide-env test binary (env mutation races the
    // in-crate parallel tests otherwise).
}
