//! Static (signal) probabilities: the probability of each node being 1.
//!
//! The analytic propagation is the Design Compiler substitute called out
//! in DESIGN.md: exact for fan-out-free circuits, an independence
//! approximation under reconvergence (where the sampled estimate is the
//! asymptotically exact alternative).

use ser_netlist::csr::CsrView;
use ser_netlist::{Circuit, GateKind};

use crate::kernel;
use crate::random::random_word;

/// Analytic propagation with all primary inputs at probability `pi_prob`
/// and fan-ins treated as independent.
///
/// # Panics
///
/// Panics if `pi_prob` is outside `[0, 1]`.
pub fn static_probabilities_analytic(circuit: &Circuit, pi_prob: f64) -> Vec<f64> {
    assert!(
        (0.0..=1.0).contains(&pi_prob),
        "probability must lie in [0, 1]"
    );
    let mut p = vec![0.0f64; circuit.node_count()];
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        let prob = match node.kind {
            GateKind::Input => pi_prob,
            GateKind::And => node.fanin.iter().map(|f| p[f.index()]).product(),
            GateKind::Nand => 1.0 - node.fanin.iter().map(|f| p[f.index()]).product::<f64>(),
            GateKind::Or => {
                1.0 - node
                    .fanin
                    .iter()
                    .map(|f| 1.0 - p[f.index()])
                    .product::<f64>()
            }
            GateKind::Nor => node
                .fanin
                .iter()
                .map(|f| 1.0 - p[f.index()])
                .product::<f64>(),
            GateKind::Xor => node
                .fanin
                .iter()
                .fold(0.0, |acc, f| xor_prob(acc, p[f.index()])),
            GateKind::Xnor => {
                1.0 - node
                    .fanin
                    .iter()
                    .fold(0.0, |acc, f| xor_prob(acc, p[f.index()]))
            }
            GateKind::Not => 1.0 - p[node.fanin[0].index()],
            GateKind::Buf => p[node.fanin[0].index()],
        };
        p[id.index()] = prob;
    }
    p
}

#[inline]
fn xor_prob(a: f64, b: f64) -> f64 {
    a * (1.0 - b) + b * (1.0 - a)
}

/// Monte-Carlo estimate over `n_vectors` random vectors (rounded up to a
/// multiple of 64), PI probability 0.5, deterministic in `seed`. Exact in
/// the limit even under reconvergent fan-out. Runs on the CSR kernels
/// (the circuit is flattened once, not per word).
pub fn static_probabilities_sampled(circuit: &Circuit, n_vectors: usize, seed: u64) -> Vec<f64> {
    assert!(n_vectors > 0, "need at least one vector");
    let n_words = n_vectors.div_ceil(64);
    let n_pi = circuit.primary_inputs().len();
    let csr = CsrView::build(circuit);
    let mut words = vec![0u64; circuit.node_count()];
    let mut ones = vec![0u64; circuit.node_count()];
    for w in 0..n_words {
        let pi_words = random_word(n_pi, 0.5, seed.wrapping_add(w as u64));
        kernel::eval_word(&csr, &pi_words, &mut words);
        for (acc, word) in ones.iter_mut().zip(&words) {
            *acc += word.count_ones() as u64;
        }
    }
    let total = (n_words * 64) as f64;
    ones.into_iter().map(|c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{generate, CircuitBuilder};

    #[test]
    fn analytic_two_input_gates() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let and = b.gate(GateKind::And, "and", &[a, c]).unwrap();
        let or = b.gate(GateKind::Or, "or", &[a, c]).unwrap();
        let xor = b.gate(GateKind::Xor, "xor", &[a, c]).unwrap();
        b.mark_output(and);
        b.mark_output(or);
        b.mark_output(xor);
        let circ = b.finish().unwrap();
        let p = static_probabilities_analytic(&circ, 0.5);
        assert!((p[and.index()] - 0.25).abs() < 1e-12);
        assert!((p[or.index()] - 0.75).abs() < 1e-12);
        assert!((p[xor.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn analytic_respects_pi_probability() {
        let mut b = CircuitBuilder::new("t");
        let a = b.input("a");
        let inv = b.gate(GateKind::Not, "inv", &[a]).unwrap();
        b.mark_output(inv);
        let circ = b.finish().unwrap();
        let p = static_probabilities_analytic(&circ, 0.9);
        assert!((p[a.index()] - 0.9).abs() < 1e-12);
        assert!((p[inv.index()] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_analytic_without_reconvergence() {
        // A fan-out-free tree: analytic is exact, sampling converges to it.
        let mut b = CircuitBuilder::new("tree");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let i2 = b.input("i2");
        let i3 = b.input("i3");
        let g0 = b.gate(GateKind::Nand, "g0", &[i0, i1]).unwrap();
        let g1 = b.gate(GateKind::Nor, "g1", &[i2, i3]).unwrap();
        let y = b.gate(GateKind::Xor, "y", &[g0, g1]).unwrap();
        b.mark_output(y);
        let circ = b.finish().unwrap();
        let pa = static_probabilities_analytic(&circ, 0.5);
        let ps = static_probabilities_sampled(&circ, 64 * 256, 9);
        for id in circ.node_ids() {
            assert!(
                (pa[id.index()] - ps[id.index()]).abs() < 0.03,
                "node {id}: {} vs {}",
                pa[id.index()],
                ps[id.index()]
            );
        }
    }

    #[test]
    fn exhaustive_check_on_c17() {
        // With 5 inputs, sample probabilities over all 32 vectors exactly.
        let c = generate::c17();
        let n = c.primary_inputs().len();
        let mut words = vec![0u64; n];
        for v in 0..32u64 {
            for (k, w) in words.iter_mut().enumerate() {
                if v >> k & 1 == 1 {
                    *w |= 1 << v;
                }
            }
        }
        let packed = crate::sim::eval_word(&c, &words);
        let exact: Vec<f64> = packed
            .iter()
            .map(|w| (w & 0xFFFF_FFFF).count_ones() as f64 / 32.0)
            .collect();
        let sampled = static_probabilities_sampled(&c, 64 * 512, 1);
        for id in c.node_ids() {
            assert!(
                (exact[id.index()] - sampled[id.index()]).abs() < 0.02,
                "node {id}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "probability must lie")]
    fn analytic_rejects_bad_probability() {
        let c = generate::c17();
        let _ = static_probabilities_analytic(&c, 1.5);
    }
}
