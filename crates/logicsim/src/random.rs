//! Deterministic random stimulus generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One word (64 vectors) of random bits per primary input, with
/// independent per-input probability `p_one` of each bit being 1.
///
/// Deterministic in `(n_inputs, p_one, seed)`.
pub fn random_word(n_inputs: usize, p_one: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_inputs)
        .map(|_| {
            if (p_one - 0.5).abs() < f64::EPSILON {
                rng.random::<u64>()
            } else {
                let mut w = 0u64;
                for bit in 0..64 {
                    if rng.random::<f64>() < p_one {
                        w |= 1 << bit;
                    }
                }
                w
            }
        })
        .collect()
}

/// `n_vectors` boolean vectors with P(bit = 1) = `p_one`, deterministic in
/// the seed.
///
/// # Example
///
/// ```
/// use ser_logicsim::random::random_vectors;
///
/// let v = random_vectors(5, 50, 0.5, 42);
/// assert_eq!(v.len(), 50);
/// assert!(v.iter().all(|x| x.len() == 5));
/// assert_eq!(v, random_vectors(5, 50, 0.5, 42));
/// ```
pub fn random_vectors(n_inputs: usize, n_vectors: usize, p_one: f64, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_vectors)
        .map(|_| (0..n_inputs).map(|_| rng.random::<f64>() < p_one).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_is_deterministic() {
        assert_eq!(random_word(8, 0.5, 3), random_word(8, 0.5, 3));
        assert_ne!(random_word(8, 0.5, 3), random_word(8, 0.5, 4));
    }

    #[test]
    fn biased_words_have_biased_popcount() {
        let lo = random_word(64, 0.1, 11);
        let hi = random_word(64, 0.9, 11);
        let c_lo: u32 = lo.iter().map(|w| w.count_ones()).sum();
        let c_hi: u32 = hi.iter().map(|w| w.count_ones()).sum();
        let total = 64 * 64;
        assert!((c_lo as f64) < 0.2 * total as f64, "{c_lo}");
        assert!((c_hi as f64) > 0.8 * total as f64, "{c_hi}");
    }

    #[test]
    fn vectors_have_right_shape() {
        let v = random_vectors(3, 7, 0.5, 0);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|x| x.len() == 3));
    }
}
