//! 64-way packed zero-delay simulation kernels — the scalar reference
//! path.
//!
//! These walk the pointer-rich [`Circuit`] directly and dispatch through
//! [`GateKind::eval_packed`](ser_netlist::GateKind::eval_packed). The
//! hot paths (notably [`crate::sensitize`]) run the CSR twins in
//! [`crate::kernel`] instead; the two are kept bit-for-bit equivalent by
//! unit and property tests, which is why this reference implementation
//! stays.

use ser_netlist::{Circuit, NodeId};

/// Evaluates the whole circuit for one word of 64 input vectors.
///
/// `pi_words[k]` carries vector bits for the `k`-th primary input (in
/// declaration order). Returns one word per node.
///
/// # Panics
///
/// Panics if `pi_words.len()` differs from the primary-input count.
///
/// # Example
///
/// ```
/// use ser_logicsim::sim;
/// use ser_netlist::generate;
///
/// let c17 = generate::c17();
/// // Two vectors in one word: all-zeros (bit 0) and all-ones (bit 1).
/// let words: Vec<u64> = vec![0b10; 5];
/// let out = sim::eval_word(&c17, &words);
/// let g10 = c17.find("10").unwrap(); // 10 = NAND(1, 3)
/// assert_eq!(out[g10.index()] & 0b11, 0b01); // NAND(0,0)=1, NAND(1,1)=0
/// ```
pub fn eval_word(circuit: &Circuit, pi_words: &[u64]) -> Vec<u64> {
    assert_eq!(
        pi_words.len(),
        circuit.primary_inputs().len(),
        "one word per primary input"
    );
    let mut words = vec![0u64; circuit.node_count()];
    for (k, &pi) in circuit.primary_inputs().iter().enumerate() {
        words[pi.index()] = pi_words[k];
    }
    let mut pins: Vec<u64> = Vec::with_capacity(8);
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        if node.is_input() {
            continue;
        }
        pins.clear();
        pins.extend(node.fanin.iter().map(|f| words[f.index()]));
        words[id.index()] = node.kind.eval_packed(&pins);
    }
    words
}

/// Re-evaluates only the fan-out cone of `root` after forcing its word to
/// `forced`, writing updated values into `scratch` (which must start as a
/// copy of the base evaluation). Returns nothing; `scratch` holds the
/// perturbed state. `cone` must be `root`'s fan-out cone in topological
/// order (see [`ser_netlist::cone::fanout_cone`]).
pub fn eval_cone_forced(
    circuit: &Circuit,
    cone: &[NodeId],
    root: NodeId,
    forced: u64,
    scratch: &mut [u64],
) {
    scratch[root.index()] = forced;
    let mut pins: Vec<u64> = Vec::with_capacity(8);
    for &id in cone {
        if id == root {
            continue;
        }
        let node = circuit.node(id);
        pins.clear();
        pins.extend(node.fanin.iter().map(|f| scratch[f.index()]));
        scratch[id.index()] = node.kind.eval_packed(&pins);
    }
}

/// Evaluates a single boolean vector (convenience wrapper over the packed
/// kernel).
pub fn eval_vector(circuit: &Circuit, pi_values: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = pi_values.iter().map(|&b| if b { 1 } else { 0 }).collect();
    eval_word(circuit, &words)
        .into_iter()
        .map(|w| w & 1 == 1)
        .collect()
}

/// Evaluates the circuit with the listed nodes **forced to the complement
/// of their fault-free value** — multi-node upset injection at the logic
/// level (the paper's c499 discussion: "a modelling scheme that takes
/// into account simultaneous multiple-error injections").
///
/// Returns `(faulty_values, corrupted_outputs)`: the full node valuation
/// under the flips and the primary outputs whose value changed.
pub fn eval_with_flips(
    circuit: &Circuit,
    pi_values: &[bool],
    flipped: &[NodeId],
) -> (Vec<bool>, Vec<NodeId>) {
    let words: Vec<u64> = pi_values.iter().map(|&b| if b { 1 } else { 0 }).collect();
    let golden = eval_word(circuit, &words);

    let mut faulty = vec![0u64; circuit.node_count()];
    for (i, &pi) in circuit.primary_inputs().iter().enumerate() {
        faulty[pi.index()] = words[i];
    }
    // Precomputed membership mask: O(nodes + flips) instead of a
    // `flipped.contains` scan per node.
    let mut flip = vec![false; circuit.node_count()];
    for &id in flipped {
        flip[id.index()] = true;
    }
    let mut pins: Vec<u64> = Vec::with_capacity(8);
    for &id in circuit.topological_order() {
        let node = circuit.node(id);
        if !node.is_input() {
            pins.clear();
            pins.extend(node.fanin.iter().map(|f| faulty[f.index()]));
            faulty[id.index()] = node.kind.eval_packed(&pins);
        }
        if flip[id.index()] {
            faulty[id.index()] = !golden[id.index()];
        }
    }
    let corrupted: Vec<NodeId> = circuit
        .primary_outputs()
        .iter()
        .copied()
        .filter(|po| faulty[po.index()] & 1 != golden[po.index()] & 1)
        .collect();
    (faulty.into_iter().map(|w| w & 1 == 1).collect(), corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::cone::fanout_cone;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    #[test]
    fn packed_matches_scalar_on_c17() {
        let c = generate::c17();
        // 32 exhaustive input combinations fit in one word.
        let n = c.primary_inputs().len();
        let mut words = vec![0u64; n];
        for v in 0..32u64 {
            for (k, w) in words.iter_mut().enumerate() {
                if v >> k & 1 == 1 {
                    *w |= 1 << v;
                }
            }
        }
        let packed = eval_word(&c, &words);
        for v in 0..32usize {
            let pi_vals: Vec<bool> = (0..n).map(|k| v >> k & 1 == 1).collect();
            let scalar = eval_vector(&c, &pi_vals);
            for id in c.node_ids() {
                assert_eq!(
                    packed[id.index()] >> v & 1 == 1,
                    scalar[id.index()],
                    "node {id} vector {v}"
                );
            }
        }
    }

    #[test]
    fn cone_forcing_matches_full_resim() {
        let c = generate::c17();
        let n = c.primary_inputs().len();
        let words: Vec<u64> = (0..n as u64)
            .map(|k| 0xDEADBEEF_CAFEF00D ^ (k * 77))
            .collect();
        let base = eval_word(&c, &words);
        for root in c.gates() {
            let cone = fanout_cone(&c, root);
            let mut scratch = base.clone();
            eval_cone_forced(&c, &cone, root, !base[root.index()], &mut scratch);
            // Verify against brute force: a circuit where `root` evaluates
            // to the complement — emulate by full evaluation with root
            // forced at every topological step.
            let mut truth = vec![0u64; c.node_count()];
            for (k, &pi) in c.primary_inputs().iter().enumerate() {
                truth[pi.index()] = words[k];
            }
            for &id in c.topological_order() {
                let node = c.node(id);
                if node.is_input() {
                    continue;
                }
                let pins: Vec<u64> = node.fanin.iter().map(|f| truth[f.index()]).collect();
                truth[id.index()] = node.kind.eval_packed(&pins);
                if id == root {
                    truth[id.index()] = !base[root.index()];
                }
            }
            for id in c.node_ids() {
                assert_eq!(
                    scratch[id.index()],
                    truth[id.index()],
                    "root {root} node {id}"
                );
            }
        }
    }

    #[test]
    fn eval_vector_on_buffer_chain() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g = b.gate(GateKind::Buf, "g", &[a]).unwrap();
        let h = b.gate(GateKind::Not, "h", &[g]).unwrap();
        b.mark_output(h);
        let c = b.finish().unwrap();
        let v = eval_vector(&c, &[true]);
        assert!(v[a.index()] && v[g.index()] && !v[h.index()]);
    }

    #[test]
    #[should_panic(expected = "one word per primary input")]
    fn word_count_checked() {
        let c = generate::c17();
        let _ = eval_word(&c, &[0, 0]);
    }

    #[test]
    fn single_flip_matches_cone_semantics() {
        let c = generate::c17();
        let pi = vec![true, false, true, false, true];
        for g in c.gates() {
            let (_, corrupted) = eval_with_flips(&c, &pi, &[g]);
            // Cross-check against the packed cone machinery.
            let words: Vec<u64> = pi.iter().map(|&b| if b { 1 } else { 0 }).collect();
            let base = eval_word(&c, &words);
            let cone = fanout_cone(&c, g);
            let mut scratch = base.clone();
            eval_cone_forced(&c, &cone, g, !base[g.index()], &mut scratch);
            for &po in c.primary_outputs() {
                let diff = (scratch[po.index()] ^ base[po.index()]) & 1 == 1;
                assert_eq!(diff, corrupted.contains(&po), "gate {g} po {po}");
            }
        }
    }

    #[test]
    fn ecc_corrects_single_but_not_all_double_flips() {
        // The paper's c499 story at the logic level: single data upsets
        // are corrected, simultaneous double upsets are not always.
        let ecc = generate::sec32("c499");
        let pi = vec![false; ecc.primary_inputs().len()];
        // Strike a syndrome-tree gate: single flips may corrupt (they sit
        // behind the corrector), but flipping a *data input buffer* plus
        // its own corrector path defeats the code. Use two distinct
        // syndrome gates to witness at least one double-flip corruption.
        let gates: Vec<_> = ecc.gates().collect();
        let mut single_corruptions = 0usize;
        for &g in gates.iter().take(64) {
            let (_, corrupted) = eval_with_flips(&ecc, &pi, &[g]);
            single_corruptions += corrupted.len();
        }
        let mut double_corruptions = 0usize;
        for w in gates.windows(2).take(64) {
            let (_, corrupted) = eval_with_flips(&ecc, &pi, &[w[0], w[1]]);
            double_corruptions += corrupted.len();
        }
        assert!(
            double_corruptions >= single_corruptions,
            "double upsets must corrupt at least as much: {double_corruptions} vs {single_corruptions}"
        );
    }
}
