//! Pointer-`Circuit` compatibility shims over the CSR simulation
//! kernels.
//!
//! Since the single-engine consolidation, **all** gate evaluation lives
//! in [`crate::kernel`] and runs over a [`CsrView`]; the pointer-rich
//! [`Circuit`] is a build/IO frontend only. The functions here keep the
//! historical convenience signatures for one-off calls and tests — each
//! flattens the circuit (`O(V + E)`) and forwards to the kernel, so
//! callers evaluating in a loop should build a `CsrView` once and use
//! [`crate::kernel`] directly:
//!
//! ```
//! use ser_logicsim::kernel;
//! use ser_netlist::csr::CsrView;
//! use ser_netlist::generate;
//!
//! let c17 = generate::c17();
//! let csr = CsrView::build(&c17); // once, outside the loop
//! let words: Vec<u64> = vec![0b10; 5];
//! let mut out = vec![0u64; c17.node_count()];
//! kernel::eval_word(&csr, &words, &mut out);
//! ```

use ser_netlist::csr::CsrView;
use ser_netlist::{Circuit, NodeId};

use crate::kernel;

/// Evaluates the whole circuit for one word of 64 input vectors.
///
/// `pi_words[k]` carries vector bits for the `k`-th primary input (in
/// declaration order). Returns one word per node.
///
/// Convenience shim: flattens the circuit and forwards to
/// [`kernel::eval_word`]. Hot loops should flatten once instead.
///
/// # Panics
///
/// Panics if `pi_words.len()` differs from the primary-input count.
///
/// # Example
///
/// ```
/// use ser_logicsim::kernel;
/// use ser_netlist::csr::CsrView;
/// use ser_netlist::generate;
///
/// let c17 = generate::c17();
/// // The CSR kernel is the real entry point; build the view once.
/// let csr = CsrView::build(&c17);
/// // Two vectors in one word: all-zeros (bit 0) and all-ones (bit 1).
/// let words: Vec<u64> = vec![0b10; 5];
/// let mut out = vec![0u64; c17.node_count()];
/// kernel::eval_word(&csr, &words, &mut out);
/// let g10 = c17.find("10").unwrap(); // 10 = NAND(1, 3)
/// assert_eq!(out[g10.index()] & 0b11, 0b01); // NAND(0,0)=1, NAND(1,1)=0
/// // The shim agrees by construction.
/// assert_eq!(ser_logicsim::sim::eval_word(&c17, &words), out);
/// ```
pub fn eval_word(circuit: &Circuit, pi_words: &[u64]) -> Vec<u64> {
    let csr = CsrView::build(circuit);
    let mut words = vec![0u64; circuit.node_count()];
    kernel::eval_word(&csr, pi_words, &mut words);
    words
}

/// Re-evaluates only the fan-out cone of `root` after forcing its word to
/// `forced`, writing updated values into `scratch` (which must start as a
/// copy of the base evaluation). `cone` must be `root`'s fan-out cone in
/// topological order (see [`ser_netlist::cone::fanout_cone`]).
///
/// Convenience shim over [`kernel::eval_cone_forced`]; the `P_ij`
/// estimator uses the arena-backed kernel path directly.
pub fn eval_cone_forced(
    circuit: &Circuit,
    cone: &[NodeId],
    root: NodeId,
    forced: u64,
    scratch: &mut [u64],
) {
    let csr = CsrView::build(circuit);
    // The kernel wants an inclusive root-first cone; accept the looser
    // historical contract (root anywhere, or absent) by normalizing.
    let mut flat = Vec::with_capacity(cone.len() + 1);
    flat.push(root.index() as u32);
    flat.extend(
        cone.iter()
            .filter(|&&id| id != root)
            .map(|id| id.index() as u32),
    );
    kernel::eval_cone_forced(&csr, &flat, forced, scratch);
}

/// Evaluates a single boolean vector (convenience wrapper over the packed
/// kernel).
pub fn eval_vector(circuit: &Circuit, pi_values: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = pi_values.iter().map(|&b| if b { 1 } else { 0 }).collect();
    eval_word(circuit, &words)
        .into_iter()
        .map(|w| w & 1 == 1)
        .collect()
}

/// Evaluates the circuit with the listed nodes **forced to the complement
/// of their fault-free value** — multi-node upset injection at the logic
/// level (the paper's c499 discussion: "a modelling scheme that takes
/// into account simultaneous multiple-error injections").
///
/// Returns `(faulty_values, corrupted_outputs)`: the full node valuation
/// under the flips and the primary outputs whose value changed.
///
/// Convenience shim over [`kernel::eval_word_with_flips`].
pub fn eval_with_flips(
    circuit: &Circuit,
    pi_values: &[bool],
    flipped: &[NodeId],
) -> (Vec<bool>, Vec<NodeId>) {
    let csr = CsrView::build(circuit);
    let words: Vec<u64> = pi_values.iter().map(|&b| if b { 1 } else { 0 }).collect();
    let mut golden = vec![0u64; circuit.node_count()];
    kernel::eval_word(&csr, &words, &mut golden);

    let mut flip = vec![false; circuit.node_count()];
    for &id in flipped {
        flip[id.index()] = true;
    }
    let mut faulty = vec![0u64; circuit.node_count()];
    kernel::eval_word_with_flips(&csr, &words, &golden, &flip, &mut faulty);

    let corrupted: Vec<NodeId> = circuit
        .primary_outputs()
        .iter()
        .copied()
        .filter(|po| faulty[po.index()] & 1 != golden[po.index()] & 1)
        .collect();
    (faulty.into_iter().map(|w| w & 1 == 1).collect(), corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::cone::fanout_cone;
    use ser_netlist::{generate, CircuitBuilder, GateKind};

    #[test]
    fn packed_matches_scalar_on_c17() {
        let c = generate::c17();
        // 32 exhaustive input combinations fit in one word.
        let n = c.primary_inputs().len();
        let mut words = vec![0u64; n];
        for v in 0..32u64 {
            for (k, w) in words.iter_mut().enumerate() {
                if v >> k & 1 == 1 {
                    *w |= 1 << v;
                }
            }
        }
        let packed = eval_word(&c, &words);
        for v in 0..32usize {
            let pi_vals: Vec<bool> = (0..n).map(|k| v >> k & 1 == 1).collect();
            let scalar = eval_vector(&c, &pi_vals);
            for id in c.node_ids() {
                assert_eq!(
                    packed[id.index()] >> v & 1 == 1,
                    scalar[id.index()],
                    "node {id} vector {v}"
                );
            }
        }
    }

    #[test]
    fn cone_forcing_matches_full_resim() {
        let c = generate::c17();
        let n = c.primary_inputs().len();
        let words: Vec<u64> = (0..n as u64)
            .map(|k| 0xDEADBEEF_CAFEF00D ^ (k * 77))
            .collect();
        let base = eval_word(&c, &words);
        for root in c.gates() {
            let cone = fanout_cone(&c, root);
            let mut scratch = base.clone();
            eval_cone_forced(&c, &cone, root, !base[root.index()], &mut scratch);
            // Brute-force truth: evaluate the whole circuit via the flip
            // machinery (root forced to its complement).
            let mut truth = base.clone();
            let mut flip = vec![false; c.node_count()];
            flip[root.index()] = true;
            kernel::eval_word_with_flips(&CsrView::build(&c), &words, &base, &flip, &mut truth);
            for id in c.node_ids() {
                assert_eq!(
                    scratch[id.index()],
                    truth[id.index()],
                    "root {root} node {id}"
                );
            }
        }
    }

    #[test]
    fn eval_vector_on_buffer_chain() {
        let mut b = CircuitBuilder::new("chain");
        let a = b.input("a");
        let g = b.gate(GateKind::Buf, "g", &[a]).unwrap();
        let h = b.gate(GateKind::Not, "h", &[g]).unwrap();
        b.mark_output(h);
        let c = b.finish().unwrap();
        let v = eval_vector(&c, &[true]);
        assert!(v[a.index()] && v[g.index()] && !v[h.index()]);
    }

    #[test]
    #[should_panic(expected = "one word per primary input")]
    fn word_count_checked() {
        let c = generate::c17();
        let _ = eval_word(&c, &[0, 0]);
    }

    #[test]
    fn single_flip_matches_cone_semantics() {
        let c = generate::c17();
        let pi = vec![true, false, true, false, true];
        for g in c.gates() {
            let (_, corrupted) = eval_with_flips(&c, &pi, &[g]);
            // Cross-check against the packed cone machinery.
            let words: Vec<u64> = pi.iter().map(|&b| if b { 1 } else { 0 }).collect();
            let base = eval_word(&c, &words);
            let cone = fanout_cone(&c, g);
            let mut scratch = base.clone();
            eval_cone_forced(&c, &cone, g, !base[g.index()], &mut scratch);
            for &po in c.primary_outputs() {
                let diff = (scratch[po.index()] ^ base[po.index()]) & 1 == 1;
                assert_eq!(diff, corrupted.contains(&po), "gate {g} po {po}");
            }
        }
    }

    #[test]
    fn ecc_corrects_single_but_not_all_double_flips() {
        // The paper's c499 story at the logic level: single data upsets
        // are corrected, simultaneous double upsets are not always.
        let ecc = generate::sec32("c499");
        let pi = vec![false; ecc.primary_inputs().len()];
        // Strike a syndrome-tree gate: single flips may corrupt (they sit
        // behind the corrector), but flipping a *data input buffer* plus
        // its own corrector path defeats the code. Use two distinct
        // syndrome gates to witness at least one double-flip corruption.
        let gates: Vec<_> = ecc.gates().collect();
        let mut single_corruptions = 0usize;
        for &g in gates.iter().take(64) {
            let (_, corrupted) = eval_with_flips(&ecc, &pi, &[g]);
            single_corruptions += corrupted.len();
        }
        let mut double_corruptions = 0usize;
        for w in gates.windows(2).take(64) {
            let (_, corrupted) = eval_with_flips(&ecc, &pi, &[w[0], w[1]]);
            double_corruptions += corrupted.len();
        }
        assert!(
            double_corruptions >= single_corruptions,
            "double upsets must corrupt at least as much: {double_corruptions} vs {single_corruptions}"
        );
    }
}
