//! Environment-overlay behavior of [`EngineConfig`]: the strict
//! `from_env` rejects malformed values with a typed error, the lenient
//! overlay silently ignores them, and precedence is explicit > env >
//! default.
//!
//! Lives in its own test binary because it mutates process-wide
//! environment variables; the tests serialize on a local mutex so the
//! in-binary test threads cannot race each other.

use std::sync::Mutex;

use ser_logicsim::engine::{EngineConfig, EngineConfigError, DEFAULT_CONE_CHUNK};

static ENV_LOCK: Mutex<()> = Mutex::new(());

const VARS: [&str; 6] = [
    "SER_SIM_THREADS",
    "SER_CONE_CHUNK",
    "SER_MEM_SOFT_LIMIT",
    "SER_SIMD_LANES",
    "SER_PIJ_TOL",
    "SER_EXACT_SUPPORT",
];

/// Runs `f` with exactly `set` in the engine environment, restoring the
/// previous state afterwards.
fn with_env<R>(set: &[(&str, &str)], f: impl FnOnce() -> R) -> R {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved: Vec<(&str, Option<String>)> =
        VARS.iter().map(|&v| (v, std::env::var(v).ok())).collect();
    for &v in &VARS {
        std::env::remove_var(v);
    }
    for &(k, v) in set {
        std::env::set_var(k, v);
    }
    let out = f();
    for (v, old) in saved {
        match old {
            Some(val) => std::env::set_var(v, val),
            None => std::env::remove_var(v),
        }
    }
    out
}

#[test]
fn strict_overlay_reads_well_formed_values() {
    let cfg = with_env(
        &[
            ("SER_SIM_THREADS", "3"),
            ("SER_CONE_CHUNK", "64"),
            ("SER_MEM_SOFT_LIMIT", "8M"),
        ],
        || EngineConfig::from_env().unwrap(),
    );
    assert_eq!(cfg.sim_threads, Some(3));
    assert_eq!(cfg.cone_chunk, Some(64));
    assert_eq!(cfg.mem_soft_limit, Some(8 << 20));
}

#[test]
fn strict_overlay_leaves_unset_vars_unset() {
    let cfg = with_env(&[], || EngineConfig::from_env().unwrap());
    assert_eq!(cfg, EngineConfig::new());
}

#[test]
fn strict_overlay_rejects_malformed_mem_limit() {
    let err = with_env(&[("SER_MEM_SOFT_LIMIT", "lots")], || {
        EngineConfig::from_env().unwrap_err()
    });
    assert_eq!(
        err,
        EngineConfigError {
            var: "SER_MEM_SOFT_LIMIT",
            value: "lots".to_string(),
            expected: "a positive byte count with optional K/M/G suffix",
        }
    );
    // The error formats with enough context to act on.
    assert!(err.to_string().contains("SER_MEM_SOFT_LIMIT"));
    assert!(err.to_string().contains("lots"));
}

#[test]
fn strict_overlay_rejects_malformed_chunk_and_threads() {
    let err = with_env(&[("SER_CONE_CHUNK", "0")], || {
        EngineConfig::from_env().unwrap_err()
    });
    assert_eq!(err.var, "SER_CONE_CHUNK");

    let err = with_env(&[("SER_SIM_THREADS", "-2")], || {
        EngineConfig::from_env().unwrap_err()
    });
    assert_eq!(err.var, "SER_SIM_THREADS");
}

#[test]
fn lenient_overlay_silently_ignores_garbage() {
    let cfg = with_env(
        &[("SER_CONE_CHUNK", "banana"), ("SER_SIM_THREADS", "2")],
        EngineConfig::lenient_env,
    );
    assert_eq!(cfg.sim_threads, Some(2));
    assert_eq!(cfg.cone_chunk, None);
    // …which is also what the legacy free functions expose.
    let (threads, chunk) = with_env(&[("SER_CONE_CHUNK", "banana")], || {
        (
            ser_logicsim::sensitize::simulation_threads(),
            ser_logicsim::sensitize::cone_chunk_size(),
        )
    });
    assert!(threads >= 1);
    assert_eq!(chunk, DEFAULT_CONE_CHUNK);
}

#[test]
fn strict_overlay_reads_estimator_knobs() {
    let cfg = with_env(
        &[
            ("SER_SIMD_LANES", "8"),
            ("SER_PIJ_TOL", "0.05"),
            ("SER_EXACT_SUPPORT", "12"),
        ],
        || EngineConfig::from_env().unwrap(),
    );
    assert_eq!(cfg.simd_lanes, Some(8));
    assert_eq!(cfg.pij_tolerance, Some(0.05));
    assert_eq!(cfg.exact_support, Some(12));
    let pij = cfg.pij();
    assert_eq!(pij.lanes, 8);
    assert_eq!(pij.tolerance, 0.05);
    assert_eq!(pij.exact_support, 12);
}

#[test]
fn strict_overlay_rejects_malformed_estimator_knobs() {
    let err = with_env(&[("SER_SIMD_LANES", "3")], || {
        EngineConfig::from_env().unwrap_err()
    });
    assert_eq!(err.var, "SER_SIMD_LANES");

    let err = with_env(&[("SER_PIJ_TOL", "-0.1")], || {
        EngineConfig::from_env().unwrap_err()
    });
    assert_eq!(err.var, "SER_PIJ_TOL");

    let err = with_env(&[("SER_EXACT_SUPPORT", "many")], || {
        EngineConfig::from_env().unwrap_err()
    });
    assert_eq!(err.var, "SER_EXACT_SUPPORT");
}

#[test]
fn lenient_estimator_knobs_ignore_garbage_but_honor_zero() {
    let pij = with_env(
        &[("SER_SIMD_LANES", "nope"), ("SER_PIJ_TOL", "0")],
        ser_logicsim::sensitize::PijConfig::from_lenient_env,
    );
    assert_eq!(pij.lanes, 4); // garbage ignored → default
    assert_eq!(pij.tolerance, 0.0); // an explicit 0 pins adaptivity off
    assert_eq!(pij.exact_support, 20); // unset → default
}

#[test]
fn explicit_beats_env_beats_default() {
    let resolved = with_env(
        &[("SER_CONE_CHUNK", "512"), ("SER_SIM_THREADS", "5")],
        || {
            let explicit = EngineConfig::new().with_threads(2);
            explicit.overlay(&EngineConfig::from_env().unwrap())
        },
    );
    assert_eq!(resolved.threads(), 2); // explicit wins
    assert_eq!(resolved.cone_chunk(), 512); // env fills the gap
    assert_eq!(resolved.mem_soft_limit(), None); // default
}
