//! Protocol-level integration tests against a real daemon:
//!
//! * concurrent clients over a Unix socket get responses **bitwise
//!   identical** to direct library calls at the same configuration —
//!   warm-pool reuse is observable only in the stats, never in the
//!   numbers;
//! * malformed frames and oversized payloads come back as typed
//!   [`ApiError`]s (and a malformed frame does not kill the
//!   connection);
//! * a daemon `kill -9`'d mid-trace and restarted on the same pool
//!   directory restores its sessions from the eager `.sersnap` images
//!   and keeps answering bitwise-identically.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use aserta::{AnalysisSession, AsertaConfig, CircuitCells};
use ser_cells::{CharGrids, Library};
use ser_netlist::generate;
use ser_serve::api::{AnalyzeResult, ApiError, CircuitSource, GridKind, Request, Response};
use ser_serve::pool::PoolConfig;
use ser_serve::server::{serve, Listen, ServerConfig};
use ser_serve::{Client, EngineConfig};
use ser_spice::Technology;

fn fast_cfg(vectors: usize) -> AsertaConfig {
    let mut cfg = AsertaConfig::fast();
    cfg.sensitization_vectors = vectors;
    cfg
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ser-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The direct library answer an Analyze request must match bitwise: a
/// fresh session at the request's exact configuration.
fn direct_analyze(name: &str, cfg: &AsertaConfig) -> (f64, f64, Vec<f64>) {
    let circuit = if name == "sec32" {
        generate::sec32("sec32")
    } else {
        generate::iscas85(name).expect("known circuit")
    };
    let library = Library::new(Technology::ptm70(), CharGrids::coarse());
    let session = AnalysisSession::builder(
        &circuit,
        CircuitCells::nominal(&circuit),
        library,
        cfg.clone(),
    )
    .build()
    .expect("fresh session");
    (
        session.unreliability(),
        session.critical_delay(),
        session.per_gate_unreliability().to_vec(),
    )
}

fn assert_bitwise(got: &AnalyzeResult, want: &(f64, f64, Vec<f64>), what: &str) {
    assert_eq!(
        got.unreliability.to_bits(),
        want.0.to_bits(),
        "{what}: unreliability"
    );
    assert_eq!(
        got.critical_delay_s.to_bits(),
        want.1.to_bits(),
        "{what}: critical delay"
    );
    assert_eq!(
        got.per_gate_unreliability.len(),
        want.2.len(),
        "{what}: per-gate len"
    );
    for (i, (g, w)) in got.per_gate_unreliability.iter().zip(&want.2).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: per-gate U[{i}]");
    }
}

#[test]
fn concurrent_clients_are_bitwise_identical_to_direct_calls() {
    let dir = temp_dir("concurrent");
    let socket = dir.join("daemon.sock");
    let handle = serve(ServerConfig {
        listen: Listen::Unix(socket.clone()),
        workers: 4,
        max_frame: ser_serve::DEFAULT_MAX_FRAME,
        pool: PoolConfig {
            dir: None,
            ..PoolConfig::default()
        },
    })
    .expect("daemon boots");
    let endpoint = handle.endpoint();

    // Three charges on one circuit (shared warm session, charge moved as
    // a delta) plus a second circuit, hammered from 4 threads at once.
    let charges = [8.0e-15, 16.0e-15, 32.0e-15];
    let mut expected = Vec::new();
    for &q in &charges {
        let mut cfg = fast_cfg(256);
        cfg.charge = q;
        expected.push(("c17", cfg.clone(), direct_analyze("c17", &cfg)));
    }
    let sec_cfg = fast_cfg(256);
    expected.push(("sec32", sec_cfg.clone(), direct_analyze("sec32", &sec_cfg)));

    std::thread::scope(|scope| {
        for t in 0..4 {
            let endpoint = endpoint.clone();
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(&endpoint).expect("connect");
                // Each thread walks the cases in a different order so
                // warm/cold interleavings differ per run.
                for step in 0..expected.len() {
                    let (name, cfg, want) = &expected[(step + t) % expected.len()];
                    let response = client
                        .request(&Request::Analyze {
                            circuit: CircuitSource::Named((*name).to_owned()),
                            config: cfg.clone(),
                            grids: GridKind::Coarse,
                            deadline_ms: None,
                        })
                        .expect("analyze round trip");
                    let Response::Analyzed(got) = response else {
                        panic!("thread {t}: expected Analyzed, got {response:?}");
                    };
                    assert_bitwise(&got, want, &format!("thread {t} {name}"));
                }
            });
        }
    });

    // The sweep path too: daemon points vs the same deltas run locally.
    let sweep_cfg = fast_cfg(256);
    let mut client = Client::connect(&endpoint).expect("connect");
    let response = client
        .request(&Request::CornerSweep {
            circuit: CircuitSource::Named("c17".to_owned()),
            config: sweep_cfg.clone(),
            grids: GridKind::Coarse,
            vdds: vec![0.9, 1.1],
            vths: vec![0.2],
            charges: vec![8.0e-15, 16.0e-15],
            threads: 2,
            deadline_ms: None,
        })
        .expect("sweep round trip");
    let Response::Swept { points } = response else {
        panic!("expected Swept, got {response:?}");
    };
    assert_eq!(points.len(), 4);
    let circuit = generate::c17();
    let base = CircuitCells::nominal(&circuit);
    let library = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut local = AnalysisSession::builder(&circuit, base.clone(), library, sweep_cfg)
        .build()
        .expect("local session");
    let mut i = 0;
    for &vdd in &[0.9, 1.1] {
        for &q in &[8.0e-15, 16.0e-15] {
            local.try_set_charge(q).expect("charge");
            local
                .try_set_cells(&CircuitCells::from_fn(&circuit, |id| {
                    let mut p = *base.get(id).expect("gate params");
                    p.vdd = vdd;
                    p.vth = 0.2;
                    p
                }))
                .expect("cells");
            assert_eq!(
                points[i].unreliability.to_bits(),
                local.unreliability().to_bits(),
                "corner {i}"
            );
            assert_eq!(
                points[i].critical_delay_s.to_bits(),
                local.critical_delay().to_bits(),
                "corner {i}"
            );
            i += 1;
        }
    }

    // Warmness was real: the trace hit the pool, and every request was
    // either a hit or a miss (racing same-identity requests may each
    // build their own session — that inflates misses, never corrupts
    // answers).
    let stats = handle.pool().stats();
    assert!(
        stats.hits > 0,
        "concurrent trace must hit the warm pool: {stats:?}"
    );
    assert_eq!(stats.hits + stats.misses, stats.requests, "{stats:?}");
    assert_eq!(stats.sessions, 2, "two identities stay resident: {stats:?}");

    let shutdown = client.request(&Request::Shutdown).expect("shutdown");
    assert_eq!(shutdown, Response::ShuttingDown);
    handle.join();
    assert!(!socket.exists(), "socket file removed on clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_oversized_frames_get_typed_rejections() {
    let dir = temp_dir("frames");
    let socket = dir.join("daemon.sock");
    let handle = serve(ServerConfig {
        listen: Listen::Unix(socket.clone()),
        workers: 1,
        max_frame: 1024,
        pool: PoolConfig {
            dir: None,
            ..PoolConfig::default()
        },
    })
    .expect("daemon boots");

    fn read_response(stream: &mut UnixStream) -> Response {
        let mut prefix = [0u8; 4];
        stream.read_exact(&mut prefix).expect("reply prefix");
        let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
        stream.read_exact(&mut payload).expect("reply payload");
        serde_json::from_str(std::str::from_utf8(&payload).expect("utf8")).expect("reply decodes")
    }

    // Malformed payload: typed rejection, connection survives.
    let mut stream = UnixStream::connect(&socket).expect("connect");
    let garbage = b"{\"type\": not json";
    stream
        .write_all(&u32::try_from(garbage.len()).expect("len").to_be_bytes())
        .expect("prefix");
    stream.write_all(garbage).expect("payload");
    match read_response(&mut stream) {
        Response::Error(ApiError::MalformedFrame { .. }) => {}
        other => panic!("expected MalformedFrame, got {other:?}"),
    }
    // A structurally-valid-JSON unknown request is also malformed.
    let unknown = b"{\"type\":\"frobnicate\"}";
    stream
        .write_all(&u32::try_from(unknown.len()).expect("len").to_be_bytes())
        .expect("prefix");
    stream.write_all(unknown).expect("payload");
    match read_response(&mut stream) {
        Response::Error(ApiError::MalformedFrame { .. }) => {}
        other => panic!("expected MalformedFrame, got {other:?}"),
    }
    // Same connection still serves typed requests.
    let ping = serde_json::to_string(&Request::Ping).expect("encode");
    stream
        .write_all(&u32::try_from(ping.len()).expect("len").to_be_bytes())
        .expect("prefix");
    stream.write_all(ping.as_bytes()).expect("payload");
    assert!(matches!(read_response(&mut stream), Response::Pong { .. }));

    // Oversized announcement: typed rejection naming both numbers, then
    // the server hangs up (the stream cannot be resynchronized). Drop
    // the first connection first: with one worker, an open connection
    // pins it.
    drop(stream);
    let mut stream = UnixStream::connect(&socket).expect("connect");
    stream
        .write_all(&9_999_999u32.to_be_bytes())
        .expect("prefix");
    match read_response(&mut stream) {
        Response::Error(ApiError::Oversized {
            limit: 1024,
            got: 9_999_999,
        }) => {}
        other => panic!("expected Oversized, got {other:?}"),
    }
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read EOF");
    assert!(rest.is_empty(), "server closes after an oversized frame");

    let mut client = Client::connect(&handle.endpoint()).expect("connect");
    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShuttingDown
    );
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Boots the ser-serve binary on `socket` with `pool_dir`, returning
/// the child once the socket answers a ping.
// The lint cannot see past the return: every caller kills or waits the
// returned child (the kill-9 test does both, on purpose).
#[allow(clippy::zombie_processes)]
fn spawn_daemon(socket: &Path, pool_dir: &Path) -> std::process::Child {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_ser-serve"))
        .args([
            "serve",
            "--listen",
            &format!("unix:{}", socket.display()),
            "--workers",
            "2",
            "--pool-dir",
            &pool_dir.display().to_string(),
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut client) = Client::connect(&Listen::Unix(socket.to_path_buf())) {
            if let Ok(Response::Pong { .. }) = client.request(&Request::Ping) {
                return child;
            }
        }
        if Instant::now() >= deadline {
            // Reap the child before failing so the timeout path never
            // leaves a zombie daemon behind.
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon never came up");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn kill_dash_nine_restart_restores_the_pool_bitwise() {
    let dir = temp_dir("kill9");
    let socket = dir.join("daemon.sock");
    let pool_dir = dir.join("pool");
    let endpoint = Listen::Unix(socket.clone());
    let cfg = fast_cfg(256);
    let analyze = Request::Analyze {
        circuit: CircuitSource::Named("c17".to_owned()),
        config: cfg.clone(),
        grids: GridKind::Coarse,
        deadline_ms: None,
    };

    // First life: one cold build (eagerly imaged), then SIGKILL — no
    // graceful shutdown path runs.
    let mut child = spawn_daemon(&socket, &pool_dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    let Response::Analyzed(before) = client.request(&analyze).expect("analyze") else {
        panic!("expected Analyzed");
    };
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Second life, same pool directory: the pool restores from the
    // crash images *before* serving, and the restored session answers
    // warm and bitwise-identically.
    let mut child = spawn_daemon(&socket, &pool_dir);
    let mut client = Client::connect(&endpoint).expect("connect");
    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected Stats");
    };
    assert_eq!(
        stats.restored, 1,
        "the killed daemon's session restores: {stats:?}"
    );
    assert_eq!(stats.sessions, 1, "{stats:?}");

    let Response::Analyzed(after) = client.request(&analyze).expect("analyze") else {
        panic!("expected Analyzed");
    };
    let direct = direct_analyze("c17", &cfg);
    assert_bitwise(&before, &direct, "pre-kill");
    assert_bitwise(&after, &direct, "post-restart");

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected Stats");
    };
    assert_eq!(
        stats.misses, 0,
        "the restored session serves warm, no rebuild: {stats:?}"
    );
    assert!(stats.hits >= 1, "{stats:?}");

    assert_eq!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::ShuttingDown
    );
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown exits 0: {status:?}");
    // The graceful path re-imaged the pool: the snapshot is restorable.
    let snaps: Vec<_> = std::fs::read_dir(&pool_dir)
        .expect("pool dir")
        .flatten()
        .filter(|d| d.path().extension().is_some_and(|e| e == "sersnap"))
        .collect();
    assert_eq!(snaps.len(), 1, "one identity, one image");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The resolved estimator knobs are part of the pool identity: a daemon
/// restarted over the same snapshot directory with different accuracy
/// settings must never serve an image whose `P_ij` matrices were
/// estimated under the old ones — and restarting with the *original*
/// settings serves the original image warm, bitwise.
#[test]
fn estimator_knobs_split_pool_identity_across_restarts() {
    let dir = temp_dir("estimator-identity");
    let pool_dir = dir.join("pool");
    let cfg = fast_cfg(256);
    let request = Request::Analyze {
        circuit: CircuitSource::Named("c17".to_owned()),
        config: cfg.clone(),
        grids: GridKind::Coarse,
        deadline_ms: None,
    };
    // The pre-PR estimator: one lane, fixed budget, no exact mode.
    let fixed = EngineConfig::default()
        .with_simd_lanes(1)
        .with_pij_tolerance(0.0)
        .with_exact_support(0);

    let boot = |tag: &str, engine: EngineConfig| {
        serve(ServerConfig {
            listen: Listen::Unix(dir.join(format!("{tag}.sock"))),
            workers: 1,
            max_frame: ser_serve::DEFAULT_MAX_FRAME,
            pool: PoolConfig {
                dir: Some(pool_dir.clone()),
                engine,
                ..PoolConfig::default()
            },
        })
        .expect("daemon boots")
    };
    let shutdown = |client: &mut Client, handle: ser_serve::server::ServerHandle| {
        assert_eq!(
            client.request(&Request::Shutdown).expect("shutdown"),
            Response::ShuttingDown
        );
        handle.join();
    };

    // First life: fixed-budget estimator, one cold build (imaged).
    let handle = boot("first", fixed);
    let mut client = Client::connect(&handle.endpoint()).expect("connect");
    let Response::Analyzed(under_fixed) = client.request(&request).expect("analyze") else {
        panic!("expected Analyzed");
    };
    shutdown(&mut client, handle);

    // Second life, same directory, default (adaptive + exact) knobs:
    // the fixed-budget image restores but must NOT serve this request.
    let handle = boot("second", EngineConfig::default());
    let mut client = Client::connect(&handle.endpoint()).expect("connect");
    let Response::Analyzed(_) = client.request(&request).expect("analyze") else {
        panic!("expected Analyzed");
    };
    let stats = handle.pool().stats();
    assert_eq!(stats.restored, 1, "{stats:?}");
    assert_eq!(
        stats.hits, 0,
        "a warm hit here would mix accuracy settings: {stats:?}"
    );
    assert_eq!(stats.misses, 1, "{stats:?}");
    shutdown(&mut client, handle);

    // Third life, fixed knobs again: both images are on disk now, and
    // the fixed one serves warm — bitwise equal to the first life.
    let handle = boot("third", fixed);
    let mut client = Client::connect(&handle.endpoint()).expect("connect");
    let Response::Analyzed(again) = client.request(&request).expect("analyze") else {
        panic!("expected Analyzed");
    };
    let stats = handle.pool().stats();
    assert_eq!(stats.restored, 2, "{stats:?}");
    assert_eq!(
        stats.hits, 1,
        "the matching-identity image serves warm: {stats:?}"
    );
    assert_eq!(stats.misses, 0, "{stats:?}");
    let want = (
        under_fixed.unreliability,
        under_fixed.critical_delay_s,
        under_fixed.per_gate_unreliability.clone(),
    );
    assert_bitwise(&again, &want, "fixed-knob restart");
    shutdown(&mut client, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
