//! The daemon: a threaded accept loop + worker pool over [`crate::proto`]
//! frames, routing [`Request`]s through the warm [`SessionPool`].
//!
//! No async runtime: connections are handed from the accept thread to a
//! fixed worker pool over an `mpsc` channel, and each worker serves one
//! connection at a time, frame by frame. Analytical throughput comes
//! from the *engine's* parallelism (the session's Monte-Carlo and
//! corner-sweep replica threading), not from connection count, so a
//! small worker pool is the right shape.
//!
//! Shutdown is cooperative: a [`Request::Shutdown`] flips the stop
//! flag, pokes the accept loop awake with a self-connection, waits for
//! the workers to drain, images the pool ([`SessionPool::snapshot_all`])
//! and removes the Unix socket file. A `kill -9` skips all of that by
//! definition — which is why the pool also images every session eagerly
//! at build time.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use aserta::{AnalysisSession, AsertaConfig, CircuitCells};
use ser_cells::Library;
use ser_netlist::govern::Deadline;
use ser_netlist::Circuit;
use ser_spice::Technology;
use sertopt::OptimizeRequest;

use crate::api::{
    AnalyzeResult, ApiError, OptimizeResult, OptimizeSpec, Request, Response, SweepPoint,
};
use crate::pool::{intern_circuit, PoolConfig, SessionPool};
use crate::proto::{self, Conn, FrameError, DEFAULT_MAX_FRAME};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`; port 0 picks a free port).
    Tcp(String),
}

impl Listen {
    /// Parses `unix:<path>` or `tcp:<addr>`.
    ///
    /// # Errors
    ///
    /// A human-readable message for any other shape.
    pub fn parse(text: &str) -> Result<Self, String> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: needs a socket path".to_owned());
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = text.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp: needs host:port".to_owned());
            }
            return Ok(Listen::Tcp(addr.to_owned()));
        }
        Err(format!(
            "listen spec `{text}` is neither unix:<path> nor tcp:<host:port>"
        ))
    }
}

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listening endpoint.
    pub listen: Listen,
    /// Worker threads serving connections (minimum 1).
    pub workers: usize,
    /// Per-frame payload ceiling, bytes.
    pub max_frame: usize,
    /// Warm-pool settings.
    pub pool: PoolConfig,
}

impl ServerConfig {
    /// A config listening on `listen` with defaults everywhere else.
    pub fn new(listen: Listen) -> Self {
        ServerConfig {
            listen,
            workers: 4,
            max_frame: DEFAULT_MAX_FRAME,
            pool: PoolConfig::default(),
        }
    }
}

/// Why the daemon could not start or run.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or accepting on the endpoint failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

enum Acceptor {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Acceptor {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Acceptor::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Acceptor::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// A running daemon. Dropping the handle does **not** stop the server;
/// send [`Request::Shutdown`] (or use [`ServerHandle::shutdown`]) and
/// then [`ServerHandle::join`].
pub struct ServerHandle {
    threads: Vec<JoinHandle<()>>,
    pool: Arc<SessionPool>,
    stopping: Arc<AtomicBool>,
    listen: Listen,
    tcp_addr: Option<SocketAddr>,
}

impl ServerHandle {
    /// The endpoint clients should connect to. For TCP this reflects
    /// the actually-bound address (port 0 resolved).
    pub fn endpoint(&self) -> Listen {
        match (&self.listen, self.tcp_addr) {
            (Listen::Tcp(_), Some(addr)) => Listen::Tcp(addr.to_string()),
            (l, _) => l.clone(),
        }
    }

    /// The pool, for embedders that want counters without a round trip.
    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// Requests shutdown from outside a connection (tests, signal
    /// handlers): flips the stop flag and pokes the accept loop.
    pub fn shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        poke_accept(&self.endpoint());
    }

    /// Waits for the accept loop and every worker to exit, then images
    /// the pool and removes a Unix socket file.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
        self.pool.snapshot_all();
        if let Listen::Unix(path) = &self.listen {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Unblocks a blocking `accept` by making (and immediately dropping) a
/// connection to the endpoint.
fn poke_accept(endpoint: &Listen) {
    match endpoint {
        Listen::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
        Listen::Tcp(addr) => {
            let _ = TcpStream::connect_timeout(
                &match addr.parse() {
                    Ok(a) => a,
                    Err(_) => return,
                },
                Duration::from_millis(200),
            );
        }
    }
}

/// Boots the daemon: binds the endpoint, restores the pool from its
/// snapshot directory, and spawns the accept loop plus `workers`
/// connection threads. Returns once the endpoint is live.
///
/// # Errors
///
/// [`ServeError::Io`] when the endpoint cannot be bound.
pub fn serve(config: ServerConfig) -> Result<ServerHandle, ServeError> {
    let workers = config.workers.max(1);
    let pool = Arc::new(SessionPool::new(config.pool.clone()));
    pool.restore_dir();

    let (acceptor, tcp_addr) = match &config.listen {
        Listen::Unix(path) => {
            // A stale socket file from a crashed daemon would fail the
            // bind; the pool directory, not the socket, is durable state.
            let _ = std::fs::remove_file(path);
            (Acceptor::Unix(UnixListener::bind(path)?), None)
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let bound = listener.local_addr()?;
            (Acceptor::Tcp(listener), Some(bound))
        }
    };

    let stopping = Arc::new(AtomicBool::new(false));
    let (tx, rx): (Sender<Conn>, Receiver<Conn>) = std::sync::mpsc::channel();
    let rx = Arc::new(Mutex::new(rx));

    let mut threads = Vec::with_capacity(workers + 1);
    {
        let stopping = Arc::clone(&stopping);
        threads.push(std::thread::spawn(move || {
            // `tx` lives in this thread; dropping it on exit closes the
            // channel and drains the workers.
            while !stopping.load(Ordering::SeqCst) {
                match acceptor.accept() {
                    Ok(conn) => {
                        if stopping.load(Ordering::SeqCst) {
                            break;
                        }
                        if tx.send(conn).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        if stopping.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
        }));
    }
    let endpoint = match (&config.listen, tcp_addr) {
        (Listen::Tcp(_), Some(addr)) => Listen::Tcp(addr.to_string()),
        (l, _) => l.clone(),
    };
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let pool = Arc::clone(&pool);
        let stopping = Arc::clone(&stopping);
        let endpoint = endpoint.clone();
        let max_frame = config.max_frame;
        threads.push(std::thread::spawn(move || loop {
            let conn = {
                let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                guard.recv()
            };
            let Ok(conn) = conn else {
                return; // channel closed: accept loop exited
            };
            serve_connection(conn, &pool, &stopping, &endpoint, max_frame);
        }));
    }

    Ok(ServerHandle {
        threads,
        pool,
        stopping,
        listen: config.listen,
        tcp_addr,
    })
}

/// Serves one connection until it closes, errors, or shutdown.
fn serve_connection(
    mut conn: Conn,
    pool: &SessionPool,
    stopping: &Arc<AtomicBool>,
    endpoint: &Listen,
    max_frame: usize,
) {
    loop {
        let request = match proto::read_message::<Request>(&mut conn, max_frame) {
            Ok(req) => req,
            Err(FrameError::Closed) => return,
            Err(FrameError::Oversized { limit, got }) => {
                // The payload was never read; the stream cannot be
                // resynchronized. Typed reply, then hang up.
                let _ = proto::write_frame(
                    &mut conn,
                    &Response::Error(ApiError::Oversized { limit, got }),
                );
                return;
            }
            Err(FrameError::Malformed(detail)) => {
                // Framing stayed intact: reject and keep serving.
                let _ = proto::write_frame(
                    &mut conn,
                    &Response::Error(ApiError::MalformedFrame { detail }),
                );
                continue;
            }
            Err(FrameError::Io(_)) => return,
        };

        if stopping.load(Ordering::SeqCst) {
            let _ = proto::write_frame(&mut conn, &Response::Error(ApiError::ShuttingDown));
            return;
        }

        if matches!(request, Request::Shutdown) {
            let _ = proto::write_frame(&mut conn, &Response::ShuttingDown);
            let _ = conn.flush();
            stopping.store(true, Ordering::SeqCst);
            poke_accept(endpoint);
            return;
        }

        let response = handle(&request, pool);
        if proto::write_frame(&mut conn, &response).is_err() {
            return;
        }
    }
}

/// Routes one request. Never panics; every failure is a typed
/// [`Response::Error`].
fn handle(request: &Request, pool: &SessionPool) -> Response {
    match request {
        Request::Ping => Response::Pong {
            version: env!("CARGO_PKG_VERSION").to_owned(),
        },
        Request::Stats => Response::Stats(pool.stats()),
        Request::Shutdown => Response::ShuttingDown,
        Request::Analyze {
            circuit,
            config,
            grids,
            deadline_ms,
        } => match analyze(pool, circuit, config, *grids, *deadline_ms) {
            Ok(r) => Response::Analyzed(r),
            Err(e) => Response::Error(e),
        },
        Request::CornerSweep {
            circuit,
            config,
            grids,
            vdds,
            vths,
            charges,
            threads,
            deadline_ms,
        } => {
            match sweep(
                pool,
                circuit,
                config,
                *grids,
                vdds,
                vths,
                charges,
                *threads,
                *deadline_ms,
            ) {
                Ok(points) => Response::Swept { points },
                Err(e) => Response::Error(e),
            }
        }
        Request::Optimize {
            circuit,
            spec,
            budget_ms,
        } => match optimize(circuit, spec, *budget_ms) {
            Ok(r) => Response::Optimized(r),
            Err(e) => Response::Error(e),
        },
        Request::Snapshot {
            circuit,
            config,
            grids,
        } => match snapshot(pool, circuit, config, *grids) {
            Ok((path, bytes)) => Response::Snapshotted {
                path: path.display().to_string(),
                bytes,
            },
            Err(e) => Response::Error(e),
        },
    }
}

fn api_err(e: &aserta::AnalysisError) -> ApiError {
    if let aserta::AnalysisError::Interrupted(i) = e {
        return ApiError::Interrupted {
            stage: i.stage.to_owned(),
        };
    }
    ApiError::Analysis {
        detail: e.to_string(),
    }
}

fn request_deadline(deadline_ms: Option<u64>) -> Deadline {
    match deadline_ms {
        Some(ms) => Deadline::within(Duration::from_millis(ms)),
        None => Deadline::none(),
    }
}

fn analyze(
    pool: &SessionPool,
    source: &crate::api::CircuitSource,
    cfg: &AsertaConfig,
    grids: crate::api::GridKind,
    deadline_ms: Option<u64>,
) -> Result<AnalyzeResult, ApiError> {
    let circuit = intern_circuit(source.instantiate()?);
    pool.with_session(circuit, cfg, grids, |session| {
        // Warm path: reach the request's state by deltas. The deadline
        // binds only this delta work — a cold build above ran ungoverned
        // so its Monte-Carlo estimate is canonical.
        session.set_deadline(request_deadline(deadline_ms));
        let target = CircuitCells::nominal(circuit);
        session
            .try_set_charge(cfg.charge)
            .map_err(|e| api_err(&e))?;
        session.try_set_cells(&target).map_err(|e| api_err(&e))?;
        session.clear_deadline();
        let report = session.report();
        Ok(AnalyzeResult {
            circuit: circuit.name().to_owned(),
            gates: circuit.gate_count() as u64,
            unreliability: session.unreliability(),
            critical_delay_s: session.critical_delay(),
            per_gate_unreliability: report.per_gate_unreliability,
        })
    })
}

/// One corner's target assignment: `base` with VDD/Vth moved, exactly
/// like `ser_bench::corners::Corner::cells`.
fn corner_cells(circuit: &Circuit, base: &CircuitCells, vdd: f64, vth: f64) -> CircuitCells {
    CircuitCells::from_fn(circuit, |id| {
        let Some(&(mut p)) = base.get(id) else {
            unreachable!("gates carry parameters")
        };
        p.vdd = vdd;
        p.vth = vth;
        p
    })
}

#[derive(Clone, Copy)]
struct CornerReq {
    vdd: f64,
    vth: f64,
    charge: f64,
}

/// Evaluates one corner on a session, in the same order as
/// `ser_bench::corners::eval_corner` (charge first, then cells) so the
/// daemon's points are bitwise identical to the library sweep's.
fn eval_corner(
    session: &mut AnalysisSession<'_>,
    circuit: &Circuit,
    base: &CircuitCells,
    corner: CornerReq,
) -> Result<SweepPoint, ApiError> {
    if session.is_poisoned() {
        session
            .recover_with(corner_cells(circuit, base, corner.vdd, corner.vth))
            .map_err(|e| api_err(&e))?;
    }
    session
        .try_set_charge(corner.charge)
        .map_err(|e| api_err(&e))?;
    session
        .try_set_cells(&corner_cells(circuit, base, corner.vdd, corner.vth))
        .map_err(|e| api_err(&e))?;
    Ok(SweepPoint {
        vdd: corner.vdd,
        vth: corner.vth,
        charge: corner.charge,
        unreliability: session.unreliability(),
        critical_delay_s: session.critical_delay(),
    })
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    pool: &SessionPool,
    source: &crate::api::CircuitSource,
    cfg: &AsertaConfig,
    grids: crate::api::GridKind,
    vdds: &[f64],
    vths: &[f64],
    charges: &[f64],
    threads: u64,
    deadline_ms: Option<u64>,
) -> Result<Vec<SweepPoint>, ApiError> {
    let circuit = intern_circuit(source.instantiate()?);
    let mut corners = Vec::with_capacity(vdds.len() * vths.len() * charges.len());
    for &vdd in vdds {
        for &vth in vths {
            for &charge in charges {
                corners.push(CornerReq { vdd, vth, charge });
            }
        }
    }
    if corners.is_empty() {
        return Err(ApiError::BadRequest {
            detail: "empty corner grid".to_owned(),
        });
    }
    pool.with_session(circuit, cfg, grids, |session| {
        session.set_deadline(request_deadline(deadline_ms));
        let base = CircuitCells::nominal(circuit);
        let workers = if threads == 0 {
            ser_logicsim::sensitize::simulation_threads()
        } else {
            threads as usize
        }
        .min(corners.len())
        .max(1);
        let results: Vec<Result<SweepPoint, ApiError>> = if workers == 1 {
            corners
                .iter()
                .map(|&c| eval_corner(session, circuit, &base, c))
                .collect()
        } else {
            // The thread-replica deal from `ser_bench::corners`: clone
            // the warm session per worker, stride the corners, re-sort.
            // Bitwise identical for every worker count because each
            // corner's result is independent of its replica's prior
            // state (the session fidelity contract).
            let mut replicas: Vec<AnalysisSession<'_>> =
                (0..workers).map(|_| session.clone()).collect();
            let mut tagged: Vec<(usize, Result<SweepPoint, ApiError>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = replicas
                        .iter_mut()
                        .enumerate()
                        .map(|(w, replica)| {
                            let corners = &corners;
                            let base = &base;
                            scope.spawn(move || {
                                corners
                                    .iter()
                                    .enumerate()
                                    .skip(w)
                                    .step_by(workers)
                                    .map(|(idx, &c)| (idx, eval_corner(replica, circuit, base, c)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .enumerate()
                        .flat_map(|(w, h)| match h.join() {
                            Ok(out) => out,
                            Err(_) => (w..corners.len())
                                .step_by(workers)
                                .map(|idx| {
                                    (
                                        idx,
                                        Err(ApiError::Analysis {
                                            detail: "corner replica panicked".to_owned(),
                                        }),
                                    )
                                })
                                .collect(),
                        })
                        .collect()
                });
            tagged.sort_by_key(|&(idx, _)| idx);
            tagged.into_iter().map(|(_, r)| r).collect()
        };
        session.clear_deadline();
        results.into_iter().collect()
    })
}

fn optimize(
    source: &crate::api::CircuitSource,
    spec: &OptimizeSpec,
    budget_ms: Option<u64>,
) -> Result<OptimizeResult, ApiError> {
    let circuit = source.instantiate()?;
    let cfg = spec.to_config()?;
    // The optimizer builds its own incremental sessions internally; the
    // pool holds nominal-assignment analysis sessions, which an
    // optimization run would only churn. Same library construction as
    // the `soft-error optimize` CLI, so daemon and CLI answers agree.
    let mut library = Library::new(Technology::ptm70(), ser_cells::CharGrids::standard());
    let mut request = OptimizeRequest::new(cfg);
    if let Some(ms) = budget_ms {
        request = request.budget(Deadline::within(Duration::from_millis(ms)));
    }
    let outcome = sertopt::optimize(&circuit, &mut library, &request);
    Ok(OptimizeResult {
        baseline_unreliability: outcome.baseline.unreliability,
        optimized_unreliability: outcome.optimized.unreliability,
        delay_ratio: outcome.delay_ratio(),
        energy_ratio: outcome.energy_ratio(),
        area_ratio: outcome.area_ratio(),
        evaluations: outcome.evaluations as u64,
        interrupted: outcome.termination.was_interrupted(),
    })
}

fn snapshot(
    pool: &SessionPool,
    source: &crate::api::CircuitSource,
    cfg: &AsertaConfig,
    grids: crate::api::GridKind,
) -> Result<(PathBuf, u64), ApiError> {
    let circuit = intern_circuit(source.instantiate()?);
    pool.force_snapshot(circuit, cfg, grids)
}
