//! The warm-session pool: per-circuit resident [`AnalysisSession`]s
//! under a byte budget, with eager `.sersnap` crash images.
//!
//! # Identity
//!
//! A pool slot is keyed by **(circuit, analysis config sans charge,
//! grid kind, estimator knobs)**. The strike charge is excluded
//! deliberately: moving the charge is a cheap warm delta
//! (`try_set_charge`), so requests that differ only in charge share one
//! warm session instead of fragmenting the pool. The resolved `P_ij`
//! estimator knobs ([`EngineConfig::pij`]: lane width, adaptive
//! tolerance, exact-support threshold) are *included*: a daemon
//! restarted with different accuracy settings must never serve a
//! `.sersnap` image whose matrices were estimated under the old ones,
//! so warm hits never mix accuracy settings. The key is an FNV-1a hash
//! of the circuit's canonical snapshot encoding plus the charge-zeroed
//! config JSON plus the estimator tag; a hit additionally requires full
//! equality on the circuit and config, so a hash collision can never
//! alias two identities.
//!
//! # Lifetimes
//!
//! [`AnalysisSession`] borrows its circuit, but pool entries outlive any
//! request scope, so the pool interns each distinct [`Circuit`] with
//! [`Box::leak`] into a `&'static` — interned circuits live for the
//! daemon's lifetime, bounded by the number of *distinct* circuits
//! served, which is the same bound the pool's sessions already imply.
//!
//! # Crash safety
//!
//! Every cold build is eagerly imaged to `<dir>/<key>.sersnap` before
//! the response goes out. The filename **is** the pool key (16 hex
//! digits); [`SessionPool::restore_dir`] trusts it at startup while
//! [`AnalysisSession::restore_against`] re-validates the image's
//! internal consistency bit for bit, so a stale or foreign file can
//! only ever fail to restore, never restore wrongly. Snapshots capture
//! the session's *identity* state; a restored session reaches any
//! requested state through the same deltas a warm one would, so
//! post-restart responses stay bitwise identical.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use aserta::{AnalysisSession, AsertaConfig, CircuitCells};
use ser_cells::Library;
use ser_logicsim::sensitize::PijConfig;
use ser_logicsim::EngineConfig;
use ser_netlist::snapshot::{write_circuit_section, SnapshotWriter};
use ser_netlist::Circuit;
use ser_spice::Technology;

use crate::api::{ApiError, GridKind, PoolStats};

/// Pool construction settings.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Soft byte budget over the pooled sessions' resident estimates.
    /// The least-recently-used entries are evicted past it; the most
    /// recent entry is always kept, so one large circuit cannot wedge
    /// the pool.
    pub budget_bytes: usize,
    /// Where `.sersnap` crash images live (`None` disables persistence).
    pub dir: Option<PathBuf>,
    /// Engine knobs (thread count, cone chunk, memory ceiling) applied
    /// to every session the pool builds.
    pub engine: EngineConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            // Generous enough for a handful of 100k-gate sessions.
            budget_bytes: 2 << 30,
            dir: None,
            engine: EngineConfig::default(),
        }
    }
}

struct Entry {
    key: u64,
    circuit: &'static Circuit,
    cfg_identity: AsertaConfig,
    /// `None` on entries restored from disk (the grid kind is not part
    /// of the snapshot encoding); pinned on their first hit.
    grids: Option<GridKind>,
    session: AnalysisSession<'static>,
    last_used: u64,
}

#[derive(Default)]
struct PoolInner {
    entries: Vec<Entry>,
    clock: u64,
}

/// The pool itself. All methods take `&self`; one mutex guards the
/// entry list, and sessions are checked *out* of it for the duration of
/// a request so concurrent requests on different circuits never
/// serialize on each other's analysis work.
pub struct SessionPool {
    config: PoolConfig,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    restored: AtomicU64,
    requests: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Interns a circuit, returning a `'static` borrow. Distinct circuits
/// leak once each; an already-interned circuit is reused by equality.
pub fn intern_circuit(circuit: Circuit) -> &'static Circuit {
    static INTERNED: Mutex<Vec<&'static Circuit>> = Mutex::new(Vec::new());
    let mut interned = lock(&INTERNED);
    if let Some(hit) = interned.iter().find(|c| ***c == circuit) {
        return hit;
    }
    let leaked: &'static Circuit = Box::leak(Box::new(circuit));
    interned.push(leaked);
    leaked
}

fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The charge-zeroed config that names a pool identity.
fn identity_cfg(cfg: &AsertaConfig) -> AsertaConfig {
    let mut id = cfg.clone();
    id.charge = 0.0;
    id
}

/// The estimator knobs' contribution to a pool identity. The tolerance
/// is tagged by its exact bit pattern — two tolerances that differ in
/// the last ulp are different accuracy contracts, and bit equality is
/// the only float comparison that round-trips through text losslessly.
fn estimator_tag(pij: &PijConfig) -> String {
    format!(
        "lanes={};tol={:016x};exact={}",
        pij.lanes,
        pij.tolerance.to_bits(),
        pij.exact_support
    )
}

fn pool_key(circuit: &Circuit, cfg: &AsertaConfig, grids: GridKind, pij: &PijConfig) -> u64 {
    let mut w = SnapshotWriter::new();
    write_circuit_section(&mut w, circuit);
    let circuit_bytes = w.to_bytes();
    let identity = identity_cfg(cfg);
    // The config's JSON text is a stable encoding of its value; the
    // Debug fallback is equally deterministic and only reachable if the
    // encoder ever grows a failure mode.
    let cfg_text = serde_json::to_string(&identity).unwrap_or_else(|_| format!("{identity:?}"));
    let grid_tag: &[u8] = match grids {
        GridKind::Standard => b"standard",
        GridKind::Coarse => b"coarse",
    };
    let pij_tag = estimator_tag(pij);
    fnv1a64(&[
        &circuit_bytes,
        cfg_text.as_bytes(),
        grid_tag,
        pij_tag.as_bytes(),
    ])
}

fn snapshot_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.sersnap"))
}

impl SessionPool {
    /// An empty pool.
    pub fn new(config: PoolConfig) -> Self {
        SessionPool {
            config,
            inner: Mutex::new(PoolInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            restored: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        }
    }

    /// Restores every readable `.sersnap` image in the configured
    /// directory into warm pool entries. Unreadable, misnamed or
    /// internally inconsistent images are skipped (restoring is an
    /// optimization; a skipped image only costs a cold rebuild later).
    /// Returns the number of sessions restored.
    pub fn restore_dir(&self) -> usize {
        let Some(dir) = self.config.dir.clone() else {
            return 0;
        };
        let Ok(listing) = std::fs::read_dir(&dir) else {
            return 0;
        };
        let mut n = 0;
        for dirent in listing.flatten() {
            let path = dirent.path();
            let Some(stem) = path.file_name().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some(hex) = stem.strip_suffix(".sersnap") else {
                continue;
            };
            let Ok(key) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            let Ok(snap) = aserta::SessionSnapshot::read_file(&path) else {
                continue;
            };
            let circuit = intern_circuit(snap.circuit().clone());
            let Ok(session) = AnalysisSession::restore_against(circuit, &snap) else {
                continue;
            };
            let cfg_identity = identity_cfg(snap.config());
            let mut inner = lock(&self.inner);
            if inner.entries.iter().any(|e| e.key == key) {
                continue;
            }
            inner.clock += 1;
            let last_used = inner.clock;
            inner.entries.push(Entry {
                key,
                circuit,
                cfg_identity,
                grids: None,
                session,
                last_used,
            });
            drop(inner);
            n += 1;
        }
        self.restored.store(n as u64, Ordering::Relaxed);
        self.evict_over_budget();
        n
    }

    /// Runs `work` against the warm session for `(circuit, cfg, grids)`,
    /// building (and eagerly imaging) one on a miss. The entry is
    /// checked out for the duration, so same-identity requests that race
    /// each build their own session and the freshest one is kept; the
    /// answers are bitwise identical either way.
    ///
    /// `work` receives the session **in an unspecified prior state** and
    /// must reach its target state via deltas — exactly the contract the
    /// fidelity guarantee is stated for. If `work` leaves the session
    /// poisoned, the entry is dropped instead of returned to the pool.
    ///
    /// # Errors
    ///
    /// [`ApiError::Analysis`] when a cold build fails; whatever `work`
    /// returns otherwise.
    pub fn with_session<T>(
        &self,
        circuit: &'static Circuit,
        cfg: &AsertaConfig,
        grids: GridKind,
        work: impl FnOnce(&mut AnalysisSession<'static>) -> Result<T, ApiError>,
    ) -> Result<T, ApiError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = pool_key(circuit, cfg, grids, &self.config.engine.pij());
        let cfg_identity = identity_cfg(cfg);

        let checked_out = {
            let mut inner = lock(&self.inner);
            let slot = inner.entries.iter().position(|e| {
                e.key == key
                    && std::ptr::eq(e.circuit, circuit)
                    && e.cfg_identity == cfg_identity
                    && e.grids.is_none_or(|g| g == grids)
            });
            slot.map(|i| inner.entries.swap_remove(i))
        };

        let mut entry = match checked_out {
            Some(mut entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                entry.grids = Some(grids);
                entry
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let session = self.build_session(circuit, cfg, grids)?;
                let entry = Entry {
                    key,
                    circuit,
                    cfg_identity,
                    grids: Some(grids),
                    session,
                    last_used: 0,
                };
                // Crash image before the first response leaves the
                // daemon: a kill -9 from here on restores this session.
                if let Some(dir) = &self.config.dir {
                    let _ = std::fs::create_dir_all(dir);
                    let _ = entry.session.snapshot_to(snapshot_path(dir, key));
                }
                entry
            }
        };

        let result = work(&mut entry.session);
        entry.session.clear_deadline();
        if !entry.session.is_poisoned() {
            let mut inner = lock(&self.inner);
            inner.clock += 1;
            entry.last_used = inner.clock;
            // A racing same-identity build may have checked in first;
            // keep the newest and let the duplicate drop.
            if let Some(dup) = inner.entries.iter().position(|e| e.key == entry.key) {
                inner.entries.swap_remove(dup);
            }
            inner.entries.push(entry);
            drop(inner);
            self.evict_over_budget();
        }
        result
    }

    /// Forces a fresh `.sersnap` image of the `(circuit, cfg, grids)`
    /// session — building it first on a miss — and returns the image
    /// path and size.
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] when the pool has no snapshot directory;
    /// [`ApiError::Analysis`] when the session cannot be built or
    /// imaged.
    pub fn force_snapshot(
        &self,
        circuit: &'static Circuit,
        cfg: &AsertaConfig,
        grids: GridKind,
    ) -> Result<(PathBuf, u64), ApiError> {
        let Some(dir) = self.config.dir.clone() else {
            return Err(ApiError::BadRequest {
                detail: "the server has no snapshot directory (start it with --pool-dir)"
                    .to_owned(),
            });
        };
        let key = pool_key(circuit, cfg, grids, &self.config.engine.pij());
        let path = snapshot_path(&dir, key);
        self.with_session(circuit, cfg, grids, |session| {
            std::fs::create_dir_all(&dir).map_err(|e| ApiError::Analysis {
                detail: format!("creating {}: {e}", dir.display()),
            })?;
            session.snapshot_to(&path).map_err(|e| ApiError::Analysis {
                detail: e.to_string(),
            })?;
            let bytes = std::fs::metadata(&path)
                .map_err(|e| ApiError::Analysis {
                    detail: format!("stat {}: {e}", path.display()),
                })?
                .len();
            Ok((path.clone(), bytes))
        })
    }

    /// Images every resident session to the snapshot directory (no-op
    /// without one). Called on graceful shutdown so a restart restores
    /// the full warm pool; crash coverage comes from the eager
    /// build-time images instead.
    pub fn snapshot_all(&self) {
        let Some(dir) = self.config.dir.clone() else {
            return;
        };
        let _ = std::fs::create_dir_all(&dir);
        let inner = lock(&self.inner);
        for entry in &inner.entries {
            let _ = entry.session.snapshot_to(snapshot_path(&dir, entry.key));
        }
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let inner = lock(&self.inner);
        let resident: usize = inner
            .entries
            .iter()
            .map(|e| e.session.resident_bytes())
            .sum();
        PoolStats {
            sessions: inner.entries.len() as u64,
            resident_bytes: resident as u64,
            budget_bytes: self.config.budget_bytes as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            restored: self.restored.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
        }
    }

    /// The engine configuration sessions are built with.
    pub fn engine(&self) -> &EngineConfig {
        &self.config.engine
    }

    fn build_session(
        &self,
        circuit: &'static Circuit,
        cfg: &AsertaConfig,
        grids: GridKind,
    ) -> Result<AnalysisSession<'static>, ApiError> {
        let library = Library::new(Technology::ptm70(), grids.grids());
        // Never governed: a deadline-truncated Monte-Carlo estimate
        // would make this session's answers non-canonical and poison
        // every later warm response. Cold builds run to completion; the
        // per-request deadline only binds the warm delta work.
        AnalysisSession::builder(
            circuit,
            CircuitCells::nominal(circuit),
            library,
            cfg.clone(),
        )
        .engine(self.config.engine)
        .build()
        .map_err(|e| ApiError::Analysis {
            detail: e.to_string(),
        })
    }

    fn evict_over_budget(&self) {
        let mut inner = lock(&self.inner);
        loop {
            if inner.entries.len() <= 1 {
                return;
            }
            let resident: usize = inner
                .entries
                .iter()
                .map(|e| e.session.resident_bytes())
                .sum();
            if resident <= self.config.budget_bytes {
                return;
            }
            let Some(oldest) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                return;
            };
            // The .sersnap file stays on disk: an evicted identity can
            // still restore warm after a restart.
            inner.entries.swap_remove(oldest);
        }
    }
}

impl std::fmt::Debug for SessionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SessionPool")
            .field("sessions", &s.sessions)
            .field("resident_bytes", &s.resident_bytes)
            .field("budget_bytes", &s.budget_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::generate;

    fn fast_cfg() -> AsertaConfig {
        let mut cfg = AsertaConfig::fast();
        cfg.sensitization_vectors = 128;
        cfg
    }

    #[test]
    fn keys_separate_circuits_configs_and_grids() {
        let c17 = intern_circuit(generate::c17());
        let sec = intern_circuit(generate::sec32("sec32"));
        let cfg = fast_cfg();
        let pij = PijConfig::default();
        let base = pool_key(c17, &cfg, GridKind::Coarse, &pij);
        assert_ne!(base, pool_key(sec, &cfg, GridKind::Coarse, &pij));
        assert_ne!(base, pool_key(c17, &cfg, GridKind::Standard, &pij));
        let mut other = cfg.clone();
        other.sensitization_vectors += 1;
        assert_ne!(base, pool_key(c17, &other, GridKind::Coarse, &pij));
        // Charge is NOT identity: same key, served by a warm delta.
        let mut charged = cfg.clone();
        charged.charge *= 2.0;
        assert_eq!(base, pool_key(c17, &charged, GridKind::Coarse, &pij));
    }

    #[test]
    fn keys_separate_estimator_accuracy_settings() {
        let c17 = intern_circuit(generate::c17());
        let cfg = fast_cfg();
        let base = pool_key(c17, &cfg, GridKind::Coarse, &PijConfig::default());
        let tightened = PijConfig {
            tolerance: PijConfig::default().tolerance / 2.0,
            ..PijConfig::default()
        };
        assert_ne!(base, pool_key(c17, &cfg, GridKind::Coarse, &tightened));
        let narrow = PijConfig {
            lanes: 1,
            ..PijConfig::default()
        };
        assert_ne!(base, pool_key(c17, &cfg, GridKind::Coarse, &narrow));
        let no_exact = PijConfig {
            exact_support: 0,
            ..PijConfig::default()
        };
        assert_ne!(base, pool_key(c17, &cfg, GridKind::Coarse, &no_exact));
        // The fully pinned fixed-budget estimator is its own identity.
        assert_ne!(
            base,
            pool_key(c17, &cfg, GridKind::Coarse, &PijConfig::fixed())
        );
    }

    #[test]
    fn interning_is_by_equality() {
        let a = intern_circuit(generate::c17());
        let b = intern_circuit(generate::c17());
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn warm_hits_after_one_cold_build() {
        let pool = SessionPool::new(PoolConfig {
            dir: None,
            ..PoolConfig::default()
        });
        let circuit = intern_circuit(generate::c17());
        let cfg = fast_cfg();
        for _ in 0..3 {
            let u = pool
                .with_session(circuit, &cfg, GridKind::Coarse, |s| {
                    s.try_set_charge(cfg.charge)
                        .map_err(|e| ApiError::Analysis {
                            detail: e.to_string(),
                        })?;
                    Ok(s.unreliability())
                })
                .expect("analyze");
            assert!(u.is_finite());
        }
        let stats = pool.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.sessions, 1);
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn eviction_keeps_the_most_recent_entry() {
        // A 1-byte budget forces eviction down to the floor of one.
        let pool = SessionPool::new(PoolConfig {
            budget_bytes: 1,
            dir: None,
            engine: EngineConfig::default(),
        });
        let cfg = fast_cfg();
        let c17 = intern_circuit(generate::c17());
        let sec = intern_circuit(generate::sec32("sec32"));
        pool.with_session(c17, &cfg, GridKind::Coarse, |_| Ok(()))
            .expect("c17");
        pool.with_session(sec, &cfg, GridKind::Coarse, |_| Ok(()))
            .expect("sec32");
        let stats = pool.stats();
        assert_eq!(
            stats.sessions, 1,
            "budget of 1 byte keeps exactly the newest entry"
        );
        // The survivor is the most recent one: sec32 hits warm.
        pool.with_session(sec, &cfg, GridKind::Coarse, |_| Ok(()))
            .expect("sec32 again");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn snapshots_restore_into_a_warm_pool() {
        let dir = std::env::temp_dir().join(format!("ser-serve-pool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = fast_cfg();
        let circuit = intern_circuit(generate::c17());
        let make_pool = || {
            SessionPool::new(PoolConfig {
                dir: Some(dir.clone()),
                ..PoolConfig::default()
            })
        };

        let first = make_pool();
        let u_cold = first
            .with_session(circuit, &cfg, GridKind::Coarse, |s| Ok(s.unreliability()))
            .expect("cold");
        drop(first); // no graceful snapshot_all: the eager image must cover this

        let second = make_pool();
        assert_eq!(second.restore_dir(), 1);
        let stats = second.stats();
        assert_eq!(stats.restored, 1);
        assert_eq!(stats.sessions, 1);
        let u_restored = second
            .with_session(circuit, &cfg, GridKind::Coarse, |s| {
                s.try_set_charge(cfg.charge)
                    .map_err(|e| ApiError::Analysis {
                        detail: e.to_string(),
                    })?;
                s.try_set_cells(&CircuitCells::nominal(circuit))
                    .map_err(|e| ApiError::Analysis {
                        detail: e.to_string(),
                    })?;
                Ok(s.unreliability())
            })
            .expect("restored");
        assert_eq!(second.stats().hits, 1, "the restored entry serves warm");
        assert_eq!(u_restored.to_bits(), u_cold.to_bits());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_sessions_are_dropped_not_pooled() {
        let pool = SessionPool::new(PoolConfig {
            dir: None,
            ..PoolConfig::default()
        });
        let circuit = intern_circuit(generate::c17());
        let cfg = fast_cfg();
        pool.with_session(circuit, &cfg, GridKind::Coarse, |s| {
            // A non-finite charge is refused before mutation; the
            // session is NOT poisoned by it, so it stays pooled.
            assert!(s.try_set_charge(f64::NAN).is_err());
            Ok(())
        })
        .expect("refused delta is not fatal");
        assert_eq!(pool.stats().sessions, 1);
    }
}
