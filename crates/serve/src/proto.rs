//! Wire framing: 4-byte big-endian length prefix + UTF-8 JSON payload.
//!
//! The frame layer is deliberately dumb — one `u32` length, then that
//! many bytes of JSON — so any language with sockets can speak it. The
//! error taxonomy is the interesting part:
//!
//! * a clean EOF **between** frames is [`FrameError::Closed`] (the peer
//!   hung up politely);
//! * a length prefix above the configured limit is
//!   [`FrameError::Oversized`] — the payload is *not* read, so the
//!   stream cannot be resynchronized and the server closes the
//!   connection after replying with the typed error;
//! * bytes that are not valid JSON, or JSON that is not a known request,
//!   are [`FrameError::Malformed`] — framing stayed intact, so the
//!   connection remains usable after the typed rejection.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use serde::{Deserialize, Serialize};

/// Default per-frame payload ceiling: 8 MiB, comfortably above any
/// realistic `.bench` upload while bounding a hostile prefix.
pub const DEFAULT_MAX_FRAME: usize = 8 << 20;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (or hit EOF mid-frame).
    Io(io::Error),
    /// The announced payload length exceeds the configured limit.
    Oversized {
        /// The limit in force, bytes.
        limit: u64,
        /// The announced length, bytes.
        got: u64,
    },
    /// The payload was not a well-formed message.
    Malformed(String),
    /// The peer closed the stream cleanly between frames.
    Closed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::Oversized { limit, got } => {
                write!(f, "frame of {got} bytes exceeds the {limit}-byte limit")
            }
            FrameError::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            FrameError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one `value` as a frame: length prefix, then the JSON text.
pub fn write_frame<T: Serialize>(w: &mut impl Write, value: &T) -> Result<(), FrameError> {
    let text = serde_json::to_string(value)
        .map_err(|e| FrameError::Malformed(format!("encoding reply: {e}")))?;
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| FrameError::Oversized {
        limit: u64::from(u32::MAX),
        got: bytes.len() as u64,
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's raw payload, honouring `max_frame`.
///
/// A clean EOF before the first prefix byte is [`FrameError::Closed`];
/// EOF anywhere later is a torn frame and surfaces as
/// [`FrameError::Io`]. An oversized announcement returns without
/// consuming the payload.
pub fn read_frame_bytes(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_frame {
        return Err(FrameError::Oversized {
            limit: max_frame as u64,
            got: len as u64,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Reads and decodes one typed message.
pub fn read_message<T: Deserialize>(r: &mut impl Read, max_frame: usize) -> Result<T, FrameError> {
    let payload = read_frame_bytes(r, max_frame)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

/// One byte stream, either transport. Exists so the server's worker
/// loop and the client are transport-agnostic.
#[derive(Debug)]
pub enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Request, Response};

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).expect("write");
        write_frame(&mut buf, &Request::Stats).expect("write");
        let mut r = &buf[..];
        let a: Request = read_message(&mut r, DEFAULT_MAX_FRAME).expect("read");
        let b: Request = read_message(&mut r, DEFAULT_MAX_FRAME).expect("read");
        assert_eq!(a, Request::Ping);
        assert_eq!(b, Request::Stats);
        assert!(matches!(
            read_message::<Request>(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading_the_payload() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&1_000_000u32.to_be_bytes());
        buf.extend_from_slice(b"junk that must not be consumed");
        let mut r = &buf[..];
        match read_frame_bytes(&mut r, 1024) {
            Err(FrameError::Oversized {
                limit: 1024,
                got: 1_000_000,
            }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The payload bytes are still unread.
        assert_eq!(r, b"junk that must not be consumed");
    }

    #[test]
    fn torn_frames_and_non_json_are_typed() {
        // EOF inside the prefix.
        let mut r: &[u8] = &[0u8, 0];
        assert!(matches!(
            read_frame_bytes(&mut r, 64),
            Err(FrameError::Io(_))
        ));
        // EOF inside the payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"shor");
        let mut r = &buf[..];
        assert!(matches!(
            read_frame_bytes(&mut r, 64),
            Err(FrameError::Io(_))
        ));
        // Valid frame, invalid payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_be_bytes());
        buf.extend_from_slice(b"{{{{");
        let mut r = &buf[..];
        assert!(matches!(
            read_message::<Response>(&mut r, 64),
            Err(FrameError::Malformed(_))
        ));
    }
}
