//! The typed wire API: [`Request`], [`Response`] and [`ApiError`].
//!
//! Every frame on the wire is one JSON object with a `"type"` tag; the
//! payload enums below are the single source of truth for the protocol.
//! The vendored serde shim's derive handles named-field structs and
//! unit-only enums, so the three payload-carrying enums implement
//! [`serde::Serialize`]/[`serde::Deserialize`] by hand over the shim's
//! [`Value`] tree — round-trip pinned by the tests at the bottom.
//!
//! Analytical responses carry `f64`s through JSON text using Rust's
//! shortest round-trip float formatting, so a daemon answer is **bitwise
//! identical** to the same computation run in-process — the property the
//! protocol integration tests assert.

use aserta::AsertaConfig;
use ser_netlist::generate::{self, LayeredSpec};
use ser_netlist::{bench_format, Circuit};
use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use sertopt::{Algorithm, AllowedParams, OptimizerConfig};

/// Where the server gets the circuit a request talks about.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitSource {
    /// A built-in benchmark: an ISCAS'85 name (`c17`, `c432`, …) or
    /// `sec32`.
    Named(String),
    /// An inline `.bench` netlist.
    Bench {
        /// Circuit name recorded in the parsed netlist.
        name: String,
        /// The `.bench` source text.
        text: String,
    },
    /// A deterministically generated random layered DAG (equal specs
    /// generate equal circuits, so a spec is a stable circuit identity).
    Layered {
        /// Circuit name.
        name: String,
        /// Primary inputs.
        inputs: u64,
        /// Primary outputs.
        outputs: u64,
        /// Total gate count.
        gates: u64,
        /// Generator seed.
        seed: u64,
    },
}

impl CircuitSource {
    /// Materializes the circuit this source describes.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownCircuit`] for an unrecognized name,
    /// [`ApiError::BadRequest`] for an unparseable `.bench` payload.
    pub fn instantiate(&self) -> Result<Circuit, ApiError> {
        match self {
            CircuitSource::Named(name) => {
                if name == "sec32" {
                    return Ok(generate::sec32("sec32"));
                }
                generate::iscas85(name)
                    .ok_or_else(|| ApiError::UnknownCircuit { name: name.clone() })
            }
            CircuitSource::Bench { name, text } => {
                bench_format::parse(text, name).map_err(|e| ApiError::BadRequest {
                    detail: format!("parsing `{name}`: {e}"),
                })
            }
            CircuitSource::Layered {
                name,
                inputs,
                outputs,
                gates,
                seed,
            } => {
                let mut spec = LayeredSpec::new(
                    name.clone(),
                    *inputs as usize,
                    *outputs as usize,
                    *gates as usize,
                );
                spec.seed = *seed;
                Ok(generate::layered(&spec))
            }
        }
    }

    /// A short human label for logs and pool stats.
    pub fn label(&self) -> &str {
        match self {
            CircuitSource::Named(name) => name,
            CircuitSource::Bench { name, .. } | CircuitSource::Layered { name, .. } => name,
        }
    }
}

/// Which characterization grid resolution the request's library uses.
/// Part of the session identity: sessions characterized on different
/// grids never share a pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GridKind {
    /// The production grid ([`ser_cells::CharGrids::standard`]).
    #[default]
    Standard,
    /// The coarse CI grid ([`ser_cells::CharGrids::coarse`]).
    Coarse,
}

impl GridKind {
    /// The characterization grids this kind names.
    pub fn grids(self) -> ser_cells::CharGrids {
        match self {
            GridKind::Standard => ser_cells::CharGrids::standard(),
            GridKind::Coarse => ser_cells::CharGrids::coarse(),
        }
    }
}

/// The reduced optimizer surface exposed on the wire. Maps onto
/// [`sertopt::OptimizerConfig`] via [`OptimizeSpec::to_config`]; both
/// the daemon and a direct library caller go through the same mapping,
/// which is what makes daemon optimize responses comparable to local
/// runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeSpec {
    /// Search algorithm: `sqp`, `coord`, `anneal` or `genetic`.
    pub algorithm: String,
    /// Parameter profile: `dual`, `triple`, `sizing` or `tiny`.
    pub profile: String,
    /// Search iterations.
    pub iterations: u64,
    /// RNG seed (`None` = the library default).
    pub seed: Option<u64>,
    /// Monte-Carlo vectors for cost evaluations (`None` = default).
    pub vectors: Option<u64>,
    /// Worker threads for batched candidate evaluation (0 = auto).
    pub threads: u64,
}

impl Default for OptimizeSpec {
    fn default() -> Self {
        OptimizeSpec {
            algorithm: "sqp".to_owned(),
            profile: "dual".to_owned(),
            iterations: 6,
            seed: None,
            vectors: None,
            threads: 1,
        }
    }
}

impl OptimizeSpec {
    /// Resolves the wire spec into a full [`OptimizerConfig`].
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] on an unknown algorithm or profile name.
    pub fn to_config(&self) -> Result<OptimizerConfig, ApiError> {
        let mut cfg = OptimizerConfig::fast();
        cfg.algorithm = match self.algorithm.as_str() {
            "sqp" => Algorithm::Sqp,
            "coord" => Algorithm::CoordinateDescent,
            "anneal" => Algorithm::Anneal,
            "genetic" => Algorithm::Genetic,
            other => {
                return Err(ApiError::BadRequest {
                    detail: format!("unknown algorithm `{other}`"),
                })
            }
        };
        cfg.allowed = match self.profile.as_str() {
            "dual" => AllowedParams::table1_dual(),
            "triple" => AllowedParams::table1_triple(),
            "sizing" => AllowedParams::sizing_only(),
            "tiny" => AllowedParams::tiny(),
            other => {
                return Err(ApiError::BadRequest {
                    detail: format!("unknown profile `{other}`"),
                })
            }
        };
        cfg.iterations = self.iterations as usize;
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        if let Some(vectors) = self.vectors {
            cfg.aserta.sensitization_vectors = vectors as usize;
        }
        cfg.threads = self.threads as usize;
        Ok(cfg)
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Pool/throughput counters.
    Stats,
    /// Full ASERTA analysis of a circuit at the nominal cell assignment,
    /// served from a warm session when one is pooled.
    Analyze {
        /// The circuit to analyze.
        circuit: CircuitSource,
        /// Analysis settings (part of the session identity, except
        /// `charge`, which is applied as a cheap warm-session delta).
        config: AsertaConfig,
        /// Library grid resolution.
        grids: GridKind,
        /// Optional per-request wall-clock budget, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// A VDD × Vth × charge operating-corner sweep, each corner applied
    /// to the warm session as a cell-delta batch and dealt round-robin
    /// over session replicas.
    CornerSweep {
        /// The circuit to sweep.
        circuit: CircuitSource,
        /// Analysis settings shared by every corner.
        config: AsertaConfig,
        /// Library grid resolution.
        grids: GridKind,
        /// Supply-voltage axis, volts.
        vdds: Vec<f64>,
        /// Threshold-voltage axis, volts.
        vths: Vec<f64>,
        /// Strike-charge axis, coulombs.
        charges: Vec<f64>,
        /// Replica threads (0 = server default).
        threads: u64,
        /// Optional per-request wall-clock budget, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// A SERTOPT optimization run.
    Optimize {
        /// The circuit to optimize.
        circuit: CircuitSource,
        /// Reduced optimizer settings.
        spec: OptimizeSpec,
        /// Optional optimization budget, milliseconds.
        budget_ms: Option<u64>,
    },
    /// Force a `.sersnap` image of the circuit's pooled session to disk
    /// (building the session first if it is cold).
    Snapshot {
        /// The circuit to snapshot.
        circuit: CircuitSource,
        /// Analysis settings identifying the session.
        config: AsertaConfig,
        /// Library grid resolution.
        grids: GridKind,
    },
    /// Snapshot the pool and stop the daemon.
    Shutdown,
}

/// Pool and request counters returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PoolStats {
    /// Resident warm sessions.
    pub sessions: u64,
    /// Sum of the pooled sessions' resident-byte estimates.
    pub resident_bytes: u64,
    /// The pool's byte budget.
    pub budget_bytes: u64,
    /// Requests served from a warm session.
    pub hits: u64,
    /// Requests that had to build (or rebuild) a session.
    pub misses: u64,
    /// Sessions restored from `.sersnap` images at startup.
    pub restored: u64,
    /// Total requests handled.
    pub requests: u64,
}

/// Payload of [`Response::Analyzed`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeResult {
    /// Circuit name.
    pub circuit: String,
    /// Gate count.
    pub gates: u64,
    /// Circuit unreliability `U` (Eq. 4).
    pub unreliability: f64,
    /// Critical PI→PO path delay, seconds.
    pub critical_delay_s: f64,
    /// Per-gate soft-error contributions `U_i` (Eq. 3), node-indexed.
    pub per_gate_unreliability: Vec<f64>,
}

/// One evaluated corner in a [`Response::Swept`] payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Threshold voltage, volts.
    pub vth: f64,
    /// Strike charge, coulombs.
    pub charge: f64,
    /// Circuit unreliability at the corner.
    pub unreliability: f64,
    /// Critical path delay at the corner, seconds.
    pub critical_delay_s: f64,
}

/// Payload of [`Response::Optimized`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizeResult {
    /// Baseline circuit unreliability.
    pub baseline_unreliability: f64,
    /// Optimized circuit unreliability.
    pub optimized_unreliability: f64,
    /// Optimized/baseline critical-delay ratio.
    pub delay_ratio: f64,
    /// Optimized/baseline energy ratio.
    pub energy_ratio: f64,
    /// Optimized/baseline area ratio.
    pub area_ratio: f64,
    /// Cost evaluations spent.
    pub evaluations: u64,
    /// Whether the budget interrupted the search (the returned
    /// assignment is still never-regress valid).
    pub interrupted: bool,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong {
        /// Server crate version.
        version: String,
    },
    /// Reply to [`Request::Stats`].
    Stats(PoolStats),
    /// Reply to [`Request::Analyze`].
    Analyzed(AnalyzeResult),
    /// Reply to [`Request::CornerSweep`], points in grid order
    /// (VDD-major, then Vth, then charge).
    Swept {
        /// The evaluated corners.
        points: Vec<SweepPoint>,
    },
    /// Reply to [`Request::Optimize`].
    Optimized(OptimizeResult),
    /// Reply to [`Request::Snapshot`].
    Snapshotted {
        /// Where the `.sersnap` image was written.
        path: String,
        /// Image size in bytes.
        bytes: u64,
    },
    /// Reply to [`Request::Shutdown`]; the connection closes after it.
    ShuttingDown,
    /// The request failed with a typed error.
    Error(ApiError),
}

/// Typed request failures, shipped inside [`Response::Error`].
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The frame payload was not a well-formed request object. The
    /// connection stays usable: framing was intact, only the payload was
    /// bad.
    MalformedFrame {
        /// What the parser rejected.
        detail: String,
    },
    /// The frame's length prefix exceeds the server's limit. The server
    /// replies with this and closes the connection (the oversized
    /// payload is never read, so the stream cannot be resynchronized).
    Oversized {
        /// The server's frame limit, bytes.
        limit: u64,
        /// The announced frame length, bytes.
        got: u64,
    },
    /// A [`CircuitSource::Named`] name the server does not know.
    UnknownCircuit {
        /// The offending name.
        name: String,
    },
    /// A structurally valid request with unusable contents.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The analysis engine rejected the request.
    Analysis {
        /// The engine's error rendering.
        detail: String,
    },
    /// The per-request deadline expired (or its cancel token fired)
    /// before the work completed.
    Interrupted {
        /// The pipeline stage that observed the interruption.
        stage: String,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::MalformedFrame { detail } => write!(f, "malformed frame: {detail}"),
            ApiError::Oversized { limit, got } => {
                write!(f, "frame of {got} bytes exceeds the {limit}-byte limit")
            }
            ApiError::UnknownCircuit { name } => write!(f, "unknown circuit `{name}`"),
            ApiError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ApiError::Analysis { detail } => write!(f, "analysis failed: {detail}"),
            ApiError::Interrupted { stage } => write!(f, "interrupted at {stage}"),
            ApiError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ApiError {}

// ------------------------------------------------------- serde plumbing
//
// The vendored serde derive cannot express payload-carrying enum
// variants, so the tagged-object convention is written out by hand:
// `{"type": "<tag>", ...payload fields}`.

fn obj(type_tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("type".to_owned(), Value::String(type_tag.to_owned()))];
    entries.append(&mut fields);
    Value::Object(entries)
}

#[allow(clippy::type_complexity)]
fn tag_of(v: &Value) -> Result<(&str, &[(String, Value)]), SerdeError> {
    let entries = v
        .as_object()
        .ok_or_else(|| SerdeError::custom(format!("expected object, found {}", v.kind())))?;
    let tag = serde::__find(entries, "type")
        .and_then(Value::as_str)
        .ok_or_else(|| SerdeError::custom("missing string field `type`"))?;
    Ok((tag, entries))
}

fn field<T: Deserialize>(
    entries: &[(String, Value)],
    container: &str,
    name: &str,
) -> Result<T, SerdeError> {
    let v =
        serde::__find(entries, name).ok_or_else(|| SerdeError::missing_field(container, name))?;
    T::deserialize(v).map_err(|e| e.context(&format!("{container}.{name}")))
}

fn opt_field<T: Deserialize>(
    entries: &[(String, Value)],
    container: &str,
    name: &str,
) -> Result<Option<T>, SerdeError> {
    match serde::__find(entries, name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => T::deserialize(v)
            .map(Some)
            .map_err(|e| e.context(&format!("{container}.{name}"))),
    }
}

impl Serialize for CircuitSource {
    fn serialize(&self) -> Value {
        match self {
            CircuitSource::Named(name) => obj("named", vec![("name".to_owned(), name.serialize())]),
            CircuitSource::Bench { name, text } => obj(
                "bench",
                vec![
                    ("name".to_owned(), name.serialize()),
                    ("text".to_owned(), text.serialize()),
                ],
            ),
            CircuitSource::Layered {
                name,
                inputs,
                outputs,
                gates,
                seed,
            } => obj(
                "layered",
                vec![
                    ("name".to_owned(), name.serialize()),
                    ("inputs".to_owned(), inputs.serialize()),
                    ("outputs".to_owned(), outputs.serialize()),
                    ("gates".to_owned(), gates.serialize()),
                    ("seed".to_owned(), seed.serialize()),
                ],
            ),
        }
    }
}

impl Deserialize for CircuitSource {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        let (tag, e) = tag_of(v)?;
        match tag {
            "named" => Ok(CircuitSource::Named(field(e, "CircuitSource", "name")?)),
            "bench" => Ok(CircuitSource::Bench {
                name: field(e, "CircuitSource", "name")?,
                text: field(e, "CircuitSource", "text")?,
            }),
            "layered" => Ok(CircuitSource::Layered {
                name: field(e, "CircuitSource", "name")?,
                inputs: field(e, "CircuitSource", "inputs")?,
                outputs: field(e, "CircuitSource", "outputs")?,
                gates: field(e, "CircuitSource", "gates")?,
                seed: field(e, "CircuitSource", "seed")?,
            }),
            other => Err(SerdeError::custom(format!(
                "unknown circuit source `{other}`"
            ))),
        }
    }
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        match self {
            Request::Ping => obj("ping", vec![]),
            Request::Stats => obj("stats", vec![]),
            Request::Analyze {
                circuit,
                config,
                grids,
                deadline_ms,
            } => obj(
                "analyze",
                vec![
                    ("circuit".to_owned(), circuit.serialize()),
                    ("config".to_owned(), config.serialize()),
                    ("grids".to_owned(), grids.serialize()),
                    ("deadline_ms".to_owned(), deadline_ms.serialize()),
                ],
            ),
            Request::CornerSweep {
                circuit,
                config,
                grids,
                vdds,
                vths,
                charges,
                threads,
                deadline_ms,
            } => obj(
                "corner_sweep",
                vec![
                    ("circuit".to_owned(), circuit.serialize()),
                    ("config".to_owned(), config.serialize()),
                    ("grids".to_owned(), grids.serialize()),
                    ("vdds".to_owned(), vdds.serialize()),
                    ("vths".to_owned(), vths.serialize()),
                    ("charges".to_owned(), charges.serialize()),
                    ("threads".to_owned(), threads.serialize()),
                    ("deadline_ms".to_owned(), deadline_ms.serialize()),
                ],
            ),
            Request::Optimize {
                circuit,
                spec,
                budget_ms,
            } => obj(
                "optimize",
                vec![
                    ("circuit".to_owned(), circuit.serialize()),
                    ("spec".to_owned(), spec.serialize()),
                    ("budget_ms".to_owned(), budget_ms.serialize()),
                ],
            ),
            Request::Snapshot {
                circuit,
                config,
                grids,
            } => obj(
                "snapshot",
                vec![
                    ("circuit".to_owned(), circuit.serialize()),
                    ("config".to_owned(), config.serialize()),
                    ("grids".to_owned(), grids.serialize()),
                ],
            ),
            Request::Shutdown => obj("shutdown", vec![]),
        }
    }
}

impl Deserialize for Request {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        let (tag, e) = tag_of(v)?;
        match tag {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "analyze" => Ok(Request::Analyze {
                circuit: field(e, "Analyze", "circuit")?,
                config: field(e, "Analyze", "config")?,
                grids: field(e, "Analyze", "grids")?,
                deadline_ms: opt_field(e, "Analyze", "deadline_ms")?,
            }),
            "corner_sweep" => Ok(Request::CornerSweep {
                circuit: field(e, "CornerSweep", "circuit")?,
                config: field(e, "CornerSweep", "config")?,
                grids: field(e, "CornerSweep", "grids")?,
                vdds: field(e, "CornerSweep", "vdds")?,
                vths: field(e, "CornerSweep", "vths")?,
                charges: field(e, "CornerSweep", "charges")?,
                threads: field(e, "CornerSweep", "threads")?,
                deadline_ms: opt_field(e, "CornerSweep", "deadline_ms")?,
            }),
            "optimize" => Ok(Request::Optimize {
                circuit: field(e, "Optimize", "circuit")?,
                spec: field(e, "Optimize", "spec")?,
                budget_ms: opt_field(e, "Optimize", "budget_ms")?,
            }),
            "snapshot" => Ok(Request::Snapshot {
                circuit: field(e, "Snapshot", "circuit")?,
                config: field(e, "Snapshot", "config")?,
                grids: field(e, "Snapshot", "grids")?,
            }),
            other => Err(SerdeError::custom(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        match self {
            Response::Pong { version } => {
                obj("pong", vec![("version".to_owned(), version.serialize())])
            }
            Response::Stats(stats) => match stats.serialize() {
                Value::Object(fields) => obj("stats", fields),
                other => other,
            },
            Response::Analyzed(r) => match r.serialize() {
                Value::Object(fields) => obj("analyzed", fields),
                other => other,
            },
            Response::Swept { points } => {
                obj("swept", vec![("points".to_owned(), points.serialize())])
            }
            Response::Optimized(r) => match r.serialize() {
                Value::Object(fields) => obj("optimized", fields),
                other => other,
            },
            Response::Snapshotted { path, bytes } => obj(
                "snapshotted",
                vec![
                    ("path".to_owned(), path.serialize()),
                    ("bytes".to_owned(), bytes.serialize()),
                ],
            ),
            Response::ShuttingDown => obj("shutting_down", vec![]),
            Response::Error(e) => obj("error", vec![("error".to_owned(), e.serialize())]),
        }
    }
}

impl Deserialize for Response {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        let (tag, e) = tag_of(v)?;
        match tag {
            "pong" => Ok(Response::Pong {
                version: field(e, "Pong", "version")?,
            }),
            "stats" => PoolStats::deserialize(v).map(Response::Stats),
            "analyzed" => AnalyzeResult::deserialize(v).map(Response::Analyzed),
            "swept" => Ok(Response::Swept {
                points: field(e, "Swept", "points")?,
            }),
            "optimized" => OptimizeResult::deserialize(v).map(Response::Optimized),
            "snapshotted" => Ok(Response::Snapshotted {
                path: field(e, "Snapshotted", "path")?,
                bytes: field(e, "Snapshotted", "bytes")?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error(field(e, "Error", "error")?)),
            other => Err(SerdeError::custom(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

impl Serialize for ApiError {
    fn serialize(&self) -> Value {
        match self {
            ApiError::MalformedFrame { detail } => obj(
                "malformed_frame",
                vec![("detail".to_owned(), detail.serialize())],
            ),
            ApiError::Oversized { limit, got } => obj(
                "oversized",
                vec![
                    ("limit".to_owned(), limit.serialize()),
                    ("got".to_owned(), got.serialize()),
                ],
            ),
            ApiError::UnknownCircuit { name } => obj(
                "unknown_circuit",
                vec![("name".to_owned(), name.serialize())],
            ),
            ApiError::BadRequest { detail } => obj(
                "bad_request",
                vec![("detail".to_owned(), detail.serialize())],
            ),
            ApiError::Analysis { detail } => {
                obj("analysis", vec![("detail".to_owned(), detail.serialize())])
            }
            ApiError::Interrupted { stage } => {
                obj("interrupted", vec![("stage".to_owned(), stage.serialize())])
            }
            ApiError::ShuttingDown => obj("shutting_down", vec![]),
        }
    }
}

impl Deserialize for ApiError {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        let (tag, e) = tag_of(v)?;
        match tag {
            "malformed_frame" => Ok(ApiError::MalformedFrame {
                detail: field(e, "MalformedFrame", "detail")?,
            }),
            "oversized" => Ok(ApiError::Oversized {
                limit: field(e, "Oversized", "limit")?,
                got: field(e, "Oversized", "got")?,
            }),
            "unknown_circuit" => Ok(ApiError::UnknownCircuit {
                name: field(e, "UnknownCircuit", "name")?,
            }),
            "bad_request" => Ok(ApiError::BadRequest {
                detail: field(e, "BadRequest", "detail")?,
            }),
            "analysis" => Ok(ApiError::Analysis {
                detail: field(e, "Analysis", "detail")?,
            }),
            "interrupted" => Ok(ApiError::Interrupted {
                stage: field(e, "Interrupted", "stage")?,
            }),
            "shutting_down" => Ok(ApiError::ShuttingDown),
            other => Err(SerdeError::custom(format!("unknown error type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(v: &T) -> T
    where
        T: Serialize + Deserialize + PartialEq + std::fmt::Debug,
    {
        let text = serde_json::to_string(v).expect("serialize");
        let back: T = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(&back, v, "{text}");
        back
    }

    #[test]
    fn requests_round_trip() {
        round_trip(&Request::Ping);
        round_trip(&Request::Stats);
        round_trip(&Request::Shutdown);
        round_trip(&Request::Analyze {
            circuit: CircuitSource::Named("c17".into()),
            config: AsertaConfig::default(),
            grids: GridKind::Coarse,
            deadline_ms: Some(250),
        });
        round_trip(&Request::Analyze {
            circuit: CircuitSource::Bench {
                name: "x".into(),
                text: "INPUT(a)\n".into(),
            },
            config: AsertaConfig::fast(),
            grids: GridKind::Standard,
            deadline_ms: None,
        });
        round_trip(&Request::CornerSweep {
            circuit: CircuitSource::Layered {
                name: "l".into(),
                inputs: 8,
                outputs: 2,
                gates: 40,
                seed: 7,
            },
            config: AsertaConfig::fast(),
            grids: GridKind::Coarse,
            vdds: vec![0.9, 1.1],
            vths: vec![0.2],
            charges: vec![8.0e-15, 16.0e-15],
            threads: 0,
            deadline_ms: None,
        });
        round_trip(&Request::Optimize {
            circuit: CircuitSource::Named("c432".into()),
            spec: OptimizeSpec::default(),
            budget_ms: Some(5_000),
        });
        round_trip(&Request::Snapshot {
            circuit: CircuitSource::Named("sec32".into()),
            config: AsertaConfig::default(),
            grids: GridKind::Standard,
        });
    }

    #[test]
    fn responses_round_trip() {
        round_trip(&Response::Pong {
            version: "0.1.0".into(),
        });
        round_trip(&Response::Stats(PoolStats {
            sessions: 2,
            resident_bytes: 123_456,
            budget_bytes: 1 << 26,
            hits: 10,
            misses: 3,
            restored: 1,
            requests: 14,
        }));
        round_trip(&Response::Analyzed(AnalyzeResult {
            circuit: "c17".into(),
            gates: 6,
            unreliability: 1.25e-3,
            critical_delay_s: 3.5e-10,
            per_gate_unreliability: vec![1.0e-4, 2.0e-4],
        }));
        round_trip(&Response::Swept {
            points: vec![SweepPoint {
                vdd: 1.0,
                vth: 0.2,
                charge: 16.0e-15,
                unreliability: 2.0e-3,
                critical_delay_s: 4.0e-10,
            }],
        });
        round_trip(&Response::Optimized(OptimizeResult {
            baseline_unreliability: 1.0e-2,
            optimized_unreliability: 4.0e-3,
            delay_ratio: 1.01,
            energy_ratio: 1.2,
            area_ratio: 1.1,
            evaluations: 64,
            interrupted: false,
        }));
        round_trip(&Response::Snapshotted {
            path: "/tmp/x.sersnap".into(),
            bytes: 4096,
        });
        round_trip(&Response::ShuttingDown);
        for err in [
            ApiError::MalformedFrame {
                detail: "nope".into(),
            },
            ApiError::Oversized {
                limit: 1024,
                got: 4096,
            },
            ApiError::UnknownCircuit {
                name: "c9999".into(),
            },
            ApiError::BadRequest {
                detail: "bad".into(),
            },
            ApiError::Analysis {
                detail: "poisoned".into(),
            },
            ApiError::Interrupted {
                stage: "serve::sweep".into(),
            },
            ApiError::ShuttingDown,
        ] {
            round_trip(&Response::Error(err));
        }
    }

    #[test]
    fn floats_survive_the_wire_bitwise() {
        // The bitwise-fidelity contract leans on shortest round-trip
        // float text; pin it at the API layer.
        let xs = [1.0e-300, 0.1 + 0.2, f64::MIN_POSITIVE, 2.5e17, -1.0 / 3.0];
        for x in xs {
            let r = round_trip(&Response::Analyzed(AnalyzeResult {
                circuit: "c".into(),
                gates: 1,
                unreliability: x,
                critical_delay_s: -x,
                per_gate_unreliability: vec![x],
            }));
            let Response::Analyzed(r) = r else {
                unreachable!()
            };
            assert_eq!(r.unreliability.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn unknown_tags_are_typed_parse_errors() {
        assert!(serde_json::from_str::<Request>("{\"type\":\"frobnicate\"}").is_err());
        assert!(serde_json::from_str::<Request>("[1,2,3]").is_err());
        assert!(serde_json::from_str::<Response>("{\"no_type\":1}").is_err());
    }

    #[test]
    fn circuit_sources_instantiate() {
        let c17 = CircuitSource::Named("c17".into())
            .instantiate()
            .expect("c17");
        assert_eq!(c17.gate_count(), 6);
        assert!(CircuitSource::Named("sec32".into()).instantiate().is_ok());
        let err = CircuitSource::Named("c9999".into())
            .instantiate()
            .unwrap_err();
        assert!(matches!(err, ApiError::UnknownCircuit { .. }));
        // Equal layered specs are a stable identity: byte-equal circuits.
        let a = CircuitSource::Layered {
            name: "l".into(),
            inputs: 8,
            outputs: 2,
            gates: 40,
            seed: 3,
        };
        assert_eq!(
            a.instantiate().expect("layered"),
            a.instantiate().expect("layered")
        );
    }

    #[test]
    fn optimize_spec_maps_onto_the_library_config() {
        let spec = OptimizeSpec {
            algorithm: "coord".into(),
            profile: "tiny".into(),
            iterations: 3,
            seed: Some(42),
            vectors: Some(256),
            threads: 2,
        };
        let cfg = spec.to_config().expect("valid spec");
        assert_eq!(cfg.algorithm, Algorithm::CoordinateDescent);
        assert_eq!(cfg.iterations, 3);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.aserta.sensitization_vectors, 256);
        assert!(OptimizeSpec {
            algorithm: "magic".into(),
            ..OptimizeSpec::default()
        }
        .to_config()
        .is_err());
    }
}
