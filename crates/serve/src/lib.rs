//! `ser_serve`: a resident soft-error analysis daemon.
//!
//! The library layers a **service shape** over the workspace's session
//! API: a threaded TCP/Unix-socket server ([`server`]) speaks a
//! length-prefixed JSON protocol ([`proto`]) of typed [`api::Request`]s
//! and [`api::Response`]s, and routes analytical work through a
//! byte-budgeted pool of warm [`aserta::AnalysisSession`]s ([`pool`])
//! instead of rebuilding the Monte-Carlo `P_ij` estimate and the
//! characterized-cell cache per request.
//!
//! Three contracts carry over from the library layer unchanged, and the
//! protocol integration tests pin them end to end:
//!
//! * **Bitwise fidelity** — a response served from a warm session is
//!   bit-for-bit the answer a fresh in-process analysis at the same
//!   configuration produces, because warm requests are expressed as
//!   session deltas (`try_set_charge` then `try_set_cells`) and the
//!   session fidelity contract makes delta'd state equal fresh state.
//!   JSON is safe to carry that promise: the vendored serializer prints
//!   `f64`s with shortest round-trip formatting.
//! * **Typed failure** — malformed frames, oversized payloads, unknown
//!   circuits and exhausted deadlines all come back as
//!   [`api::ApiError`] values, never a dropped connection mid-frame and
//!   never a panic (the crate denies `unwrap`/`expect` outside tests).
//! * **Crash safety** — every session built into the pool is eagerly
//!   imaged to a `.sersnap` file, so a `kill -9`'d daemon restarted on
//!   the same `--pool-dir` restores its warm pool and keeps answering
//!   bitwise-identically.
//!
//! Per-request execution budgets reuse the library's cooperative
//! [`Deadline`] machinery and apply **only to warm delta work** — a
//! governed cold build could truncate the `P_ij` estimate and poison
//! the pool with a non-canonical session, so cold builds always run to
//! completion.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod pool;
pub mod proto;
pub mod server;

pub use api::{ApiError, CircuitSource, GridKind, OptimizeSpec, Request, Response};
pub use client::{Client, ClientError};
pub use pool::{PoolConfig, SessionPool};
pub use proto::{FrameError, DEFAULT_MAX_FRAME};
pub use server::{serve, Listen, ServeError, ServerConfig, ServerHandle};

// The engine knobs a deployment tunes, re-exported so daemon embedders
// need only this crate.
pub use ser_logicsim::{EngineConfig, EngineConfigError};
pub use ser_netlist::govern::{CancelToken, Deadline};
