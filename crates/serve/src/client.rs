//! A blocking client for the daemon's frame protocol.

use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::api::{Request, Response};
use crate::proto::{self, Conn, FrameError, DEFAULT_MAX_FRAME};
use crate::server::Listen;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting to the endpoint failed.
    Connect(std::io::Error),
    /// The request/response exchange failed at the frame layer.
    Frame(FrameError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connecting to the server failed: {e}"),
            ClientError::Frame(e) => write!(f, "protocol exchange failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Connect(e) => Some(e),
            ClientError::Frame(e) => Some(e),
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to a running daemon. Requests are synchronous:
/// [`Client::request`] writes one frame and blocks for the reply.
#[derive(Debug)]
pub struct Client {
    conn: Conn,
    max_frame: usize,
}

impl Client {
    /// Connects to a daemon endpoint.
    ///
    /// # Errors
    ///
    /// [`ClientError::Connect`] when the endpoint is unreachable.
    pub fn connect(endpoint: &Listen) -> Result<Self, ClientError> {
        let conn = match endpoint {
            Listen::Unix(path) => {
                Conn::Unix(UnixStream::connect(path).map_err(ClientError::Connect)?)
            }
            Listen::Tcp(addr) => {
                Conn::Tcp(TcpStream::connect(addr.as_str()).map_err(ClientError::Connect)?)
            }
        };
        Ok(Client {
            conn,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Overrides the response-frame ceiling (the server's replies to
    /// huge sweeps can legitimately be large).
    #[must_use]
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Frame`] when the exchange fails; a typed server
    /// rejection is a *successful* exchange returning
    /// [`Response::Error`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        proto::write_frame(&mut self.conn, request)?;
        Ok(proto::read_message(&mut self.conn, self.max_frame)?)
    }
}
