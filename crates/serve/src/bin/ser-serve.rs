//! `ser-serve`: the resident soft-error analysis daemon and its
//! command-line client.
//!
//! ```text
//! ser-serve serve    --listen unix:/tmp/ser.sock [--workers N] [--pool-budget BYTES]
//!                    [--pool-dir DIR] [--max-frame BYTES] [--threads N] [--cone-chunk N]
//!                    [--lanes 1|2|4|8] [--pij-tol T] [--exact-support N]
//! ser-serve ping     --connect unix:/tmp/ser.sock
//! ser-serve stats    --connect ...
//! ser-serve analyze  --connect ... --circuit c17 [--vectors N] [--charge-fc Q]
//!                    [--seed S] [--grids coarse|standard] [--deadline-ms MS]
//! ser-serve sweep    --connect ... --circuit c17 [--vdds 0.9,1.1] [--vths 0.2]
//!                    [--charges-fc 8,16,32] [--threads N] [...analyze flags]
//! ser-serve optimize --connect ... --circuit c17 [--algo sqp] [--profile dual]
//!                    [--iters N] [--budget-ms MS]
//! ser-serve snapshot --connect ... --circuit c17 [--vectors N] [--grids ...]
//! ser-serve shutdown --connect ...
//! ```
//!
//! Client subcommands print the server's JSON response on stdout and
//! exit non-zero on a typed error, so shell traces (the CI smoke job)
//! can assert on both. Engine knobs resolve as explicit flag > `SER_*`
//! environment variable > built-in default; a malformed environment is
//! a startup error, not a silent fallback.

use std::path::PathBuf;
use std::process::ExitCode;

use ser_serve::api::{CircuitSource, GridKind, OptimizeSpec, Request, Response};
use ser_serve::pool::PoolConfig;
use ser_serve::server::{serve, Listen, ServerConfig};
use ser_serve::{Client, EngineConfig, DEFAULT_MAX_FRAME};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let outcome = match cmd.as_str() {
        "serve" => cmd_serve(rest),
        "ping" => client_round_trip(rest, |_| Ok(Request::Ping)),
        "stats" => client_round_trip(rest, |_| Ok(Request::Stats)),
        "shutdown" => client_round_trip(rest, |_| Ok(Request::Shutdown)),
        "analyze" => client_round_trip(rest, |a| {
            Ok(Request::Analyze {
                circuit: circuit_flag(a)?,
                config: config_flags(a)?,
                grids: grids_flag(a)?,
                deadline_ms: flag_parse_opt(a, "--deadline-ms")?,
            })
        }),
        "sweep" => client_round_trip(rest, |a| {
            Ok(Request::CornerSweep {
                circuit: circuit_flag(a)?,
                config: config_flags(a)?,
                grids: grids_flag(a)?,
                vdds: list_flag(a, "--vdds", &[0.9, 1.1])?,
                vths: list_flag(a, "--vths", &[0.2])?,
                charges: list_flag(a, "--charges-fc", &[8.0, 16.0, 32.0])?
                    .into_iter()
                    .map(|fc| fc * 1.0e-15)
                    .collect(),
                threads: flag_parse(a, "--threads", 0)?,
                deadline_ms: flag_parse_opt(a, "--deadline-ms")?,
            })
        }),
        "optimize" => client_round_trip(rest, |a| {
            let mut spec = OptimizeSpec::default();
            if let Some(algo) = flag(a, "--algo") {
                spec.algorithm = algo.to_owned();
            }
            if let Some(profile) = flag(a, "--profile") {
                spec.profile = profile.to_owned();
            }
            spec.iterations = flag_parse(a, "--iters", spec.iterations)?;
            spec.seed = flag_parse_opt(a, "--seed")?;
            spec.vectors = flag_parse_opt(a, "--vectors")?;
            spec.threads = flag_parse(a, "--threads", spec.threads)?;
            Ok(Request::Optimize {
                circuit: circuit_flag(a)?,
                spec,
                budget_ms: flag_parse_opt(a, "--budget-ms")?,
            })
        }),
        "snapshot" => client_round_trip(rest, |a| {
            Ok(Request::Snapshot {
                circuit: circuit_flag(a)?,
                config: config_flags(a)?,
                grids: grids_flag(a)?,
            })
        }),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match outcome {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ser-serve: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage: ser-serve <serve|ping|stats|analyze|sweep|optimize|snapshot|shutdown> [flags]
  serve     --listen unix:<path>|tcp:<host:port> [--workers N] [--pool-budget BYTES]
            [--pool-dir DIR] [--max-frame BYTES] [--threads N] [--cone-chunk N]
            [--lanes 1|2|4|8] [--pij-tol T] [--exact-support N]
  clients   --connect unix:<path>|tcp:<host:port> plus per-command flags
            (see the crate README's Serving section)";

// ------------------------------------------------------------- serve

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let listen = Listen::parse(
        flag(args, "--listen").ok_or("serve needs --listen unix:<path> or tcp:<host:port>")?,
    )?;
    // Strict env: a malformed SER_* variable aborts startup loudly.
    let env_engine = EngineConfig::from_env().map_err(|e| e.to_string())?;
    let mut explicit = EngineConfig::default();
    if let Some(threads) = flag_parse_opt::<usize>(args, "--threads")? {
        explicit = explicit.with_threads(threads);
    }
    if let Some(chunk) = flag_parse_opt::<usize>(args, "--cone-chunk")? {
        explicit = explicit.with_cone_chunk(chunk);
    }
    // Estimator knobs are validated here, not silently sanitized at
    // resolution: a daemon started with a bad accuracy flag must refuse
    // to boot, exactly like a malformed SER_* variable.
    if let Some(lanes) = flag_parse_opt::<usize>(args, "--lanes")? {
        if !ser_logicsim::engine::VALID_SIMD_LANES.contains(&lanes) {
            return Err(format!("--lanes expects one of 1, 2, 4, 8, got `{lanes}`"));
        }
        explicit = explicit.with_simd_lanes(lanes);
    }
    if let Some(tol) = flag_parse_opt::<f64>(args, "--pij-tol")? {
        if !tol.is_finite() || tol < 0.0 {
            return Err(format!(
                "--pij-tol expects a finite non-negative number (0 disables adaptivity), got `{tol}`"
            ));
        }
        explicit = explicit.with_pij_tolerance(tol);
    }
    if let Some(support) = flag_parse_opt::<usize>(args, "--exact-support")? {
        explicit = explicit.with_exact_support(support);
    }
    let engine = explicit.overlay(&env_engine);

    let mut pool = PoolConfig {
        engine,
        ..PoolConfig::default()
    };
    if let Some(budget) = flag_parse_opt::<usize>(args, "--pool-budget")? {
        pool.budget_bytes = budget;
    }
    pool.dir = flag(args, "--pool-dir").map(PathBuf::from);

    let mut config = ServerConfig::new(listen);
    config.pool = pool;
    config.workers = flag_parse(args, "--workers", config.workers)?;
    config.max_frame = flag_parse(args, "--max-frame", DEFAULT_MAX_FRAME)?;

    let handle = serve(config).map_err(|e| e.to_string())?;
    match handle.endpoint() {
        Listen::Unix(path) => eprintln!("ser-serve: listening on unix:{}", path.display()),
        Listen::Tcp(addr) => eprintln!("ser-serve: listening on tcp:{addr}"),
    }
    // Blocks until a Shutdown request drains the workers; then images
    // the pool and removes the socket file.
    handle.join();
    eprintln!("ser-serve: shut down cleanly");
    Ok(ExitCode::SUCCESS)
}

// ------------------------------------------------------------- client

fn client_round_trip(
    args: &[String],
    build: impl FnOnce(&[String]) -> Result<Request, String>,
) -> Result<ExitCode, String> {
    let endpoint = Listen::parse(
        flag(args, "--connect").ok_or("client commands need --connect unix:<path>|tcp:<addr>")?,
    )?;
    let request = build(args)?;
    let mut client = Client::connect(&endpoint).map_err(|e| e.to_string())?;
    let response = client.request(&request).map_err(|e| e.to_string())?;
    let text = serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?;
    println!("{text}");
    match response {
        Response::Error(e) => {
            eprintln!("ser-serve: server rejected the request: {e}");
            Ok(ExitCode::FAILURE)
        }
        _ => Ok(ExitCode::SUCCESS),
    }
}

/// `--circuit c17` (ISCAS'85 / sec32) or
/// `--circuit layered:<gates>:<inputs>:<outputs>:<seed>`.
fn circuit_flag(args: &[String]) -> Result<CircuitSource, String> {
    let spec = flag(args, "--circuit").ok_or("this command needs --circuit <name>")?;
    if let Some(body) = spec.strip_prefix("layered:") {
        let parts: Vec<&str> = body.split(':').collect();
        let [gates, inputs, outputs, seed] = parts.as_slice() else {
            return Err(format!(
                "layered spec `{spec}` must be layered:<gates>:<inputs>:<outputs>:<seed>"
            ));
        };
        let parse = |what: &str, text: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("layered {what} `{text}` is not a number"))
        };
        let gates = parse("gates", gates)?;
        return Ok(CircuitSource::Layered {
            name: format!("layered{gates}"),
            inputs: parse("inputs", inputs)?,
            outputs: parse("outputs", outputs)?,
            gates,
            seed: parse("seed", seed)?,
        });
    }
    Ok(CircuitSource::Named(spec.to_owned()))
}

fn config_flags(args: &[String]) -> Result<aserta::AsertaConfig, String> {
    let mut cfg = aserta::AsertaConfig::default();
    // Daemon-client default: fast enough for interactive traces; raise
    // --vectors for paper-fidelity numbers.
    cfg.sensitization_vectors = flag_parse(args, "--vectors", 512)?;
    cfg.seed = flag_parse(args, "--seed", cfg.seed)?;
    if let Some(fc) = flag_parse_opt::<f64>(args, "--charge-fc")? {
        cfg.charge = fc * 1.0e-15;
    }
    Ok(cfg)
}

fn grids_flag(args: &[String]) -> Result<GridKind, String> {
    match flag(args, "--grids") {
        None | Some("coarse") => Ok(GridKind::Coarse),
        Some("standard") => Ok(GridKind::Standard),
        Some(other) => Err(format!("unknown grids `{other}` (coarse|standard)")),
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(text) => text
            .parse()
            .map_err(|_| format!("{name} expects a number, got `{text}`")),
    }
}

fn flag_parse_opt<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match flag(args, name) {
        None => Ok(None),
        Some(text) => text
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} expects a number, got `{text}`")),
    }
}

fn list_flag(args: &[String], name: &str, default: &[f64]) -> Result<Vec<f64>, String> {
    match flag(args, name) {
        None => Ok(default.to_vec()),
        Some(text) => text
            .split(',')
            .map(|part| {
                part.trim()
                    .parse()
                    .map_err(|_| format!("{name} expects comma-separated numbers, got `{part}`"))
            })
            .collect(),
    }
}
