//! Criterion bench behind Fig. 3: the full ASERTA analysis of c432 (the
//! fast side of the correlation experiment; the transistor-level
//! reference side is measured in `runtime_scaling`).

use aserta::{analyze, AsertaConfig, CircuitCells};
use criterion::{criterion_group, criterion_main, Criterion};
use ser_cells::{CharGrids, Library};
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_netlist::generate;
use ser_spice::Technology;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let circuit = generate::iscas85("c432").expect("bundled benchmark");
    let cells = CircuitCells::nominal(&circuit);
    let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
    let cfg = AsertaConfig::default();
    let pij = sensitization_probabilities(&circuit, cfg.sensitization_vectors, cfg.seed);
    // Warm the lazy library so the timer sees pure analysis.
    let _ = analyze(&circuit, &cells, &mut library, &pij, &cfg);

    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    group.bench_function("aserta_analyze_c432", |b| {
        b.iter(|| {
            black_box(analyze(
                black_box(&circuit),
                &cells,
                &mut library,
                &pij,
                &cfg,
            ))
        })
    });
    group.bench_function("pij_10000_vectors_c432", |b| {
        b.iter(|| black_box(sensitization_probabilities(&circuit, 10_000, 7)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
