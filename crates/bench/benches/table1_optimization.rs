//! Criterion bench behind Table 1: one SERTOPT cost evaluation on c432
//! (tension move → matching → ASERTA → Eq. 5), the unit of work every
//! optimizer iteration repeats.

use aserta::AsertaConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use ser_cells::{CharGrids, Library};
use ser_netlist::generate;
use ser_spice::Technology;
use sertopt::matching::MatchingConfig;
use sertopt::{size_for_speed, AllowedParams, CostWeights, DelayProblem, EnergyModel};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let circuit = generate::iscas85("c432").expect("bundled benchmark");
    let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
    let allowed = AllowedParams::tiny();
    let matching = MatchingConfig::new(allowed);
    let baseline = size_for_speed(
        &circuit,
        &mut library,
        &[1.0, 2.0, 4.0],
        matching.load_model,
        2.0,
    );
    let mut aserta_cfg = AsertaConfig::fast();
    aserta_cfg.sensitization_vectors = 2048;
    let mut problem = DelayProblem::new(
        &circuit,
        &mut library,
        baseline,
        CostWeights::default(),
        matching,
        aserta_cfg,
        EnergyModel::default(),
    );
    let dim = problem.dim();
    let phi: Vec<f64> = (0..dim).map(|k| 5.0e-12 * ((k % 5) as f64 - 2.0)).collect();

    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("cost_evaluation_c432", |b| {
        b.iter(|| black_box(problem.evaluate_phi(black_box(&phi)).cost))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
