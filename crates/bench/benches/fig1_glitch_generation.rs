//! Criterion bench behind Fig. 1: the strike-transient kernel that
//! produces one generated-glitch-width point, plus the full four-knob
//! sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ser_bench::sweeps::{fig1_series, SweepConfig, SweepParam};
use ser_netlist::GateKind;
use ser_spice::transient::{generated_glitch_width, TransientConfig};
use ser_spice::units::FF;
use ser_spice::{GateElectrical, GateParams, Strike, Technology};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let tech = Technology::ptm70();
    let cfg = TransientConfig::default();
    let strike = Strike::charge_fc(16.0);
    let inv = GateElectrical::from_params(&tech, &GateParams::new(GateKind::Not, 1));

    c.bench_function("fig1/strike_transient_point", |b| {
        b.iter(|| {
            black_box(generated_glitch_width(
                &tech,
                black_box(&inv),
                false,
                2.0 * FF,
                &strike,
                &cfg,
            ))
        })
    });

    let mut group = c.benchmark_group("fig1/full_sweep");
    group.sample_size(10);
    group.bench_function("all_four_knobs", |b| {
        let sweep_cfg = SweepConfig::default();
        b.iter(|| {
            for p in SweepParam::ALL {
                black_box(fig1_series(&tech, p, &sweep_cfg));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
