//! Criterion bench behind Fig. 2: the glitch-propagation transient kernel
//! (one 50 ps input-glitch response).

use criterion::{criterion_group, criterion_main, Criterion};
use ser_netlist::GateKind;
use ser_spice::transient::{propagated_glitch_width, TransientConfig};
use ser_spice::units::{FF, PS};
use ser_spice::{GateElectrical, GateParams, Technology};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let tech = Technology::ptm70();
    let cfg = TransientConfig::default();
    let inv = GateElectrical::from_params(&tech, &GateParams::new(GateKind::Not, 1));
    let and2 = GateElectrical::from_params(&tech, &GateParams::new(GateKind::And, 2));

    c.bench_function("fig2/propagate_50ps_inverter", |b| {
        b.iter(|| {
            black_box(propagated_glitch_width(
                &tech,
                black_box(&inv),
                50.0 * PS,
                10.0 * PS,
                2.0 * FF,
                &cfg,
            ))
        })
    });
    c.bench_function("fig2/propagate_50ps_two_stage_and", |b| {
        b.iter(|| {
            black_box(propagated_glitch_width(
                &tech,
                black_box(&and2),
                50.0 * PS,
                10.0 * PS,
                2.0 * FF,
                &cfg,
            ))
        })
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
