//! Criterion bench behind the §5 runtime claims: ASERTA analysis time as
//! circuit size grows (the paper: 15 s on c432 → 200 s on c7552 in
//! MATLAB; "orders of magnitude less than SPICE"), plus one
//! transistor-level strike for the SPICE-side scale.

use aserta::{analyze, AsertaConfig, CircuitCells};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ser_cells::{CharGrids, Library};
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_netlist::generate;
use ser_spice::circuit_sim::{
    static_values, strike_po_widths, CircuitElectrical, CircuitSimConfig,
};
use ser_spice::Technology;
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let tech = Technology::ptm70();
    let mut group = c.benchmark_group("runtime/aserta_analyze");
    group.sample_size(10);
    for name in ["c17", "c432", "c880", "c1908"] {
        let circuit = generate::iscas85(name).expect("bundled benchmark");
        let cells = CircuitCells::nominal(&circuit);
        let mut library = Library::new(tech.clone(), CharGrids::coarse());
        let cfg = AsertaConfig {
            sensitization_vectors: 2048,
            ..AsertaConfig::default()
        };
        let pij = sensitization_probabilities(&circuit, cfg.sensitization_vectors, cfg.seed);
        let _ = analyze(&circuit, &cells, &mut library, &pij, &cfg);
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| black_box(analyze(&circuit, &cells, &mut library, &pij, &cfg)))
        });
    }
    group.finish();

    // One analog strike on c432 — multiply by gates × vectors for the
    // full SPICE-reference cost the paper contrasts against.
    let circuit = generate::iscas85("c432").expect("bundled benchmark");
    let sim_cfg = CircuitSimConfig::default();
    let elec = CircuitElectrical::nominal(&tech, &circuit, &sim_cfg);
    let statics = static_values(&circuit, &vec![true; circuit.primary_inputs().len()]);
    let struck = circuit.gates().next().expect("has gates");
    let mut group = c.benchmark_group("runtime/reference_strike");
    group.sample_size(10);
    group.bench_function("one_strike_c432", |b| {
        b.iter(|| {
            black_box(strike_po_widths(
                &tech, &circuit, &elec, &statics, struck, &sim_cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
