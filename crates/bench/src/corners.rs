//! Multi-corner scenario sweeps: the Fig. 1/2/Table 1 parameter grids
//! (VDD × Vth × strike-charge spectrum) evaluated over a whole circuit.
//!
//! The paper's figures sweep one knob of one inverter; production
//! soft-error sign-off sweeps *operating corners* of a whole design. A
//! corner only moves cell parameters and the injected charge — the
//! circuit's logic (and therefore `P_ij`, the static probabilities and
//! the Eq. 2 weight cache) is corner-invariant. [`sweep_session`]
//! therefore expresses each corner as a batch of per-gate deltas
//! against one warm [`AnalysisSession`]: the Monte-Carlo estimate, the
//! CSR/cone artifacts and the characterized-cell cache are paid once
//! for the whole grid, and corners are dealt round-robin over per-thread
//! session replicas exactly like
//! [`sertopt::DelayProblem::evaluate_batch`] deals candidates.
//!
//! [`sweep_fresh`] is the baseline: one full [`analyze_fresh`] — a
//! cold-start session plus a Monte-Carlo `P_ij` re-estimate — per
//! corner. Both produce **bitwise identical** points for every thread
//! count (each corner's session state equals a fresh analysis by the
//! session's fidelity contract), so the wall-time ratio recorded by
//! `perf_snapshot` measures warm-session reuse against the cold-start
//! path.

use aserta::{analyze_fresh, AnalysisSession, AsertaConfig, CircuitCells};
use ser_cells::Library;
use ser_logicsim::sensitize::simulation_threads;
use ser_netlist::Circuit;

/// One operating corner: every gate moved to the given supply and
/// threshold voltage, with strikes injecting the given charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Threshold voltage, volts.
    pub vth: f64,
    /// Injected strike charge, coulombs (the flux-spectrum axis).
    pub charge: f64,
}

impl Corner {
    /// Human-readable corner label (`vdd=1.00V vth=0.20V q=16fC`).
    pub fn label(&self) -> String {
        format!(
            "vdd={:.2}V vth={:.2}V q={:.0}fC",
            self.vdd,
            self.vth,
            self.charge * 1e15
        )
    }

    /// The corner's cell assignment: `base` with every gate's VDD/Vth
    /// moved to the corner point (sizes and lengths stay as assigned).
    pub fn cells(&self, circuit: &Circuit, base: &CircuitCells) -> CircuitCells {
        CircuitCells::from_fn(circuit, |id| {
            let Some(&(mut p)) = base.get(id) else {
                panic!("gates carry parameters")
            };
            p.vdd = self.vdd;
            p.vth = self.vth;
            p
        })
    }
}

/// A full corner grid (cartesian product, VDD-major then Vth then
/// charge).
#[derive(Debug, Clone, PartialEq)]
pub struct CornerGrid {
    /// Supply voltages to visit, volts.
    pub vdds: Vec<f64>,
    /// Threshold voltages to visit, volts.
    pub vths: Vec<f64>,
    /// Strike charges to visit, coulombs.
    pub charges: Vec<f64>,
}

impl CornerGrid {
    /// The paper-flavoured grid: the Fig. 1/2 VDD and Vth axes crossed
    /// with a 3-point charge spectrum around the paper's fixed 16 fC
    /// (27 corners).
    pub fn table1_style() -> Self {
        CornerGrid {
            vdds: vec![0.8, 1.0, 1.2],
            vths: vec![0.15, 0.20, 0.25],
            charges: vec![8.0e-15, 16.0e-15, 32.0e-15],
        }
    }

    /// A small CI grid (6 corners).
    pub fn smoke() -> Self {
        CornerGrid {
            vdds: vec![0.9, 1.1],
            vths: vec![0.20],
            charges: vec![8.0e-15, 16.0e-15, 32.0e-15],
        }
    }

    /// The grid flattened into corner points.
    pub fn corners(&self) -> Vec<Corner> {
        let mut out = Vec::with_capacity(self.len());
        for &vdd in &self.vdds {
            for &vth in &self.vths {
                for &charge in &self.charges {
                    out.push(Corner { vdd, vth, charge });
                }
            }
        }
        out
    }

    /// Number of corners in the grid.
    pub fn len(&self) -> usize {
        self.vdds.len() * self.vths.len() * self.charges.len()
    }

    /// Whether the grid is empty along any axis.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why one corner of a sweep failed to evaluate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SweepError {
    /// The session rejected the corner or poisoned itself on it (the
    /// replica heals with a full rebuild before its next corner).
    Analysis(aserta::AnalysisError),
    /// A corner evaluation panicked; the panic was caught at the
    /// thread-scope boundary and the replica was rebuilt at the base
    /// assignment.
    Panicked,
    /// A `fail-points` test hook fired.
    FaultInjected(&'static str),
}

impl From<aserta::AnalysisError> for SweepError {
    fn from(e: aserta::AnalysisError) -> Self {
        SweepError::Analysis(e)
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Analysis(e) => write!(f, "corner analysis failed: {e}"),
            SweepError::Panicked => write!(f, "corner evaluation panicked (caught)"),
            SweepError::FaultInjected(name) => write!(f, "fault injected at `{name}`"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

/// One evaluated corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerPoint {
    /// The corner evaluated.
    pub corner: Corner,
    /// Circuit unreliability `U` (Eq. 4) at the corner.
    pub unreliability: f64,
    /// Critical PI→PO path delay at the corner, seconds.
    pub critical_delay: f64,
}

/// The fresh baseline: one full [`analyze_fresh`] (including the
/// Monte-Carlo `P_ij` re-estimate) per corner.
pub fn sweep_fresh(
    circuit: &Circuit,
    base: &CircuitCells,
    library: &mut Library,
    cfg: &AsertaConfig,
    corners: &[Corner],
) -> Vec<CornerPoint> {
    corners
        .iter()
        .map(|corner| {
            let cells = corner.cells(circuit, base);
            let mut corner_cfg = cfg.clone();
            corner_cfg.charge = corner.charge;
            let report = analyze_fresh(circuit, &cells, library, &corner_cfg);
            CornerPoint {
                corner: *corner,
                unreliability: report.unreliability,
                critical_delay: report.timing.critical_path_delay(circuit),
            }
        })
        .collect()
}

/// The session engine: one warm [`AnalysisSession`] (cloned into up to
/// `threads` replicas; 0 = the `SER_SIM_THREADS`/available-parallelism
/// default), each corner applied as a cell-delta batch plus a charge
/// move. Results are bitwise identical to [`sweep_fresh`] and to every
/// other thread count.
pub fn sweep_session(
    circuit: &Circuit,
    base: &CircuitCells,
    library: Library,
    cfg: &AsertaConfig,
    corners: &[Corner],
    threads: usize,
) -> Vec<CornerPoint> {
    try_sweep_session(circuit, base, library, cfg, corners, threads)
        .into_iter()
        .map(|p| match p {
            Ok(p) => p,
            Err(e) => panic!("sweep_session: {e}"),
        })
        .collect()
}

/// Fallible [`sweep_session`]: one `Result` per corner in grid order. A
/// corner the session rejects or poisons on (or that a `fail-points`
/// hook fails) surfaces as a typed [`SweepError`]; the replica heals
/// itself with a full rebuild before its next corner, so one bad corner
/// never taints the rest of the grid. Panics inside a corner evaluation
/// are caught per corner at the [`std::thread::scope`] boundary.
pub fn try_sweep_session(
    circuit: &Circuit,
    base: &CircuitCells,
    library: Library,
    cfg: &AsertaConfig,
    corners: &[Corner],
    threads: usize,
) -> Vec<Result<CornerPoint, SweepError>> {
    let mut session =
        match AnalysisSession::builder(circuit, base.clone(), library, cfg.clone()).build() {
            Ok(s) => s,
            Err(e) => panic!("sweep_session: {e}"),
        };
    let workers = if threads == 0 {
        simulation_threads()
    } else {
        threads
    }
    .min(corners.len())
    .max(1);
    if workers == 1 {
        return corners
            .iter()
            .map(|c| eval_corner_caught(&mut session, circuit, base, c))
            .collect();
    }
    let mut replicas: Vec<AnalysisSession<'_>> =
        (0..workers - 1).map(|_| session.clone()).collect();
    replicas.push(session);
    let n_corners = corners.len();
    let mut tagged: Vec<(usize, Result<CornerPoint, SweepError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = replicas
            .iter_mut()
            .enumerate()
            .map(|(w, replica)| {
                scope.spawn(move || {
                    corners
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(idx, c)| (idx, eval_corner_caught(replica, circuit, base, c)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .flat_map(|(w, h)| match h.join() {
                Ok(out) => out,
                // Backstop for a panic outside the per-corner catch
                // (none is known): report the worker's whole stride
                // failed rather than unwinding out of the sweep.
                Err(_) => (w..n_corners)
                    .step_by(workers)
                    .map(|idx| (idx, Err(SweepError::Panicked)))
                    .collect(),
            })
            .collect()
    });
    tagged.sort_by_key(|&(idx, _)| idx);
    tagged.into_iter().map(|(_, p)| p).collect()
}

/// [`eval_corner`] with a per-corner panic catch; a caught panic leaves
/// the replica rebuilt at the base assignment so later corners stay
/// exact.
fn eval_corner_caught(
    session: &mut AnalysisSession<'_>,
    circuit: &Circuit,
    base: &CircuitCells,
    corner: &Corner,
) -> Result<CornerPoint, SweepError> {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        eval_corner(session, circuit, base, corner)
    }));
    match attempt {
        Ok(r) => r,
        Err(_) => {
            let _ = session.recover_with(base.clone());
            Err(SweepError::Panicked)
        }
    }
}

/// Moves a session to one corner and reads the point. Exact regardless
/// of the replica's prior state (the session fidelity contract), which
/// is what makes the round-robin deal thread-count-invariant. A
/// poisoned replica heals itself first with a full rebuild at the
/// corner's own assignment.
fn eval_corner(
    session: &mut AnalysisSession<'_>,
    circuit: &Circuit,
    base: &CircuitCells,
    corner: &Corner,
) -> Result<CornerPoint, SweepError> {
    ser_netlist::failpoint!(
        "ser_bench::corner_eval",
        return Err(SweepError::FaultInjected("ser_bench::corner_eval"))
    );
    if session.is_poisoned() {
        session.recover_with(corner.cells(circuit, base))?;
    }
    // Charge first: the cell-delta pass then derives its generated
    // widths directly at the corner's charge instead of deriving them at
    // the previous corner's charge only for set_charge to redo them all.
    session.try_set_charge(corner.charge)?;
    session.try_set_cells(&corner.cells(circuit, base))?;
    Ok(CornerPoint {
        corner: *corner,
        unreliability: session.unreliability(),
        critical_delay: session.critical_delay(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_cells::CharGrids;
    use ser_netlist::generate;
    use ser_spice::Technology;

    fn lib() -> Library {
        Library::new(Technology::ptm70(), CharGrids::coarse())
    }

    fn cfg() -> AsertaConfig {
        let mut c = AsertaConfig::fast();
        c.sensitization_vectors = 256;
        c
    }

    #[test]
    fn grid_is_cartesian_in_declared_order() {
        let grid = CornerGrid::smoke();
        let corners = grid.corners();
        assert_eq!(corners.len(), grid.len());
        assert_eq!(corners[0].vdd, grid.vdds[0]);
        assert_eq!(corners[0].charge, grid.charges[0]);
        assert_eq!(corners[1].charge, grid.charges[1]);
        assert_eq!(corners.last().unwrap().vdd, *grid.vdds.last().unwrap());
    }

    #[test]
    fn session_sweep_matches_fresh_bitwise() {
        let c = generate::sec32("s");
        let base = CircuitCells::nominal(&c);
        let corners = CornerGrid::smoke().corners();
        let mut fresh_lib = lib();
        let fresh = sweep_fresh(&c, &base, &mut fresh_lib, &cfg(), &corners);
        let warm = sweep_session(&c, &base, lib(), &cfg(), &corners, 1);
        assert_eq!(fresh, warm, "fresh and session sweeps must agree bitwise");
        // Corners must actually differ (the sweep is not degenerate).
        assert!(fresh
            .windows(2)
            .any(|w| w[0].unreliability != w[1].unreliability));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let c = generate::c17();
        let base = CircuitCells::nominal(&c);
        let corners = CornerGrid::table1_style().corners();
        let one = sweep_session(&c, &base, lib(), &cfg(), &corners, 1);
        for threads in [2usize, 3, 8] {
            let t = sweep_session(&c, &base, lib(), &cfg(), &corners, threads);
            assert_eq!(one, t, "{threads} threads");
        }
    }

    /// An injected fault fails exactly the corner it hits; the rest of
    /// the grid is bitwise identical to a fault-free sweep.
    #[test]
    #[cfg(feature = "fail-points")]
    fn injected_corner_fault_is_contained() {
        use ser_netlist::failpoint::{self, FailAction};

        let c = generate::c17();
        let base = CircuitCells::nominal(&c);
        let corners = CornerGrid::smoke().corners();
        let clean = sweep_session(&c, &base, lib(), &cfg(), &corners, 1);

        let _guard = failpoint::scenario();
        failpoint::set_times("ser_bench::corner_eval", FailAction::Error, 1);
        let faulted = try_sweep_session(&c, &base, lib(), &cfg(), &corners, 1);
        assert_eq!(failpoint::hits("ser_bench::corner_eval"), 1);
        assert!(matches!(
            faulted[0],
            Err(SweepError::FaultInjected("ser_bench::corner_eval"))
        ));
        for (i, got) in faulted.iter().enumerate().skip(1) {
            let got = got.as_ref().expect("only the first corner faults");
            assert_eq!(*got, clean[i], "corner {i}");
        }
    }

    #[test]
    fn lower_vdd_raises_unreliability() {
        // Fig. 1's direction at circuit scale: a slower corner (low VDD)
        // generates wider glitches; with weak electrical masking the
        // circuit gets less reliable.
        let c = generate::c17();
        let base = CircuitCells::nominal(&c);
        let corners = [
            Corner {
                vdd: 0.8,
                vth: 0.2,
                charge: 16.0e-15,
            },
            Corner {
                vdd: 1.2,
                vth: 0.2,
                charge: 16.0e-15,
            },
        ];
        let pts = sweep_session(&c, &base, lib(), &cfg(), &corners, 1);
        assert!(
            pts[0].unreliability > pts[1].unreliability,
            "{:e} vs {:e}",
            pts[0].unreliability,
            pts[1].unreliability
        );
    }

    #[test]
    fn more_charge_does_not_reduce_unreliability() {
        let c = generate::sec32("q");
        let base = CircuitCells::nominal(&c);
        let corners = [
            Corner {
                vdd: 1.0,
                vth: 0.2,
                charge: 8.0e-15,
            },
            Corner {
                vdd: 1.0,
                vth: 0.2,
                charge: 32.0e-15,
            },
        ];
        let pts = sweep_session(&c, &base, lib(), &cfg(), &corners, 1);
        assert!(pts[1].unreliability >= pts[0].unreliability);
    }
}
