//! Table 1: SERTOPT optimization results over the paper's seven ISCAS'85
//! circuits, with the paper's per-circuit VDD/Vth sets and all three
//! unreliability-decrease columns (ASERTA full-statistics, ASERTA with 50
//! random vectors, transistor-level reference with 50 random vectors).

use aserta::{analyze, AsertaConfig, CircuitCells};
use ser_cells::Library;
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_netlist::Circuit;
use ser_spice::circuit_sim::{reference_unreliability, CircuitElectrical, CircuitSimConfig};
use ser_spice::{Strike, Technology};
use sertopt::{optimize, AllowedParams, OptimizeRequest, OptimizerConfig, Outcome};

/// One circuit's experimental setup, mirroring the paper's table rows.
#[derive(Debug, Clone)]
pub struct CircuitSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// The allowed cell grid (encodes the row's VDD/Vth sets).
    pub allowed: AllowedParams,
    /// Whether the paper ran the SPICE columns for this circuit ("the
    /// last 2 circuits were too big to be simulated by SPICE").
    pub spice_reference: bool,
}

/// The paper's seven rows: c432/c3540/c7552 with dual VDD{0.8,1}/
/// Vth{0.2,0.3}; c499 likewise (its row shows no improvement); c1908/
/// c2670/c5315 with triple VDD{0.8,1,1.2}/Vth{0.1,0.2,0.3}.
pub fn paper_specs() -> Vec<CircuitSpec> {
    let dual = AllowedParams::table1_dual;
    let triple = AllowedParams::table1_triple;
    vec![
        CircuitSpec {
            name: "c432",
            allowed: dual(),
            spice_reference: true,
        },
        CircuitSpec {
            name: "c499",
            allowed: dual(),
            spice_reference: true,
        },
        CircuitSpec {
            name: "c1908",
            allowed: triple(),
            spice_reference: true,
        },
        CircuitSpec {
            name: "c2670",
            allowed: triple(),
            spice_reference: true,
        },
        CircuitSpec {
            name: "c3540",
            allowed: dual(),
            spice_reference: true,
        },
        CircuitSpec {
            name: "c5315",
            allowed: triple(),
            spice_reference: false,
        },
        CircuitSpec {
            name: "c7552",
            allowed: dual(),
            spice_reference: false,
        },
    ]
}

/// One generated Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Circuit name.
    pub name: String,
    /// VDD set used.
    pub vdds: Vec<f64>,
    /// Vth set used.
    pub vths: Vec<f64>,
    /// Area ratio (optimized / baseline).
    pub area_ratio: f64,
    /// Energy ratio.
    pub energy_ratio: f64,
    /// Delay ratio.
    pub delay_ratio: f64,
    /// Unreliability decrease by full-statistics ASERTA (fraction).
    pub aserta_decrease: f64,
    /// Decrease by ASERTA restricted to the reference vectors.
    pub aserta50_decrease: Option<f64>,
    /// Decrease by the transistor-level reference on the same vectors.
    pub spice50_decrease: Option<f64>,
    /// Wall-clock seconds for the optimization.
    pub optimize_seconds: f64,
    /// The raw optimizer outcome.
    pub outcome: Outcome,
}

impl Table1Row {
    /// Formats the row like the paper's table.
    pub fn format(&self) -> String {
        let fmt_set = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let opt_pct = |o: &Option<f64>| match o {
            Some(v) => format!("{:>4.0}%", 100.0 * v),
            None => "   --".to_owned(),
        };
        format!(
            "{:<7} {:<12} {:<12} {:>6.2}X {:>7.2}X {:>6.2}X {:>6.0}% {} {}",
            self.name,
            fmt_set(&self.vdds),
            fmt_set(&self.vths),
            self.area_ratio,
            self.energy_ratio,
            self.delay_ratio,
            100.0 * self.aserta_decrease,
            opt_pct(&self.aserta50_decrease),
            opt_pct(&self.spice50_decrease),
        )
    }

    /// The table header matching [`Table1Row::format`].
    pub fn header() -> String {
        format!(
            "{:<7} {:<12} {:<12} {:>7} {:>8} {:>7} {:>7} {:>5} {:>5}",
            "circuit", "VDDs", "Vths", "area", "energy", "delay", "dU", "dU50", "dUsp"
        )
    }
}

/// Settings for a Table 1 run.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Optimizer settings (algorithm, iterations, weights…). The allowed
    /// grid is overridden per circuit by the spec.
    pub optimizer: OptimizerConfig,
    /// Random vectors for the 50-vector columns (paper: 50).
    pub reference_vectors: usize,
    /// Compute the transistor-level column at all (it dominates the
    /// runtime).
    pub run_spice_reference: bool,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            optimizer: OptimizerConfig::default(),
            reference_vectors: 50,
            run_spice_reference: true,
        }
    }
}

/// Runs one circuit's row end to end.
pub fn run_circuit(spec: &CircuitSpec, cfg: &Table1Config, library: &mut Library) -> Table1Row {
    let circuit = crate::bundled_iscas85(spec.name);
    let mut opt_cfg = cfg.optimizer.clone();
    opt_cfg.allowed = spec.allowed.clone();

    let (outcome, secs) =
        crate::timed(|| optimize(&circuit, library, &OptimizeRequest::new(opt_cfg.clone())));

    // 50-vector columns: ASERTA with a 50-vector P_ij, and the analog
    // reference, both on baseline and optimized assignments.
    let (aserta50, spice50) = if cfg.reference_vectors > 0 {
        let a50 = aserta_decrease_with_vectors(
            &circuit,
            &outcome,
            library,
            &opt_cfg.aserta,
            cfg.reference_vectors,
        );
        let s50 = if spec.spice_reference && cfg.run_spice_reference {
            Some(reference_decrease(
                &circuit,
                &outcome,
                library.tech().clone(),
                &opt_cfg.aserta,
                cfg.reference_vectors,
            ))
        } else {
            None
        };
        (Some(a50), s50)
    } else {
        (None, None)
    };

    Table1Row {
        name: spec.name.to_owned(),
        vdds: spec.allowed.vdds.clone(),
        vths: spec.allowed.vths.clone(),
        area_ratio: outcome.area_ratio(),
        energy_ratio: outcome.energy_ratio(),
        delay_ratio: outcome.delay_ratio(),
        aserta_decrease: outcome.unreliability_decrease(),
        aserta50_decrease: aserta50,
        spice50_decrease: spice50,
        optimize_seconds: secs,
        outcome,
    }
}

/// ASERTA unreliability decrease when `P_ij` is estimated from only the
/// reference vector count (the paper's "ASERTA, 50 random inputs"
/// column).
fn aserta_decrease_with_vectors(
    circuit: &Circuit,
    outcome: &Outcome,
    library: &mut Library,
    aserta_cfg: &AsertaConfig,
    n_vectors: usize,
) -> f64 {
    let pij = sensitization_probabilities(circuit, n_vectors, aserta_cfg.seed ^ 0x50);
    let u = |cells: &CircuitCells, library: &mut Library| {
        analyze(circuit, cells, library, &pij, aserta_cfg).unreliability
    };
    let u0 = u(&outcome.baseline_cells, library);
    let u1 = u(&outcome.optimized_cells, library);
    if u0 > 0.0 {
        (u0 - u1) / u0
    } else {
        0.0
    }
}

/// Transistor-level unreliability decrease on the same vectors (the
/// paper's "SPICE, 50 random inputs" column).
fn reference_decrease(
    circuit: &Circuit,
    outcome: &Outcome,
    tech: Technology,
    aserta_cfg: &AsertaConfig,
    n_vectors: usize,
) -> f64 {
    let sim_cfg = CircuitSimConfig {
        strike: Strike::new(
            aserta_cfg.charge,
            Strike::DEFAULT_TAU_RISE,
            Strike::DEFAULT_TAU_FALL,
        ),
        wire_cap_per_pin: aserta_cfg.wire_cap_per_pin,
        po_load: aserta_cfg.po_load,
        ..CircuitSimConfig::default()
    };
    let vectors = ser_logicsim::random::random_vectors(
        circuit.primary_inputs().len(),
        n_vectors,
        0.5,
        aserta_cfg.seed ^ 0x51CE,
    );
    let total = |cells: &CircuitCells| -> f64 {
        let elec = CircuitElectrical::new(&tech, circuit, &sim_cfg, |id| {
            // Invariant: `CircuitCells` assigns parameters to every gate.
            #[allow(clippy::expect_used)]
            let p = *cells.get(id).expect("gates carry parameters");
            p
        });
        reference_unreliability(&tech, circuit, &elec, &vectors, &sim_cfg)
            .iter()
            .sum()
    };
    let u0 = total(&outcome.baseline_cells);
    let u1 = total(&outcome.optimized_cells);
    if u0 > 0.0 {
        (u0 - u1) / u0
    } else {
        0.0
    }
}
