//! Experiment harness: regenerates every table and figure of the DATE'05
//! paper.
//!
//! Each paper artifact has a **binary** that prints the same rows/series
//! the paper reports and a **Criterion bench** that measures the
//! underlying kernel:
//!
//! | Paper artifact | Binary | Bench |
//! |---|---|---|
//! | Fig. 1 (generated glitch width vs size/L/VDD/Vth) | `fig1` | `fig1_glitch_generation` |
//! | Fig. 2 (propagated glitch width vs the same) | `fig2` | `fig2_glitch_propagation` |
//! | Fig. 3 (ASERTA vs SPICE unreliability, c432) | `fig3` | `fig3_unreliability` |
//! | Table 1 (optimization results) | `table1` | `table1_optimization` |
//! | §5 runtimes | `runtimes` | `runtime_scaling` |
//!
//! Run a binary with `cargo run --release -p ser-bench --bin fig1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corners;
pub mod sweeps;
pub mod table1;

use std::time::Instant;

/// Looks up a bundled ISCAS'85 benchmark, exiting with a clear message
/// on an unknown name — the bin-friendly alternative to `.expect`,
/// keeping the experiment binaries free of panicking error paths.
pub fn bundled_iscas85(name: &str) -> ser_netlist::Circuit {
    ser_netlist::generate::iscas85(name).unwrap_or_else(|| {
        eprintln!("error: `{name}` is not a bundled ISCAS'85 benchmark");
        std::process::exit(2);
    })
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Prints a two-column series with a title (the textual "figure").
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("\n## {title}");
    println!("{x_label:>12} {y_label:>16}");
    for (x, y) in series {
        println!("{x:>12.4} {y:>16.4}");
    }
}
