//! Parameter sweeps behind Figs. 1 and 2: an inverter's generated and
//! propagated glitch widths as one of {size, channel length, VDD, Vth}
//! varies.

use ser_netlist::GateKind;
use ser_spice::transient::{generated_glitch_width, propagated_glitch_width, TransientConfig};
use ser_spice::units::{FF, PS};
use ser_spice::{GateElectrical, GateParams, Strike, Technology};

/// Which knob a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Gate size in unit widths (paper: size 1 = 100 nm width).
    Size,
    /// Channel length, nanometres.
    Length,
    /// Supply voltage, volts.
    Vdd,
    /// Threshold voltage, volts.
    Vth,
}

impl SweepParam {
    /// All four knobs, in the paper's figure order.
    pub const ALL: [SweepParam; 4] = [
        SweepParam::Size,
        SweepParam::Length,
        SweepParam::Vdd,
        SweepParam::Vth,
    ];

    /// Human-readable axis label.
    pub fn label(self) -> &'static str {
        match self {
            SweepParam::Size => "size (unit widths)",
            SweepParam::Length => "channel length (nm)",
            SweepParam::Vdd => "VDD (V)",
            SweepParam::Vth => "Vth (V)",
        }
    }

    /// The sweep points used in the figures (min..max as in the paper's
    /// x-axes).
    pub fn points(self) -> Vec<f64> {
        match self {
            SweepParam::Size => vec![0.5, 1.0, 2.0, 4.0, 8.0],
            SweepParam::Length => vec![70.0, 100.0, 150.0, 250.0, 300.0],
            SweepParam::Vdd => vec![0.7, 0.8, 0.9, 1.0, 1.1, 1.2],
            SweepParam::Vth => vec![0.10, 0.15, 0.20, 0.25, 0.30, 0.35],
        }
    }

    /// The inverter cell with this knob set to `x`, others nominal.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite sweep point, or a non-positive one for
    /// size/length/VDD (the transistor model has no meaning there; a
    /// silent pass-through used to surface much later as NaN widths).
    pub fn params_at(self, x: f64) -> GateParams {
        assert!(x.is_finite(), "sweep point must be finite, got {x}");
        if !matches!(self, SweepParam::Vth) {
            assert!(x > 0.0, "{} must be positive, got {x}", self.label());
        }
        let base = GateParams::new(GateKind::Not, 1);
        match self {
            SweepParam::Size => base.with_size(x),
            SweepParam::Length => base.with_length(x),
            SweepParam::Vdd => base.with_vdd(x),
            SweepParam::Vth => base.with_vth(x),
        }
    }
}

/// Sweep configuration shared by both figures.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Output load on the inverter, farads (fixed across the sweep).
    pub load: f64,
    /// Injected charge for Fig. 1, coulombs (paper: 16 fC).
    pub charge: f64,
    /// Input glitch width for Fig. 2, seconds (paper: 50 ps).
    pub input_width: f64,
    /// Input glitch edge time for Fig. 2, seconds.
    pub input_edge: f64,
    /// Transient settings.
    pub transient: TransientConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            load: 2.0 * FF,
            charge: 16.0e-15,
            input_width: 50.0 * PS,
            input_edge: 10.0 * PS,
            transient: TransientConfig::default(),
        }
    }
}

/// Fig. 1: generated glitch width (ps) vs the swept knob, struck-low
/// state, fixed charge.
pub fn fig1_series(tech: &Technology, param: SweepParam, cfg: &SweepConfig) -> Vec<(f64, f64)> {
    let strike = Strike::new(
        cfg.charge,
        Strike::DEFAULT_TAU_RISE,
        Strike::DEFAULT_TAU_FALL,
    );
    param
        .points()
        .into_iter()
        .map(|x| {
            let gate = GateElectrical::from_params(tech, &param.params_at(x));
            let w = generated_glitch_width(tech, &gate, false, cfg.load, &strike, &cfg.transient);
            (x, w / PS)
        })
        .collect()
}

/// Fig. 2: propagated glitch width (ps) for the fixed input glitch vs the
/// swept knob.
pub fn fig2_series(tech: &Technology, param: SweepParam, cfg: &SweepConfig) -> Vec<(f64, f64)> {
    param
        .points()
        .into_iter()
        .map(|x| {
            let gate = GateElectrical::from_params(tech, &param.params_at(x));
            let w = propagated_glitch_width(
                tech,
                &gate,
                cfg.input_width,
                cfg.input_edge,
                cfg.load,
                &cfg.transient,
            );
            (x, w / PS)
        })
        .collect()
}

/// Direction check with tolerance: +1 for an increasing series, −1 for
/// decreasing, 0 for neither. Steps smaller than `eps` in the opposing
/// direction are ignored (plot-resolution noise, e.g. the sub-ps
/// rise/fall asymmetry of large inverters), but the overall excursion
/// must exceed `eps` for a non-zero verdict.
pub fn trend_with_tolerance(series: &[(f64, f64)], eps: f64) -> i32 {
    let (Some(first), Some(last)) = (series.first(), series.last()) else {
        return 0; // an empty series trends nowhere
    };
    let inc = series.windows(2).all(|w| w[1].1 >= w[0].1 - eps);
    let dec = series.windows(2).all(|w| w[1].1 <= w[0].1 + eps);
    let span = last.1 - first.1;
    match (inc, dec) {
        (true, false) => 1,
        (false, true) => -1,
        (true, true) => {
            if span > eps {
                1
            } else if span < -eps {
                -1
            } else {
                0
            }
        }
        (false, false) => 0,
    }
}

/// Strict direction check (`eps` = 1 as in one double ulp-scale).
pub fn trend(series: &[(f64, f64)]) -> i32 {
    trend_with_tolerance(series, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1's paper statement: "factors that slow down a gate (decrease
    /// in size, increase in channel length, reduction in VDD, increase in
    /// Vth) increase generated glitch width".
    #[test]
    fn fig1_trends_match_paper() {
        let tech = Technology::ptm70();
        let cfg = SweepConfig::default();
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Size, &cfg)), -1);
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Length, &cfg)), 1);
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Vdd, &cfg)), -1);
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Vth, &cfg)), 1);
    }

    #[test]
    fn params_at_sets_only_the_swept_knob() {
        let nominal = GateParams::new(GateKind::Not, 1);
        let p = SweepParam::Size.params_at(4.0);
        assert_eq!(
            (p.size, p.l_nm, p.vdd, p.vth),
            (4.0, nominal.l_nm, nominal.vdd, nominal.vth)
        );
        let p = SweepParam::Length.params_at(150.0);
        assert_eq!((p.size, p.l_nm), (nominal.size, 150.0));
        let p = SweepParam::Vdd.params_at(0.8);
        assert_eq!((p.vdd, p.vth), (0.8, nominal.vth));
        let p = SweepParam::Vth.params_at(0.3);
        assert_eq!((p.vdd, p.vth), (nominal.vdd, 0.3));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn params_at_rejects_nonpositive_size() {
        let _ = SweepParam::Size.params_at(-1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn params_at_rejects_zero_vdd() {
        let _ = SweepParam::Vdd.params_at(0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn params_at_rejects_nan() {
        let _ = SweepParam::Vth.params_at(f64::NAN);
    }

    #[test]
    fn trend_on_degenerate_single_point_sweep_is_flat() {
        // A one-point series is vacuously both increasing and
        // decreasing; the span tie-break must call it flat.
        assert_eq!(trend_with_tolerance(&[(1.0, 42.0)], 1e-9), 0);
    }

    #[test]
    fn trend_on_empty_series_is_flat() {
        // An empty series carries no direction; the panic-free surface
        // reads it as flat rather than aborting the sweep report.
        assert_eq!(trend_with_tolerance(&[], 1e-9), 0);
    }

    #[test]
    fn trend_on_flat_series_is_zero() {
        let flat: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 7.5)).collect();
        assert_eq!(trend_with_tolerance(&flat, 1e-9), 0);
        // Wobble strictly inside the tolerance still reads as flat: the
        // overall excursion never exceeds eps.
        let wobble = [(0.0, 7.5), (1.0, 7.6), (2.0, 7.4), (3.0, 7.5)];
        assert_eq!(trend_with_tolerance(&wobble, 0.5), 0);
    }

    #[test]
    fn trend_tolerates_noise_below_eps_only() {
        // Rising overall, with one 0.05 dip: noise below eps = 0.1.
        let noisy = [(0.0, 1.0), (1.0, 2.0), (2.0, 1.95), (3.0, 3.0)];
        assert_eq!(trend_with_tolerance(&noisy, 0.1), 1);
        // The same series with a strict tolerance is direction-less.
        assert_eq!(trend_with_tolerance(&noisy, 1e-9), 0);
        // Mirror image: falling with sub-eps counter-noise.
        let falling: Vec<(f64, f64)> = noisy.iter().map(|&(x, y)| (x, -y)).collect();
        assert_eq!(trend_with_tolerance(&falling, 0.1), -1);
    }

    /// "…but also increase the attenuation of propagating glitches" — the
    /// opposite directions for Fig. 2 (1 ps tolerance absorbs rise/fall
    /// asymmetry wobble well below the figure's resolution).
    #[test]
    fn fig2_trends_match_paper() {
        let tech = Technology::ptm70();
        let cfg = SweepConfig::default();
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Size, &cfg), 1.0),
            1
        );
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Length, &cfg), 1.0),
            -1
        );
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Vdd, &cfg), 1.0),
            1
        );
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Vth, &cfg), 1.0),
            -1
        );
    }
}
