//! Parameter sweeps behind Figs. 1 and 2: an inverter's generated and
//! propagated glitch widths as one of {size, channel length, VDD, Vth}
//! varies.

use ser_netlist::GateKind;
use ser_spice::transient::{generated_glitch_width, propagated_glitch_width, TransientConfig};
use ser_spice::units::{FF, PS};
use ser_spice::{GateElectrical, GateParams, Strike, Technology};

/// Which knob a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Gate size in unit widths (paper: size 1 = 100 nm width).
    Size,
    /// Channel length, nanometres.
    Length,
    /// Supply voltage, volts.
    Vdd,
    /// Threshold voltage, volts.
    Vth,
}

impl SweepParam {
    /// All four knobs, in the paper's figure order.
    pub const ALL: [SweepParam; 4] = [
        SweepParam::Size,
        SweepParam::Length,
        SweepParam::Vdd,
        SweepParam::Vth,
    ];

    /// Human-readable axis label.
    pub fn label(self) -> &'static str {
        match self {
            SweepParam::Size => "size (unit widths)",
            SweepParam::Length => "channel length (nm)",
            SweepParam::Vdd => "VDD (V)",
            SweepParam::Vth => "Vth (V)",
        }
    }

    /// The sweep points used in the figures (min..max as in the paper's
    /// x-axes).
    pub fn points(self) -> Vec<f64> {
        match self {
            SweepParam::Size => vec![0.5, 1.0, 2.0, 4.0, 8.0],
            SweepParam::Length => vec![70.0, 100.0, 150.0, 250.0, 300.0],
            SweepParam::Vdd => vec![0.7, 0.8, 0.9, 1.0, 1.1, 1.2],
            SweepParam::Vth => vec![0.10, 0.15, 0.20, 0.25, 0.30, 0.35],
        }
    }

    /// The inverter cell with this knob set to `x`, others nominal.
    pub fn params_at(self, x: f64) -> GateParams {
        let base = GateParams::new(GateKind::Not, 1);
        match self {
            SweepParam::Size => base.with_size(x),
            SweepParam::Length => base.with_length(x),
            SweepParam::Vdd => base.with_vdd(x),
            SweepParam::Vth => base.with_vth(x),
        }
    }
}

/// Sweep configuration shared by both figures.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Output load on the inverter, farads (fixed across the sweep).
    pub load: f64,
    /// Injected charge for Fig. 1, coulombs (paper: 16 fC).
    pub charge: f64,
    /// Input glitch width for Fig. 2, seconds (paper: 50 ps).
    pub input_width: f64,
    /// Input glitch edge time for Fig. 2, seconds.
    pub input_edge: f64,
    /// Transient settings.
    pub transient: TransientConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            load: 2.0 * FF,
            charge: 16.0e-15,
            input_width: 50.0 * PS,
            input_edge: 10.0 * PS,
            transient: TransientConfig::default(),
        }
    }
}

/// Fig. 1: generated glitch width (ps) vs the swept knob, struck-low
/// state, fixed charge.
pub fn fig1_series(tech: &Technology, param: SweepParam, cfg: &SweepConfig) -> Vec<(f64, f64)> {
    let strike = Strike::new(
        cfg.charge,
        Strike::DEFAULT_TAU_RISE,
        Strike::DEFAULT_TAU_FALL,
    );
    param
        .points()
        .into_iter()
        .map(|x| {
            let gate = GateElectrical::from_params(tech, &param.params_at(x));
            let w = generated_glitch_width(tech, &gate, false, cfg.load, &strike, &cfg.transient);
            (x, w / PS)
        })
        .collect()
}

/// Fig. 2: propagated glitch width (ps) for the fixed input glitch vs the
/// swept knob.
pub fn fig2_series(tech: &Technology, param: SweepParam, cfg: &SweepConfig) -> Vec<(f64, f64)> {
    param
        .points()
        .into_iter()
        .map(|x| {
            let gate = GateElectrical::from_params(tech, &param.params_at(x));
            let w = propagated_glitch_width(
                tech,
                &gate,
                cfg.input_width,
                cfg.input_edge,
                cfg.load,
                &cfg.transient,
            );
            (x, w / PS)
        })
        .collect()
}

/// Direction check with tolerance: +1 for an increasing series, −1 for
/// decreasing, 0 for neither. Steps smaller than `eps` in the opposing
/// direction are ignored (plot-resolution noise, e.g. the sub-ps
/// rise/fall asymmetry of large inverters), but the overall excursion
/// must exceed `eps` for a non-zero verdict.
pub fn trend_with_tolerance(series: &[(f64, f64)], eps: f64) -> i32 {
    let inc = series.windows(2).all(|w| w[1].1 >= w[0].1 - eps);
    let dec = series.windows(2).all(|w| w[1].1 <= w[0].1 + eps);
    let span = series.last().expect("non-empty").1 - series.first().expect("non-empty").1;
    match (inc, dec) {
        (true, false) => 1,
        (false, true) => -1,
        (true, true) => {
            if span > eps {
                1
            } else if span < -eps {
                -1
            } else {
                0
            }
        }
        (false, false) => 0,
    }
}

/// Strict direction check (`eps` = 1 as in one double ulp-scale).
pub fn trend(series: &[(f64, f64)]) -> i32 {
    trend_with_tolerance(series, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 1's paper statement: "factors that slow down a gate (decrease
    /// in size, increase in channel length, reduction in VDD, increase in
    /// Vth) increase generated glitch width".
    #[test]
    fn fig1_trends_match_paper() {
        let tech = Technology::ptm70();
        let cfg = SweepConfig::default();
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Size, &cfg)), -1);
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Length, &cfg)), 1);
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Vdd, &cfg)), -1);
        assert_eq!(trend(&fig1_series(&tech, SweepParam::Vth, &cfg)), 1);
    }

    /// "…but also increase the attenuation of propagating glitches" — the
    /// opposite directions for Fig. 2 (1 ps tolerance absorbs rise/fall
    /// asymmetry wobble well below the figure's resolution).
    #[test]
    fn fig2_trends_match_paper() {
        let tech = Technology::ptm70();
        let cfg = SweepConfig::default();
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Size, &cfg), 1.0),
            1
        );
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Length, &cfg), 1.0),
            -1
        );
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Vdd, &cfg), 1.0),
            1
        );
        assert_eq!(
            trend_with_tolerance(&fig2_series(&tech, SweepParam::Vth, &cfg), 1.0),
            -1
        );
    }
}
