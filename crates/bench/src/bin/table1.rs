//! Regenerates **Table 1**: SERTOPT optimization results on the paper's
//! seven ISCAS'85 circuits — VDD/Vth sets, area/energy/delay ratios and
//! the three unreliability-decrease columns.
//!
//! ```text
//! cargo run --release -p ser-bench --bin table1 [--quick] [--circuit cNNN]
//!     [--algo sqp|coord|anneal|genetic] [--vectors N] [--no-spice]
//! ```
//!
//! `--quick` runs a reduced configuration (fewer vectors/iterations) that
//! finishes in a few minutes; the default mirrors the paper's setup.

use ser_bench::table1::{paper_specs, run_circuit, Table1Config, Table1Row};
use ser_cells::{CharGrids, Library};
use ser_spice::Technology;
use sertopt::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_spice = args.iter().any(|a| a == "--no-spice");
    let only = flag_value(&args, "--circuit");
    let algo = match flag_value(&args, "--algo").as_deref() {
        Some("coord") => Algorithm::CoordinateDescent,
        Some("anneal") => Algorithm::Anneal,
        Some("genetic") => Algorithm::Genetic,
        _ => Algorithm::Sqp,
    };

    let mut cfg = Table1Config::default();
    cfg.optimizer.algorithm = algo;
    if quick {
        cfg.optimizer.iterations = 10;
        cfg.optimizer.aserta.sensitization_vectors = 2048;
        cfg.reference_vectors = 10;
    }
    if let Some(v) = flag_value(&args, "--vectors").and_then(|v| v.parse().ok()) {
        cfg.reference_vectors = v;
    }
    if let Some(it) = flag_value(&args, "--iters").and_then(|v| v.parse().ok()) {
        cfg.optimizer.iterations = it;
    }
    cfg.run_spice_reference = !no_spice;

    let mut specs = paper_specs();
    if let Some(name) = only {
        specs.retain(|s| s.name == name);
        assert!(!specs.is_empty(), "unknown circuit name");
    }

    println!(
        "# Table 1 — SERTOPT optimization results ({algo:?}, {} iterations)",
        cfg.optimizer.iterations
    );
    println!("{}", Table1Row::header());
    let tech = Technology::ptm70();
    let mut rows = Vec::new();
    for spec in &specs {
        // One shared library per VDD/Vth family keeps characterization
        // cached across circuits.
        let mut library = Library::new(tech.clone(), CharGrids::standard());
        let row = run_circuit(spec, &cfg, &mut library);
        println!(
            "{}   ({:.0} s, {} evals)",
            row.format(),
            row.optimize_seconds,
            row.outcome.evaluations
        );
        rows.push(row);
    }

    println!("\n# paper's corresponding rows:");
    println!("# c432  0.8,1      0.2,0.3     2X    2.2X  1.23X   40%  44% 54%");
    println!("# c499  --         --          --    --    --       0%   0%  0%");
    println!("# c1908 0.8,1,1.2  0.1,0.2,0.3 1.2X  1.8X  0.98X   18%   6% 12%");
    println!("# c2670 0.8,1,1.2  0.1,0.2,0.3 1.05X 1.3X  0.98X   21%  42% 38%");
    println!("# c3540 0.8,1      0.2,0.3     1.5X  1.6X  1.03X   47%  35% 34%");
    println!("# c5315 0.8,1,1.2  0.1,0.2,0.3 1.2X  1.9X  0.98X   26%  --  --");
    println!("# c7552 0.8,1      0.2,0.3     1.6X  1.6X  1.07X   18%  --  --");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
