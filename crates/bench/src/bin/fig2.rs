//! Regenerates **Fig. 2**: glitch propagation characteristics of an
//! inverter for an input glitch of duration 50 ps, as gate size, channel
//! length, VDD and Vth vary.
//!
//! ```text
//! cargo run --release -p ser-bench --bin fig2
//! ```

use ser_bench::print_series;
use ser_bench::sweeps::{fig2_series, SweepConfig, SweepParam};
use ser_spice::Technology;

fn main() {
    let tech = Technology::ptm70();
    let cfg = SweepConfig::default();
    println!("# Fig. 2 — propagated glitch width, inverter, input glitch 50 ps, load = 2 fF");
    println!("# paper trend: slower gate => NARROWER propagated glitch (more attenuation)");
    for param in SweepParam::ALL {
        let series = fig2_series(&tech, param, &cfg);
        print_series(
            &format!("propagated glitch width vs {}", param.label()),
            param.label(),
            "width (ps)",
            &series,
        );
    }
}
