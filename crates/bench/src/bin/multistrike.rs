//! Multiple-strike study — the paper's closing remark on c499: "a
//! modelling scheme that takes into account simultaneous multiple-error
//! injections could still be used with SERTOPT to reduce unreliability in
//! the face of such errors."
//!
//! At the logic level, this binary measures how often single and double
//! node upsets corrupt primary outputs across the benchmark suite. The
//! error-correcting c499 stands out exactly as the paper predicts: its
//! data path absorbs the single upsets ASERTA models, while double
//! upsets defeat the code — ordinary random-logic circuits show no such
//! gap.
//!
//! ```text
//! cargo run --release -p ser-bench --bin multistrike [--vectors N]
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ser_logicsim::random::random_vectors;
use ser_logicsim::sim::eval_with_flips;
use ser_netlist::{generate, NodeId};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_vectors: usize = args
        .iter()
        .position(|a| a == "--vectors")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);

    println!("# single vs double node upsets: PO corruption probability");
    println!(
        "{:<8} {:>14} {:>14} {:>9}",
        "circuit", "P(single hits)", "P(double hits)", "ratio"
    );
    for name in ["c432", "c499", "c880", "c1908"] {
        let circuit = generate::iscas85(name).expect("bundled benchmark");
        let vectors = random_vectors(circuit.primary_inputs().len(), n_vectors, 0.5, 77);
        let gates: Vec<NodeId> = circuit.gates().collect();
        let mut rng = StdRng::seed_from_u64(0xD0B1E);

        let trials = 400usize;
        let mut single_hits = 0usize;
        let mut double_hits = 0usize;
        for t in 0..trials {
            let v = &vectors[t % vectors.len()];
            let a = gates[rng.random_range(0..gates.len())];
            let b = loop {
                let b = gates[rng.random_range(0..gates.len())];
                if b != a {
                    break b;
                }
            };
            let (_, corrupted_single) = eval_with_flips(&circuit, v, &[a]);
            let (_, corrupted_double) = eval_with_flips(&circuit, v, &[a, b]);
            if !corrupted_single.is_empty() {
                single_hits += 1;
            }
            if !corrupted_double.is_empty() {
                double_hits += 1;
            }
        }
        let p1 = single_hits as f64 / trials as f64;
        let p2 = double_hits as f64 / trials as f64;
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>9.2}",
            name,
            p1,
            p2,
            if p1 > 0.0 { p2 / p1 } else { f64::NAN }
        );
    }
    println!();
    println!("# c499 data-wire upsets on valid codewords (the SEC code's own domain):");
    let ecc = generate::sec32("c499");
    let data_inputs: Vec<NodeId> = ecc
        .primary_inputs()
        .iter()
        .copied()
        .filter(|&pi| ecc.node(pi).name.starts_with('d'))
        .collect();
    let mut rng = StdRng::seed_from_u64(0xC499);
    let trials = 400usize;
    let mut single_hits = 0usize;
    let mut double_hits = 0usize;
    for _ in 0..trials {
        let data: u32 = rng.random();
        let v = generate::sec32_codeword(data);
        let a = data_inputs[rng.random_range(0..data_inputs.len())];
        let b = loop {
            let b = data_inputs[rng.random_range(0..data_inputs.len())];
            if b != a {
                break b;
            }
        };
        if !eval_with_flips(&ecc, &v, &[a]).1.is_empty() {
            single_hits += 1;
        }
        if !eval_with_flips(&ecc, &v, &[a, b]).1.is_empty() {
            double_hits += 1;
        }
    }
    println!(
        "single data upsets corrected: P(corrupt) = {:.3}  (SEC guarantee: 0)",
        single_hits as f64 / trials as f64
    );
    println!(
        "double data upsets:           P(corrupt) = {:.3}  (the code's blind spot)",
        double_hits as f64 / trials as f64
    );
    println!("\n# conclusion: the paper's c499 row (0% improvement) is structural —");
    println!("# ASERTA's single-strike model is exactly what the circuit tolerates;");
    println!("# a multi-strike-aware ASERTA (this binary's model) would give SERTOPT");
    println!("# a real gradient on ECC circuits, as the paper's closing remark suggests.");
}
