//! Multiple-strike study — the paper's closing remark on c499: "a
//! modelling scheme that takes into account simultaneous multiple-error
//! injections could still be used with SERTOPT to reduce unreliability in
//! the face of such errors."
//!
//! At the logic level, this binary measures how often single and double
//! node upsets corrupt primary outputs across the benchmark suite. The
//! error-correcting c499 stands out exactly as the paper predicts: its
//! data path absorbs the single upsets ASERTA models, while double
//! upsets defeat the code — ordinary random-logic circuits show no such
//! gap.
//!
//! ```text
//! cargo run --release -p ser-bench --bin multistrike [--vectors N]
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ser_logicsim::kernel;
use ser_logicsim::random::random_vectors;
use ser_netlist::csr::CsrView;
use ser_netlist::{generate, NodeId};

/// Per-circuit upset-injection state: the CSR view flattened once, plus
/// reusable evaluation buffers (the trial loops run thousands of strike
/// evaluations — rebuilding the view per call would dominate them).
struct FlipSim {
    csr: CsrView,
    golden: Vec<u64>,
    faulty: Vec<u64>,
    flip: Vec<bool>,
}

impl FlipSim {
    fn new(circuit: &ser_netlist::Circuit) -> Self {
        let n = circuit.node_count();
        FlipSim {
            csr: CsrView::build(circuit),
            golden: vec![0u64; n],
            faulty: vec![0u64; n],
            flip: vec![false; n],
        }
    }

    /// Loads one input vector's fault-free evaluation.
    fn load(&mut self, pi_values: &[bool]) -> Vec<u64> {
        let words: Vec<u64> = pi_values.iter().map(|&b| u64::from(b)).collect();
        kernel::eval_word(&self.csr, &words, &mut self.golden);
        words
    }

    /// Whether forcing `flips` to their complements corrupts any primary
    /// output under the currently loaded vector.
    fn corrupts(&mut self, pi_words: &[u64], flips: &[NodeId]) -> bool {
        self.flip.iter_mut().for_each(|f| *f = false);
        for &id in flips {
            self.flip[id.index()] = true;
        }
        kernel::eval_word_with_flips(
            &self.csr,
            pi_words,
            &self.golden,
            &self.flip,
            &mut self.faulty,
        );
        self.csr
            .outputs()
            .iter()
            .any(|&po| (self.faulty[po as usize] ^ self.golden[po as usize]) & 1 == 1)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_vectors: usize = args
        .iter()
        .position(|a| a == "--vectors")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);

    println!("# single vs double node upsets: PO corruption probability");
    println!(
        "{:<8} {:>14} {:>14} {:>9}",
        "circuit", "P(single hits)", "P(double hits)", "ratio"
    );
    for name in ["c432", "c499", "c880", "c1908"] {
        let circuit = ser_bench::bundled_iscas85(name);
        let vectors = random_vectors(circuit.primary_inputs().len(), n_vectors, 0.5, 77);
        let gates: Vec<NodeId> = circuit.gates().collect();
        let mut rng = StdRng::seed_from_u64(0xD0B1E);
        let mut sim = FlipSim::new(&circuit);

        let trials = 400usize;
        let mut single_hits = 0usize;
        let mut double_hits = 0usize;
        for t in 0..trials {
            let words = sim.load(&vectors[t % vectors.len()]);
            let a = gates[rng.random_range(0..gates.len())];
            let b = loop {
                let b = gates[rng.random_range(0..gates.len())];
                if b != a {
                    break b;
                }
            };
            if sim.corrupts(&words, &[a]) {
                single_hits += 1;
            }
            if sim.corrupts(&words, &[a, b]) {
                double_hits += 1;
            }
        }
        let p1 = single_hits as f64 / trials as f64;
        let p2 = double_hits as f64 / trials as f64;
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>9.2}",
            name,
            p1,
            p2,
            if p1 > 0.0 { p2 / p1 } else { f64::NAN }
        );
    }
    println!();
    println!("# c499 data-wire upsets on valid codewords (the SEC code's own domain):");
    let ecc = generate::sec32("c499");
    let data_inputs: Vec<NodeId> = ecc
        .primary_inputs()
        .iter()
        .copied()
        .filter(|&pi| ecc.node(pi).name.starts_with('d'))
        .collect();
    let mut rng = StdRng::seed_from_u64(0xC499);
    let mut sim = FlipSim::new(&ecc);
    let trials = 400usize;
    let mut single_hits = 0usize;
    let mut double_hits = 0usize;
    for _ in 0..trials {
        let data: u32 = rng.random();
        let words = sim.load(&generate::sec32_codeword(data));
        let a = data_inputs[rng.random_range(0..data_inputs.len())];
        let b = loop {
            let b = data_inputs[rng.random_range(0..data_inputs.len())];
            if b != a {
                break b;
            }
        };
        if sim.corrupts(&words, &[a]) {
            single_hits += 1;
        }
        if sim.corrupts(&words, &[a, b]) {
            double_hits += 1;
        }
    }
    println!(
        "single data upsets corrected: P(corrupt) = {:.3}  (SEC guarantee: 0)",
        single_hits as f64 / trials as f64
    );
    println!(
        "double data upsets:           P(corrupt) = {:.3}  (the code's blind spot)",
        double_hits as f64 / trials as f64
    );
    println!("\n# conclusion: the paper's c499 row (0% improvement) is structural —");
    println!("# ASERTA's single-strike model is exactly what the circuit tolerates;");
    println!("# a multi-strike-aware ASERTA (this binary's model) would give SERTOPT");
    println!("# a real gradient on ECC circuits, as the paper's closing remark suggests.");
}
