//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **LUT linear interpolation vs nearest-neighbour** — error against
//!    direct transistor-level simulation at off-grid points;
//! 2. **Eq. 1 vs a smooth attenuation law** — how sensitive the
//!    unreliability ranking is to the piecewise-linear shape;
//! 3. **tension space vs exact nullspace** — dimensions of the
//!    zero-overhead move space on small circuits;
//! 4. **optimizer shootout** — all four search algorithms on c432.
//!
//! ```text
//! cargo run --release -p ser-bench --bin ablations
//! ```

use aserta::electrical::ExpectedWidths;
use aserta::glitch::AttenuationModel;
use aserta::AsertaConfig;
use ser_cells::{characterize_cell, CharGrids, Library};
use ser_logicsim::probability::static_probabilities_analytic;
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_netlist::GateKind;
use ser_spice::measure::pearson_correlation;
use ser_spice::transient::{gate_delay, TransientConfig};
use ser_spice::units::{FF, PS};
use ser_spice::{GateParams, Technology};
use sertopt::nullspace::{exact_nullspace, TensionSpace};
use sertopt::topology::TopologyMatrix;
use sertopt::{optimize, Algorithm, AllowedParams, OptimizeRequest, OptimizerConfig};

fn main() {
    let tech = Technology::ptm70();
    ablate_interpolation(&tech);
    ablate_attenuation_model();
    ablate_nullspace();
    ablate_optimizers();
}

/// 1. Interpolated vs nearest-neighbour delay lookups against direct
///    simulation at off-grid (load, ramp) points.
fn ablate_interpolation(tech: &Technology) {
    println!("## ablation 1: LUT interpolation vs nearest-neighbour (NAND2 delay)");
    let params = GateParams::new(GateKind::Nand, 2);
    let cell = characterize_cell(tech, &params, &CharGrids::standard());
    let gate = cell.electrical(tech);
    let cfg = TransientConfig::default();
    let mut err_interp = 0.0;
    let mut err_nearest = 0.0;
    let mut n = 0usize;
    for i in 0..6 {
        for j in 0..4 {
            // Deliberately off-grid probe points.
            let load = (0.7 + 2.3 * i as f64) * FF;
            let ramp = (7.0 + 19.0 * j as f64) * PS;
            let Some(truth) = gate_delay(tech, &gate, load, ramp, &cfg) else {
                continue;
            };
            err_interp += (cell.delay.eval(load, ramp) - truth.tpd).abs();
            err_nearest += (cell.delay.eval_nearest(load, ramp) - truth.tpd).abs();
            n += 1;
        }
    }
    println!(
        "mean |error| over {n} off-grid points: interpolated {:.2} ps, nearest {:.2} ps",
        err_interp / n as f64 / PS,
        err_nearest / n as f64 / PS
    );
    println!("(the paper's choice of linear interpolation should win)\n");
}

/// 2. Eq. 1 vs the smooth logistic law: correlation of per-gate
///    unreliability rankings on c432.
fn ablate_attenuation_model() {
    println!("## ablation 2: Eq. 1 vs smooth attenuation (c432 U_i correlation)");
    let circuit = ser_bench::bundled_iscas85("c432");
    let cfg = AsertaConfig::default();
    let pij = sensitization_probabilities(&circuit, 4096, cfg.seed);
    let probs = static_probabilities_analytic(&circuit, 0.5);
    let delays = vec![18.0 * PS; circuit.node_count()];
    let grid = cfg.sample_width_grid();
    // Probe near the attenuation knee (w ≈ 2d) where the two laws differ
    // the most; far above it both are transparent and trivially agree.
    let w_gen = 30.0 * PS;

    let u_for = |model: AttenuationModel| -> Vec<f64> {
        let ew = ExpectedWidths::compute_with_model(
            &circuit,
            &probs,
            &pij,
            &delays,
            grid.clone(),
            model,
        );
        circuit
            .gates()
            .map(|g| ew.total_expected_width(g, w_gen))
            .collect()
    };
    let eq1 = u_for(AttenuationModel::PaperEq1);
    let smooth = u_for(AttenuationModel::SmoothLogistic);
    let corr = pearson_correlation(&eq1, &smooth).unwrap_or(0.0);
    println!("U_i correlation Eq.1 vs smooth: {corr:.4}");
    println!("(high correlation = the analysis is robust to the law's exact shape)\n");
}

/// 3. Exact nullspace vs tension-space dimensions.
fn ablate_nullspace() {
    println!("## ablation 3: zero-overhead move-space dimension");
    println!(
        "{:<10} {:>7} {:>12} {:>13}",
        "circuit", "gates", "exact dim", "tension dim"
    );
    // Exact nullspace enumeration only scales to the smallest benchmark.
    {
        let name = "c17";
        let c = ser_bench::bundled_iscas85(name);
        let exact = TopologyMatrix::build(&c, 200_000).map(|t| exact_nullspace(&t).len());
        let tension = TensionSpace::build(&c).dim();
        println!(
            "{:<10} {:>7} {:>12} {:>13}",
            name,
            c.gate_count(),
            exact.map(|d| d.to_string()).unwrap_or_else(|| "--".into()),
            tension
        );
    }
    for (pi, po, gates, seed) in [(4, 2, 14, 3u64), (6, 3, 24, 5), (8, 3, 40, 9)] {
        let mut spec = ser_netlist::generate::LayeredSpec::new("rand", pi, po, gates);
        spec.seed = seed;
        let c = ser_netlist::generate::layered(&spec);
        let exact = TopologyMatrix::build(&c, 200_000).map(|t| exact_nullspace(&t).len());
        let tension = TensionSpace::build(&c).dim();
        println!(
            "{:<10} {:>7} {:>12} {:>13}",
            format!("rand{gates}"),
            c.gate_count(),
            exact.map(|d| d.to_string()).unwrap_or_else(|| "--".into()),
            tension
        );
    }
    for name in ["c432", "c1908"] {
        let c = ser_bench::bundled_iscas85(name);
        let tension = TensionSpace::build(&c).dim();
        println!(
            "{:<10} {:>7} {:>12} {:>13}",
            name,
            c.gate_count(),
            "--",
            tension
        );
    }
    println!("(tension = exact on every circuit small enough to enumerate —");
    println!(" the scalable parameterization loses nothing there; its small");
    println!(" dimension is why SERTOPT also carries slack-bounded moves)\n");
}

/// 4. All four optimizers on c432 under an identical budget.
fn ablate_optimizers() {
    println!("## ablation 4: optimizer shootout (c432, dual VDD/Vth grid, 8 iterations)");
    println!(
        "{:<18} {:>8} {:>7} {:>7} {:>9}",
        "algorithm", "dU", "delay", "energy", "evals"
    );
    for algo in [
        Algorithm::Sqp,
        Algorithm::CoordinateDescent,
        Algorithm::Anneal,
        Algorithm::Genetic,
    ] {
        let circuit = ser_bench::bundled_iscas85("c432");
        let mut library = Library::new(Technology::ptm70(), CharGrids::coarse());
        let mut cfg = OptimizerConfig::fast();
        cfg.algorithm = algo;
        cfg.iterations = 8;
        cfg.allowed = AllowedParams::table1_dual();
        cfg.aserta.sensitization_vectors = 1024;
        let o = optimize(&circuit, &mut library, &OptimizeRequest::new(cfg));
        println!(
            "{:<18} {:>7.1}% {:>6.2}X {:>6.2}X {:>9}",
            format!("{algo:?}"),
            100.0 * o.unreliability_decrease(),
            o.delay_ratio(),
            o.energy_ratio(),
            o.evaluations
        );
    }
}
