//! Regenerates the paper's §5 runtime discussion: ASERTA analysis time
//! per circuit (the paper's MATLAB version took 15 s on c432 and 200 s on
//! c7552) and the speedup over the transistor-level reference ("orders of
//! magnitude less computation time than SPICE").
//!
//! ```text
//! cargo run --release -p ser-bench --bin runtimes [--spice-gates N]
//! ```

use aserta::{analyze, AsertaConfig, CircuitCells};
use ser_cells::{CharGrids, Library};
use ser_logicsim::sensitize::sensitization_probabilities;
use ser_spice::circuit_sim::{reference_unreliability, CircuitElectrical, CircuitSimConfig};
use ser_spice::Technology;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let spice_gate_limit: usize = args
        .iter()
        .position(|a| a == "--spice-gates")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);

    let tech = Technology::ptm70();
    let names = [
        "c17", "c432", "c499", "c880", "c1908", "c2670", "c3540", "c5315", "c7552",
    ];
    println!("# ASERTA runtime per circuit (paper, MATLAB: c432 15 s, c7552 200 s)");
    println!(
        "{:<8} {:>7} {:>12} {:>12} {:>14} {:>12}",
        "circuit", "gates", "pij (s)", "aserta (s)", "reference (s)", "speedup"
    );
    for name in names {
        let circuit = ser_bench::bundled_iscas85(name);
        let mut lib = Library::new(tech.clone(), CharGrids::standard());
        let cells = CircuitCells::nominal(&circuit);
        let cfg = AsertaConfig::default();

        let (pij, t_pij) = ser_bench::timed(|| {
            sensitization_probabilities(&circuit, cfg.sensitization_vectors, cfg.seed)
        });
        // Warm the library before timing the analysis proper (the paper's
        // lookup tables are also characterized offline).
        let _ = analyze(&circuit, &cells, &mut lib, &pij, &cfg);
        let (_, t_aserta) = ser_bench::timed(|| analyze(&circuit, &cells, &mut lib, &pij, &cfg));

        let (t_ref_str, speedup_str) = if circuit.gate_count() <= spice_gate_limit {
            let sim_cfg = CircuitSimConfig::default();
            let elec = CircuitElectrical::nominal(&tech, &circuit, &sim_cfg);
            let vectors =
                ser_logicsim::random::random_vectors(circuit.primary_inputs().len(), 5, 0.5, 1);
            let (_, t_ref) = ser_bench::timed(|| {
                reference_unreliability(&tech, &circuit, &elec, &vectors, &sim_cfg)
            });
            // Scale the 5-vector run to the paper's 50 vectors.
            let t_ref_50 = t_ref * 10.0;
            (
                format!("{t_ref_50:>14.1}"),
                format!("{:>11.0}x", t_ref_50 / t_aserta.max(1e-9)),
            )
        } else {
            (format!("{:>14}", "(skipped)"), format!("{:>12}", "--"))
        };
        println!(
            "{:<8} {:>7} {:>12.2} {:>12.3} {} {}",
            name,
            circuit.gate_count(),
            t_pij,
            t_aserta,
            t_ref_str,
            speedup_str
        );
    }
}
