//! Regenerates **Fig. 1**: glitch generation characteristics of an
//! inverter for a 16 fC injected charge, as gate size, channel length,
//! VDD and Vth vary.
//!
//! ```text
//! cargo run --release -p ser-bench --bin fig1
//! ```

use ser_bench::print_series;
use ser_bench::sweeps::{fig1_series, SweepConfig, SweepParam};
use ser_spice::Technology;

fn main() {
    let tech = Technology::ptm70();
    let cfg = SweepConfig::default();
    println!("# Fig. 1 — generated glitch width, inverter, Q = 16 fC, load = 2 fF");
    println!("# paper trend: slower gate (smaller, longer-L, lower-VDD, higher-Vth)");
    println!("#              => WIDER generated glitch");
    for param in SweepParam::ALL {
        let series = fig1_series(&tech, param, &cfg);
        print_series(
            &format!("generated glitch width vs {}", param.label()),
            param.label(),
            "width (ps)",
            &series,
        );
    }
}
