//! Perf-trajectory snapshot: wall-times the ASERTA hot paths on fixed
//! circuits at fixed seeds and writes a `BENCH_*.json` record, so every
//! PR has a baseline to beat.
//!
//! Measures, per circuit (c17 / sec32 / layered):
//!
//! * `pij` — Monte-Carlo sensitization-probability estimation;
//! * `widths` — the reverse-topological [`ExpectedWidths`] pass;
//! * `analyze_fresh` — the end-to-end ASERTA pipeline (library
//!   characterization warmed up beforehand so the timing isolates the
//!   analysis hot path).
//!
//! ```text
//! cargo run --release -p ser-bench --bin perf_snapshot -- \
//!     [--smoke] [--out PATH] [--baseline PATH]
//! ```
//!
//! `--smoke` shrinks vector counts and repetitions for CI; `--baseline`
//! embeds a previous snapshot and reports per-circuit speedups against
//! it.

use aserta::{analyze_fresh, timing_view, AsertaConfig, CircuitCells, ExpectedWidths, LoadModel};
use ser_bench::timed;
use ser_cells::{CharGrids, Library};
use ser_logicsim::probability::static_probabilities_analytic;
use ser_logicsim::sensitize::{sensitization_probabilities, simulation_threads};
use ser_netlist::generate::{self, LayeredSpec};
use ser_netlist::Circuit;
use ser_spice::Technology;
use serde_json::Value;

/// Fixed seed shared by every stochastic estimate in the snapshot.
const SEED: u64 = 0xBE7C;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_pr3.json".to_owned());
    let baseline_path = flag_value(&args, "--baseline");

    let (vectors, reps) = if smoke { (512, 1) } else { (4096, 3) };
    let threads = simulation_threads();

    let mut rows: Vec<Value> = Vec::new();
    for circuit in snapshot_circuits() {
        rows.push(measure(&circuit, vectors, reps));
        eprintln!("measured {}", circuit.name());
    }

    let baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {p}: {e}"));
        serde_json::from_str::<Value>(&text).unwrap_or_else(|e| panic!("parse {p}: {e}"))
    });
    let speedups = baseline.as_ref().map(|b| speedups_vs(b, &rows));

    let mut doc: Vec<(String, Value)> = vec![
        ("snapshot".into(), serde_json::to_value(&"pr3")),
        ("smoke".into(), serde_json::to_value(&smoke)),
        ("threads".into(), serde_json::to_value(&(threads as u64))),
        ("vectors".into(), serde_json::to_value(&(vectors as u64))),
        ("reps".into(), serde_json::to_value(&(reps as u64))),
        ("circuits".into(), Value::Array(rows)),
    ];
    if let Some(s) = speedups {
        doc.push(("speedup_vs_baseline".into(), s));
    }
    if let Some(b) = baseline {
        doc.push(("baseline".into(), b));
    }
    let text = serde_json::to_string_pretty(&Value::Object(doc)).expect("render JSON");
    std::fs::write(&out_path, text + "\n").unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}

/// The fixed circuit set: tiny exact c17, the 32-bit SEC circuit
/// (c499-class structure) and a 1000-gate random layered DAG.
fn snapshot_circuits() -> Vec<Circuit> {
    vec![
        generate::c17(),
        generate::sec32("sec32"),
        generate::layered(&LayeredSpec::new("layered1k", 40, 12, 1000)),
    ]
}

/// Times the three hot paths on one circuit, keeping the best of `reps`
/// runs (first `analyze_fresh` call outside the clock warms the library's
/// characterization cache).
fn measure(circuit: &Circuit, vectors: usize, reps: usize) -> Value {
    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let cells = CircuitCells::nominal(circuit);
    let cfg = AsertaConfig {
        sensitization_vectors: vectors,
        seed: SEED,
        ..AsertaConfig::default()
    };

    // Warm-up: characterizes every cell once so timed runs hit the cache.
    let report = analyze_fresh(circuit, &cells, &mut lib, &cfg);

    // The first timed run doubles as the matrix used by the widths pass.
    let (pij, first_s) = timed(|| sensitization_probabilities(circuit, vectors, SEED));
    let rest_s = best_of(reps.saturating_sub(1), || {
        timed(|| sensitization_probabilities(circuit, vectors, SEED)).1
    });
    let pij_s = first_s.min(rest_s);

    let probs = static_probabilities_analytic(circuit, cfg.pi_probability);
    let loads = LoadModel {
        wire_cap_per_pin: cfg.wire_cap_per_pin,
        po_load: cfg.po_load,
    };
    let view = timing_view(circuit, &cells, &mut lib, loads, cfg.pi_ramp);
    let widths_s = best_of(reps, || {
        timed(|| {
            ExpectedWidths::compute(circuit, &probs, &pij, &view.delays, cfg.sample_width_grid())
        })
        .1
    });

    let analyze_s = best_of(reps, || {
        timed(|| analyze_fresh(circuit, &cells, &mut lib, &cfg)).1
    });

    Value::Object(vec![
        ("name".into(), serde_json::to_value(&circuit.name())),
        (
            "nodes".into(),
            serde_json::to_value(&(circuit.node_count() as u64)),
        ),
        (
            "gates".into(),
            serde_json::to_value(&(circuit.gate_count() as u64)),
        ),
        (
            "pos".into(),
            serde_json::to_value(&(circuit.primary_outputs().len() as u64)),
        ),
        (
            "unreliability".into(),
            serde_json::to_value(&report.unreliability),
        ),
        ("pij_s".into(), serde_json::to_value(&pij_s)),
        ("widths_s".into(), serde_json::to_value(&widths_s)),
        ("analyze_fresh_s".into(), serde_json::to_value(&analyze_s)),
    ])
}

/// Minimum over `reps` runs (`INFINITY` when `reps` is 0, for callers
/// folding in an already-timed first run).
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Per-circuit `baseline_time / new_time` ratios for the timed sections.
fn speedups_vs(baseline: &Value, rows: &[Value]) -> Value {
    let empty: &[Value] = &[];
    let base_rows = baseline
        .as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "circuits"))
        .and_then(|(_, v)| v.as_array())
        .unwrap_or(empty);
    let mut out: Vec<(String, Value)> = Vec::new();
    for row in rows {
        let Some(name) = field(row, "name").and_then(Value::as_str) else {
            continue;
        };
        let Some(base) = base_rows
            .iter()
            .find(|b| field(b, "name").and_then(Value::as_str) == Some(name))
        else {
            continue;
        };
        let ratio = |key: &str| -> Value {
            match (num(base, key), num(row, key)) {
                (Some(b), Some(n)) if n > 0.0 => serde_json::to_value(&(b / n)),
                _ => Value::Null,
            }
        };
        out.push((
            name.to_owned(),
            Value::Object(vec![
                ("pij".into(), ratio("pij_s")),
                ("widths".into(), ratio("widths_s")),
                ("analyze_fresh".into(), ratio("analyze_fresh_s")),
            ]),
        ));
    }
    Value::Object(out)
}

fn field<'v>(obj: &'v Value, key: &str) -> Option<&'v Value> {
    obj.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn num(obj: &Value, key: &str) -> Option<f64> {
    match field(obj, key) {
        Some(Value::Number(n)) => Some(n.as_f64()),
        _ => None,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
