//! Perf-trajectory snapshot: wall-times the ASERTA/SERTOPT hot paths on
//! fixed circuits at fixed seeds and writes a `BENCH_*.json` record, so
//! every PR has a baseline to beat.
//!
//! Measures, per circuit (c17 / sec32 / layered):
//!
//! * `pij` — Monte-Carlo sensitization-probability estimation;
//! * `widths` — the reverse-topological [`ExpectedWidths`] pass;
//! * `analyze_fresh` — the end-to-end ASERTA pipeline (library
//!   characterization warmed up beforehand so the timing isolates the
//!   analysis hot path);
//! * `optimize_fresh` / `optimize_incremental` — the same fixed-seed
//!   SERTOPT run measured against both evaluation strategies: one full
//!   analysis (a cold-start session, including its owned-state setup)
//!   per move versus the persistent warm
//!   [`aserta::AnalysisSession`]. The two runs produce
//!   identical outcomes (asserted), so the ratio measures warm-session
//!   reuse against the cold-start oracle path;
//! * `corners_fresh` / `corners_session` — the multi-corner scenario
//!   sweep ([`ser_bench::corners`]): a VDD × Vth × charge grid analyzed
//!   fresh per corner (cold session + `P_ij` re-estimate each time)
//!   versus driven through one warm session as per-corner deltas.
//!   Identical points (asserted), same warm-vs-cold reading;
//! * `snapshot_rebuild` / `snapshot_restore` — cold-starting a session
//!   from a `.sersnap` image versus rebuilding it from scratch
//!   (including the Monte-Carlo `P_ij` estimate the snapshot makes
//!   redundant). The restored session is bitwise-verified against the
//!   live one by construction, so the ratio is pure persistence win.
//!
//! A separate top-level `serve` section times the `ser-serve` daemon
//! path on layered1k: requests/sec through an in-process daemon whose
//! pooled warm session answers charge-delta analyze requests, against a
//! fresh builder session per request. Under `--gate` the warm speedup
//! is held to an **absolute** floor ([`SERVE_SPEEDUP_FLOOR`]), not a
//! baseline ratio — the section is new and self-judging.
//!
//! A `pij_kernel` section ablates the estimator modes on layered1k at a
//! multi-block budget: the pre-PR scalar fixed-budget path against the
//! wide kernels alone (asserted bitwise identical), adaptive sampling
//! alone, exact small-cone mode alone, and the default combination —
//! whose speedup over scalar is held to an **absolute**
//! [`PIJ_KERNEL_SPEEDUP_FLOOR`] under `--gate`, serve-style.
//!
//! ```text
//! cargo run --release -p ser-bench --bin perf_snapshot -- \
//!     [--smoke] [--gate] [--scaling] [--only SECTION] [--out PATH] \
//!     [--baseline PATH] [--emit-snapshot PATH]
//! ```
//!
//! `--only <circuits|serve|pij_kernel|scaling>` runs a single section
//! (skipping the baseline comparison, whose coverage checks would
//! otherwise fail loudly) — so e.g. the `pij_kernel` ablations can be
//! iterated without paying the full suite.
//!
//! `--smoke` shrinks vector counts and repetitions for CI and compares
//! against the **committed baseline** (`crates/bench/baselines/
//! smoke.json`, embedded at compile time), printing the per-section
//! comparison to stdout so CI logs are self-explanatory. `--gate`
//! additionally fails (exit 1) if any timed section regresses beyond
//! [`GATE_THRESHOLD`]× the baseline. `--baseline` compares against an
//! explicit snapshot file instead and embeds it in the output document.
//!
//! `--scaling` additionally records a gates-versus-time/memory curve on
//! the [`tiled`](ser_netlist::generate::tiled) big-circuit family
//! (1k/10k gates in smoke mode, 1k/10k/100k otherwise): `analyze_fresh`
//! wall time, the streamed estimator's peak arena bytes (total and
//! amortized per node) and the process peak RSS per point, plus the
//! fitted log-log slope of time versus gates. Under `--gate` the slope
//! is compared against the baseline's — catching asymptotic regressions
//! that per-circuit constants would miss — alongside the usual
//! per-point wall-time ratios.

use aserta::{
    timing_view, AnalysisSession, AsertaConfig, AsertaReport, CircuitCells, ExpectedWidths,
    LoadModel, SessionSnapshot,
};
use ser_bench::corners::{sweep_fresh, sweep_session, CornerGrid};
use ser_bench::timed;
use ser_cells::{CharGrids, Library};
use ser_logicsim::probability::static_probabilities_analytic;
use ser_logicsim::sensitize::{
    cone_chunk_size, sensitization_probabilities, sensitization_probabilities_cfg,
    sensitization_probabilities_with_stats, sensitization_probabilities_with_stats_cfg,
    simulation_threads, PijConfig,
};
use ser_netlist::generate::{self, LayeredSpec, TiledSpec};
use ser_netlist::Circuit;
use ser_serve::api::AnalyzeResult;
use ser_serve::{serve, CircuitSource, Client, GridKind, Listen, Request, Response, ServerConfig};
use ser_spice::Technology;
use serde_json::Value;
use sertopt::{Algorithm, AllowedParams, EvalStrategy, OptimizeRequest, OptimizerConfig};

/// Fixed seed shared by every stochastic estimate in the snapshot.
const SEED: u64 = 0xBE7C;

/// Prints a fatal error and exits — the bench binary's replacement for
/// `unwrap()`/`panic!` on fallible analysis and I/O surfaces.
fn die(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {context}: {err}");
    std::process::exit(2);
}

/// [`aserta::try_analyze_fresh`] with bench-style error reporting.
fn checked_analyze(
    circuit: &Circuit,
    cells: &CircuitCells,
    lib: &mut Library,
    cfg: &AsertaConfig,
) -> AsertaReport {
    aserta::try_analyze_fresh(circuit, cells, lib, cfg)
        .unwrap_or_else(|e| die(&format!("analyzing {}", circuit.name()), e))
}

/// The committed smoke baseline CI gates against (regenerate by running
/// `perf_snapshot --smoke --out crates/bench/baselines/smoke.json` on
/// the reference machine after an intentional perf change).
const EMBEDDED_SMOKE_BASELINE: &str = include_str!("../../baselines/smoke.json");

/// Allowed wall-time regression before `--gate` fails the run. Generous:
/// CI machines are noisy; the gate is meant to catch order-of-magnitude
/// slips, not jitter.
const GATE_THRESHOLD: f64 = 1.5;

/// Sections whose *baseline* wall time is below this are compared and
/// printed but never gated: below ~10 ms (c17's entire analysis and
/// optimization), scheduler noise swamps any real signal even
/// best-of-3, and a 2x blip there says nothing about the code.
const MIN_GATED_SECONDS: f64 = 1.0e-2;

/// The timed sections a baseline comparison inspects. A section (or a
/// whole circuit) missing from the baseline is a **loud** `--gate`
/// failure, not a silent skip — regenerate the committed baseline
/// whenever a scenario is added.
const TIMED_KEYS: [&str; 8] = [
    "pij_s",
    "widths_s",
    "analyze_fresh_s",
    "optimize_fresh_s",
    "optimize_incremental_s",
    "corners_fresh_s",
    "corners_session_s",
    "snapshot_restore_s",
];

/// Hard floor on the warm-daemon speedup over fresh-per-request
/// analysis on layered1k under `--gate`. **Absolute**, not
/// baseline-relative: the daemon's entire reason to exist is that a
/// pooled warm session answers a charge-delta request without
/// rebuilding the session (and re-running the Monte-Carlo `P_ij`
/// estimate), so a ratio below this means the pool stopped serving
/// warm.
const SERVE_SPEEDUP_FLOOR: f64 = 5.0;

/// Hard floor on the default-mode `P_ij` speedup (wide kernels +
/// adaptive sampling + exact small cones, at default accuracy) over the
/// pre-PR scalar fixed-budget path on layered1k under `--gate`.
/// **Absolute**, serve-style: the estimator rewrite's reason to exist
/// is a multiple-× cut of the dominant `analyze_fresh` term, so a
/// ratio below this means one of the three levers stopped pulling.
const PIJ_KERNEL_SPEEDUP_FLOOR: f64 = 3.0;

/// Allowed additive increase of the fitted log-log `analyze_fresh` slope
/// over the baseline's before the scaling gate fails. A slope step of
/// this size means super-linear growth crept in (e.g. an accidental
/// `O(V·|PO|)` pass), which per-point ratios on small circuits miss.
const SLOPE_MARGIN: f64 = 0.35;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate = args.iter().any(|a| a == "--gate");
    let scaling_mode = args.iter().any(|a| a == "--scaling");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_pr7.json".to_owned());
    let baseline_path = flag_value(&args, "--baseline");

    // A sample image of the current format version, e.g. for CI to
    // upload as a downloadable artifact. Standalone: emits and exits.
    if let Some(path) = flag_value(&args, "--emit-snapshot") {
        emit_snapshot(&path);
        return;
    }

    // Smoke keeps vector counts small but still takes best-of-3: the
    // 1.5x gate needs timings stable enough not to trip on scheduler
    // noise.
    // The committed baseline holds smoke-mode numbers; gating full-mode
    // timings against it would fail unconditionally.
    if gate && !smoke && baseline_path.is_none() {
        eprintln!("error: --gate needs --smoke (committed baseline) or an explicit --baseline");
        std::process::exit(2);
    }

    // `--only` narrows the run to one section and drops the baseline
    // comparison (whose missing-section checks would fail loudly by
    // design for every section that did not run).
    let only = flag_value(&args, "--only");
    if let Some(o) = &only {
        if !["circuits", "serve", "pij_kernel", "scaling"].contains(&o.as_str()) {
            eprintln!("error: unknown --only section {o:?} (circuits|serve|pij_kernel|scaling)");
            std::process::exit(2);
        }
    }
    let runs = |section: &str| only.as_deref().is_none_or(|o| o == section);

    let (vectors, reps) = if smoke { (512, 3) } else { (4096, 3) };
    let threads = simulation_threads();

    let mut rows: Vec<Value> = Vec::new();
    if runs("circuits") {
        for circuit in snapshot_circuits() {
            let mut row = measure(&circuit, vectors, reps);
            merge(&mut row, measure_optimize(&circuit, smoke));
            merge(&mut row, measure_corners(&circuit, smoke));
            merge(&mut row, measure_snapshot_restore(&circuit, smoke));
            eprintln!("measured {}", circuit.name());
            rows.push(row);
        }
    }
    let scaling_doc = (scaling_mode && runs("scaling")).then(|| measure_scaling(smoke));
    let serve_doc = runs("serve").then(|| measure_serve(smoke));
    let pij_kernel_doc = runs("pij_kernel").then(measure_pij_kernel);

    // An explicit --baseline is embedded in the document; the committed
    // smoke baseline is only *printed* (embedding it would nest forever
    // once the output is committed as the next baseline).
    let explicit_baseline = baseline_path.map(|p| {
        let text = std::fs::read_to_string(&p).unwrap_or_else(|e| die(&format!("reading {p}"), e));
        serde_json::from_str::<Value>(&text).unwrap_or_else(|e| die(&format!("parsing {p}"), e))
    });
    let speedups = explicit_baseline.as_ref().map(|b| speedups_vs(b, &rows));

    let compare_against = if only.is_some() {
        None
    } else {
        explicit_baseline.clone().or_else(|| {
            if smoke || gate {
                Some(
                    serde_json::from_str::<Value>(EMBEDDED_SMOKE_BASELINE)
                        .unwrap_or_else(|e| die("parsing the embedded smoke baseline", e)),
                )
            } else {
                None
            }
        })
    };
    let mut regressions: Vec<String> = Vec::new();
    if let Some(base) = &compare_against {
        regressions = print_comparison(base, &rows);
        if let Some(run_scaling) = &scaling_doc {
            regressions.extend(print_scaling_comparison(base, run_scaling));
        }
    }
    // The serve and pij_kernel sections judge themselves against
    // absolute floors rather than the committed baseline, so a stale
    // baseline can never mask a dead warm path or kernel path.
    if gate {
        if let Some(serve_doc) = &serve_doc {
            match num(serve_doc, "warm_speedup") {
                Some(s) if s >= SERVE_SPEEDUP_FLOOR => {
                    println!(
                        "serve gate: warm speedup {s:.1}x (absolute floor {SERVE_SPEEDUP_FLOOR}x)"
                    );
                }
                Some(s) => regressions.push(format!(
                    "serve: warm-daemon speedup {s:.2}x below the absolute {SERVE_SPEEDUP_FLOOR}x floor"
                )),
                None => regressions.push(
                    "serve: warm_speedup missing — the serve section stopped measuring".into(),
                ),
            }
        }
        if let Some(pij_doc) = &pij_kernel_doc {
            match num(pij_doc, "speedup_default") {
                Some(s) if s >= PIJ_KERNEL_SPEEDUP_FLOOR => {
                    println!(
                        "pij_kernel gate: default-mode speedup {s:.1}x \
                         (absolute floor {PIJ_KERNEL_SPEEDUP_FLOOR}x)"
                    );
                }
                Some(s) => regressions.push(format!(
                    "pij_kernel: default-mode speedup {s:.2}x below the absolute \
                     {PIJ_KERNEL_SPEEDUP_FLOOR}x floor"
                )),
                None => regressions.push(
                    "pij_kernel: speedup_default missing — the section stopped measuring".into(),
                ),
            }
        }
    }

    let mut doc: Vec<(String, Value)> = vec![
        ("snapshot".into(), serde_json::to_value(&"pr7")),
        ("smoke".into(), serde_json::to_value(&smoke)),
        ("threads".into(), serde_json::to_value(&(threads as u64))),
        ("vectors".into(), serde_json::to_value(&(vectors as u64))),
        ("reps".into(), serde_json::to_value(&(reps as u64))),
        ("circuits".into(), Value::Array(rows)),
    ];
    if let Some(s) = serve_doc {
        doc.push(("serve".into(), s));
    }
    if let Some(s) = pij_kernel_doc {
        doc.push(("pij_kernel".into(), s));
    }
    if let Some(s) = scaling_doc {
        doc.push(("scaling".into(), s));
    }
    if let Some(s) = speedups {
        doc.push(("speedup_vs_baseline".into(), s));
    }
    if let Some(b) = explicit_baseline {
        doc.push(("baseline".into(), b));
    }
    let text = serde_json::to_string_pretty(&Value::Object(doc))
        .unwrap_or_else(|e| die("rendering the output JSON", e));
    std::fs::write(&out_path, text + "\n")
        .unwrap_or_else(|e| die(&format!("writing {out_path}"), e));
    println!("wrote {out_path}");

    if gate && !regressions.is_empty() {
        eprintln!("perf gate FAILED ({GATE_THRESHOLD}x threshold):");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
    if gate {
        println!("perf gate passed ({GATE_THRESHOLD}x threshold)");
    }
}

/// The fixed circuit set: tiny exact c17, the 32-bit SEC circuit
/// (c499-class structure) and a 1000-gate random layered DAG.
fn snapshot_circuits() -> Vec<Circuit> {
    vec![
        generate::c17(),
        generate::sec32("sec32"),
        generate::layered(&LayeredSpec::new("layered1k", 40, 12, 1000)),
    ]
}

/// Times the three analysis hot paths on one circuit, keeping the best
/// of `reps` runs (first `analyze_fresh` call outside the clock warms
/// the library's characterization cache).
fn measure(circuit: &Circuit, vectors: usize, reps: usize) -> Value {
    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let cells = CircuitCells::nominal(circuit);
    let cfg = AsertaConfig {
        sensitization_vectors: vectors,
        seed: SEED,
        ..AsertaConfig::default()
    };

    // Warm-up: characterizes every cell once so timed runs hit the cache.
    let report = checked_analyze(circuit, &cells, &mut lib, &cfg);

    // The first timed run doubles as the matrix used by the widths pass.
    let (pij, first_s) = timed(|| sensitization_probabilities(circuit, vectors, SEED));
    let rest_s = best_of(reps.saturating_sub(1), || {
        timed(|| sensitization_probabilities(circuit, vectors, SEED)).1
    });
    let pij_s = first_s.min(rest_s);

    let probs = static_probabilities_analytic(circuit, cfg.pi_probability);
    let loads = LoadModel {
        wire_cap_per_pin: cfg.wire_cap_per_pin,
        po_load: cfg.po_load,
    };
    let view = timing_view(circuit, &cells, &mut lib, loads, cfg.pi_ramp);
    let widths_s = best_of(reps, || {
        timed(|| {
            ExpectedWidths::compute(circuit, &probs, &pij, &view.delays, cfg.sample_width_grid())
        })
        .1
    });

    let analyze_s = best_of(reps, || {
        timed(|| checked_analyze(circuit, &cells, &mut lib, &cfg)).1
    });

    Value::Object(vec![
        ("name".into(), serde_json::to_value(&circuit.name())),
        (
            "nodes".into(),
            serde_json::to_value(&(circuit.node_count() as u64)),
        ),
        (
            "gates".into(),
            serde_json::to_value(&(circuit.gate_count() as u64)),
        ),
        (
            "pos".into(),
            serde_json::to_value(&(circuit.primary_outputs().len() as u64)),
        ),
        (
            "unreliability".into(),
            serde_json::to_value(&report.unreliability),
        ),
        ("pij_s".into(), serde_json::to_value(&pij_s)),
        ("widths_s".into(), serde_json::to_value(&widths_s)),
        ("analyze_fresh_s".into(), serde_json::to_value(&analyze_s)),
    ])
}

/// Times the same fixed-seed SERTOPT run under both evaluation engines
/// (single worker thread, so the ratio isolates incrementality, not
/// parallelism) and asserts the outcomes agree.
fn measure_optimize(circuit: &Circuit, smoke: bool) -> Value {
    // Coordinate descent is the representative inner-loop workload:
    // localized single-coordinate moves, exactly what the incremental
    // engine scopes. (SQP's SPSA probes above `FD_DIM_LIMIT` perturb all
    // coordinates at once and profit mostly from thread batching.)
    let mut cfg = OptimizerConfig {
        algorithm: Algorithm::CoordinateDescent,
        allowed: AllowedParams::tiny(),
        iterations: if smoke { 3 } else { 10 },
        seed: SEED,
        threads: 1,
        ..OptimizerConfig::default()
    };
    cfg.aserta.sensitization_vectors = if smoke { 512 } else { 2048 };
    cfg.aserta.seed = SEED;

    // Pre-warm one library per engine run outside the clock.
    let mut lib_fresh = Library::new(Technology::ptm70(), CharGrids::coarse());
    let mut lib_inc = Library::new(Technology::ptm70(), CharGrids::coarse());
    lib_fresh.characterize_spec(&cfg.allowed.library_spec(circuit), 0);
    lib_inc.characterize_spec(&cfg.allowed.library_spec(circuit), 0);

    cfg.eval = EvalStrategy::FreshPerMove;
    let (fresh, fresh_s) =
        timed(|| sertopt::optimize(circuit, &mut lib_fresh, &OptimizeRequest::new(cfg.clone())));
    cfg.eval = EvalStrategy::Incremental;
    let (inc, inc_s) =
        timed(|| sertopt::optimize(circuit, &mut lib_inc, &OptimizeRequest::new(cfg.clone())));
    assert_eq!(
        fresh.optimized.cost,
        inc.optimized.cost,
        "engines must agree on {}",
        circuit.name()
    );
    assert_eq!(fresh.evaluations, inc.evaluations);

    Value::Object(vec![
        ("optimize_fresh_s".into(), serde_json::to_value(&fresh_s)),
        (
            "optimize_incremental_s".into(),
            serde_json::to_value(&inc_s),
        ),
        (
            "optimize_speedup".into(),
            serde_json::to_value(&(fresh_s / inc_s)),
        ),
        (
            "optimize_evaluations".into(),
            serde_json::to_value(&(inc.evaluations as u64)),
        ),
    ])
}

/// Times the multi-corner scenario sweep under both engines (fresh
/// analysis per corner vs one warm session driven by per-corner deltas;
/// single worker thread so the ratio isolates the engine) and asserts
/// they produce identical points.
fn measure_corners(circuit: &Circuit, smoke: bool) -> Value {
    let grid = if smoke {
        CornerGrid::smoke()
    } else {
        CornerGrid::table1_style()
    };
    let corners = grid.corners();
    let cells = CircuitCells::nominal(circuit);
    let cfg = AsertaConfig {
        sensitization_vectors: if smoke { 512 } else { 2048 },
        seed: SEED,
        ..AsertaConfig::default()
    };

    // Warm each engine's library with every corner variant — and the
    // base-point variants the session boots from — outside the clock,
    // so neither run times first-touch characterization.
    let mut lib_fresh = Library::new(Technology::ptm70(), CharGrids::coarse());
    checked_analyze(circuit, &cells, &mut lib_fresh, &cfg);
    sweep_fresh(circuit, &cells, &mut lib_fresh, &cfg, &corners);
    let lib_session = lib_fresh.clone();

    let (fresh, fresh_s) = timed(|| sweep_fresh(circuit, &cells, &mut lib_fresh, &cfg, &corners));
    let (warm, session_s) =
        timed(|| sweep_session(circuit, &cells, lib_session, &cfg, &corners, 1));
    assert_eq!(fresh, warm, "engines must agree on {}", circuit.name());

    Value::Object(vec![
        (
            "corners".into(),
            serde_json::to_value(&(corners.len() as u64)),
        ),
        ("corners_fresh_s".into(), serde_json::to_value(&fresh_s)),
        ("corners_session_s".into(), serde_json::to_value(&session_s)),
        (
            "corners_speedup".into(),
            serde_json::to_value(&(fresh_s / session_s)),
        ),
    ])
}

/// Times cold-start-from-file against a full rebuild at the same
/// config, best-of-2 each: `snapshot_restore_s` covers `read_file` +
/// `restore_from` (decode, CRC checks, re-derivation and the bitwise
/// verification restore performs by construction), `snapshot_rebuild_s`
/// covers a builder `build()` from scratch including the Monte-Carlo `P_ij`
/// estimate the snapshot makes redundant.
fn measure_snapshot_restore(circuit: &Circuit, smoke: bool) -> Value {
    let vectors = if smoke { 512 } else { 2048 };
    let cfg = AsertaConfig {
        sensitization_vectors: vectors,
        seed: SEED,
        ..AsertaConfig::default()
    };
    let cells = CircuitCells::nominal(circuit);
    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    // Warm the characterization cache so both paths time their own work.
    checked_analyze(circuit, &cells, &mut lib, &cfg);

    let session = AnalysisSession::builder(circuit, cells.clone(), lib.clone(), cfg.clone())
        .build()
        .unwrap_or_else(|e| die(&format!("building session for {}", circuit.name()), e));
    let rebuild_s = best_of(2, || {
        timed(|| {
            AnalysisSession::builder(circuit, cells.clone(), lib.clone(), cfg.clone())
                .build()
                .unwrap_or_else(|e| die(&format!("rebuilding session for {}", circuit.name()), e))
        })
        .1
    });

    let dir = std::env::temp_dir().join(format!("sersnap-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| die("creating snapshot temp dir", e));
    let path = dir.join(format!("{}.sersnap", circuit.name()));
    session
        .snapshot_to(&path)
        .unwrap_or_else(|e| die(&format!("writing snapshot for {}", circuit.name()), e));
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);

    let live_bits = session.unreliability().to_bits();
    let restore_s = best_of(2, || {
        timed(|| {
            let snap = SessionSnapshot::read_file(&path)
                .unwrap_or_else(|e| die(&format!("reading snapshot for {}", circuit.name()), e));
            let restored = AnalysisSession::restore_from(&snap)
                .unwrap_or_else(|e| die(&format!("restoring session for {}", circuit.name()), e));
            assert_eq!(
                restored.unreliability().to_bits(),
                live_bits,
                "restored session must match the live one bitwise"
            );
        })
        .1
    });
    std::fs::remove_dir_all(&dir).ok();

    Value::Object(vec![
        (
            "snapshot_rebuild_s".into(),
            serde_json::to_value(&rebuild_s),
        ),
        (
            "snapshot_restore_s".into(),
            serde_json::to_value(&restore_s),
        ),
        (
            "snapshot_restore_speedup".into(),
            serde_json::to_value(&(rebuild_s / restore_s)),
        ),
        (
            "snapshot_bytes".into(),
            serde_json::to_value(&snapshot_bytes),
        ),
    ])
}

/// Times the `ser-serve` daemon path on layered1k: boots an in-process
/// server on a Unix socket, issues analyze requests that differ only in
/// strike charge (after the first cold build each is a warm-session
/// delta, since charge is excluded from the pool identity), and
/// compares per-request wall time against a fresh builder session per
/// request. Library characterization is warmed outside the clock on
/// both sides, so the fresh cost is the per-request work a non-resident
/// caller cannot avoid: the Monte-Carlo `P_ij` estimate plus session
/// setup. One warm answer is asserted bitwise equal to its fresh
/// counterpart — the fidelity contract the speedup rides on.
fn measure_serve(smoke: bool) -> Value {
    let vectors = if smoke { 512 } else { 2048 };
    let cfg = AsertaConfig {
        sensitization_vectors: vectors,
        seed: SEED,
        ..AsertaConfig::default()
    };
    let spec = LayeredSpec::new("layered1k", 40, 12, 1000);
    let circuit = generate::layered(&spec);
    let cells = CircuitCells::nominal(&circuit);
    // Requests cycle through distinct charges: same session identity, so
    // every daemon answer after the first is a warm delta, never a
    // cache replay of an identical request.
    let charges: Vec<f64> = (0..8)
        .map(|i| cfg.charge * (1.0 + 0.125 * i as f64))
        .collect();

    let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    checked_analyze(&circuit, &cells, &mut lib, &cfg);
    let fresh_at = |charge: f64| {
        let mut one = cfg.clone();
        one.charge = charge;
        AnalysisSession::builder(&circuit, cells.clone(), lib.clone(), one)
            .build()
            .unwrap_or_else(|e| die("building a fresh serve-baseline session", e))
    };
    let fresh_reqs = if smoke { 3 } else { 5 };
    let (_, fresh_total_s) = timed(|| {
        for i in 0..fresh_reqs {
            let session = fresh_at(charges[i % charges.len()]);
            assert!(session.unreliability() > 0.0);
        }
    });

    let socket = std::env::temp_dir().join(format!("ser-serve-bench-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let mut server_cfg = ServerConfig::new(Listen::Unix(socket));
    server_cfg.workers = 1;
    let handle = serve(server_cfg).unwrap_or_else(|e| die("booting the in-process daemon", e));
    let mut client =
        Client::connect(&handle.endpoint()).unwrap_or_else(|e| die("connecting to the daemon", e));
    let analyze_at = |client: &mut Client, charge: f64| -> AnalyzeResult {
        let mut one = cfg.clone();
        one.charge = charge;
        let request = Request::Analyze {
            circuit: CircuitSource::Layered {
                name: spec.name.clone(),
                inputs: spec.n_inputs as u64,
                outputs: spec.n_outputs as u64,
                gates: spec.n_gates as u64,
                seed: spec.seed,
            },
            config: one,
            grids: GridKind::Coarse,
            deadline_ms: None,
        };
        match client.request(&request) {
            Ok(Response::Analyzed(result)) => result,
            Ok(other) => die("analyze request", format!("unexpected response {other:?}")),
            Err(e) => die("analyze request", e),
        }
    };

    // The first request pays the daemon's one cold session build; it is
    // recorded separately and kept out of the warm clock.
    let (cold, cold_s) = timed(|| analyze_at(&mut client, charges[0]));
    let check = fresh_at(charges[0]);
    assert_eq!(
        cold.unreliability.to_bits(),
        check.unreliability().to_bits(),
        "daemon answer must be bitwise identical to the direct library call"
    );

    let warm_reqs = if smoke { 24 } else { 48 };
    let (_, warm_total_s) = timed(|| {
        for i in 0..warm_reqs {
            let result = analyze_at(&mut client, charges[i % charges.len()]);
            assert!(result.unreliability > 0.0);
        }
    });

    match client.request(&Request::Shutdown) {
        Ok(Response::ShuttingDown) => {}
        Ok(other) => die(
            "shutting the daemon down",
            format!("unexpected response {other:?}"),
        ),
        Err(e) => die("shutting the daemon down", e),
    }
    drop(client);
    handle.join();

    let fresh_per = fresh_total_s / fresh_reqs as f64;
    let warm_per = warm_total_s / warm_reqs as f64;
    eprintln!(
        "measured serve throughput ({:.0} warm req/s, {:.1}x over fresh-per-request)",
        1.0 / warm_per,
        fresh_per / warm_per
    );

    Value::Object(vec![
        ("circuit".into(), serde_json::to_value(&"layered1k")),
        ("vectors".into(), serde_json::to_value(&(vectors as u64))),
        (
            "warm_requests".into(),
            serde_json::to_value(&(warm_reqs as u64)),
        ),
        ("warm_total_s".into(), serde_json::to_value(&warm_total_s)),
        ("warm_per_request_s".into(), serde_json::to_value(&warm_per)),
        (
            "warm_requests_per_s".into(),
            serde_json::to_value(&(1.0 / warm_per)),
        ),
        ("cold_first_request_s".into(), serde_json::to_value(&cold_s)),
        (
            "fresh_requests".into(),
            serde_json::to_value(&(fresh_reqs as u64)),
        ),
        ("fresh_total_s".into(), serde_json::to_value(&fresh_total_s)),
        (
            "fresh_per_request_s".into(),
            serde_json::to_value(&fresh_per),
        ),
        (
            "fresh_requests_per_s".into(),
            serde_json::to_value(&(1.0 / fresh_per)),
        ),
        (
            "warm_speedup".into(),
            serde_json::to_value(&(fresh_per / warm_per)),
        ),
    ])
}

/// Ablates the estimator modes on layered1k at a deliberately
/// multi-block budget (the adaptive stop rule only fires at 64-word
/// block boundaries, so the 512-vector smoke budget — a single partial
/// block — would show no adaptivity at all):
///
/// * `scalar_fixed` — one lane, tolerance 0, exact mode off: the
///   pre-PR estimator, and the baseline every ratio is against;
/// * `wide_fixed` — default lane width only; asserted **bitwise
///   identical** to `scalar_fixed` (the CI-pin contract);
/// * `adaptive` / `exact` — each remaining lever alone, on wide lanes;
/// * `default` — all three levers at default accuracy; its deviation
///   from scalar is reported (`max_abs_delta_p`) and sanity-bounded.
fn measure_pij_kernel() -> Value {
    let circuit = generate::layered(&LayeredSpec::new("layered1k", 40, 12, 1000));
    let vectors = 200_000;
    let reps = 3;
    let threads = simulation_threads();
    let chunk = cone_chunk_size();

    let scalar_cfg = PijConfig::fixed();
    let wide_cfg = PijConfig {
        lanes: PijConfig::default().lanes,
        ..PijConfig::fixed()
    };
    let adaptive_cfg = PijConfig {
        exact_support: 0,
        ..PijConfig::default()
    };
    let exact_cfg = PijConfig {
        tolerance: 0.0,
        ..PijConfig::default()
    };
    let default_cfg = PijConfig::default();

    let run = |pij: &PijConfig| {
        let (first, first_s) =
            timed(|| sensitization_probabilities_cfg(&circuit, vectors, SEED, threads, chunk, pij));
        let rest_s = best_of(reps - 1, || {
            timed(|| sensitization_probabilities_cfg(&circuit, vectors, SEED, threads, chunk, pij))
                .1
        });
        (first, first_s.min(rest_s))
    };
    let (scalar, scalar_s) = run(&scalar_cfg);
    let (wide, wide_s) = run(&wide_cfg);
    assert_eq!(
        wide, scalar,
        "wide kernels must be bitwise identical to scalar at tolerance 0"
    );
    let (_, adaptive_s) = run(&adaptive_cfg);
    let (_, exact_s) = run(&exact_cfg);
    let (default_m, default_s) = run(&default_cfg);
    let ((_, stats), _) = timed(|| {
        sensitization_probabilities_with_stats_cfg(
            &circuit,
            vectors,
            SEED,
            threads,
            chunk,
            &default_cfg,
        )
    });

    // Default accuracy must stay default accuracy: the combined modes
    // may not drift visibly from the fixed-budget estimate.
    let mut max_delta = 0.0f64;
    for id in circuit.node_ids() {
        for j in 0..circuit.primary_outputs().len() {
            max_delta = max_delta.max((default_m.p(id, j) - scalar.p(id, j)).abs());
        }
    }
    assert!(
        max_delta < 0.05,
        "default estimator modes drifted {max_delta} from the fixed-budget estimate"
    );

    eprintln!(
        "measured pij_kernel (scalar {:.1} ms, default {:.1} ms, {:.1}x)",
        scalar_s * 1e3,
        default_s * 1e3,
        scalar_s / default_s
    );
    Value::Object(vec![
        ("circuit".into(), serde_json::to_value(&"layered1k")),
        ("vectors".into(), serde_json::to_value(&(vectors as u64))),
        ("threads".into(), serde_json::to_value(&(threads as u64))),
        ("chunk".into(), serde_json::to_value(&(chunk as u64))),
        ("scalar_fixed_s".into(), serde_json::to_value(&scalar_s)),
        ("wide_fixed_s".into(), serde_json::to_value(&wide_s)),
        ("adaptive_s".into(), serde_json::to_value(&adaptive_s)),
        ("exact_s".into(), serde_json::to_value(&exact_s)),
        ("default_s".into(), serde_json::to_value(&default_s)),
        (
            "speedup_wide".into(),
            serde_json::to_value(&(scalar_s / wide_s)),
        ),
        (
            "speedup_adaptive".into(),
            serde_json::to_value(&(scalar_s / adaptive_s)),
        ),
        (
            "speedup_exact".into(),
            serde_json::to_value(&(scalar_s / exact_s)),
        ),
        (
            "speedup_default".into(),
            serde_json::to_value(&(scalar_s / default_s)),
        ),
        (
            "exact_roots".into(),
            serde_json::to_value(&(stats.exact_roots as u64)),
        ),
        (
            "adaptive_stops".into(),
            serde_json::to_value(&(stats.adaptive_stops as u64)),
        ),
        ("max_abs_delta_p".into(), serde_json::to_value(&max_delta)),
    ])
}

/// Writes a known-good `.sersnap` image of the sec32 reference circuit
/// at the current format version, then verifies it restores bitwise.
fn emit_snapshot(path: &str) {
    let circuit = generate::sec32("sec32");
    let cfg = AsertaConfig {
        sensitization_vectors: 512,
        seed: SEED,
        ..AsertaConfig::default()
    };
    let cells = CircuitCells::nominal(&circuit);
    let lib = Library::new(Technology::ptm70(), CharGrids::coarse());
    let session = AnalysisSession::builder(&circuit, cells, lib, cfg)
        .build()
        .unwrap_or_else(|e| die("building the sample session", e));
    session
        .snapshot_to(path)
        .unwrap_or_else(|e| die(&format!("writing {path}"), e));
    let snap = SessionSnapshot::read_file(path)
        .unwrap_or_else(|e| die(&format!("reading back {path}"), e));
    let restored = AnalysisSession::restore_from(&snap)
        .unwrap_or_else(|e| die(&format!("restoring {path}"), e));
    assert_eq!(
        restored.unreliability().to_bits(),
        session.unreliability().to_bits(),
        "emitted snapshot must restore bitwise"
    );
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("wrote {path} ({bytes} bytes, restore verified bitwise)");
}

/// Measures the gates-versus-cost curve on the [`generate::tiled`]
/// big-circuit family: per point, best-of-2 `pij` and `analyze_fresh`
/// wall times, the streamed estimator's arena profile and the process
/// peak RSS (monotonic across points — sizes run ascending, so each
/// reading is the high-water mark after that size).
fn measure_scaling(smoke: bool) -> Value {
    let sizes: &[usize] = if smoke {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let vectors = if smoke { 512 } else { 1024 };
    let reps = 2;
    let threads = simulation_threads();
    let chunk = cone_chunk_size();

    let mut points: Vec<Value> = Vec::new();
    for &gates in sizes {
        let name = format!("tiled{}k", gates / 1000);
        let circuit = generate::tiled(&TiledSpec::scaled(name.clone(), gates));
        let nodes = circuit.node_count();
        let cells = CircuitCells::nominal(&circuit);
        let cfg = AsertaConfig {
            sensitization_vectors: vectors,
            seed: SEED,
            ..AsertaConfig::default()
        };
        let mut lib = Library::new(Technology::ptm70(), CharGrids::coarse());
        // Warm-up: characterizes every cell once so timed runs hit the
        // cache, exactly like the fixed-circuit suite.
        checked_analyze(&circuit, &cells, &mut lib, &cfg);

        let ((_, stats), first_s) = timed(|| {
            sensitization_probabilities_with_stats(&circuit, vectors, SEED, threads, chunk)
        });
        let pij_s = first_s.min(best_of(reps - 1, || {
            timed(|| sensitization_probabilities(&circuit, vectors, SEED)).1
        }));
        let analyze_s = best_of(reps, || {
            timed(|| checked_analyze(&circuit, &cells, &mut lib, &cfg)).1
        });

        points.push(Value::Object(vec![
            ("name".into(), serde_json::to_value(&name)),
            ("gates".into(), serde_json::to_value(&(gates as u64))),
            ("nodes".into(), serde_json::to_value(&(nodes as u64))),
            ("pij_s".into(), serde_json::to_value(&pij_s)),
            ("analyze_fresh_s".into(), serde_json::to_value(&analyze_s)),
            (
                "arena_chunks".into(),
                serde_json::to_value(&(stats.chunks as u64)),
            ),
            (
                "arena_peak_bytes".into(),
                serde_json::to_value(&(stats.peak_bytes as u64)),
            ),
            (
                "arena_bytes_per_node".into(),
                serde_json::to_value(&(stats.peak_bytes as f64 / nodes as f64)),
            ),
            (
                "cone_entries".into(),
                serde_json::to_value(&(stats.cone_entries as u64)),
            ),
            (
                "peak_rss_bytes".into(),
                match peak_rss_bytes() {
                    Some(b) => serde_json::to_value(&b),
                    None => Value::Null,
                },
            ),
        ]));
        eprintln!("measured scaling point {name} ({gates} gates)");
    }

    let slope = fit_loglog_slope(&points, "analyze_fresh_s");
    Value::Object(vec![
        ("vectors".into(), serde_json::to_value(&(vectors as u64))),
        ("chunk".into(), serde_json::to_value(&(chunk as u64))),
        ("points".into(), Value::Array(points)),
        (
            "slope_analyze_fresh".into(),
            match slope {
                Some(s) => serde_json::to_value(&s),
                None => Value::Null,
            },
        ),
    ])
}

/// Least-squares slope of `ln(point[key])` against `ln(gates)` — the
/// empirical scaling exponent (1.0 = linear in circuit size). `None`
/// with fewer than two usable points.
fn fit_loglog_slope(points: &[Value], key: &str) -> Option<f64> {
    let xy: Vec<(f64, f64)> = points
        .iter()
        .filter_map(|p| {
            let g = num(p, "gates").filter(|&g| g > 0.0)?;
            let t = num(p, key).filter(|&t| t > 0.0)?;
            Some((g.ln(), t.ln()))
        })
        .collect();
    if xy.len() < 2 {
        return None;
    }
    let n = xy.len() as f64;
    let mx = xy.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let my = xy.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let sxy = xy.iter().map(|&(x, y)| (x - mx) * (y - my)).sum::<f64>();
    let sxx = xy.iter().map(|&(x, _)| (x - mx) * (x - mx)).sum::<f64>();
    (sxx > 0.0).then(|| sxy / sxx)
}

/// Peak resident-set size of this process from `/proc/self/status`
/// (`VmHWM`), in bytes. `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Prints the scaling-curve comparison and returns its gate findings:
/// per-point `analyze_fresh` ratios beyond [`GATE_THRESHOLD`] (like the
/// fixed-circuit sections), a fitted slope more than [`SLOPE_MARGIN`]
/// above the baseline's, and — loudly — a baseline with no scaling
/// section or mismatched points.
fn print_scaling_comparison(baseline: &Value, run: &Value) -> Vec<String> {
    let mut regressions = Vec::new();
    println!("\nscaling comparison vs baseline:");
    let Some(base) = field(baseline, "scaling") else {
        println!("  (baseline has no scaling section)");
        regressions.push(
            "scaling: section missing from baseline — regenerate crates/bench/baselines/smoke.json"
                .to_owned(),
        );
        return regressions;
    };
    let empty: Vec<Value> = Vec::new();
    let base_points = field(base, "points")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    let run_points = field(run, "points")
        .and_then(Value::as_array)
        .unwrap_or(&empty);

    for point in run_points {
        let Some(gates) = num(point, "gates") else {
            continue;
        };
        let name = format!("{}-gate point", gates as u64);
        let Some(base_point) = base_points.iter().find(|b| num(b, "gates") == Some(gates)) else {
            println!("  {name} (not in baseline)");
            regressions.push(format!(
                "scaling: {name} missing from baseline — regenerate crates/bench/baselines/smoke.json"
            ));
            continue;
        };
        match (
            num(base_point, "analyze_fresh_s"),
            num(point, "analyze_fresh_s"),
        ) {
            (Some(b), Some(n)) if b > 0.0 => {
                let ratio = n / b;
                println!("  {name:<18} analyze_fresh {ratio:.2}x");
                if ratio > GATE_THRESHOLD && b >= MIN_GATED_SECONDS {
                    regressions.push(format!(
                        "scaling: {name} analyze_fresh_s {n:.6}s vs baseline {b:.6}s ({ratio:.2}x)"
                    ));
                }
            }
            _ => {
                println!("  {name:<18} (no comparable timing)");
            }
        }
    }
    for base_point in base_points {
        let Some(gates) = num(base_point, "gates") else {
            continue;
        };
        if !run_points.iter().any(|p| num(p, "gates") == Some(gates)) {
            regressions.push(format!(
                "scaling: {}-gate point in baseline but not measured — a scaling size silently dropped",
                gates as u64
            ));
        }
    }

    match (
        num(base, "slope_analyze_fresh"),
        num(run, "slope_analyze_fresh"),
    ) {
        (Some(b), Some(n)) => {
            println!("  slope             {n:.3} vs baseline {b:.3}");
            if n > b + SLOPE_MARGIN {
                regressions.push(format!(
                    "scaling: analyze_fresh slope {n:.3} vs baseline {b:.3} — asymptotic regression"
                ));
            }
        }
        _ => {
            println!("  slope             (not comparable)");
        }
    }
    regressions
}

/// Appends `extra`'s fields to the `row` object.
fn merge(row: &mut Value, extra: Value) {
    if let (Value::Object(row), Value::Object(extra)) = (row, extra) {
        row.extend(extra);
    }
}

/// Minimum over `reps` runs (`INFINITY` when `reps` is 0, for callers
/// folding in an already-timed first run).
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Prints a per-circuit, per-section comparison against `baseline` to
/// stdout and returns the gate findings: sections regressing beyond
/// [`GATE_THRESHOLD`] (ignoring sections whose baseline is under
/// [`MIN_GATED_SECONDS`] — pure noise at that scale), plus any measured
/// section or circuit **missing** from the baseline — a stale baseline
/// must fail the gate loudly, not silently shrink its coverage. The
/// committed baseline records one machine's wall times: regenerate it
/// alongside intentional perf changes (and whenever a scenario is
/// added), and expect the gate to be meaningful only on comparable
/// hardware.
fn print_comparison(baseline: &Value, rows: &[Value]) -> Vec<String> {
    let empty: &[Value] = &[];
    let base_rows = baseline_rows(baseline).unwrap_or(empty);
    let mut regressions = Vec::new();
    println!("\ncomparison vs baseline (new/old wall time; <1 is faster):");
    for row in rows {
        let Some(name) = field(row, "name").and_then(Value::as_str) else {
            continue;
        };
        let Some(base) = base_rows
            .iter()
            .find(|b| field(b, "name").and_then(Value::as_str) == Some(name))
        else {
            println!("  {name:<10} (not in baseline)");
            regressions.push(format!(
                "{name}: circuit missing from baseline — regenerate crates/bench/baselines/smoke.json"
            ));
            continue;
        };
        let mut parts: Vec<String> = Vec::new();
        for key in TIMED_KEYS {
            match (num(base, key), num(row, key)) {
                (Some(b), Some(n)) if b > 0.0 => {
                    let ratio = n / b;
                    parts.push(format!("{} {ratio:.2}x", key.trim_end_matches("_s")));
                    if ratio > GATE_THRESHOLD && b >= MIN_GATED_SECONDS {
                        regressions.push(format!(
                            "{name}: {key} {n:.6}s vs baseline {b:.6}s ({ratio:.2}x)"
                        ));
                    }
                }
                (None, Some(_)) => {
                    parts.push(format!("{} (no baseline)", key.trim_end_matches("_s")));
                    regressions.push(format!(
                        "{name}: {key} missing from baseline — regenerate crates/bench/baselines/smoke.json"
                    ));
                }
                (Some(_), None) => {
                    parts.push(format!("{} (not measured)", key.trim_end_matches("_s")));
                    regressions.push(format!(
                        "{name}: {key} in baseline but not measured — a scenario silently stopped running"
                    ));
                }
                _ => {}
            }
        }
        println!("  {name:<10} {}", parts.join("  "));
    }
    // The reverse direction: circuits the baseline covers but this run
    // no longer measures must fail just as loudly.
    for base in base_rows {
        let Some(name) = field(base, "name").and_then(Value::as_str) else {
            continue;
        };
        if !rows
            .iter()
            .any(|r| field(r, "name").and_then(Value::as_str) == Some(name))
        {
            println!("  {name:<10} (in baseline, not measured)");
            regressions.push(format!(
                "{name}: circuit in baseline but not measured — a snapshot circuit silently dropped"
            ));
        }
    }
    regressions
}

fn baseline_rows(baseline: &Value) -> Option<&[Value]> {
    baseline
        .as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "circuits"))
        .and_then(|(_, v)| v.as_array())
}

/// Per-circuit `baseline_time / new_time` ratios for the timed sections.
fn speedups_vs(baseline: &Value, rows: &[Value]) -> Value {
    let empty: &[Value] = &[];
    let base_rows = baseline_rows(baseline).unwrap_or(empty);
    let mut out: Vec<(String, Value)> = Vec::new();
    for row in rows {
        let Some(name) = field(row, "name").and_then(Value::as_str) else {
            continue;
        };
        let Some(base) = base_rows
            .iter()
            .find(|b| field(b, "name").and_then(Value::as_str) == Some(name))
        else {
            continue;
        };
        let ratio = |key: &str| -> Value {
            match (num(base, key), num(row, key)) {
                (Some(b), Some(n)) if n > 0.0 => serde_json::to_value(&(b / n)),
                _ => Value::Null,
            }
        };
        out.push((
            name.to_owned(),
            Value::Object(vec![
                ("pij".into(), ratio("pij_s")),
                ("widths".into(), ratio("widths_s")),
                ("analyze_fresh".into(), ratio("analyze_fresh_s")),
                (
                    "optimize_incremental".into(),
                    ratio("optimize_incremental_s"),
                ),
                ("corners_session".into(), ratio("corners_session_s")),
            ]),
        ));
    }
    Value::Object(out)
}

fn field<'v>(obj: &'v Value, key: &str) -> Option<&'v Value> {
    obj.as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn num(obj: &Value, key: &str) -> Option<f64> {
    match field(obj, key) {
        Some(Value::Number(n)) => Some(n.as_f64()),
        _ => None,
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
