//! Regenerates **Fig. 3**: per-node unreliability `U_i` computed by
//! ASERTA vs the transistor-level reference ("SPICE") on c432, for nodes
//! at most five levels from the primary outputs, plus their correlation
//! (the paper reports 0.96 on c432 and 0.9 on average).
//!
//! ```text
//! cargo run --release -p ser-bench --bin fig3 [--circuit c432] [--vectors 50] [--suite]
//! ```

use aserta::{validate, AsertaConfig, CircuitCells};
use ser_cells::{CharGrids, Library};
use ser_spice::Technology;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let circuit_name = flag_value(&args, "--circuit").unwrap_or_else(|| "c432".to_owned());
    let vectors: usize = flag_value(&args, "--vectors")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let suite = args.iter().any(|a| a == "--suite");

    let tech = Technology::ptm70();
    let names: Vec<String> = if suite {
        vec!["c17".into(), "c432".into(), "c499".into()]
    } else {
        vec![circuit_name]
    };

    let mut correlations = Vec::new();
    for name in &names {
        let circuit = ser_bench::bundled_iscas85(name);
        let cells = CircuitCells::nominal(&circuit);
        let mut lib = Library::new(tech.clone(), CharGrids::standard());
        let cfg = AsertaConfig::default();
        let (report, secs) = ser_bench::timed(|| {
            validate::correlate_with_reference(&tech, &circuit, &cells, &mut lib, &cfg, vectors, 5)
        });
        println!("\n# Fig. 3 — {name}: ASERTA vs transistor-level U_i, nodes <= 5 levels from POs");
        println!(
            "# {} nodes, {} reference vectors, {:.1} s",
            report.nodes.len(),
            vectors,
            secs
        );
        println!("{:<14} {:>14} {:>14}", "node", "U_aserta", "U_reference");
        for ((n, a), r) in report
            .nodes
            .iter()
            .zip(&report.aserta)
            .zip(&report.reference)
        {
            println!("{:<14} {:>14.4e} {:>14.4e}", circuit.node(*n).name, a, r);
        }
        println!(
            "correlation({name}) = {:.3}   (paper: 0.96 on c432)",
            report.correlation
        );
        correlations.push(report.correlation);
    }
    if correlations.len() > 1 {
        let avg = correlations.iter().sum::<f64>() / correlations.len() as f64;
        println!("\naverage correlation = {avg:.3}   (paper: 0.9 across ISCAS'85)");
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
