//! Property-based tests of the lookup-table interpolation.

use proptest::prelude::*;
use ser_cells::lut::{Axis, Lut1, Lut2};

fn arb_axis(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..10.0, 1..max_len).prop_map(|steps| {
        let mut x = 0.0;
        let mut out = Vec::with_capacity(steps.len());
        for s in steps {
            x += s;
            out.push(x);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 1-D interpolation is exact at grid points and bounded between the
    /// table's min and max everywhere.
    #[test]
    fn lut1_exact_and_bounded(
        axis in arb_axis(12),
        seed in 0u64..1000,
        q in -5.0f64..60.0,
    ) {
        let n = axis.len();
        let values: Vec<f64> = (0..n).map(|i| {
            // Deterministic pseudo-random values.
            let h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64 * 77);
            (h % 1000) as f64 / 10.0
        }).collect();
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lut = Lut1::new(Axis::new(axis.clone()).unwrap(), values.clone()).unwrap();
        for (x, v) in axis.iter().zip(&values) {
            prop_assert!((lut.eval(*x) - v).abs() < 1e-9);
        }
        let y = lut.eval(q);
        prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
    }

    /// Bilinear interpolation reproduces affine functions exactly.
    #[test]
    fn lut2_reproduces_affine(
        ax in arb_axis(8),
        ay in arb_axis(8),
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        c in -5.0f64..5.0,
        qx in 0.0f64..90.0,
        qy in 0.0f64..90.0,
    ) {
        let f = |x: f64, y: f64| a * x + b * y + c;
        let mut values = Vec::new();
        for &x in &ax {
            for &y in &ay {
                values.push(f(x, y));
            }
        }
        let lut = Lut2::new(
            Axis::new(ax.clone()).unwrap(),
            Axis::new(ay.clone()).unwrap(),
            values,
        ).unwrap();
        // Inside the hull: exact. Outside: clamped, so compare against
        // the clamped coordinates.
        let cx = qx.clamp(ax[0], *ax.last().unwrap());
        let cy = qy.clamp(ay[0], *ay.last().unwrap());
        prop_assert!((lut.eval(qx, qy) - f(cx, cy)).abs() < 1e-6,
            "f({qx},{qy}) -> {} vs {}", lut.eval(qx, qy), f(cx, cy));
    }

    /// Axis::locate brackets correctly for in-range queries.
    #[test]
    fn axis_locate_brackets(axis in arb_axis(16), t in 0.0f64..1.0) {
        if axis.len() < 2 { return Ok(()); }
        let a = Axis::new(axis.clone()).unwrap();
        let lo = axis[0];
        let hi = *axis.last().unwrap();
        let q = lo + t * (hi - lo);
        let (i, frac) = a.locate(q);
        prop_assert!(i + 1 < axis.len());
        prop_assert!((0.0..=1.0).contains(&frac));
        let reconstructed = axis[i] * (1.0 - frac) + axis[i + 1] * frac;
        prop_assert!((reconstructed - q).abs() < 1e-9);
    }
}
