//! Characterized cell library: the paper's "SPICE look-up tables".
//!
//! ASERTA never runs transistor-level simulation during analysis; it looks
//! everything up in tables characterized once per cell variant — exactly
//! the architecture this crate provides:
//!
//! * [`lut`] — 1-D/2-D lookup tables with multilinear interpolation and
//!   clamped extrapolation ("ASERTA uses linear-interpolation inside the
//!   look-up tables");
//! * [`CharacterizedCell`] — one `(kind, fan-in, size, length, VDD, Vth)`
//!   variant with its delay/output-ramp/glitch-width tables (filled by
//!   driving [`ser_spice`]), plus analytic input capacitance, leakage,
//!   energy and area;
//! * [`Library`] — a collection of variants with exact-match lookup,
//!   per-(kind, fan-in) enumeration for SERTOPT's matching step, lazy
//!   memoized characterization, and JSON persistence.
//!
//! # Example
//!
//! ```
//! use ser_cells::{CharGrids, Library};
//! use ser_spice::{GateParams, Technology};
//! use ser_netlist::GateKind;
//!
//! let tech = Technology::ptm70();
//! let mut lib = Library::new(tech.clone(), CharGrids::coarse());
//! let nominal = GateParams::new(GateKind::Nand, 2);
//! let cell = lib.get_or_characterize(&nominal);
//! let d = cell.delay_at(2.0e-15, 20.0e-12);
//! assert!(d > 0.0 && d < 1.0e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod characterize;
mod library;
pub mod lut;

pub use cell::CharacterizedCell;
pub use characterize::{characterize_cell, CharGrids};
pub use library::{Library, LibrarySpec};
