use ser_spice::{GateParams, Technology};
use serde::{Deserialize, Serialize};

use crate::lut::Lut2;

/// One fully characterized cell variant: a [`GateParams`] point plus the
/// lookup tables the paper's tools consult.
///
/// Tables (all SI units):
/// * `delay(load F, input ramp s) → s` — propagation delay;
/// * `out_ramp(load, input ramp) → s` — output transition time;
/// * `glitch(load, charge C) → s` — width of the strike-generated glitch
///   at the cell output (the paper's "generated glitch width" table, with
///   the charge axis its stated future-work extension);
///
/// plus analytic scalars: per-pin input capacitance, leakage power, total
/// self capacitance (for `C·V²` dynamic energy), and abstract area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizedCell {
    /// The cell's parameter point.
    pub params: GateParams,
    /// Capacitance of one input pin, farads.
    pub input_cap: f64,
    /// Propagation delay table over (load, input ramp).
    pub delay: Lut2,
    /// Output transition-time table over (load, input ramp).
    pub out_ramp: Lut2,
    /// Generated-glitch-width table over (load, injected charge).
    pub glitch: Lut2,
    /// Static (leakage) power at the cell's VDD, watts.
    pub leak_power: f64,
    /// Self capacitance charged on every output transition, farads
    /// (output + interstage nodes).
    pub c_self_total: f64,
    /// Abstract area units (see [`GateParams::area`]).
    pub area: f64,
}

impl CharacterizedCell {
    /// Interpolated propagation delay for a load and input ramp.
    #[inline]
    pub fn delay_at(&self, load_f: f64, in_ramp_s: f64) -> f64 {
        self.delay.eval(load_f, in_ramp_s)
    }

    /// Interpolated output transition time.
    #[inline]
    pub fn out_ramp_at(&self, load_f: f64, in_ramp_s: f64) -> f64 {
        self.out_ramp.eval(load_f, in_ramp_s)
    }

    /// Interpolated strike-glitch width for a load and charge.
    #[inline]
    pub fn glitch_width_at(&self, load_f: f64, charge_c: f64) -> f64 {
        self.glitch.eval(load_f, charge_c)
    }

    /// Dynamic energy of one full output transition into `load_f`, joules.
    #[inline]
    pub fn dynamic_energy(&self, load_f: f64) -> f64 {
        (self.c_self_total + load_f) * self.params.vdd * self.params.vdd
    }

    /// Static energy over one clock period, joules.
    #[inline]
    pub fn static_energy(&self, clock_period_s: f64) -> f64 {
        self.leak_power * clock_period_s
    }

    /// Convenience: re-derive the electrical view (e.g. for validation
    /// re-simulation).
    pub fn electrical(&self, tech: &Technology) -> ser_spice::GateElectrical {
        ser_spice::GateElectrical::from_params(tech, &self.params)
    }

    /// Whether every table entry and scalar of this cell is finite and
    /// the scalars are physically sane (non-negative capacitances and
    /// leakage, positive area). Cells built by the characterizer always
    /// validate; hand-crafted or deserialized cells may not — analysis
    /// sessions check this at construction.
    pub fn validate(&self) -> bool {
        self.delay.is_finite()
            && self.out_ramp.is_finite()
            && self.glitch.is_finite()
            && self.input_cap.is_finite()
            && self.input_cap >= 0.0
            && self.leak_power.is_finite()
            && self.leak_power >= 0.0
            && self.c_self_total.is_finite()
            && self.c_self_total >= 0.0
            && self.area.is_finite()
            && self.area > 0.0
            && self.params.size.is_finite()
            && self.params.size > 0.0
            && self.params.vdd.is_finite()
            && self.params.vdd > 0.0
            && self.params.vth.is_finite()
            && self.params.l_nm.is_finite()
            && self.params.l_nm > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::{Axis, Lut2};
    use ser_netlist::GateKind;

    fn dummy_lut(v: f64) -> Lut2 {
        Lut2::new(
            Axis::new(vec![1e-15]).unwrap(),
            Axis::new(vec![1e-12]).unwrap(),
            vec![v],
        )
        .unwrap()
    }

    fn cell() -> CharacterizedCell {
        CharacterizedCell {
            params: GateParams::new(GateKind::Nand, 2),
            input_cap: 0.3e-15,
            delay: dummy_lut(20e-12),
            out_ramp: dummy_lut(30e-12),
            glitch: dummy_lut(100e-12),
            leak_power: 1e-9,
            c_self_total: 0.5e-15,
            area: 2.0,
        }
    }

    #[test]
    fn energies() {
        let c = cell();
        let e_dyn = c.dynamic_energy(1.5e-15);
        assert!((e_dyn - 2.0e-15).abs() < 1e-20);
        let e_sta = c.static_energy(1e-9);
        assert!((e_sta - 1e-18).abs() < 1e-24);
    }

    #[test]
    fn lookup_passthrough() {
        let c = cell();
        assert_eq!(c.delay_at(1e-15, 1e-12), 20e-12);
        assert_eq!(c.glitch_width_at(1e-15, 16e-15), 100e-12);
    }

    #[test]
    fn serde_round_trip() {
        let c = cell();
        let json = serde_json::to_string(&c).unwrap();
        let back: CharacterizedCell = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
