//! The characterization driver: fills a [`CharacterizedCell`]'s tables by
//! running the transistor-level simulator, the way the paper builds its
//! SPICE look-up tables.

use ser_spice::transient::{gate_delay, generated_glitch_width, TransientConfig};
use ser_spice::units::{FC, FF, PS};
use ser_spice::{GateElectrical, GateParams, Strike, Technology};
use serde::{Deserialize, Serialize};

use crate::cell::CharacterizedCell;
use crate::lut::{Axis, Lut2};

/// The table grids used when characterizing a cell: output loads, input
/// ramps and injected charges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharGrids {
    /// Output load sample points, farads.
    pub loads: Vec<f64>,
    /// Input transition-time sample points, seconds.
    pub ramps: Vec<f64>,
    /// Injected charge sample points, coulombs.
    pub charges: Vec<f64>,
    /// Transient integration settings used during characterization.
    pub dt: f64,
    /// Transient horizon, seconds.
    pub max_window: f64,
}

impl CharGrids {
    /// The default grids: loads 0.5–16 fF, ramps 5–80 ps, charges
    /// 4–64 fC (bracketing the paper's 16 fC).
    pub fn standard() -> Self {
        CharGrids {
            loads: vec![0.5 * FF, 1.0 * FF, 2.0 * FF, 4.0 * FF, 8.0 * FF, 16.0 * FF],
            ramps: vec![5.0 * PS, 20.0 * PS, 80.0 * PS],
            charges: vec![4.0 * FC, 8.0 * FC, 16.0 * FC, 32.0 * FC, 64.0 * FC],
            dt: 0.25 * PS,
            max_window: 3.0e-9,
        }
    }

    /// Coarse grids for tests and quick experiments (2×2×2 points, larger
    /// step). Roughly 10× faster than [`CharGrids::standard`].
    pub fn coarse() -> Self {
        CharGrids {
            loads: vec![1.0 * FF, 8.0 * FF],
            ramps: vec![10.0 * PS, 60.0 * PS],
            charges: vec![8.0 * FC, 32.0 * FC],
            dt: 0.5 * PS,
            max_window: 2.5e-9,
        }
    }

    fn transient(&self) -> TransientConfig {
        TransientConfig {
            dt: self.dt,
            max_window: self.max_window,
            ..TransientConfig::default()
        }
    }
}

/// Characterizes one cell variant: runs the delay experiment at every
/// (load, ramp) grid point and the strike experiment at every
/// (load, charge) point (both struck states, averaged), then wraps the
/// results in interpolated tables.
///
/// Cells too weak to complete a transition inside the window get the
/// window length as a pessimistic delay bound (they are uncompetitive in
/// matching anyway).
///
/// # Panics
///
/// Panics if a grid axis is empty or unsorted (construct [`CharGrids`]
/// from the provided constructors to avoid this).
pub fn characterize_cell(
    tech: &Technology,
    params: &GateParams,
    grids: &CharGrids,
) -> CharacterizedCell {
    let gate = GateElectrical::from_params(tech, params);
    let cfg = grids.transient();

    let load_axis = Axis::new(grids.loads.clone()).expect("load grid must be a valid axis");
    let ramp_axis = Axis::new(grids.ramps.clone()).expect("ramp grid must be a valid axis");
    let charge_axis = Axis::new(grids.charges.clone()).expect("charge grid must be a valid axis");

    let mut delays = Vec::with_capacity(grids.loads.len() * grids.ramps.len());
    let mut slews = Vec::with_capacity(delays.capacity());
    for &load in &grids.loads {
        for &ramp in &grids.ramps {
            match gate_delay(tech, &gate, load, ramp, &cfg) {
                Some(m) => {
                    delays.push(m.tpd);
                    slews.push(m.out_transition);
                }
                None => {
                    delays.push(grids.max_window);
                    slews.push(grids.max_window);
                }
            }
        }
    }

    let mut glitches = Vec::with_capacity(grids.loads.len() * grids.charges.len());
    for &load in &grids.loads {
        for &q in &grids.charges {
            let strike = Strike::new(q, Strike::DEFAULT_TAU_RISE, Strike::DEFAULT_TAU_FALL);
            let w_low = generated_glitch_width(tech, &gate, false, load, &strike, &cfg);
            let w_high = generated_glitch_width(tech, &gate, true, load, &strike, &cfg);
            glitches.push(0.5 * (w_low + w_high));
        }
    }

    let c_self_total = {
        let out = gate.stages().last().expect("cells have stages").c_self;
        let inter = if gate.stages().len() == 2 {
            gate.stages()[0].c_self + gate.interstage_cap(tech)
        } else {
            0.0
        };
        out + inter
    };

    CharacterizedCell {
        params: *params,
        input_cap: gate.input_capacitance(),
        delay: Lut2::new(load_axis.clone(), ramp_axis.clone(), delays)
            .expect("delay table matches its grids"),
        out_ramp: Lut2::new(load_axis.clone(), ramp_axis, slews)
            .expect("slew table matches its grids"),
        glitch: Lut2::new(load_axis, charge_axis, glitches)
            .expect("glitch table matches its grids"),
        leak_power: gate.static_power(tech),
        c_self_total,
        area: params.area(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::GateKind;

    fn tech() -> Technology {
        Technology::ptm70()
    }

    #[test]
    fn characterized_inverter_tables_are_sane() {
        let cell = characterize_cell(
            &tech(),
            &GateParams::new(GateKind::Not, 1),
            &CharGrids::coarse(),
        );
        // Delay grows with load.
        let d_small = cell.delay_at(1.0 * FF, 10.0 * PS);
        let d_big = cell.delay_at(8.0 * FF, 10.0 * PS);
        assert!(d_big > d_small && d_small > 0.0);
        // Glitch width grows with charge.
        let w8 = cell.glitch_width_at(1.0 * FF, 8.0 * FC);
        let w32 = cell.glitch_width_at(1.0 * FF, 32.0 * FC);
        assert!(w32 > w8, "{w32:e} vs {w8:e}");
    }

    #[test]
    fn interpolation_brackets_grid_points() {
        let cell = characterize_cell(
            &tech(),
            &GateParams::new(GateKind::Not, 1),
            &CharGrids::coarse(),
        );
        let d1 = cell.delay_at(1.0 * FF, 10.0 * PS);
        let d8 = cell.delay_at(8.0 * FF, 10.0 * PS);
        let mid = cell.delay_at(4.5 * FF, 10.0 * PS);
        assert!(mid > d1 && mid < d8);
    }

    #[test]
    fn slower_cell_variants_generate_wider_glitches() {
        // Fig. 1: low VDD widens the generated glitch.
        let g = CharGrids::coarse();
        let t = tech();
        let nominal = characterize_cell(&t, &GateParams::new(GateKind::Not, 1), &g);
        let low_vdd = characterize_cell(&t, &GateParams::new(GateKind::Not, 1).with_vdd(0.8), &g);
        let w_nom = nominal.glitch_width_at(1.0 * FF, 16.0 * FC);
        let w_low = low_vdd.glitch_width_at(1.0 * FF, 16.0 * FC);
        assert!(w_low > w_nom, "{w_low:e} vs {w_nom:e}");
    }
}
