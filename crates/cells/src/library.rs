use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

use ser_netlist::{Circuit, GateKind};
use ser_spice::{GateParams, Technology};
use serde::{Deserialize, Serialize};

use crate::cell::CharacterizedCell;
use crate::characterize::{characterize_cell, CharGrids};

/// Exact-match key for a cell variant (bit-exact on the parameter floats;
/// variants always come from explicit grids, so this is well-defined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kind: GateKind,
    fanin: usize,
    size: u64,
    l_nm: u64,
    vdd: u64,
    vth: u64,
}

impl Key {
    fn of(p: &GateParams) -> Self {
        Key {
            kind: p.kind,
            fanin: p.fanin,
            size: p.size.to_bits(),
            l_nm: p.l_nm.to_bits(),
            vdd: p.vdd.to_bits(),
            vth: p.vth.to_bits(),
        }
    }
}

/// A grid of cell variants to characterize: the Cartesian product of the
/// given sizes, lengths, VDDs and Vths for every `(kind, fanin)` pair.
///
/// This mirrors the paper's experimental setup: Table 1 allows lengths
/// {70, 100, 150, 250, 300} nm and circuit-specific VDD/Vth sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibrarySpec {
    /// Gate templates to cover.
    pub kinds_fanins: Vec<(GateKind, usize)>,
    /// Drive strengths in unit widths.
    pub sizes: Vec<f64>,
    /// Channel lengths, nanometres.
    pub lengths_nm: Vec<f64>,
    /// Supply voltages, volts.
    pub vdds: Vec<f64>,
    /// Threshold voltages, volts.
    pub vths: Vec<f64>,
}

impl LibrarySpec {
    /// The templates needed to map `circuit`, with the given parameter
    /// grids.
    pub fn for_circuit(
        circuit: &Circuit,
        sizes: Vec<f64>,
        lengths_nm: Vec<f64>,
        vdds: Vec<f64>,
        vths: Vec<f64>,
    ) -> Self {
        let mut kinds_fanins: Vec<(GateKind, usize)> = circuit
            .gates()
            .map(|id| {
                let node = circuit.node(id);
                (node.kind, node.fanin.len())
            })
            .collect();
        kinds_fanins.sort();
        kinds_fanins.dedup();
        LibrarySpec {
            kinds_fanins,
            sizes,
            lengths_nm,
            vdds,
            vths,
        }
    }

    /// Enumerates every parameter point in the spec.
    pub fn points(&self) -> Vec<GateParams> {
        let mut out = Vec::new();
        for &(kind, fanin) in &self.kinds_fanins {
            for &size in &self.sizes {
                for &l in &self.lengths_nm {
                    for &vdd in &self.vdds {
                        for &vth in &self.vths {
                            out.push(
                                GateParams::new(kind, fanin)
                                    .with_size(size)
                                    .with_length(l)
                                    .with_vdd(vdd)
                                    .with_vth(vth),
                            );
                        }
                    }
                }
            }
        }
        out
    }
}

/// A characterized cell library.
///
/// Variants are added either lazily ([`Library::get_or_characterize`]) or
/// in bulk over a [`LibrarySpec`] ([`Library::characterize_spec`], which
/// parallelizes across threads). Libraries persist as JSON so expensive
/// characterization runs once per parameter set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Library {
    tech: Technology,
    grids: CharGrids,
    cells: Vec<CharacterizedCell>,
    #[serde(skip)]
    index: HashMap<Key, usize>,
}

impl Library {
    /// An empty library over a technology and characterization grids.
    pub fn new(tech: Technology, grids: CharGrids) -> Self {
        Library {
            tech,
            grids,
            cells: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The library's technology.
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The characterization grids in force.
    pub fn grids(&self) -> &CharGrids {
        &self.grids
    }

    /// Number of characterized variants.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library holds no variants yet.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All characterized variants.
    pub fn cells(&self) -> &[CharacterizedCell] {
        &self.cells
    }

    /// Exact-match lookup of a variant.
    pub fn cell_exact(&self, params: &GateParams) -> Option<&CharacterizedCell> {
        self.index.get(&Key::of(params)).map(|&i| &self.cells[i])
    }

    /// All variants implementing a `(kind, fanin)` template — the
    /// candidate set for SERTOPT's delay matching.
    pub fn variants(&self, kind: GateKind, fanin: usize) -> Vec<&CharacterizedCell> {
        self.cells
            .iter()
            .filter(|c| c.params.kind == kind && c.params.fanin == fanin)
            .collect()
    }

    /// Returns the variant for `params`, characterizing and caching it on
    /// first use.
    pub fn get_or_characterize(&mut self, params: &GateParams) -> &CharacterizedCell {
        let key = Key::of(params);
        if let Some(&i) = self.index.get(&key) {
            return &self.cells[i];
        }
        let cell = characterize_cell(&self.tech, params, &self.grids);
        self.push(cell);
        self.cells.last().expect("just pushed")
    }

    /// Characterizes every point of `spec` not already present, spreading
    /// the work over `threads` OS threads (use 0 for the number of
    /// available cores). Returns how many new variants were added.
    pub fn characterize_spec(&mut self, spec: &LibrarySpec, threads: usize) -> usize {
        let todo: Vec<GateParams> = spec
            .points()
            .into_iter()
            .filter(|p| !self.index.contains_key(&Key::of(p)))
            .collect();
        if todo.is_empty() {
            return 0;
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let chunk = todo.len().div_ceil(threads);
        let tech = &self.tech;
        let grids = &self.grids;
        let mut results: Vec<CharacterizedCell> = Vec::with_capacity(todo.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = todo
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        part.iter()
                            .map(|p| characterize_cell(tech, p, grids))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("characterization threads don't panic"));
            }
        });
        let added = results.len();
        for cell in results {
            self.push(cell);
        }
        added
    }

    fn push(&mut self, cell: CharacterizedCell) {
        let key = Key::of(&cell.params);
        let idx = self.cells.len();
        self.cells.push(cell);
        self.index.insert(key, idx);
    }

    /// Inserts (or replaces) a variant directly, bypassing
    /// characterization. The cell is stored **as given** — including
    /// tables a fault-injection test deliberately filled with NaN — so
    /// downstream consumers must validate
    /// ([`CharacterizedCell::validate`]) before trusting it.
    pub fn insert(&mut self, cell: CharacterizedCell) {
        let key = Key::of(&cell.params);
        if let Some(&i) = self.index.get(&key) {
            self.cells[i] = cell;
        } else {
            self.push(cell);
        }
    }

    /// Serializes the library to JSON.
    ///
    /// # Errors
    ///
    /// Any `serde_json` error (effectively never for this data model).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes a library from JSON, rebuilding the lookup index.
    ///
    /// # Errors
    ///
    /// Any `serde_json` parse error.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        let mut lib: Library = serde_json::from_str(json)?;
        lib.rebuild_index();
        Ok(lib)
    }

    /// Saves to a file (JSON).
    ///
    /// # Errors
    ///
    /// I/O errors from the filesystem.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Loads from a file written by [`Library::save`].
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` for malformed JSON.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        Library::from_json(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn rebuild_index(&mut self) {
        self.index = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (Key::of(&c.params), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lib() -> Library {
        Library::new(Technology::ptm70(), CharGrids::coarse())
    }

    #[test]
    fn lazy_characterization_caches() {
        let mut lib = tiny_lib();
        let p = GateParams::new(GateKind::Not, 1);
        let d1 = lib.get_or_characterize(&p).delay_at(1e-15, 10e-12);
        assert_eq!(lib.len(), 1);
        let d2 = lib.get_or_characterize(&p).delay_at(1e-15, 10e-12);
        assert_eq!(lib.len(), 1, "second call must hit the cache");
        assert_eq!(d1, d2);
    }

    #[test]
    fn spec_points_cover_product() {
        let spec = LibrarySpec {
            kinds_fanins: vec![(GateKind::Nand, 2), (GateKind::Not, 1)],
            sizes: vec![1.0, 2.0],
            lengths_nm: vec![70.0],
            vdds: vec![1.0],
            vths: vec![0.2, 0.3],
        };
        // kinds × sizes × lengths × vdds × vths = 2 × 2 × 1 × 1 × 2.
        assert_eq!(spec.points().len(), 8);
    }

    #[test]
    fn characterize_spec_parallel_adds_all() {
        let mut lib = tiny_lib();
        let spec = LibrarySpec {
            kinds_fanins: vec![(GateKind::Not, 1)],
            sizes: vec![1.0, 2.0],
            lengths_nm: vec![70.0],
            vdds: vec![1.0],
            vths: vec![0.2],
        };
        let added = lib.characterize_spec(&spec, 2);
        assert_eq!(added, 2);
        // Idempotent.
        assert_eq!(lib.characterize_spec(&spec, 2), 0);
        assert_eq!(lib.variants(GateKind::Not, 1).len(), 2);
    }

    #[test]
    fn exact_lookup_distinguishes_vth() {
        let mut lib = tiny_lib();
        let p1 = GateParams::new(GateKind::Not, 1).with_vth(0.2);
        let p2 = GateParams::new(GateKind::Not, 1).with_vth(0.3);
        lib.get_or_characterize(&p1);
        assert!(lib.cell_exact(&p1).is_some());
        assert!(lib.cell_exact(&p2).is_none());
    }

    #[test]
    fn json_round_trip_preserves_index() {
        let mut lib = tiny_lib();
        let p = GateParams::new(GateKind::Nand, 2);
        lib.get_or_characterize(&p);
        let json = lib.to_json().unwrap();
        let back = Library::from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.cell_exact(&p).is_some());
    }

    #[test]
    fn for_circuit_extracts_templates() {
        let c17 = ser_netlist::generate::c17();
        let spec = LibrarySpec::for_circuit(&c17, vec![1.0], vec![70.0], vec![1.0], vec![0.2]);
        assert_eq!(spec.kinds_fanins, vec![(GateKind::Nand, 2)]);
    }
}
