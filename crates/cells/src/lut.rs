//! Lookup tables with multilinear interpolation and clamped extrapolation.

use serde::{Deserialize, Serialize};

/// A sorted, strictly-increasing sample axis.
///
/// # Example
///
/// ```
/// use ser_cells::lut::Axis;
///
/// let axis = Axis::new(vec![1.0, 2.0, 4.0]).unwrap();
/// assert_eq!(axis.locate(3.0), (1, 0.5));
/// assert_eq!(axis.locate(0.0), (0, 0.0));   // clamped low
/// assert_eq!(axis.locate(9.0), (1, 1.0));   // clamped high
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    values: Vec<f64>,
}

impl Axis {
    /// Wraps sample points.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a message if fewer than 1 point is given, any
    /// point is non-finite, or the points are not strictly increasing.
    pub fn new(values: Vec<f64>) -> Result<Self, LutError> {
        if values.is_empty() {
            return Err(LutError::EmptyAxis);
        }
        for w in values.windows(2) {
            // NaN must also be rejected here, hence partial_cmp.
            if w[1].partial_cmp(&w[0]) != Some(std::cmp::Ordering::Greater) {
                return Err(LutError::NotIncreasing { at: w[0] });
            }
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(LutError::NonFinite);
        }
        Ok(Axis { values })
    }

    /// The sample points.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of sample points.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis has a single point (lookups are then constant
    /// along it).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // Axis::new rejects empty sets; kept for clippy convention
    }

    /// Bracket `x`: returns `(i, frac)` such that the interpolated value
    /// is `v[i]·(1−frac) + v[i+1]·frac`. Out-of-range queries clamp to the
    /// edges (frac 0 or 1); a single-point axis always returns `(0, 0)`.
    pub fn locate(&self, x: f64) -> (usize, f64) {
        let v = &self.values;
        let n = v.len();
        if n == 1 || x <= v[0] {
            return (0, 0.0);
        }
        if x >= v[n - 1] {
            return (n - 2, 1.0);
        }
        // Binary search for the bracketing interval.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if v[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo, (x - v[lo]) / (v[lo + 1] - v[lo]))
    }
}

/// Errors constructing lookup tables.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LutError {
    /// An axis was given no sample points.
    EmptyAxis,
    /// Axis points were not strictly increasing.
    NotIncreasing {
        /// The point after which monotonicity broke.
        at: f64,
    },
    /// A sample point or value was NaN/inf.
    NonFinite,
    /// The value array length does not match the axis sizes.
    ShapeMismatch {
        /// Expected number of values.
        expect: usize,
        /// Provided number of values.
        got: usize,
    },
}

impl std::fmt::Display for LutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LutError::EmptyAxis => write!(f, "axis needs at least one sample point"),
            LutError::NotIncreasing { at } => {
                write!(f, "axis points must be strictly increasing (after {at})")
            }
            LutError::NonFinite => write!(f, "table entries must be finite"),
            LutError::ShapeMismatch { expect, got } => {
                write!(f, "value array has {got} entries, axes imply {expect}")
            }
        }
    }
}

impl std::error::Error for LutError {}

/// A 1-D interpolated table.
///
/// # Example
///
/// ```
/// use ser_cells::lut::{Axis, Lut1};
///
/// let lut = Lut1::new(
///     Axis::new(vec![0.0, 10.0]).unwrap(),
///     vec![0.0, 100.0],
/// ).unwrap();
/// assert_eq!(lut.eval(2.5), 25.0);
/// assert_eq!(lut.eval(-5.0), 0.0); // clamped
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut1 {
    axis: Axis,
    values: Vec<f64>,
}

impl Lut1 {
    /// Builds the table.
    ///
    /// # Errors
    ///
    /// [`LutError::ShapeMismatch`] when `values.len() != axis.len()`;
    /// [`LutError::NonFinite`] for NaN/inf values.
    pub fn new(axis: Axis, values: Vec<f64>) -> Result<Self, LutError> {
        if values.len() != axis.len() {
            return Err(LutError::ShapeMismatch {
                expect: axis.len(),
                got: values.len(),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(LutError::NonFinite);
        }
        Ok(Lut1 { axis, values })
    }

    /// The sample axis.
    pub fn axis(&self) -> &Axis {
        &self.axis
    }

    /// The stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Interpolated lookup (clamped outside the axis range).
    pub fn eval(&self, x: f64) -> f64 {
        let (i, f) = self.axis.locate(x);
        if self.values.len() == 1 {
            return self.values[0];
        }
        self.values[i] * (1.0 - f) + self.values[i + 1] * f
    }
}

/// A 2-D bilinear table, row-major over `(axis0, axis1)`.
///
/// # Example
///
/// ```
/// use ser_cells::lut::{Axis, Lut2};
///
/// let lut = Lut2::new(
///     Axis::new(vec![0.0, 1.0]).unwrap(),
///     Axis::new(vec![0.0, 1.0]).unwrap(),
///     vec![0.0, 1.0, 2.0, 3.0], // f(0,0)=0 f(0,1)=1 f(1,0)=2 f(1,1)=3
/// ).unwrap();
/// assert_eq!(lut.eval(0.5, 0.5), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut2 {
    axis0: Axis,
    axis1: Axis,
    values: Vec<f64>,
}

impl Lut2 {
    /// Builds the table (row-major: index = i0·len1 + i1).
    ///
    /// # Errors
    ///
    /// [`LutError::ShapeMismatch`] or [`LutError::NonFinite`] as for
    /// [`Lut1::new`].
    pub fn new(axis0: Axis, axis1: Axis, values: Vec<f64>) -> Result<Self, LutError> {
        let expect = axis0.len() * axis1.len();
        if values.len() != expect {
            return Err(LutError::ShapeMismatch {
                expect,
                got: values.len(),
            });
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(LutError::NonFinite);
        }
        Ok(Lut2 {
            axis0,
            axis1,
            values,
        })
    }

    /// Builds the table **without** validating values (shape is still
    /// checked). Escape hatch for fault-injection tests that need to
    /// craft a table holding NaN/inf entries — exactly what [`Lut2::new`]
    /// exists to prevent; never use it on real characterization data.
    pub fn from_raw_unchecked(
        axis0: Axis,
        axis1: Axis,
        values: Vec<f64>,
    ) -> Result<Self, LutError> {
        let expect = axis0.len() * axis1.len();
        if values.len() != expect {
            return Err(LutError::ShapeMismatch {
                expect,
                got: values.len(),
            });
        }
        Ok(Lut2 {
            axis0,
            axis1,
            values,
        })
    }

    /// Whether every stored value is finite (true for any table built by
    /// [`Lut2::new`]; may be false after [`Lut2::from_raw_unchecked`]).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// First axis.
    pub fn axis0(&self) -> &Axis {
        &self.axis0
    }

    /// Second axis.
    pub fn axis1(&self) -> &Axis {
        &self.axis1
    }

    #[inline]
    fn at(&self, i0: usize, i1: usize) -> f64 {
        self.values[i0 * self.axis1.len() + i1]
    }

    /// Nearest-grid-point lookup — the ablation alternative quantifying
    /// what the paper's linear interpolation buys over snapping.
    pub fn eval_nearest(&self, x0: f64, x1: f64) -> f64 {
        let (i, fi) = self.axis0.locate(x0);
        let (j, fj) = self.axis1.locate(x1);
        let i = if fi > 0.5 {
            (i + 1).min(self.axis0.len() - 1)
        } else {
            i
        };
        let j = if fj > 0.5 {
            (j + 1).min(self.axis1.len() - 1)
        } else {
            j
        };
        self.at(i, j)
    }

    /// Bilinear lookup (clamped outside both axes).
    pub fn eval(&self, x0: f64, x1: f64) -> f64 {
        let (i, fi) = self.axis0.locate(x0);
        let (j, fj) = self.axis1.locate(x1);
        let n0 = self.axis0.len();
        let n1 = self.axis1.len();
        let i1 = (i + 1).min(n0 - 1);
        let j1 = (j + 1).min(n1 - 1);
        let v00 = self.at(i, j);
        let v01 = self.at(i, j1);
        let v10 = self.at(i1, j);
        let v11 = self.at(i1, j1);
        let a = v00 * (1.0 - fj) + v01 * fj;
        let b = v10 * (1.0 - fj) + v11 * fj;
        a * (1.0 - fi) + b * fi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_rejects_unsorted() {
        assert!(matches!(
            Axis::new(vec![1.0, 1.0]),
            Err(LutError::NotIncreasing { .. })
        ));
        assert!(matches!(Axis::new(vec![]), Err(LutError::EmptyAxis)));
    }

    #[test]
    fn locate_midpoints() {
        let a = Axis::new(vec![0.0, 1.0, 3.0]).unwrap();
        assert_eq!(a.locate(0.5), (0, 0.5));
        assert_eq!(a.locate(2.0), (1, 0.5));
    }

    #[test]
    fn lut1_exact_at_points() {
        let lut = Lut1::new(
            Axis::new(vec![1.0, 2.0, 4.0]).unwrap(),
            vec![10.0, 20.0, 40.0],
        )
        .unwrap();
        for (x, y) in [(1.0, 10.0), (2.0, 20.0), (4.0, 40.0)] {
            assert_eq!(lut.eval(x), y);
        }
    }

    #[test]
    fn lut1_is_piecewise_linear() {
        let lut = Lut1::new(Axis::new(vec![0.0, 2.0]).unwrap(), vec![0.0, 8.0]).unwrap();
        assert_eq!(lut.eval(0.5), 2.0);
        assert_eq!(lut.eval(1.5), 6.0);
    }

    #[test]
    fn lut1_single_point_is_constant() {
        let lut = Lut1::new(Axis::new(vec![5.0]).unwrap(), vec![3.0]).unwrap();
        assert_eq!(lut.eval(-10.0), 3.0);
        assert_eq!(lut.eval(99.0), 3.0);
    }

    #[test]
    fn lut1_shape_mismatch() {
        let err = Lut1::new(Axis::new(vec![0.0, 1.0]).unwrap(), vec![1.0]).unwrap_err();
        assert!(matches!(err, LutError::ShapeMismatch { expect: 2, got: 1 }));
    }

    #[test]
    fn lut2_bilinear_exactness() {
        // f(x, y) = 2x + 3y is reproduced exactly by bilinear interpolation.
        let ax = Axis::new(vec![0.0, 1.0, 2.0]).unwrap();
        let ay = Axis::new(vec![0.0, 2.0]).unwrap();
        let mut vals = Vec::new();
        for &x in ax.values() {
            for &y in ay.values() {
                vals.push(2.0 * x + 3.0 * y);
            }
        }
        let lut = Lut2::new(ax, ay, vals).unwrap();
        for (x, y) in [(0.5, 1.0), (1.7, 0.3), (2.0, 2.0)] {
            assert!((lut.eval(x, y) - (2.0 * x + 3.0 * y)).abs() < 1e-12);
        }
    }

    #[test]
    fn lut2_clamps() {
        let ax = Axis::new(vec![0.0, 1.0]).unwrap();
        let ay = Axis::new(vec![0.0, 1.0]).unwrap();
        let lut = Lut2::new(ax, ay, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(lut.eval(-1.0, -1.0), 0.0);
        assert_eq!(lut.eval(9.0, 9.0), 3.0);
    }

    #[test]
    fn lut2_degenerate_axes() {
        let lut = Lut2::new(
            Axis::new(vec![1.0]).unwrap(),
            Axis::new(vec![0.0, 1.0]).unwrap(),
            vec![5.0, 7.0],
        )
        .unwrap();
        assert_eq!(lut.eval(0.0, 0.5), 6.0);
    }

    #[test]
    fn errors_display() {
        assert!(LutError::EmptyAxis.to_string().contains("at least one"));
    }

    #[test]
    fn nearest_snaps_to_grid() {
        let ax = Axis::new(vec![0.0, 1.0]).unwrap();
        let ay = Axis::new(vec![0.0, 1.0]).unwrap();
        let lut = Lut2::new(ax, ay, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        assert_eq!(lut.eval_nearest(0.1, 0.1), 0.0);
        assert_eq!(lut.eval_nearest(0.9, 0.9), 3.0);
        assert_eq!(lut.eval_nearest(0.1, 0.9), 1.0);
        // Interpolation differs in the interior.
        assert_ne!(lut.eval(0.4, 0.4), lut.eval_nearest(0.4, 0.4));
    }
}
