//! Property-based tests over randomly generated circuits.

use proptest::prelude::*;
use ser_netlist::generate::{layered, LayeredSpec};
use ser_netlist::{bench_format, cone, paths, topo};

fn arb_spec() -> impl Strategy<Value = LayeredSpec> {
    (1usize..10, 1usize..6, 1usize..80, 0u64..10_000).prop_map(|(pi, po, gates, seed)| {
        let mut spec = LayeredSpec::new("prop", pi, po, gates.max(po));
        spec.seed = seed;
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator honours its interface contract exactly.
    #[test]
    fn generator_honours_counts(spec in arb_spec()) {
        let c = layered(&spec);
        prop_assert_eq!(c.primary_inputs().len(), spec.n_inputs);
        prop_assert_eq!(c.primary_outputs().len(), spec.n_outputs);
        prop_assert_eq!(c.gate_count(), spec.n_gates);
    }

    /// Topological order puts every node after its fan-ins.
    #[test]
    fn topological_order_is_valid(spec in arb_spec()) {
        let c = layered(&spec);
        let mut rank = vec![0usize; c.node_count()];
        for (r, id) in c.topological_order().iter().enumerate() {
            rank[id.index()] = r;
        }
        for id in c.node_ids() {
            for &f in &c.node(id).fanin {
                prop_assert!(rank[f.index()] < rank[id.index()]);
            }
        }
    }

    /// `.bench` serialization round-trips connectivity and kinds.
    #[test]
    fn bench_round_trip(spec in arb_spec()) {
        let c = layered(&spec);
        let text = bench_format::write(&c);
        let back = bench_format::parse(&text, c.name()).expect("own output parses");
        prop_assert_eq!(back.gate_count(), c.gate_count());
        prop_assert_eq!(back.edge_count(), c.edge_count());
        for id in c.node_ids() {
            let n = c.node(id);
            let id2 = back.find(&n.name).expect("name preserved");
            prop_assert_eq!(back.node(id2).kind, n.kind);
        }
    }

    /// Fan-out lists are the exact inverse of fan-in lists (per pin).
    #[test]
    fn fanout_inverts_fanin(spec in arb_spec()) {
        let c = layered(&spec);
        let mut pin_count = vec![0usize; c.node_count()];
        for id in c.node_ids() {
            for &f in &c.node(id).fanin {
                pin_count[f.index()] += 1;
            }
        }
        for id in c.node_ids() {
            prop_assert_eq!(c.fanout(id).len(), pin_count[id.index()]);
        }
    }

    /// Levels from inputs are consistent: every gate sits exactly one
    /// level above its deepest fan-in.
    #[test]
    fn levels_are_consistent(spec in arb_spec()) {
        let c = layered(&spec);
        let lv = topo::levels_from_inputs(&c);
        for id in c.gates() {
            let deepest = c.node(id).fanin.iter().map(|f| lv[f.index()]).max().unwrap();
            prop_assert_eq!(lv[id.index()], deepest + 1);
        }
    }

    /// Path counting agrees with explicit enumeration on small circuits.
    #[test]
    fn path_count_matches_enumeration(spec in arb_spec()) {
        let c = layered(&spec);
        if let Some(all) = paths::enumerate(&c, 5_000) {
            prop_assert_eq!(all.len() as f64, paths::total_paths(&c));
        }
    }

    /// Every fan-out cone contains its root and only reachable nodes.
    #[test]
    fn cones_are_sound(spec in arb_spec()) {
        let c = layered(&spec);
        for id in c.node_ids().step_by(7) {
            let cone = cone::fanout_cone(&c, id);
            prop_assert_eq!(cone[0], id);
            // Every cone member (except the root) has a fan-in inside the cone.
            let mask = cone::fanout_cone_mask(&c, id);
            for &m in &cone[1..] {
                prop_assert!(c.node(m).fanin.iter().any(|f| mask[f.index()]));
            }
        }
    }

    /// Truncating a valid `.bench` file at any byte boundary must yield
    /// `Ok` or a typed `ParseBenchError` — never a panic.
    #[test]
    fn truncated_bench_never_panics(spec in arb_spec(), frac in 0.0f64..1.0) {
        let c = layered(&spec);
        let text = bench_format::write(&c);
        let mut cut = (text.len() as f64 * frac) as usize;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = bench_format::parse(&text[..cut], "trunc");
    }

    /// Flipping an arbitrary byte of a valid `.bench` file must yield
    /// `Ok` or a typed error — never a panic — and any error must carry
    /// a plausible source position.
    #[test]
    fn byte_flipped_bench_never_panics(spec in arb_spec(), pos_frac in 0.0f64..1.0, flip in 1u64..256) {
        let c = layered(&spec);
        let text = bench_format::write(&c);
        let mut bytes = text.into_bytes();
        if !bytes.is_empty() {
            let i = ((bytes.len() - 1) as f64 * pos_frac) as usize;
            bytes[i] ^= flip as u8;
        }
        if let Ok(mutated) = String::from_utf8(bytes) {
            let line_count = mutated.lines().count();
            if let Err(e) = bench_format::parse(&mutated, "flip") {
                use ser_netlist::ParseBenchError as E;
                match e {
                    E::Syntax { line, column, .. }
                    | E::UnknownGate { line, column, .. }
                    | E::UndefinedSignal { line, column, .. }
                    | E::Redefined { line, column, .. } => {
                        prop_assert!(line >= 1 && line <= line_count.max(1));
                        prop_assert!(column >= 1);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Duplicating any definition line must be rejected as `Redefined`
    /// (pointing at the duplicate) or another typed error — never a panic.
    #[test]
    fn duplicated_line_never_panics(spec in arb_spec(), pick in 0.0f64..1.0) {
        let c = layered(&spec);
        let text = bench_format::write(&c);
        let defs: Vec<&str> = text
            .lines()
            .filter(|l| {
                let code = l.split('#').next().unwrap_or("").trim();
                !code.is_empty() && !code.starts_with("OUTPUT")
            })
            .collect();
        if defs.is_empty() {
            return Ok(());
        }
        let dup = defs[((defs.len() - 1) as f64 * pick) as usize];
        let mutated = format!("{text}\n{dup}\n");
        let err = bench_format::parse(&mutated, "dup")
            .expect_err("duplicate driver must be rejected");
        if let ser_netlist::ParseBenchError::Redefined { line, .. } = err {
            prop_assert!(line > text.lines().count());
        }
    }
}
